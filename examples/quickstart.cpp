/**
 * @file
 * Quickstart: build a workload, run it with and without the TPC
 * composite prefetcher, and print the headline metrics.
 *
 *   $ ./quickstart [workload] [prefetcher]
 *   $ ./quickstart libquantum.syn TPC
 *
 * Any workload from the suites (see suite.hpp) and any registry name
 * ("TPC", "T2", "SPP", "BOP", "TPC+SMS", ...) works.
 */

#include <cstdio>
#include <string>

#include "metrics/table.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace dol;

    const std::string workload =
        argc > 1 ? argv[1] : "libquantum.syn";
    const std::string prefetcher = argc > 2 ? argv[2] : "TPC";

    SimConfig config;
    config.maxInstrs = 300000;

    std::printf("simulating %s with %s (%lu instructions)...\n",
                workload.c_str(), prefetcher.c_str(),
                static_cast<unsigned long>(config.maxInstrs));

    ExperimentRunner runner(config);
    const WorkloadSpec &spec = findWorkload(workload);
    const RunOutput out = runner.run(spec, prefetcher);

    TextTable table({"metric", "value"});
    table.addRow({"baseline IPC", fmt("%.3f", out.baselineIpc)});
    table.addRow({"IPC with prefetcher", fmt("%.3f", out.ipc)});
    table.addRow({"speedup", fmt("%.3f", out.speedup())});
    table.addRow({"baseline L1 MPKI", fmt("%.1f", out.baselineMpkiL1)});
    table.addRow({"prefetches issued",
                  fmt("%.0f",
                      static_cast<double>(out.prefetchesIssued))});
    table.addRow({"prefetching scope", fmt("%.2f", out.scope)});
    table.addRow({"effective accuracy (L1)",
                  fmt("%.2f", out.effAccuracyL1)});
    table.addRow({"effective coverage (L1)",
                  fmt("%.2f", out.effCoverageL1)});
    table.addRow({"normalized memory traffic",
                  fmt("%.3f", out.trafficNormalized)});
    table.print();

    if (!out.components.empty()) {
        std::printf("\nper-component breakdown:\n");
        TextTable comps({"component", "issued", "used", "scope"});
        for (const auto &comp : out.components) {
            comps.addRow(
                {comp.name,
                 fmt("%.0f", static_cast<double>(comp.issued)),
                 fmt("%.0f", static_cast<double>(comp.used)),
                 fmt("%.2f", comp.scope)});
        }
        comps.print();
    }
    return 0;
}
