/**
 * @file
 * Four-core multiprogrammed run (paper section V-A): a random
 * 4-workload mix over private L1/L2 and a shared L3 + DRAM channel,
 * reporting per-core IPC and weighted speedup for a chosen
 * prefetcher.
 *
 *   $ ./multicore_mix [prefetcher] [mix-seed]
 */

#include <cstdio>
#include <string>

#include "metrics/table.hpp"
#include "sim/multicore.hpp"
#include "workloads/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace dol;

    const std::string prefetcher = argc > 1 ? argv[1] : "TPC";
    const std::uint64_t seed =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

    SimConfig config;
    config.maxInstrs = 60000;

    const auto mixes = makeMixes(1, seed);
    const auto &mix = mixes[0];

    std::printf("4-core mix (seed %lu):\n",
                static_cast<unsigned long>(seed));
    for (std::size_t core = 0; core < mix.size(); ++core)
        std::printf("  core %zu: %s\n", core, mix[core].name.c_str());

    std::printf("\nrunning baseline (no prefetching)...\n");
    MulticoreSimulator baseline_sim(config, mix, "");
    const MulticoreResult baseline = baseline_sim.run();

    std::printf("running with %s...\n\n", prefetcher.c_str());
    MulticoreSimulator pf_sim(config, mix, prefetcher);
    const MulticoreResult result = pf_sim.run();

    TextTable table({"core", "workload", "baseline IPC",
                     "IPC with pf", "ratio"});
    for (std::size_t core = 0; core < mix.size(); ++core) {
        table.addRow({"core " + std::to_string(core),
                      mix[core].name,
                      fmt("%.3f", baseline.ipc[core]),
                      fmt("%.3f", result.ipc[core]),
                      fmt("%.3f",
                          baseline.ipc[core] > 0
                              ? result.ipc[core] / baseline.ipc[core]
                              : 1.0)});
    }
    table.print();

    std::printf("\nweighted speedup: %.3f\n",
                result.weightedSpeedup(baseline));
    std::printf("DRAM lines moved: %lu (baseline hierarchy: %lu)\n",
                static_cast<unsigned long>(result.dramLines),
                static_cast<unsigned long>(result.baselineDramLines));
    return 0;
}
