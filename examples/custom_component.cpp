/**
 * @file
 * Extending the composite: the paper's central argument is that new
 * specialized components can be added to the coordinator as they are
 * invented. This example writes a tiny custom component — a
 * next-two-line prefetcher restricted to stack-like descending
 * accesses — and plugs it into TPC as an extra component.
 */

#include <cstdio>
#include <memory>

#include "core/registry.hpp"
#include "metrics/table.hpp"
#include "prefetch/prefetcher.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

namespace
{

/**
 * A deliberately narrow expert: it only acts on instructions whose
 * accesses walk downward, and then prefetches the next two lines
 * below. Narrow scope, decent accuracy — a model TPC citizen.
 */
class DescendingPrefetcher : public dol::Prefetcher
{
  public:
    DescendingPrefetcher() : Prefetcher("Descending") {}

    void
    train(const dol::AccessInfo &access,
          dol::PrefetchEmitter &emitter) override
    {
        auto &last = _lastAddr[access.mPc % kEntries];
        if (last.pc == access.mPc && access.addr < last.addr &&
            last.addr - access.addr <= 4 * dol::kLineBytes) {
            emitter.emit(access.line() - dol::kLineBytes, dol::kL2);
            emitter.emit(access.line() - 2 * dol::kLineBytes,
                         dol::kL2);
        }
        last = {access.mPc, access.addr};
    }

    std::size_t
    storageBits() const override
    {
        return kEntries * (16 + 32);
    }

  private:
    static constexpr unsigned kEntries = 32;
    struct LastAccess
    {
        dol::Pc pc = 0;
        dol::Addr addr = 0;
    };
    LastAccess _lastAddr[kEntries];
};

} // namespace

int
main()
{
    using namespace dol;

    SimConfig config;
    config.maxInstrs = 250000;
    ExperimentRunner runner(config);
    const WorkloadSpec &spec = findWorkload("gcc.syn");

    // Plain TPC.
    const RunOutput plain = runner.run(spec, "TPC");

    // TPC + the custom component: the coordinator routes only the
    // instructions T2/P1/C1 decline to the new expert.
    RunOptions options;
    options.factory = [](const ValueSource *memory) {
        auto tpc = makeTpc(memory);
        tpc->addComponent(std::make_unique<DescendingPrefetcher>());
        return std::unique_ptr<Prefetcher>(std::move(tpc));
    };
    const RunOutput extended = runner.run(spec, "TPC+Descending",
                                          options);

    std::printf("adding a custom component to the composite:\n\n");
    TextTable table({"configuration", "speedup", "scope",
                     "accuracy(L1)"});
    table.addRow({"TPC", fmt("%.3f", plain.speedup()),
                  fmt("%.2f", plain.scope),
                  fmt("%.2f", plain.effAccuracyL1)});
    table.addRow({"TPC + Descending",
                  fmt("%.3f", extended.speedup()),
                  fmt("%.2f", extended.scope),
                  fmt("%.2f", extended.effAccuracyL1)});
    table.print();

    std::printf("\nper-component view of the extended composite:\n");
    TextTable comps({"component", "issued", "used"});
    for (const auto &comp : extended.components) {
        comps.addRow({comp.name,
                      fmt("%.0f", static_cast<double>(comp.issued)),
                      fmt("%.0f", static_cast<double>(comp.used))});
    }
    comps.print();
    return 0;
}
