/**
 * @file
 * Pointer-pattern walkthrough: shows P1's two target patterns (paper
 * Figure 5) on purpose-built workloads, with the division of labor
 * visible in the per-component statistics — T2 covers the pointer
 * array itself, P1 covers the dependent objects and the chain.
 */

#include <cstdio>

#include "metrics/table.hpp"
#include "sim/experiment.hpp"
#include "workloads/pointer_kernels.hpp"

namespace
{

void
report(const char *title, const dol::RunOutput &out)
{
    using namespace dol;
    std::printf("\n-- %s --\n", title);
    TextTable table({"metric", "value"});
    table.addRow({"speedup", fmt("%.3f", out.speedup())});
    table.addRow({"L1 coverage", fmt("%.2f", out.effCoverageL1)});
    table.addRow({"L1 accuracy", fmt("%.2f", out.effAccuracyL1)});
    table.print();
    TextTable comps({"component", "issued", "used"});
    for (const auto &comp : out.components) {
        comps.addRow({comp.name,
                      fmt("%.0f", static_cast<double>(comp.issued)),
                      fmt("%.0f", static_cast<double>(comp.used))});
    }
    comps.print();
}

} // namespace

int
main()
{
    using namespace dol;

    SimConfig config;
    config.maxInstrs = 250000;
    ExperimentRunner runner(config);

    // Pattern 1: array of pointers (Figure 5-a). The pointer array is
    // a canonical stream (T2); the objects it points at are scattered
    // (only P1's value-chaining reaches them ahead of time).
    const WorkloadSpec array_spec{
        "array-of-pointers", "example", [](MemoryImage &image) {
            return std::make_unique<PointerArrayKernel>(
                image, PointerArrayKernel::Params{.entries = 1u << 16,
                                                  .objectBytes = 256,
                                                  .fieldOffset = 24,
                                                  .aluPerIter = 28,
                                                  .seed = 21});
        }};

    std::printf("=== array of pointers: p = arr[i]; use(p->field) "
                "===\n");
    report("T2 alone (covers only the pointer array)",
           runner.run(array_spec, "T2"));
    report("T2 + P1 (dependent objects covered too)",
           runner.run(array_spec, "T2P1"));

    // Pattern 2: a linked-list traversal (Figure 5-b). A serial chain
    // cannot beat one node per memory round trip, so the win here is
    // coverage and accuracy, not IPC — exactly the paper's
    // "timeliness is the challenge" observation.
    const WorkloadSpec chain_spec{
        "pointer-chain", "example", [](MemoryImage &image) {
            return std::make_unique<ListChaseKernel>(
                image, ListChaseKernel::Params{.nodes = 1u << 15,
                                               .nodeBytes = 128,
                                               .aluPerIter = 6,
                                               .seed = 22});
        }};

    std::printf("\n=== pointer chain: while (p) p = p->next ===\n");
    report("T2 + P1 (the chain FSM walks the list)",
           runner.run(chain_spec, "T2P1"));
    return 0;
}
