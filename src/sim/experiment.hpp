/**
 * @file
 * Experiment harness: runs (workload, prefetcher) pairs and extracts
 * every metric the paper reports — speedup over the no-prefetch
 * baseline, scope, effective accuracy and coverage at L1 and L2,
 * normalized memory traffic, per-category (LHF/MHF/HHF) accuracy, and
 * per-component breakdowns. Baselines and stratifiers are computed
 * once per workload and cached.
 */

#ifndef DOL_SIM_EXPERIMENT_HPP
#define DOL_SIM_EXPERIMENT_HPP

#include <array>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cancel.hpp"
#include "metrics/accounting.hpp"
#include "metrics/stratify.hpp"
#include "sim/simulator.hpp"
#include "trace/counters.hpp"
#include "workloads/suite.hpp"

namespace dol
{

/** Everything measured in one (workload, prefetcher) run. */
struct RunOutput
{
    std::string workload;
    std::string prefetcher;

    double ipc = 0.0;
    double baselineIpc = 0.0;
    double speedup() const
    {
        return baselineIpc > 0.0 ? ipc / baselineIpc : 1.0;
    }

    std::uint64_t instructions = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t l1ShadowMisses = 0;
    std::uint64_t l1Misses = 0;
    double baselineMpkiL1 = 0.0;

    double scope = 0.0;
    double effAccuracyL1 = 0.0;
    double effCoverageL1 = 0.0;
    double effAccuracyL2 = 0.0;
    double effCoverageL2 = 0.0;
    double trafficNormalized = 1.0;

    /** Per ground-truth category (Figure 13). */
    std::array<PrefetchAccounting::CategoryCounters, kNumFruit>
        categories{};
    std::array<double, kNumFruit> categoryScope{};

    /** Per component (Figure 12 incremental, Figure 14). */
    struct ComponentOutput
    {
        std::string name;
        std::uint64_t issued = 0;
        std::uint64_t used = 0;
        double inducedCredit = 0.0;
        double scope = 0.0;

        double
        effectiveAccuracy() const
        {
            return issued ? (static_cast<double>(used) - inducedCredit) /
                                static_cast<double>(issued)
                          : 0.0;
        }
    };
    std::vector<ComponentOutput> components;

    /** Focus-region counters (outside an exclude set; Figure 14). */
    PrefetchAccounting::CategoryCounters focus{};
    double focusScope = 0.0;

    /** Lines this run prefetched (input to Figure 14's exclusion). */
    std::shared_ptr<std::unordered_set<Addr>> pfp;

    /** End-of-run counter snapshot, populated when the run collected
     *  counters (RunOptions::collectCounters or a trace path). */
    CounterRegistry counters;
};

/** Per-run options beyond the prefetcher name. */
struct RunOptions
{
    /** Build the prefetcher directly (ablations with custom params);
     *  overrides the registry name when set. */
    std::function<std::unique_ptr<Prefetcher>(const ValueSource *)>
        factory;
    /** Force all prefetches to one destination (Figure 16). */
    std::optional<unsigned> forceDest;
    /** Oracle-stratified destination: LHF to L1, rest to L2. */
    bool oracleDest = false;
    /** Exclude set for focus-region accounting (Figure 14). */
    std::shared_ptr<const std::unordered_set<Addr>> exclude;

    /** Write this run's binary event trace here (empty = no trace). */
    std::string tracePath;
    /** Collect end-of-run counters into RunOutput::counters (implied
     *  by a non-empty tracePath). */
    bool collectCounters = false;

    /** Run composite coordinators in adaptive mode (`--coordinator
     *  adaptive`): feedback-driven degree ramping and claim demotion,
     *  with the DRAM window-deferral counter wired in as the pressure
     *  signal. No-op for monolithic prefetchers. */
    bool adaptiveCoordinator = false;
};

class BaselineCache;

class ExperimentRunner
{
  public:
    /**
     * @param shared optional cross-runner baseline cache; parallel
     *               sweeps hand every job the same cache so each
     *               workload's baseline is simulated exactly once.
     *               All runners sharing a cache must use the same
     *               demand-path configuration (budget, cache/DRAM
     *               geometry) — only prefetch-side knobs like the
     *               drop-RNG seed may differ.
     */
    explicit ExperimentRunner(const SimConfig &config = {},
                              std::shared_ptr<BaselineCache> shared =
                                  nullptr)
        : _config(config), _shared(std::move(shared))
    {}

    struct Baseline
    {
        double ipc = 0.0;
        double mpkiL1 = 0.0;
        std::uint64_t l1Misses = 0;
        std::shared_ptr<OfflineStratifier> stratifier;
    };

    /** Baseline run (cached per workload): IPC + ground truth. */
    const Baseline &baseline(const WorkloadSpec &spec);

    /** Measured run with a prefetcher built by the registry. */
    RunOutput run(const WorkloadSpec &spec,
                  const std::string &prefetcher_name,
                  const RunOptions &options = {});

    /**
     * Cooperative cancellation for the measured run (borrowed; may be
     * null). Applied to the measured simulation only — deliberately
     * not to baseline computation, whose result is memoized in a
     * cache shared across jobs: cancelling a shared computation would
     * poison every waiter, not just the attempt that timed out.
     */
    void setCancelToken(const CancelToken *cancel)
    {
        _cancel = cancel;
    }

    const SimConfig &config() const { return _config; }

  private:
    Baseline computeBaseline(const WorkloadSpec &spec);

    SimConfig _config;
    std::shared_ptr<BaselineCache> _shared;
    std::unordered_map<std::string, Baseline> _baselines;
    const CancelToken *_cancel = nullptr;
};

/**
 * Thread-safe baseline cache shared between the per-job
 * ExperimentRunners of a parallel sweep. The first requester of a
 * workload computes its baseline; concurrent requesters block on the
 * same shared future, so the result (and any exception) is computed
 * once and observed by all.
 */
class BaselineCache
{
  public:
    /** Look up @p key, running @p compute on a miss. */
    const ExperimentRunner::Baseline &
    get(const std::string &key,
        const std::function<ExperimentRunner::Baseline()> &compute);

    std::size_t size() const;

  private:
    mutable std::mutex _mutex;
    std::unordered_map<std::string,
                       std::shared_future<ExperimentRunner::Baseline>>
        _futures;
};

/** Honour DOL_QUICK=1 by shrinking the instruction budget. */
SimConfig makeBenchConfig(std::uint64_t max_instrs = 400000);

} // namespace dol

#endif // DOL_SIM_EXPERIMENT_HPP
