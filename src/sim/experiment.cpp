#include "sim/experiment.hpp"

#include <cstdlib>
#include <optional>
#include <stdexcept>

#include "core/registry.hpp"
#include "trace/context.hpp"
#include "trace/trace_io.hpp"

namespace dol
{

const ExperimentRunner::Baseline &
ExperimentRunner::baseline(const WorkloadSpec &spec)
{
    if (_shared) {
        return _shared->get(spec.name,
                            [&] { return computeBaseline(spec); });
    }
    auto it = _baselines.find(spec.name);
    if (it != _baselines.end())
        return it->second;
    return _baselines.emplace(spec.name, computeBaseline(spec))
        .first->second;
}

ExperimentRunner::Baseline
ExperimentRunner::computeBaseline(const WorkloadSpec &spec)
{
    Baseline base;
    base.stratifier = std::make_shared<OfflineStratifier>();

    MemoryImage image;
    auto kernel = spec.factory(image);

    Simulator sim(_config, *kernel, nullptr);
    Instr instr;
    // Run the baseline and feed the ground-truth classifier with the
    // demand stream in the same pass.
    while (sim.instructions() < _config.maxInstrs) {
        // Peek by stepping: the stratifier needs pc/addr only, which
        // step() consumed — so observe through the kernel replay
        // instead: we re-generate below.
        if (!sim.step())
            break;
    }
    base.ipc = sim.ipc();
    base.l1Misses = sim.mem().stats().level[kL1].primaryMisses;
    base.mpkiL1 =
        sim.instructions()
            ? 1000.0 * static_cast<double>(base.l1Misses) /
                  static_cast<double>(sim.instructions())
            : 0.0;

    // Second pass (identical trace): classify accesses offline.
    kernel->reset();
    std::uint64_t seen = 0;
    while (seen < _config.maxInstrs && kernel->next(instr)) {
        if (instr.isMem())
            base.stratifier->observe(instr.pc, instr.addr);
        ++seen;
    }

    return base;
}

const ExperimentRunner::Baseline &
BaselineCache::get(
    const std::string &key,
    const std::function<ExperimentRunner::Baseline()> &compute)
{
    std::promise<ExperimentRunner::Baseline> promise;
    std::shared_future<ExperimentRunner::Baseline> future;
    bool owner = false;
    {
        std::lock_guard lock(_mutex);
        auto it = _futures.find(key);
        if (it == _futures.end()) {
            future = promise.get_future().share();
            _futures.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
        }
    }
    if (owner) {
        try {
            promise.set_value(compute());
        } catch (...) {
            // Don't memoize the failure: evict the entry (it is ours —
            // only the owner inserts, nothing else erases) so a retry
            // of the job recomputes instead of replaying the cached
            // exception forever. Waiters already holding copies of
            // the shared future still observe this exception once.
            {
                std::lock_guard lock(_mutex);
                _futures.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

std::size_t
BaselineCache::size() const
{
    std::lock_guard lock(_mutex);
    return _futures.size();
}

RunOutput
ExperimentRunner::run(const WorkloadSpec &spec,
                      const std::string &prefetcher_name,
                      const RunOptions &options)
{
    const Baseline &base = baseline(spec);

    MemoryImage image;
    auto kernel = spec.factory(image);
    auto prefetcher =
        options.factory
            ? options.factory(&image)
            : makePrefetcher(prefetcher_name, &image,
                             options.adaptiveCoordinator);

    Simulator sim(_config, *kernel, prefetcher.get());
    sim.setStratifier(base.stratifier.get());
    if (options.adaptiveCoordinator) {
        // Feed the degree schedule's pressure signal from the shared
        // DRAM controller. The probe only fires inside sim.run(), so
        // the captured reference never outlives the simulator.
        if (auto *composite =
                dynamic_cast<CompositePrefetcher *>(prefetcher.get())) {
            MemorySystem &mem = sim.mem();
            composite->setPressureProbe([&mem] {
                return mem.shared().dram().stats().windowDeferrals;
            });
        }
    }
    if (options.exclude)
        sim.accounting().setExcludeSet(options.exclude);
    if (options.forceDest)
        sim.emitter().forceDestLevel(options.forceDest);
    if (options.oracleDest) {
        const OfflineStratifier *strat = base.stratifier.get();
        sim.emitter().setDestOracle([strat](Addr addr, unsigned) {
            return strat->classify(addr) == Fruit::kLHF ? kL1 : kL2;
        });
    }

    // Observability: a trace path attaches a binary sink; counters
    // alone attach a sink-less context (tallies only). Neither touches
    // the defaults, so untraced runs keep the null-pointer fast path.
    const bool tracing = !options.tracePath.empty();
    const bool counting = options.collectCounters || tracing;
    TraceContext trace_ctx;
    TraceWriter trace_writer;
    std::optional<WriterTraceSink> trace_sink;
    if (tracing) {
        if (!trace_writer.open(options.tracePath)) {
            throw std::runtime_error("trace: " + trace_writer.error());
        }
        trace_sink.emplace(trace_writer);
        trace_ctx.setSink(&*trace_sink);
    }
    if (counting)
        sim.setTraceContext(&trace_ctx);

    sim.run(_cancel);

    RunOutput out;
    if (counting) {
        sim.exportCounters(out.counters);
        trace_ctx.exportEventCounts(out.counters);
    }
    if (tracing) {
        if (!trace_writer.close()) {
            throw std::runtime_error("trace: " + trace_writer.error());
        }
        out.counters.set("trace", "events", trace_writer.eventCount());
        out.counters.set("trace", "bytes_fnv64", trace_writer.digest());
    }
    out.workload = spec.name;
    out.prefetcher = prefetcher_name;
    out.ipc = sim.ipc();
    out.baselineIpc = base.ipc;
    out.instructions = sim.instructions();

    const MemStats &mem = sim.mem().stats();
    out.prefetchesIssued = mem.prefetchesIssued();
    out.l1ShadowMisses = mem.level[kL1].shadowMisses;
    out.l1Misses = mem.level[kL1].primaryMisses;
    out.baselineMpkiL1 = base.mpkiL1;

    const auto avoided = [](std::uint64_t shadow, std::uint64_t real) {
        return shadow > real
                   ? static_cast<double>(shadow - real)
                   : -static_cast<double>(real - shadow);
    };
    const double avoided_l1 =
        avoided(mem.level[kL1].shadowMisses,
                mem.level[kL1].primaryMisses);
    const double avoided_l2 =
        avoided(mem.level[kL2].shadowMisses,
                mem.level[kL2].primaryMisses);

    out.effAccuracyL1 =
        out.prefetchesIssued
            ? avoided_l1 / static_cast<double>(out.prefetchesIssued)
            : 0.0;
    out.effAccuracyL2 =
        out.prefetchesIssued
            ? avoided_l2 / static_cast<double>(out.prefetchesIssued)
            : 0.0;
    out.effCoverageL1 =
        mem.level[kL1].shadowMisses
            ? avoided_l1 /
                  static_cast<double>(mem.level[kL1].shadowMisses)
            : 0.0;
    out.effCoverageL2 =
        mem.level[kL2].shadowMisses
            ? avoided_l2 /
                  static_cast<double>(mem.level[kL2].shadowMisses)
            : 0.0;

    const std::uint64_t baseline_lines =
        sim.mem().shared().baselineDramLines();
    out.trafficNormalized =
        baseline_lines
            ? static_cast<double>(sim.mem().dramLines()) /
                  static_cast<double>(baseline_lines)
            : 1.0;

    const PrefetchAccounting &acct = sim.accounting();
    out.scope = acct.scope();
    for (unsigned f = 0; f < kNumFruit; ++f) {
        out.categories[f] = acct.category(static_cast<Fruit>(f));
        out.categoryScope[f] =
            acct.scopeInCategory(static_cast<Fruit>(f));
    }
    out.focus = acct.focus();
    out.focusScope = acct.focusScope();

    // Per-component outputs.
    const auto &names = sim.componentNames();
    for (unsigned id = 1; id < kMaxComponents; ++id) {
        if (names[id].empty())
            continue;
        RunOutput::ComponentOutput comp;
        comp.name = names[id];
        comp.issued = mem.comp[id].issued;
        comp.used = mem.comp[id].used;
        comp.inducedCredit = mem.comp[id].inducedCredit;
        comp.scope = acct.scopeOf(static_cast<ComponentId>(id));
        out.components.push_back(std::move(comp));
    }

    out.pfp = sim.accounting().takePfp();
    return out;
}

SimConfig
makeBenchConfig(std::uint64_t max_instrs)
{
    SimConfig config;
    config.maxInstrs = max_instrs;
    if (const char *quick = std::getenv("DOL_QUICK");
        quick && quick[0] == '1') {
        config.maxInstrs = std::min<std::uint64_t>(max_instrs, 60000);
    }
    return config;
}

} // namespace dol
