/**
 * @file
 * Single-core simulation driver: wires a workload kernel, the timing
 * core, the memory hierarchy, one prefetcher, and the metrics
 * listeners together, and runs the instruction budget.
 *
 * Prefetch fill events are queued and drained between instructions
 * (never delivered re-entrantly), so a component chaining prefetches
 * off fills (P1) observes the same ordering the hardware would.
 *
 * The run loop is batched (PR 9): decode drains the kernel's
 * already-generated queue in blocks of up to kBatchInstrs into a flat
 * buffer, then executes the block instruction by instruction. Kernel
 * generation still happens exactly when the queue is empty — never
 * ahead of execution — and fills still drain after every instruction,
 * so the observable event order is identical to the one-at-a-time
 * loop (setReferenceLoop() keeps that loop alive for A/B tests).
 */

#ifndef DOL_SIM_SIMULATOR_HPP
#define DOL_SIM_SIMULATOR_HPP

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/ring_buffer.hpp"
#include "cpu/core.hpp"
#include "mem/memory_system.hpp"
#include "metrics/accounting.hpp"
#include "prefetch/prefetcher.hpp"
#include "workloads/kernel.hpp"

namespace dol
{

struct SimConfig
{
    CoreParams core{};
    MemParams mem{};
    std::uint64_t maxInstrs = 400000;
};

class Simulator
{
  public:
    /**
     * @param kernel     workload (borrowed; must outlive the sim)
     * @param prefetcher optional prefetcher (borrowed)
     * @param shared     shared L3/DRAM for multicore; nullptr builds
     *                   a private one
     */
    Simulator(const SimConfig &config, Kernel &kernel,
              Prefetcher *prefetcher,
              std::shared_ptr<SharedMemory> shared = nullptr);

    /** Attach the ground-truth classifier to the accounting. */
    void
    setStratifier(const OfflineStratifier *stratifier)
    {
        _accounting.setStratifier(stratifier);
    }

    PrefetchAccounting &accounting() { return _accounting; }
    PrefetchEmitter &emitter() { return _emitter; }

    /**
     * Run until the instruction budget is exhausted. A cancel token
     * (borrowed; may be null) is polled every few thousand
     * instructions: once it reports cancelled, run() throws
     * CancelledError, leaving the sim in a consistent but incomplete
     * state. This is the cooperative cancellation point the runner's
     * per-cell timeout relies on.
     */
    void run(const CancelToken *cancel = nullptr);

    /** Execute one instruction; false when the kernel is done. */
    bool step();

    /**
     * Execute up to @p max instructions from one decoded batch.
     * The batch never spans a kernel generate() call (see
     * Kernel::nextBatch), so event ordering matches step() exactly.
     *
     * @return instructions executed; 0 when the kernel is done.
     */
    std::size_t stepBlock(std::size_t max);

    /**
     * Test hook: make run() use the legacy one-instruction-at-a-time
     * loop instead of the batched pipeline (A/B equivalence tests).
     */
    void setReferenceLoop(bool reference) { _referenceLoop = reference; }

    const Core &core() const { return _core; }
    MemorySystem &mem() { return _mem; }
    const MemorySystem &mem() const { return _mem; }
    std::uint64_t instructions() const { return _instrs; }

    double
    ipc() const
    {
        const Cycle cycles = _core.stats().cycles;
        return cycles ? static_cast<double>(_instrs) / cycles : 0.0;
    }

    /** Interleaving key for the multicore driver. */
    Cycle currentCycle() const { return _core.finalCycle(); }

    /** Names of the allocated component ids (id -> name). */
    const std::vector<std::string> &componentNames() const
    {
        return _componentNames;
    }

    /**
     * Attach the observability event bus to every instrumented layer
     * (core, memory hierarchy, prefetcher tree). nullptr detaches.
     */
    void setTraceContext(TraceContext *trace);

    /**
     * Observe every demand access exactly as the prefetcher saw it,
     * immediately after the prefetcher trained on it and before the
     * queued prefetch fills drain. The differential checker
     * (src/check/) feeds this stream to its reference models and
     * compares post-train production state per access; the default
     * (empty) observer costs one branch per memory access.
     */
    using AccessObserver = std::function<void(const AccessInfo &)>;
    void setAccessObserver(AccessObserver observer)
    {
        _accessObserver = std::move(observer);
    }

    /**
     * Harvest end-of-run counters from every layer into @p registry:
     * component decision counters, per-level cache stats, per-component
     * prefetch outcomes (named), and core totals.
     */
    void exportCounters(CounterRegistry &registry) const;

    /**
     * Harvest perf-observability counters (fill-queue high-water mark,
     * resident page count). Kept out of exportCounters() because the
     * golden-trace snapshots freeze that counter set; the throughput
     * bench harvests these on top.
     */
    void exportPerfCounters(CounterRegistry &registry) const;

  private:
    struct FillEvent
    {
        ComponentId comp;
        Addr line;
        Cycle completion;
    };

    /** Queues fill events for post-instruction delivery. */
    class FillQueue : public MemListener
    {
      public:
        explicit FillQueue(RingBuffer<FillEvent> &queue)
            : _queue(&queue)
        {}

        void
        prefetchFill(ComponentId comp, Addr line,
                     Cycle completion) override
        {
            _queue->push_back({comp, line, completion});
        }

      private:
        RingBuffer<FillEvent> *_queue;
    };

    /** Instructions decoded per batch: big enough to amortise the
     *  loop overhead, small enough that a batch of Instr (32 B each)
     *  stays resident in L1 while it executes. */
    static constexpr std::size_t kBatchInstrs = 256;

    void drainFills();

    /** Execute one already-decoded instruction (the step() body). */
    void stepOne(const Instr &instr);

    SimConfig _config;
    Kernel *_kernel;
    Prefetcher *_prefetcher;

    MemorySystem _mem;
    Core _core;
    PrefetchEmitter _emitter;

    PrefetchAccounting _accounting;
    RingBuffer<FillEvent> _fills;
    FillQueue _fillQueue;
    ListenerChain _listeners;

    std::vector<std::string> _componentNames;
    AccessObserver _accessObserver;
    std::uint64_t _instrs = 0;
    bool _referenceLoop = false;
    /** Decode buffer for the batched pipeline. */
    std::array<Instr, kBatchInstrs> _batch;
};

} // namespace dol

#endif // DOL_SIM_SIMULATOR_HPP
