#include "sim/simulator.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "trace/context.hpp"
#include "trace/counters.hpp"

namespace dol
{

Simulator::Simulator(const SimConfig &config, Kernel &kernel,
                     Prefetcher *prefetcher,
                     std::shared_ptr<SharedMemory> shared)
    : _config(config), _kernel(&kernel), _prefetcher(prefetcher),
      _mem(config.mem, std::move(shared)), _core(config.core),
      _emitter(_mem), _fillQueue(_fills)
{
    _componentNames.resize(kMaxComponents);
    _componentNames[kNoComponent] = "none";
    if (_prefetcher) {
        ComponentId next = 1;
        _prefetcher->assignIds([&](const std::string &name) {
            if (next >= kMaxComponents)
                fatal("too many prefetcher components");
            _componentNames[next] = name;
            return next++;
        });
    }

    _listeners.add(&_accounting);
    _listeners.add(&_fillQueue);
    _mem.setListener(&_listeners);
}

void
Simulator::drainFills()
{
    while (!_fills.empty()) {
        const FillEvent event = _fills.front();
        _fills.pop_front();
        _emitter.setContext(_prefetcher->id(), event.completion);
        _prefetcher->onFill(event.comp, event.line, event.completion,
                            _emitter);
    }
}

void
Simulator::stepOne(const Instr &instr)
{
    // mPC uses the RAS as of *before* this instruction's own effect.
    const Pc m_pc = instr.pc ^ _core.ras().top();

    const RetireInfo retire = _core.step(instr, _mem);

    if (_prefetcher) {
        _emitter.setContext(_prefetcher->id(), retire.issue);
        _prefetcher->onInstr(instr, retire, m_pc, _emitter);

        if (instr.isMem()) {
            AccessInfo access;
            access.pc = instr.pc;
            access.mPc = m_pc;
            access.addr = instr.addr;
            access.isLoad = instr.isLoad();
            access.l1Hit = retire.mem.l1Hit;
            access.l1PrimaryMiss = retire.mem.l1PrimaryMiss;
            access.l1HitPrefetched = retire.mem.l1HitPrefetched;
            access.l1HitComp = retire.mem.l1HitComp;
            access.l2Hit = retire.mem.l2Hit;
            access.l3Hit = retire.mem.l3Hit;
            access.value = instr.value;
            access.when = retire.issue;
            access.completion = retire.mem.completion;

            _emitter.setContext(_prefetcher->id(), retire.issue);
            _prefetcher->train(access, _emitter);
            if (_accessObserver)
                _accessObserver(access);
        }
        // Fills drain after *every* instruction, batched loop or not:
        // deferring to a batch boundary would let P1's chained
        // prefetches observe later training events than the hardware
        // ordering allows (DESIGN.md, batched pipeline note).
        if (!_fills.empty())
            drainFills();
    }

    ++_instrs;
}

bool
Simulator::step()
{
    Instr instr;
    if (!_kernel->next(instr))
        return false;
    stepOne(instr);
    return true;
}

std::size_t
Simulator::stepBlock(std::size_t max)
{
    const std::size_t want = std::min(max, kBatchInstrs);
    const std::size_t got = _kernel->nextBatch(_batch.data(), want);
    for (std::size_t i = 0; i < got; ++i)
        stepOne(_batch[i]);
    return got;
}

void
Simulator::run(const CancelToken *cancel)
{
    if (_referenceLoop) {
        // Legacy one-at-a-time loop, kept for A/B equivalence tests.
        while (_instrs < _config.maxInstrs && step()) {
            // Poll coarsely: a deadline check costs a clock read, so
            // do it once per 4096 instructions, not per step.
            if (cancel && (_instrs & 0xFFF) == 0 && cancel->cancelled())
                throw CancelledError("simulation cancelled after " +
                                     std::to_string(_instrs) +
                                     " instructions");
        }
        return;
    }

    while (_instrs < _config.maxInstrs) {
        const std::uint64_t budget = _config.maxInstrs - _instrs;
        const std::size_t got = stepBlock(static_cast<std::size_t>(
            std::min<std::uint64_t>(budget, kBatchInstrs)));
        if (got == 0)
            break;
        // Same ~4096-instruction poll coarseness as the reference
        // loop: poll at the first batch boundary past each multiple.
        if (cancel && (_instrs & ~std::uint64_t{0xFFF}) !=
                          ((_instrs - got) & ~std::uint64_t{0xFFF}) &&
            cancel->cancelled()) {
            throw CancelledError("simulation cancelled after " +
                                 std::to_string(_instrs) +
                                 " instructions");
        }
    }
}

void
Simulator::setTraceContext(TraceContext *trace)
{
    _mem.setTraceContext(trace);
    _core.setTraceContext(trace);
    if (_prefetcher)
        _prefetcher->setTraceContext(trace);
}

void
Simulator::exportCounters(CounterRegistry &registry) const
{
    if (_prefetcher)
        _prefetcher->exportCounters(registry);
    _mem.exportCounters(registry);

    const CoreStats &cs = _core.stats();
    registry.set("core", "instructions", _instrs);
    registry.set("core", "loads", cs.loads);
    registry.set("core", "stores", cs.stores);
    registry.set("core", "branches", cs.branches);
    registry.set("core", "mispredicts", cs.mispredicts);
    registry.set("core", "cycles", _core.finalCycle());

    // Per-component prefetch outcomes, under "pf.<component name>".
    const MemStats &ms = _mem.stats();
    for (ComponentId comp = 1; comp < kMaxComponents; ++comp) {
        const ComponentStats &stats = ms.comp[comp];
        if (stats.issued == 0 && stats.filtered == 0 &&
            stats.droppedMshr == 0 && stats.droppedQueue == 0) {
            continue;
        }
        const std::string scope = "pf." + _componentNames[comp];
        registry.set(scope, "issued", stats.issued);
        registry.set(scope, "filled", stats.filled);
        registry.set(scope, "used", stats.used);
        registry.set(scope, "filtered", stats.filtered);
        registry.set(scope, "dropped_mshr", stats.droppedMshr);
        registry.set(scope, "dropped_queue", stats.droppedQueue);
    }
}

void
Simulator::exportPerfCounters(CounterRegistry &registry) const
{
    registry.set("sim", "fill_queue_hwm", _fills.highWaterMark());
    registry.set("sim", "fill_queue_capacity", _fills.capacity());
}

} // namespace dol
