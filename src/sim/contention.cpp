#include "sim/contention.hpp"

#include <numeric>

#include "core/registry.hpp"

namespace dol
{

namespace
{

/** Milli-scaled registry encoding of a non-negative fraction. */
std::uint64_t
toMilli(double value)
{
    return value > 0.0
               ? static_cast<std::uint64_t>(value * 1000.0 + 0.5)
               : 0;
}

/**
 * One core's workload alone on the machine, with the L3 scaled to
 * the mix's core count so solo and mix runs see the same capacity —
 * the slowdown then isolates contention, not cache size.
 */
double
runSolo(const SimConfig &config, const CoreSpec &spec,
        unsigned num_cores)
{
    const WorkloadSpec &workload = findWorkload(spec.workload);
    MemoryImage image;
    auto kernel = workload.factory(image);
    auto prefetcher = spec.prefetcher.empty()
                          ? nullptr
                          : makePrefetcher(spec.prefetcher, &image);

    SimConfig solo = config;
    if (spec.maxInstrs)
        solo.maxInstrs = spec.maxInstrs;
    auto shared = std::make_shared<SharedMemory>(solo.mem, num_cores);
    Simulator sim(solo, *kernel, prefetcher.get(), shared);
    sim.run();
    return sim.ipc();
}

} // namespace

ContentionOutcome
runContentionScenario(const SimConfig &config, const ContentionMix &mix)
{
    ContentionOutcome outcome;
    outcome.mixName = mix.name;

    const unsigned num_cores =
        static_cast<unsigned>(mix.cores.size());
    for (const CoreSpec &spec : mix.cores)
        outcome.soloIpc.push_back(runSolo(config, spec, num_cores));

    MulticoreSimulator mc(config, mix.cores);
    outcome.result = mc.run();
    outcome.fairness =
        computeFairness(outcome.soloIpc, outcome.result.ipc);

    mc.exportCounters(outcome.counters);
    for (std::size_t i = 0; i < mix.cores.size(); ++i) {
        const std::string scope = "core" + std::to_string(i);
        outcome.counters.set(scope, "ipc_milli",
                             toMilli(outcome.result.ipc[i]));
        outcome.counters.set(scope, "solo_ipc_milli",
                             toMilli(outcome.soloIpc[i]));
        outcome.counters.set(scope, "slowdown_milli",
                             toMilli(outcome.fairness.slowdown[i]));
    }
    outcome.counters.set("fairness", "weighted_speedup_milli",
                         toMilli(outcome.fairness.weightedSpeedup));
    outcome.counters.set("fairness", "harmonic_speedup_milli",
                         toMilli(outcome.fairness.harmonicSpeedup));
    outcome.counters.set("fairness", "unfairness_milli",
                         toMilli(outcome.fairness.unfairness));
    outcome.counters.set(
        "fairness", "arbitration",
        static_cast<std::uint64_t>(config.mem.dram.arbitration));
    return outcome;
}

RunOutput
contentionRunOutput(const ContentionOutcome &outcome,
                    const ContentionMix &mix)
{
    RunOutput out;
    out.workload = "mix:" + mix.name;
    out.prefetcher = mixPrefetcherLabel(mix);
    out.ipc = std::accumulate(outcome.result.ipc.begin(),
                              outcome.result.ipc.end(), 0.0);
    out.baselineIpc = std::accumulate(outcome.soloIpc.begin(),
                                      outcome.soloIpc.end(), 0.0);
    out.instructions =
        std::accumulate(outcome.result.instructions.begin(),
                        outcome.result.instructions.end(),
                        std::uint64_t{0});
    out.counters = outcome.counters;
    return out;
}

} // namespace dol
