/**
 * @file
 * Contention scenario driver: runs a named heterogeneous mix, runs
 * each core's workload solo against an equally sized L3 (the fairness
 * literature's baseline), and derives slowdown / weighted speedup /
 * harmonic speedup / unfairness. Everything lands in one counter
 * registry — per-core scopes plus shared-channel scopes — so a
 * scenario folds into dol-sweep-v1 JSON and golden snapshots through
 * the existing machinery. Fractional metrics are exported as
 * milli-scaled integers (value × 1000, rounded) because the registry
 * is uint64-only.
 */

#ifndef DOL_SIM_CONTENTION_HPP
#define DOL_SIM_CONTENTION_HPP

#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/multicore.hpp"
#include "trace/counters.hpp"
#include "workloads/contention.hpp"

namespace dol
{

/** Everything a contention scenario run produces. */
struct ContentionOutcome
{
    std::string mixName;
    MulticoreResult result;
    /** Per-core solo IPC (same L3 capacity as the mix run). */
    std::vector<double> soloIpc;
    FairnessMetrics fairness;
    /** Merged per-core + shared + fairness counter snapshot. */
    CounterRegistry counters;
};

/**
 * Run @p mix under @p config: solo baseline per core, then the
 * contended mix, then fairness metrics over the two.
 */
ContentionOutcome runContentionScenario(const SimConfig &config,
                                        const ContentionMix &mix);

/**
 * Fold a scenario outcome into a sweep row: workload "mix:<name>",
 * prefetcher = per-core names joined with '|', ipc = mix IPC sum,
 * baselineIpc = solo IPC sum, counters = the merged snapshot.
 */
RunOutput contentionRunOutput(const ContentionOutcome &outcome,
                              const ContentionMix &mix);

} // namespace dol

#endif // DOL_SIM_CONTENTION_HPP
