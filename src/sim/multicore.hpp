/**
 * @file
 * Multiprogrammed simulation (paper section V-A): private L1/L2 and
 * per-core prefetchers over a shared L3 and DRAM channel. Cores are
 * interleaved in simulated-time order so they contend for the shared
 * levels realistically.
 *
 * Cores are heterogeneous: each CoreSpec names its own workload,
 * prefetcher and instruction budget, so a mix can pit an enlarged
 * composite against a bare pointer-chase prefetcher. Shared-resource
 * attribution (per-core DRAM lines, L3 insertions, evictions of
 * other cores' lines) and the fairness metrics built on solo
 * baselines live here too.
 */

#ifndef DOL_SIM_MULTICORE_HPP
#define DOL_SIM_MULTICORE_HPP

#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "workloads/contention.hpp"
#include "workloads/suite.hpp"

namespace dol
{

struct MulticoreResult
{
    std::vector<double> ipc; ///< per-core IPC, in mix
    std::vector<std::uint64_t> instructions; ///< per-core retired
    /** Per-core shared-resource attribution, index = core. */
    std::vector<std::uint64_t> coreDramLines;
    std::vector<std::uint64_t> corePrefetchLines;
    std::vector<std::uint64_t> coreL3Insertions;
    std::vector<std::uint64_t> coreL3EvictionsOfOthers;
    std::vector<std::uint64_t> coreL3MshrStalls;
    std::uint64_t dramLines = 0;
    std::uint64_t baselineDramLines = 0;
    std::uint64_t droppedPrefetches = 0;
    /** Shared-channel arbitration/bandwidth pressure (DramStats). */
    std::uint64_t arbDelayCycles = 0;
    std::uint64_t demandsDelayedByPrefetch = 0;
    std::uint64_t windowDeferrals = 0;

    /**
     * Weighted speedup against a baseline mix run: mean of per-core
     * IPC ratios over the cores comparable in both runs (same index,
     * baseline IPC > 0). Returns 0.0 when no core is comparable —
     * an explicit "no data" sentinel rather than a fake parity of
     * 1.0 — so degenerate inputs (empty vectors, all-zero baseline,
     * disjoint lengths) cannot masquerade as a neutral result.
     */
    double
    weightedSpeedup(const MulticoreResult &baseline) const
    {
        double sum = 0.0;
        unsigned n = 0;
        for (std::size_t i = 0;
             i < ipc.size() && i < baseline.ipc.size(); ++i) {
            if (baseline.ipc[i] > 0.0) {
                sum += ipc[i] / baseline.ipc[i];
                ++n;
            }
        }
        return n ? sum / n : 0.0;
    }
};

/**
 * Fairness metrics over a mix run and its solo baselines
 * (slowdown_i = soloIpc_i / mixIpc_i, the classic definition).
 * Cores with zero solo or mix IPC are excluded; all aggregate
 * metrics are 0.0 when no core qualifies.
 */
struct FairnessMetrics
{
    std::vector<double> slowdown; ///< per core; 0.0 = not comparable
    double weightedSpeedup = 0.0; ///< mean of mix/solo ratios
    double harmonicSpeedup = 0.0; ///< n / sum(solo/mix)
    double unfairness = 0.0;      ///< max slowdown / min slowdown
};

/** Compute fairness metrics from solo and mix per-core IPC. */
FairnessMetrics computeFairness(const std::vector<double> &solo_ipc,
                                const std::vector<double> &mix_ipc);

class MulticoreSimulator
{
  public:
    /**
     * Heterogeneous mix: one CoreSpec per core, each naming its own
     * workload, prefetcher, and optional instruction budget.
     */
    MulticoreSimulator(const SimConfig &config,
                       const std::vector<CoreSpec> &specs);

    /**
     * Homogeneous legacy form: one workload per core, every core
     * running the same prefetcher configuration.
     *
     * @param prefetcher_name registry name; empty = no prefetching
     */
    MulticoreSimulator(const SimConfig &config,
                       const std::vector<WorkloadSpec> &mix,
                       const std::string &prefetcher_name);

    /** Run every core to its instruction budget. */
    MulticoreResult run();

    std::size_t numCores() const { return _cores.size(); }
    Simulator &core(std::size_t i) { return *_cores[i]; }
    const Simulator &core(std::size_t i) const { return *_cores[i]; }
    SharedMemory &shared() { return *_shared; }

    /**
     * Harvest every core's counters under a "coreN." scope prefix
     * plus the shared-channel and per-core attribution scopes. The
     * merged registry serializes byte-identically across runs, the
     * property the golden cell and differential fuzzer pin down.
     */
    void exportCounters(CounterRegistry &registry) const;

  private:
    void addCore(const CoreSpec &spec);

    SimConfig _config;
    std::shared_ptr<SharedMemory> _shared;
    std::vector<std::unique_ptr<MemoryImage>> _images;
    std::vector<std::unique_ptr<Kernel>> _kernels;
    std::vector<std::unique_ptr<Prefetcher>> _prefetchers;
    std::vector<std::unique_ptr<Simulator>> _cores;
    std::vector<std::uint64_t> _budgets;
};

} // namespace dol

#endif // DOL_SIM_MULTICORE_HPP
