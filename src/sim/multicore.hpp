/**
 * @file
 * Four-core multiprogrammed simulation (paper section V-A): private
 * L1/L2 and per-core prefetchers over a shared L3 and DRAM channel.
 * Cores are interleaved in simulated-time order so they contend for
 * the shared levels realistically.
 */

#ifndef DOL_SIM_MULTICORE_HPP
#define DOL_SIM_MULTICORE_HPP

#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "workloads/suite.hpp"

namespace dol
{

struct MulticoreResult
{
    std::vector<double> ipc; ///< per-core IPC, in mix
    std::uint64_t dramLines = 0;
    std::uint64_t baselineDramLines = 0;
    std::uint64_t droppedPrefetches = 0;

    /**
     * Weighted speedup against a baseline mix run: mean of per-core
     * IPC ratios.
     */
    double
    weightedSpeedup(const MulticoreResult &baseline) const
    {
        double sum = 0.0;
        unsigned n = 0;
        for (std::size_t i = 0;
             i < ipc.size() && i < baseline.ipc.size(); ++i) {
            if (baseline.ipc[i] > 0.0) {
                sum += ipc[i] / baseline.ipc[i];
                ++n;
            }
        }
        return n ? sum / n : 1.0;
    }
};

class MulticoreSimulator
{
  public:
    /**
     * @param mix             one workload per core
     * @param prefetcher_name registry name; empty = no prefetching
     */
    MulticoreSimulator(const SimConfig &config,
                       const std::vector<WorkloadSpec> &mix,
                       const std::string &prefetcher_name);

    /** Run every core to the per-core instruction budget. */
    MulticoreResult run();

  private:
    SimConfig _config;
    std::shared_ptr<SharedMemory> _shared;
    std::vector<std::unique_ptr<MemoryImage>> _images;
    std::vector<std::unique_ptr<Kernel>> _kernels;
    std::vector<std::unique_ptr<Prefetcher>> _prefetchers;
    std::vector<std::unique_ptr<Simulator>> _cores;
};

} // namespace dol

#endif // DOL_SIM_MULTICORE_HPP
