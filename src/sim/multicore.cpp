#include "sim/multicore.hpp"

#include "core/registry.hpp"

namespace dol
{

MulticoreSimulator::MulticoreSimulator(
    const SimConfig &config, const std::vector<WorkloadSpec> &mix,
    const std::string &prefetcher_name)
    : _config(config),
      _shared(std::make_shared<SharedMemory>(
          config.mem, static_cast<unsigned>(mix.size())))
{
    for (const WorkloadSpec &spec : mix) {
        auto image = std::make_unique<MemoryImage>();
        auto kernel = spec.factory(*image);

        Prefetcher *prefetcher = nullptr;
        if (!prefetcher_name.empty()) {
            _prefetchers.push_back(
                makePrefetcher(prefetcher_name, image.get()));
            prefetcher = _prefetchers.back().get();
        }

        _cores.push_back(std::make_unique<Simulator>(
            _config, *kernel, prefetcher, _shared));
        _images.push_back(std::move(image));
        _kernels.push_back(std::move(kernel));
    }
}

MulticoreResult
MulticoreSimulator::run()
{
    // Advance the core that is furthest behind in simulated time, so
    // requests reach the shared levels in roughly global time order.
    std::vector<bool> active(_cores.size(), true);
    bool any_active = true;
    while (any_active) {
        std::size_t next = _cores.size();
        Cycle best = kNoCycle;
        for (std::size_t i = 0; i < _cores.size(); ++i) {
            if (!active[i])
                continue;
            const Cycle cycle = _cores[i]->currentCycle();
            if (next == _cores.size() || cycle < best) {
                next = i;
                best = cycle;
            }
        }
        if (next == _cores.size())
            break;

        // A small quantum keeps scheduling overhead low.
        for (unsigned q = 0; q < 64; ++q) {
            if (_cores[next]->instructions() >= _config.maxInstrs ||
                !_cores[next]->step()) {
                active[next] = false;
                break;
            }
        }

        any_active = false;
        for (std::size_t i = 0; i < _cores.size(); ++i)
            any_active = any_active || active[i];
    }

    MulticoreResult result;
    for (const auto &core : _cores)
        result.ipc.push_back(core->ipc());
    result.dramLines = _shared->dram().linesTransferred();
    result.baselineDramLines = _shared->baselineDramLines();
    result.droppedPrefetches = _shared->dram().stats().droppedPrefetches;
    return result;
}

} // namespace dol
