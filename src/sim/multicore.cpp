#include "sim/multicore.hpp"

#include <algorithm>

#include "core/registry.hpp"
#include "trace/counters.hpp"

namespace dol
{

FairnessMetrics
computeFairness(const std::vector<double> &solo_ipc,
                const std::vector<double> &mix_ipc)
{
    FairnessMetrics out;
    const std::size_t n = std::min(solo_ipc.size(), mix_ipc.size());
    out.slowdown.assign(std::max(solo_ipc.size(), mix_ipc.size()), 0.0);

    double speedup_sum = 0.0;
    double slowdown_sum = 0.0;
    double min_slowdown = 0.0;
    double max_slowdown = 0.0;
    unsigned valid = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (solo_ipc[i] <= 0.0 || mix_ipc[i] <= 0.0)
            continue;
        const double slowdown = solo_ipc[i] / mix_ipc[i];
        out.slowdown[i] = slowdown;
        speedup_sum += mix_ipc[i] / solo_ipc[i];
        slowdown_sum += slowdown;
        if (valid == 0 || slowdown < min_slowdown)
            min_slowdown = slowdown;
        if (valid == 0 || slowdown > max_slowdown)
            max_slowdown = slowdown;
        ++valid;
    }
    if (valid == 0)
        return out;
    out.weightedSpeedup = speedup_sum / valid;
    out.harmonicSpeedup =
        slowdown_sum > 0.0 ? valid / slowdown_sum : 0.0;
    out.unfairness =
        min_slowdown > 0.0 ? max_slowdown / min_slowdown : 0.0;
    return out;
}

MulticoreSimulator::MulticoreSimulator(
    const SimConfig &config, const std::vector<CoreSpec> &specs)
    : _config(config),
      _shared(std::make_shared<SharedMemory>(
          config.mem, static_cast<unsigned>(specs.size())))
{
    for (const CoreSpec &spec : specs)
        addCore(spec);
}

MulticoreSimulator::MulticoreSimulator(
    const SimConfig &config, const std::vector<WorkloadSpec> &mix,
    const std::string &prefetcher_name)
    : _config(config),
      _shared(std::make_shared<SharedMemory>(
          config.mem, static_cast<unsigned>(mix.size())))
{
    // Homogeneous form: resolve the factories directly (the specs may
    // come from makeMixes rather than the name registry).
    for (const WorkloadSpec &spec : mix) {
        auto image = std::make_unique<MemoryImage>();
        auto kernel = spec.factory(*image);

        Prefetcher *prefetcher = nullptr;
        if (!prefetcher_name.empty()) {
            _prefetchers.push_back(
                makePrefetcher(prefetcher_name, image.get()));
            prefetcher = _prefetchers.back().get();
        }

        _cores.push_back(std::make_unique<Simulator>(
            _config, *kernel, prefetcher, _shared));
        _cores.back()->mem().setCoreId(
            static_cast<unsigned>(_cores.size() - 1));
        _budgets.push_back(_config.maxInstrs);
        _images.push_back(std::move(image));
        _kernels.push_back(std::move(kernel));
    }
}

void
MulticoreSimulator::addCore(const CoreSpec &spec)
{
    const WorkloadSpec &workload = findWorkload(spec.workload);
    auto image = std::make_unique<MemoryImage>();
    auto kernel = workload.factory(*image);

    Prefetcher *prefetcher = nullptr;
    if (!spec.prefetcher.empty()) {
        _prefetchers.push_back(
            makePrefetcher(spec.prefetcher, image.get()));
        prefetcher = _prefetchers.back().get();
    }

    _cores.push_back(std::make_unique<Simulator>(_config, *kernel,
                                                 prefetcher, _shared));
    _cores.back()->mem().setCoreId(
        static_cast<unsigned>(_cores.size() - 1));
    _budgets.push_back(spec.maxInstrs ? spec.maxInstrs
                                      : _config.maxInstrs);
    _images.push_back(std::move(image));
    _kernels.push_back(std::move(kernel));
}

MulticoreResult
MulticoreSimulator::run()
{
    // Advance the core that is furthest behind in simulated time, so
    // requests reach the shared levels in roughly global time order.
    std::vector<bool> active(_cores.size(), true);
    bool any_active = !_cores.empty();
    while (any_active) {
        std::size_t next = _cores.size();
        Cycle best = kNoCycle;
        for (std::size_t i = 0; i < _cores.size(); ++i) {
            if (!active[i])
                continue;
            const Cycle cycle = _cores[i]->currentCycle();
            if (next == _cores.size() || cycle < best) {
                next = i;
                best = cycle;
            }
        }
        if (next == _cores.size())
            break;

        // A small quantum keeps scheduling overhead low. The quantum
        // runs through the batched pipeline but still executes exactly
        // the same up-to-64 instructions a per-step loop would, so the
        // cross-core interleaving (and every contention stat derived
        // from it) is unchanged.
        std::uint64_t left =
            _cores[next]->instructions() >= _budgets[next]
                ? 0
                : std::min<std::uint64_t>(
                      64, _budgets[next] - _cores[next]->instructions());
        if (left == 0)
            active[next] = false;
        while (left > 0) {
            const std::size_t got = _cores[next]->stepBlock(
                static_cast<std::size_t>(left));
            if (got == 0) {
                active[next] = false;
                break;
            }
            left -= got;
        }
        if (_cores[next]->instructions() >= _budgets[next])
            active[next] = false;

        any_active = false;
        for (std::size_t i = 0; i < _cores.size(); ++i)
            any_active = any_active || active[i];
    }

    MulticoreResult result;
    for (std::size_t i = 0; i < _cores.size(); ++i) {
        const unsigned core_id = static_cast<unsigned>(i);
        result.ipc.push_back(_cores[i]->ipc());
        result.instructions.push_back(_cores[i]->instructions());
        result.coreDramLines.push_back(
            _shared->dram().coreLines(core_id));
        result.corePrefetchLines.push_back(
            _shared->dram().corePrefetchLines(core_id));
        const CoreShareStats &share = _shared->coreShare(core_id);
        result.coreL3Insertions.push_back(share.l3Insertions);
        result.coreL3EvictionsOfOthers.push_back(
            share.l3EvictionsOfOthers);
        result.coreL3MshrStalls.push_back(
            _cores[i]->mem().stats().level[kL3].mshrStalls);
    }
    const DramStats &dram = _shared->dram().stats();
    result.dramLines = _shared->dram().linesTransferred();
    result.baselineDramLines = _shared->baselineDramLines();
    result.droppedPrefetches = dram.droppedPrefetches;
    result.arbDelayCycles = dram.arbDelayCycles;
    result.demandsDelayedByPrefetch = dram.demandsDelayedByPrefetch;
    result.windowDeferrals = dram.windowDeferrals;
    return result;
}

void
MulticoreSimulator::exportCounters(CounterRegistry &registry) const
{
    for (std::size_t i = 0; i < _cores.size(); ++i) {
        const std::string prefix = "core" + std::to_string(i);

        CounterRegistry per_core;
        _cores[i]->exportCounters(per_core);
        for (const auto &[scope, name, value] : per_core.entries())
            registry.set(prefix + "." + scope, name, value);

        const unsigned core_id = static_cast<unsigned>(i);
        const CoreShareStats &share = _shared->coreShare(core_id);
        registry.set(prefix, "dram_lines",
                     _shared->dram().coreLines(core_id));
        registry.set(prefix, "prefetch_dram_lines",
                     _shared->dram().corePrefetchLines(core_id));
        registry.set(prefix, "l3_insertions", share.l3Insertions);
        registry.set(prefix, "l3_evictions_of_others",
                     share.l3EvictionsOfOthers);
        registry.set(prefix, "l3_mshr_stalls",
                     _cores[i]->mem().stats().level[kL3].mshrStalls);
        registry.set(prefix, "instructions",
                     _cores[i]->instructions());
    }

    const DramStats &dram = _shared->dram().stats();
    registry.set("dram", "lines", _shared->dram().linesTransferred());
    registry.set("dram", "reads", dram.reads);
    registry.set("dram", "writes", dram.writes);
    registry.set("dram", "row_hits", dram.rowHits);
    registry.set("dram", "row_misses", dram.rowMisses);
    registry.set("dram", "dropped_prefetches", dram.droppedPrefetches);
    registry.set("dram", "queue_full_demand_stalls",
                 dram.queueFullDemandStalls);
    registry.set("dram", "arb_delay_cycles", dram.arbDelayCycles);
    registry.set("dram", "arb_delayed_requests",
                 dram.arbDelayedRequests);
    registry.set("dram", "demands_delayed_by_prefetch",
                 dram.demandsDelayedByPrefetch);
    registry.set("dram", "window_deferrals", dram.windowDeferrals);
    registry.set("dram", "bandwidth_stall_cycles",
                 dram.bandwidthStallCycles);
    registry.set("dram", "baseline_lines",
                 _shared->baselineDramLines());
}

} // namespace dol
