#include "trace/counters.hpp"

namespace dol
{

CounterRegistry::Handle
CounterRegistry::handle(std::string_view scope, std::string_view name)
{
    const auto probe = std::make_pair(scope, name);
    auto it = _index.lower_bound(probe);
    if (it != _index.end() && !_index.key_comp()(probe, it->first))
        return it->second;
    const Handle h = static_cast<Handle>(_values.size());
    _values.push_back(0);
    _index.emplace_hint(
        it, std::make_pair(std::string(scope), std::string(name)), h);
    return h;
}

std::vector<std::pair<std::string, std::uint64_t>>
CounterRegistry::sorted() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(_index.size());
    for (const auto &[key, h] : _index)
        out.emplace_back(key.first + "." + key.second, _values[h]);
    return out;
}

std::vector<std::tuple<std::string, std::string, std::uint64_t>>
CounterRegistry::entries() const
{
    std::vector<std::tuple<std::string, std::string, std::uint64_t>>
        out;
    out.reserve(_index.size());
    for (const auto &[key, h] : _index)
        out.emplace_back(key.first, key.second, _values[h]);
    return out;
}

std::string
CounterRegistry::toText() const
{
    std::string out;
    for (const auto &[name, value] : sorted()) {
        out += name;
        out.push_back(' ');
        out += std::to_string(value);
        out.push_back('\n');
    }
    return out;
}

} // namespace dol
