#include "trace/counters.hpp"

namespace dol
{

std::uint64_t &
CounterRegistry::counter(const std::string &scope,
                         const std::string &name)
{
    return _counters[{scope, name}];
}

void
CounterRegistry::set(const std::string &scope, const std::string &name,
                     std::uint64_t value)
{
    _counters[{scope, name}] = value;
}

std::vector<std::pair<std::string, std::uint64_t>>
CounterRegistry::sorted() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(_counters.size());
    for (const auto &[key, value] : _counters)
        out.emplace_back(key.first + "." + key.second, value);
    return out;
}

std::string
CounterRegistry::toText() const
{
    std::string out;
    for (const auto &[name, value] : sorted()) {
        out += name;
        out.push_back(' ');
        out += std::to_string(value);
        out.push_back('\n');
    }
    return out;
}

} // namespace dol
