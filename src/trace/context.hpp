/**
 * @file
 * TraceContext: the per-simulation event bus.
 *
 * Instrumented code holds a `TraceContext *` that is nullptr in
 * ordinary runs — the DOL_TRACE_EVENT macro compiles to a single
 * pointer test on the hot path (and to nothing at all when the build
 * defines DOL_TRACE_DISABLED). When a context is attached, events fan
 * out to an optional sink (binary file writer or in-memory vector)
 * and are tallied per type; the tallies and the attached
 * CounterRegistry feed golden-trace snapshots and the dol-sweep-v1
 * "counters" section.
 *
 * One context belongs to exactly one Simulator: parallel sweep jobs
 * each own a private context, which is what keeps enabled traces
 * byte-identical between `--jobs 1` and `--jobs N`.
 */

#ifndef DOL_TRACE_CONTEXT_HPP
#define DOL_TRACE_CONTEXT_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "trace/counters.hpp"
#include "trace/event.hpp"
#include "trace/trace_io.hpp"

namespace dol
{

/** Destination of recorded events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void append(const TraceEvent &event) = 0;
};

/** Collects events in memory (unit tests, golden snapshots). */
class MemoryTraceSink : public TraceSink
{
  public:
    void append(const TraceEvent &event) override
    {
        events.push_back(event);
    }

    std::vector<TraceEvent> events;
};

/** Streams events into a binary TraceWriter. */
class WriterTraceSink : public TraceSink
{
  public:
    explicit WriterTraceSink(TraceWriter &writer) : _writer(&writer) {}

    void append(const TraceEvent &event) override
    {
        _writer->append(event);
    }

  private:
    TraceWriter *_writer;
};

class TraceContext
{
  public:
    /** A context with no sink still tallies event counts. */
    TraceContext() = default;
    explicit TraceContext(TraceSink *sink) : _sink(sink) {}

    void setSink(TraceSink *sink) { _sink = sink; }
    TraceSink *sink() const { return _sink; }

    void
    record(TraceEventType type, Cycle cycle, Addr addr = 0,
           std::uint64_t aux = 0, std::uint8_t comp = 0,
           std::uint8_t level = 0, std::uint8_t arg = 0)
    {
        ++_eventCounts[static_cast<unsigned>(type)];
        if (_sink) {
            TraceEvent event;
            event.cycle = cycle;
            event.addr = addr;
            event.aux = aux;
            event.type = type;
            event.comp = comp;
            event.level = level;
            event.arg = arg;
            _sink->append(event);
        }
    }

    std::uint64_t
    eventCount(TraceEventType type) const
    {
        return _eventCounts[static_cast<unsigned>(type)];
    }

    std::uint64_t
    totalEvents() const
    {
        std::uint64_t total = 0;
        for (const std::uint64_t count : _eventCounts)
            total += count;
        return total;
    }

    const std::array<std::uint64_t, kNumTraceEventTypes> &
    eventCounts() const
    {
        return _eventCounts;
    }

    /** Fold the per-type event tallies into @p registry ("trace"). */
    void exportEventCounts(CounterRegistry &registry) const;

    CounterRegistry &counters() { return _counters; }
    const CounterRegistry &counters() const { return _counters; }

  private:
    TraceSink *_sink = nullptr;
    std::array<std::uint64_t, kNumTraceEventTypes> _eventCounts{};
    CounterRegistry _counters;
};

} // namespace dol

/**
 * Emit an event through a possibly-null `TraceContext *`. The null
 * test is the entire disabled-path cost; DOL_TRACE_DISABLED removes
 * even that (and any argument evaluation) at compile time.
 */
#ifndef DOL_TRACE_DISABLED
#define DOL_TRACE_EVENT(ctx, ...)                                      \
    do {                                                               \
        if ((ctx) != nullptr)                                          \
            (ctx)->record(__VA_ARGS__);                                \
    } while (0)
#else
#define DOL_TRACE_EVENT(ctx, ...)                                      \
    do {                                                               \
    } while (0)
#endif

#endif // DOL_TRACE_CONTEXT_HPP
