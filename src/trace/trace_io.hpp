/**
 * @file
 * Compact binary trace format and its writer/reader.
 *
 * Wire layout (all little-endian, independent of host endianness):
 *
 *   header  "DOLTRC01" (8 bytes magic) + u32 version + u32 reserved
 *   record  type u8 | comp u8 | level u8 | arg u8 |
 *           cycle u64 | addr u64 | aux u64            (28 bytes)
 *
 * The stream carries no timestamps, hostnames, or job counts, so the
 * bytes of a trace depend only on the simulated cell — `--jobs 1` and
 * `--jobs N` sweeps of the same cell write identical files. The
 * reader returns clean errors (never crashes) on truncated or garbage
 * input; readTraceFile / dumpTraceText give tools a one-call surface.
 */

#ifndef DOL_TRACE_TRACE_IO_HPP
#define DOL_TRACE_TRACE_IO_HPP

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace dol
{

constexpr char kTraceMagic[8] = {'D', 'O', 'L', 'T', 'R', 'C', '0', '1'};
constexpr std::uint32_t kTraceVersion = 1;
constexpr std::size_t kTraceHeaderBytes = 16;
constexpr std::size_t kTraceRecordBytes = 28;

/** FNV-1a over a byte range (trace digests in golden snapshots). */
std::uint64_t fnv64(const void *data, std::size_t size,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

/** Serialize one event into exactly kTraceRecordBytes at @p out. */
void encodeTraceEvent(const TraceEvent &event, unsigned char *out);

/** Decode one record; false when `type` is out of range. */
bool decodeTraceEvent(const unsigned char *in, TraceEvent &out);

/**
 * Buffered binary trace writer. Construct with a path (empty = in
 * memory only), append events, close(). The running FNV-1a digest of
 * the record bytes is available at any time — golden snapshots use it
 * to detect reorderings that leave per-type counts unchanged.
 */
class TraceWriter
{
  public:
    TraceWriter() = default;
    explicit TraceWriter(const std::string &path) { open(path); }
    ~TraceWriter() { close(); }

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Open @p path for writing; false (with error set) on failure. */
    bool open(const std::string &path);

    void append(const TraceEvent &event);

    std::uint64_t eventCount() const { return _count; }
    std::uint64_t digest() const { return _digest; }

    bool ok() const { return _ok; }
    const std::string &error() const { return _error; }

    /** Flush and close the file; false if any write failed. */
    bool close();

  private:
    void flushBuffer();

    std::FILE *_file = nullptr;
    std::string _buffer;
    std::uint64_t _count = 0;
    std::uint64_t _digest = 0xcbf29ce484222325ull;
    bool _ok = true;
    std::string _error;
};

/**
 * Streaming trace reader. Validates the header on open; next()
 * yields records until the stream ends. A file that ends mid-record
 * or carries a bad magic/version sets error() and stops — it never
 * crashes or fabricates events.
 */
class TraceReader
{
  public:
    TraceReader() = default;
    explicit TraceReader(const std::string &path) { open(path); }
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Open and validate the header; false + error() on failure. */
    bool open(const std::string &path);

    /** Read the next record; false at end of stream or on error. */
    bool next(TraceEvent &out);

    /** Empty when the stream ended cleanly. */
    const std::string &error() const { return _error; }
    bool ok() const { return _error.empty(); }

    std::uint64_t eventsRead() const { return _read; }

  private:
    std::FILE *_file = nullptr;
    std::uint64_t _read = 0;
    std::string _error;
};

/**
 * Read a whole trace file into memory.
 * @return false + error when the header is invalid or a record is
 *         truncated/corrupt; events read before the error are kept.
 */
bool readTraceFile(const std::string &path,
                   std::vector<TraceEvent> &out,
                   std::string *error = nullptr);

/** One human-readable line per event ("cycle type comp ..."). */
std::string traceEventToText(const TraceEvent &event);

/**
 * Text dump mode: stream @p path to @p out, one line per event.
 * @return false + error on unreadable input (partial dump printed).
 */
bool dumpTraceText(const std::string &path, std::FILE *out,
                   std::string *error = nullptr);

} // namespace dol

#endif // DOL_TRACE_TRACE_IO_HPP
