#include "trace/trace_io.hpp"

#include <cstring>

namespace dol
{

namespace
{

/** Flush granularity: large enough to amortize fwrite, small enough
 *  to keep short traces cheap. */
constexpr std::size_t kFlushBytes = 64 * 1024;

void
putU32(unsigned char *out, std::uint32_t value)
{
    out[0] = static_cast<unsigned char>(value);
    out[1] = static_cast<unsigned char>(value >> 8);
    out[2] = static_cast<unsigned char>(value >> 16);
    out[3] = static_cast<unsigned char>(value >> 24);
}

std::uint32_t
getU32(const unsigned char *in)
{
    return static_cast<std::uint32_t>(in[0]) |
           static_cast<std::uint32_t>(in[1]) << 8 |
           static_cast<std::uint32_t>(in[2]) << 16 |
           static_cast<std::uint32_t>(in[3]) << 24;
}

void
putU64(unsigned char *out, std::uint64_t value)
{
    for (unsigned i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>(value >> (8 * i));
}

std::uint64_t
getU64(const unsigned char *in)
{
    std::uint64_t value = 0;
    for (unsigned i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return value;
}

} // namespace

const char *
traceEventName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::kPrefetchIssued: return "pf_issued";
      case TraceEventType::kPrefetchFilled: return "pf_filled";
      case TraceEventType::kPrefetchUsed: return "pf_used";
      case TraceEventType::kPrefetchLate: return "pf_late";
      case TraceEventType::kPrefetchDropped: return "pf_dropped";
      case TraceEventType::kPrefetchDemoted: return "pf_demoted";
      case TraceEventType::kCacheHit: return "cache_hit";
      case TraceEventType::kCacheMiss: return "cache_miss";
      case TraceEventType::kCacheEvict: return "cache_evict";
      case TraceEventType::kT2Transition: return "t2_transition";
      case TraceEventType::kP1ChainStart: return "p1_chain_start";
      case TraceEventType::kP1ChainAdvance: return "p1_chain_advance";
      case TraceEventType::kP1ChainResync: return "p1_chain_resync";
      case TraceEventType::kP1ProducerConfirm:
        return "p1_producer_confirm";
      case TraceEventType::kC1RegionDense: return "c1_region_dense";
      case TraceEventType::kC1Verdict: return "c1_verdict";
      case TraceEventType::kC1CarpetFire: return "c1_carpet_fire";
      case TraceEventType::kCoordClaim: return "coord_claim";
      case TraceEventType::kCoordUnclaim: return "coord_unclaim";
      case TraceEventType::kCoreMispredict: return "core_mispredict";
      case TraceEventType::kAdaptDegree: return "adapt_degree";
      case TraceEventType::kAdaptDemote: return "adapt_demote";
      case TraceEventType::kAdaptReadmit: return "adapt_readmit";
      case TraceEventType::kNumTraceEventTypes: break;
    }
    return "unknown";
}

std::uint64_t
fnv64(const void *data, std::size_t size, std::uint64_t seed)
{
    std::uint64_t hash = seed;
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

void
encodeTraceEvent(const TraceEvent &event, unsigned char *out)
{
    out[0] = static_cast<unsigned char>(event.type);
    out[1] = event.comp;
    out[2] = event.level;
    out[3] = event.arg;
    putU64(out + 4, event.cycle);
    putU64(out + 12, event.addr);
    putU64(out + 20, event.aux);
}

bool
decodeTraceEvent(const unsigned char *in, TraceEvent &out)
{
    if (in[0] >= kNumTraceEventTypes)
        return false;
    out.type = static_cast<TraceEventType>(in[0]);
    out.comp = in[1];
    out.level = in[2];
    out.arg = in[3];
    out.cycle = getU64(in + 4);
    out.addr = getU64(in + 12);
    out.aux = getU64(in + 20);
    return true;
}

// --- TraceWriter --------------------------------------------------

bool
TraceWriter::open(const std::string &path)
{
    close();
    _count = 0;
    _digest = 0xcbf29ce484222325ull;
    _ok = true;
    _error.clear();
    if (path.empty()) {
        _error = "empty trace path";
        _ok = false;
        return false;
    }
    _file = std::fopen(path.c_str(), "wb");
    if (!_file) {
        _error = "cannot open " + path;
        _ok = false;
        return false;
    }
    unsigned char header[kTraceHeaderBytes];
    std::memcpy(header, kTraceMagic, sizeof kTraceMagic);
    putU32(header + 8, kTraceVersion);
    putU32(header + 12, 0);
    _buffer.assign(reinterpret_cast<const char *>(header),
                   sizeof header);
    return true;
}

void
TraceWriter::append(const TraceEvent &event)
{
    unsigned char record[kTraceRecordBytes];
    encodeTraceEvent(event, record);
    _digest = fnv64(record, sizeof record, _digest);
    ++_count;
    if (_file) {
        _buffer.append(reinterpret_cast<const char *>(record),
                       sizeof record);
        if (_buffer.size() >= kFlushBytes)
            flushBuffer();
    }
}

void
TraceWriter::flushBuffer()
{
    if (!_file || _buffer.empty())
        return;
    if (std::fwrite(_buffer.data(), 1, _buffer.size(), _file) !=
        _buffer.size()) {
        _ok = false;
        _error = "trace write failed";
    }
    _buffer.clear();
}

bool
TraceWriter::close()
{
    if (_file) {
        flushBuffer();
        if (std::fclose(_file) != 0) {
            _ok = false;
            if (_error.empty())
                _error = "trace close failed";
        }
        _file = nullptr;
    }
    return _ok;
}

// --- TraceReader --------------------------------------------------

TraceReader::~TraceReader()
{
    if (_file)
        std::fclose(_file);
}

bool
TraceReader::open(const std::string &path)
{
    if (_file) {
        std::fclose(_file);
        _file = nullptr;
    }
    _read = 0;
    _error.clear();
    _file = std::fopen(path.c_str(), "rb");
    if (!_file) {
        _error = "cannot open " + path;
        return false;
    }
    unsigned char header[kTraceHeaderBytes];
    if (std::fread(header, 1, sizeof header, _file) != sizeof header) {
        _error = "truncated trace header";
        return false;
    }
    if (std::memcmp(header, kTraceMagic, sizeof kTraceMagic) != 0) {
        _error = "bad trace magic (not a dol trace file)";
        return false;
    }
    if (const std::uint32_t version = getU32(header + 8);
        version != kTraceVersion) {
        _error = "unsupported trace version " + std::to_string(version);
        return false;
    }
    return true;
}

bool
TraceReader::next(TraceEvent &out)
{
    if (!_file || !_error.empty())
        return false;
    unsigned char record[kTraceRecordBytes];
    const std::size_t got = std::fread(record, 1, sizeof record, _file);
    if (got == 0)
        return false; // clean end of stream
    if (got != sizeof record) {
        _error = "truncated record after " + std::to_string(_read) +
                 " events";
        return false;
    }
    if (!decodeTraceEvent(record, out)) {
        _error = "corrupt record (bad event type " +
                 std::to_string(record[0]) + ") after " +
                 std::to_string(_read) + " events";
        return false;
    }
    ++_read;
    return true;
}

bool
readTraceFile(const std::string &path, std::vector<TraceEvent> &out,
              std::string *error)
{
    TraceReader reader;
    if (!reader.open(path)) {
        if (error)
            *error = reader.error();
        return false;
    }
    TraceEvent event;
    while (reader.next(event))
        out.push_back(event);
    if (!reader.ok()) {
        if (error)
            *error = reader.error();
        return false;
    }
    return true;
}

std::string
traceEventToText(const TraceEvent &event)
{
    char line[160];
    std::snprintf(line, sizeof line,
                  "%12llu %-20s comp=%u level=%u arg=%u "
                  "addr=0x%llx aux=0x%llx",
                  static_cast<unsigned long long>(event.cycle),
                  traceEventName(event.type), event.comp, event.level,
                  event.arg,
                  static_cast<unsigned long long>(event.addr),
                  static_cast<unsigned long long>(event.aux));
    return line;
}

bool
dumpTraceText(const std::string &path, std::FILE *out,
              std::string *error)
{
    TraceReader reader;
    if (!reader.open(path)) {
        if (error)
            *error = reader.error();
        return false;
    }
    TraceEvent event;
    while (reader.next(event)) {
        const std::string line = traceEventToText(event);
        std::fprintf(out, "%s\n", line.c_str());
    }
    if (!reader.ok()) {
        if (error)
            *error = reader.error();
        return false;
    }
    return true;
}

} // namespace dol
