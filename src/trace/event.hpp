/**
 * @file
 * Structured trace events: the vocabulary of the observability layer.
 *
 * Every decision the paper's composite design makes — a prefetch
 * leaving a component, the coordinator (un)claiming an instruction,
 * P1's chasing FSM advancing or resyncing, C1 reaching a density
 * verdict — maps to one fixed-size event record. Records are plain
 * data (no pointers, no strings), so a trace serializes to a stable
 * 28-byte wire format and two runs of the same cell produce
 * byte-identical streams regardless of the sweep's worker count.
 */

#ifndef DOL_TRACE_EVENT_HPP
#define DOL_TRACE_EVENT_HPP

#include <cstdint>

#include "common/types.hpp"

namespace dol
{

enum class TraceEventType : std::uint8_t
{
    // Prefetch lifecycle (memory system).
    kPrefetchIssued = 0, ///< left the component, post filtering
    kPrefetchFilled,     ///< fill completed at the destination level
    kPrefetchUsed,       ///< first demand use of a prefetched line
    kPrefetchLate,       ///< demand arrived while the fill was in flight
    kPrefetchDropped,    ///< shed by the memory controller
    kPrefetchDemoted,    ///< unused prefetched line evicted/cancelled

    // Demand-stream cache events.
    kCacheHit,   ///< demand hit at `level`
    kCacheMiss,  ///< primary demand miss at `level`
    kCacheEvict, ///< valid line displaced at `level` (arg: flag bits)

    // T2 stride component.
    kT2Transition, ///< instruction state change (arg: new InstrState)

    // P1 pointer component.
    kP1ChainStart,      ///< chain confirmed; chasing FSM armed
    kP1ChainAdvance,    ///< FSM followed one link (addr: link address)
    kP1ChainResync,     ///< timeout reset: chain off track too long
    kP1ProducerConfirm, ///< scout confirmed an array-of-pointers pair

    // C1 region component.
    kC1RegionDense, ///< evicted region was dense (arg: line popcount)
    kC1Verdict,     ///< instruction judged (arg: 1 marked, 0 rejected)
    kC1CarpetFire,  ///< whole-region prefetch fired (addr: region base)

    // Coordinator.
    kCoordClaim,   ///< instruction ownership changed (arg: owner code)
    kCoordUnclaim, ///< instruction ownership dropped to none

    // CPU core.
    kCoreMispredict, ///< branch mispredict redirected the front end

    // Adaptive coordinator (window decisions; arg: degree/slot).
    kAdaptDegree,  ///< an extra's emission budget changed
    kAdaptDemote,  ///< a claimant's claims suspended (below floor)
    kAdaptReadmit, ///< a demoted claimant re-admitted after probation

    kNumTraceEventTypes,
};

constexpr unsigned kNumTraceEventTypes =
    static_cast<unsigned>(TraceEventType::kNumTraceEventTypes);

/** Owner codes carried by kCoordClaim (mirrors CompositePrefetcher). */
enum : std::uint8_t
{
    kOwnerNone = 0,
    kOwnerT2 = 1,
    kOwnerP1 = 2,
    kOwnerC1 = 3,
    kOwnerExtra = 4,
};

/** Flag bits carried by kCacheEvict. */
enum : std::uint8_t
{
    kEvictDirty = 1,
    kEvictPrefetched = 2,
    kEvictUsed = 4,
};

/**
 * One trace record. `addr`/`aux`/`cycle` carry event-specific payloads
 * (documented per event type above); `comp` is the component id that
 * caused the event (0 = none) and `level` the cache level involved.
 */
struct TraceEvent
{
    Cycle cycle = 0;
    Addr addr = 0;
    std::uint64_t aux = 0; ///< usually the mPC involved
    TraceEventType type = TraceEventType::kPrefetchIssued;
    std::uint8_t comp = 0;
    std::uint8_t level = 0;
    std::uint8_t arg = 0;

    bool
    operator==(const TraceEvent &other) const
    {
        return cycle == other.cycle && addr == other.addr &&
               aux == other.aux && type == other.type &&
               comp == other.comp && level == other.level &&
               arg == other.arg;
    }
};

/** Stable symbolic name (golden snapshots, text dumps). */
const char *traceEventName(TraceEventType type);

} // namespace dol

#endif // DOL_TRACE_EVENT_HPP
