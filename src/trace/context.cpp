#include "trace/context.hpp"

namespace dol
{

void
TraceContext::exportEventCounts(CounterRegistry &registry) const
{
    for (unsigned t = 0; t < kNumTraceEventTypes; ++t) {
        if (_eventCounts[t] == 0)
            continue;
        registry.set("trace",
                     traceEventName(static_cast<TraceEventType>(t)),
                     _eventCounts[t]);
    }
}

} // namespace dol
