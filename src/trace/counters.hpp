/**
 * @file
 * Per-component counter registry.
 *
 * A CounterRegistry is a flat namespace of (scope, name) -> uint64
 * counters: scopes group counters by the component or layer that owns
 * them ("T2", "P1", "C1", "mem.L1", "core", "trace"). The registry is
 * harvested once at end of run — components keep plain member
 * counters on the hot path and export them here — so disabled-tracing
 * runs pay nothing. Serialization is sorted by (scope, name), making
 * two runs of the same cell produce byte-identical counter text.
 *
 * Call sites that do touch a counter repeatedly resolve the name to an
 * integer Handle once (handle()) and bump through it; the string pair
 * is only hashed-against (well, compared-against) at registration.
 * The values live in a deque so handles and references both stay
 * valid for the registry's lifetime.
 */

#ifndef DOL_TRACE_COUNTERS_HPP
#define DOL_TRACE_COUNTERS_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

namespace dol
{

class CounterRegistry
{
  public:
    /** Stable integer name for one counter (index into the values). */
    using Handle = std::uint32_t;

    /** Find-or-create; the handle stays valid for the registry's
     *  lifetime. No allocation when the counter already exists. */
    Handle handle(std::string_view scope, std::string_view name);

    std::uint64_t &operator[](Handle h) { return _values[h]; }
    std::uint64_t at(Handle h) const { return _values[h]; }
    void bump(Handle h, std::uint64_t by = 1) { _values[h] += by; }

    /** Find-or-create; the reference stays valid for the registry's
     *  lifetime (deque blocks are stable). Legacy string-keyed entry
     *  point — a thin wrapper over handle(). */
    std::uint64_t &
    counter(std::string_view scope, std::string_view name)
    {
        return _values[handle(scope, name)];
    }

    /** Shorthand for harvest sites: overwrite with @p value. */
    void
    set(std::string_view scope, std::string_view name,
        std::uint64_t value)
    {
        _values[handle(scope, name)] = value;
    }

    bool empty() const { return _index.empty(); }
    std::size_t size() const { return _index.size(); }

    /** All counters, sorted by (scope, name), flattened "scope.name". */
    std::vector<std::pair<std::string, std::uint64_t>> sorted() const;

    /** All counters as (scope, name, value), sorted by (scope, name).
     *  Unlike sorted(), keeps the two key parts separate so a registry
     *  can be reconstructed exactly (checkpoint journal round trip). */
    std::vector<std::tuple<std::string, std::string, std::uint64_t>>
    entries() const;

    /** One "scope.name value\n" line per counter, sorted. */
    std::string toText() const;

    void
    clear()
    {
        _index.clear();
        _values.clear();
    }

  private:
    /** Heterogeneous comparator: lets lookups probe with string_views
     *  so the legacy string API copies nothing on the hit path. */
    struct KeyLess
    {
        using is_transparent = void;

        template <typename A, typename B, typename C, typename D>
        bool
        operator()(const std::pair<A, B> &lhs,
                   const std::pair<C, D> &rhs) const
        {
            const int scope_order =
                std::string_view(lhs.first)
                    .compare(std::string_view(rhs.first));
            if (scope_order != 0)
                return scope_order < 0;
            return std::string_view(lhs.second) <
                   std::string_view(rhs.second);
        }
    };

    std::map<std::pair<std::string, std::string>, Handle, KeyLess>
        _index;
    std::deque<std::uint64_t> _values;
};

} // namespace dol

#endif // DOL_TRACE_COUNTERS_HPP
