/**
 * @file
 * Per-component counter registry.
 *
 * A CounterRegistry is a flat namespace of (scope, name) -> uint64
 * counters: scopes group counters by the component or layer that owns
 * them ("T2", "P1", "C1", "mem.L1", "core", "trace"). The registry is
 * harvested once at end of run — components keep plain member
 * counters on the hot path and export them here — so disabled-tracing
 * runs pay nothing. Serialization is sorted by (scope, name), making
 * two runs of the same cell produce byte-identical counter text.
 */

#ifndef DOL_TRACE_COUNTERS_HPP
#define DOL_TRACE_COUNTERS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dol
{

class CounterRegistry
{
  public:
    /** Find-or-create; the reference stays valid for the registry's
     *  lifetime (std::map nodes are stable). */
    std::uint64_t &counter(const std::string &scope,
                           const std::string &name);

    /** Shorthand for harvest sites: overwrite with @p value. */
    void set(const std::string &scope, const std::string &name,
             std::uint64_t value);

    bool empty() const { return _counters.empty(); }
    std::size_t size() const { return _counters.size(); }

    /** All counters, sorted by (scope, name), flattened "scope.name". */
    std::vector<std::pair<std::string, std::uint64_t>> sorted() const;

    /** One "scope.name value\n" line per counter, sorted. */
    std::string toText() const;

    void clear() { _counters.clear(); }

  private:
    std::map<std::pair<std::string, std::string>, std::uint64_t>
        _counters;
};

} // namespace dol

#endif // DOL_TRACE_COUNTERS_HPP
