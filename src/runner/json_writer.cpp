#include "runner/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace dol::runner
{

std::string
JsonWriter::escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buffer;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

void
JsonWriter::newlineIndent()
{
    if (!_indent)
        return;
    _out.push_back('\n');
    _out.append((_hasElement.size() - 1) * _indent, ' ');
}

void
JsonWriter::beforeValue()
{
    if (_pendingKey) {
        _pendingKey = false;
        return;
    }
    if (_hasElement.back())
        _out.push_back(',');
    if (_hasElement.size() > 1)
        newlineIndent();
    _hasElement.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    _out.push_back('{');
    _hasElement.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    const bool had = _hasElement.back();
    _hasElement.pop_back();
    if (had)
        newlineIndent();
    _out.push_back('}');
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    _out.push_back('[');
    _hasElement.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    const bool had = _hasElement.back();
    _hasElement.pop_back();
    if (had)
        newlineIndent();
    _out.push_back(']');
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (_hasElement.back())
        _out.push_back(',');
    newlineIndent();
    _hasElement.back() = true;
    _out.push_back('"');
    _out += escape(name);
    _out += _indent ? "\": " : "\":";
    _pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    beforeValue();
    _out.push_back('"');
    _out += escape(text);
    _out.push_back('"');
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    beforeValue();
    if (!std::isfinite(number)) {
        // JSON has no Inf/NaN; encode as null like most tools do.
        _out += "null";
        return *this;
    }
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.10g", number);
    _out += buffer;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    beforeValue();
    char buffer[24];
    std::snprintf(buffer, sizeof buffer, "%llu",
                  static_cast<unsigned long long>(number));
    _out += buffer;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    beforeValue();
    char buffer[24];
    std::snprintf(buffer, sizeof buffer, "%lld",
                  static_cast<long long>(number));
    _out += buffer;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    beforeValue();
    _out += flag ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    _out += "null";
    return *this;
}

JsonWriter &
JsonWriter::raw(std::string_view json)
{
    beforeValue();
    _out += json;
    return *this;
}

} // namespace dol::runner
