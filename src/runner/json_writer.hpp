/**
 * @file
 * Minimal streaming JSON writer for the runner's structured results.
 *
 * Emits deterministic output: keys appear in the order the caller
 * writes them, doubles always format with "%.10g" (so identical
 * metric values serialize to identical bytes regardless of how many
 * worker threads produced them), and strings are escaped per RFC
 * 8259. No external dependency — the container bakes in nothing
 * beyond the standard library.
 */

#ifndef DOL_RUNNER_JSON_WRITER_HPP
#define DOL_RUNNER_JSON_WRITER_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dol::runner
{

class JsonWriter
{
  public:
    /** @param indent spaces per nesting level; 0 = compact. */
    explicit JsonWriter(unsigned indent = 2) : _indent(indent) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Start a "key": inside an object; follow with a value call. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text)
    {
        return value(std::string_view(text));
    }
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(int number)
    {
        return value(static_cast<std::int64_t>(number));
    }
    JsonWriter &value(unsigned number)
    {
        return value(static_cast<std::uint64_t>(number));
    }
    JsonWriter &value(bool flag);
    JsonWriter &null();

    /** Shorthand: key + value. */
    template <typename T>
    JsonWriter &
    field(std::string_view name, const T &val)
    {
        key(name);
        return value(val);
    }

    /** Insert pre-serialized JSON verbatim as one value. */
    JsonWriter &raw(std::string_view json);

    const std::string &str() const { return _out; }
    std::string take() { return std::move(_out); }

    static std::string escape(std::string_view text);

  private:
    void beforeValue();
    void newlineIndent();

    std::string _out;
    unsigned _indent;
    /** Per-depth flag: has this container emitted an element yet? */
    std::vector<bool> _hasElement{false};
    bool _pendingKey = false;
};

} // namespace dol::runner

#endif // DOL_RUNNER_JSON_WRITER_HPP
