#include "runner/result_store.hpp"

#include "runner/json_writer.hpp"

namespace dol::runner
{

MetricsRow
makeMetricsRow(const RunOutput &out, const std::string &variant,
               std::uint64_t seed)
{
    MetricsRow row;
    row.workload = out.workload;
    row.prefetcher = out.prefetcher;
    row.variant = variant;
    row.seed = seed;
    row.baselineIpc = out.baselineIpc;
    row.ipc = out.ipc;
    row.speedup = out.speedup();
    row.baselineMpkiL1 = out.baselineMpkiL1;
    row.prefetchesIssued = out.prefetchesIssued;
    row.scope = out.scope;
    row.effAccuracyL1 = out.effAccuracyL1;
    row.effCoverageL1 = out.effCoverageL1;
    row.effAccuracyL2 = out.effAccuracyL2;
    row.effCoverageL2 = out.effCoverageL2;
    row.trafficNormalized = out.trafficNormalized;
    row.instructions = out.instructions;
    row.counters = out.counters;
    return row;
}

ResultStore::ResultStore(ResultStore &&other) noexcept
{
    std::lock_guard lock(other._mutex);
    _rows = std::move(other._rows);
    _filled = std::move(other._filled);
}

ResultStore &
ResultStore::operator=(ResultStore &&other) noexcept
{
    if (this != &other) {
        std::scoped_lock lock(_mutex, other._mutex);
        _rows = std::move(other._rows);
        _filled = std::move(other._filled);
    }
    return *this;
}

void
ResultStore::resize(std::size_t slots)
{
    std::lock_guard lock(_mutex);
    _rows.resize(slots);
    _filled.resize(slots, false);
}

std::size_t
ResultStore::size() const
{
    std::lock_guard lock(_mutex);
    return _rows.size();
}

void
ResultStore::set(std::size_t index, MetricsRow row)
{
    std::lock_guard lock(_mutex);
    _rows.at(index) = std::move(row);
    _filled.at(index) = true;
}

void
ResultStore::append(MetricsRow row)
{
    std::lock_guard lock(_mutex);
    _rows.push_back(std::move(row));
    _filled.push_back(true);
}

std::vector<MetricsRow>
ResultStore::rows() const
{
    std::lock_guard lock(_mutex);
    std::vector<MetricsRow> out;
    out.reserve(_rows.size());
    for (std::size_t i = 0; i < _rows.size(); ++i) {
        if (_filled[i])
            out.push_back(_rows[i]);
    }
    return out;
}

const char *
ResultStore::csvHeader()
{
    return "workload,prefetcher,variant,seed,baseline_ipc,ipc,speedup,"
           "mpki,issued,scope,acc_l1,cov_l1,acc_l2,cov_l2,traffic,"
           "instructions";
}

std::string
ResultStore::csvLine(const MetricsRow &row)
{
    char buffer[512];
    std::snprintf(
        buffer, sizeof buffer,
        "%s,%s,%s,%llu,%.4f,%.4f,%.4f,%.2f,%llu,%.4f,%.4f,%.4f,%.4f,"
        "%.4f,%.4f,%llu",
        row.workload.c_str(), row.prefetcher.c_str(),
        row.variant.c_str(),
        static_cast<unsigned long long>(row.seed), row.baselineIpc,
        row.ipc, row.speedup, row.baselineMpkiL1,
        static_cast<unsigned long long>(row.prefetchesIssued),
        row.scope, row.effAccuracyL1, row.effCoverageL1,
        row.effAccuracyL2, row.effCoverageL2, row.trafficNormalized,
        static_cast<unsigned long long>(row.instructions));
    return buffer;
}

std::string
ResultStore::toCsv() const
{
    std::string out = csvHeader();
    out.push_back('\n');
    for (const MetricsRow &row : rows()) {
        out += csvLine(row);
        out.push_back('\n');
    }
    return out;
}

void
writeMetricsRowJson(JsonWriter &json, const MetricsRow &row)
{
    json.beginObject();
    json.field("workload", row.workload);
    json.field("prefetcher", row.prefetcher);
    json.field("variant", row.variant);
    json.field("seed", row.seed);
    json.key("metrics").beginObject();
    json.field("baseline_ipc", row.baselineIpc);
    json.field("ipc", row.ipc);
    json.field("speedup", row.speedup);
    json.field("baseline_mpki_l1", row.baselineMpkiL1);
    json.field("prefetches_issued", row.prefetchesIssued);
    json.field("scope", row.scope);
    json.field("eff_accuracy_l1", row.effAccuracyL1);
    json.field("eff_coverage_l1", row.effCoverageL1);
    json.field("eff_accuracy_l2", row.effAccuracyL2);
    json.field("eff_coverage_l2", row.effCoverageL2);
    json.field("traffic_normalized", row.trafficNormalized);
    json.field("instructions", row.instructions);
    json.endObject();
    if (!row.counters.empty()) {
        // Sorted by (scope, name): deterministic like "results".
        json.key("counters").beginObject();
        for (const auto &[name, value] : row.counters.sorted())
            json.field(name, value);
        json.endObject();
    }
    json.endObject();
}

void
writeFailedCellJson(JsonWriter &json, const FailedCell &cell)
{
    json.beginObject();
    json.field("label", cell.label);
    json.field("variant", cell.variant);
    json.field("seed", cell.seed);
    json.field("attempts", cell.attempts);
    json.field("kind", cell.kind);
    json.field("error", cell.error);
    json.endObject();
}

std::string
ResultStore::resultsJson() const
{
    JsonWriter json;
    json.beginArray();
    for (const MetricsRow &row : rows())
        writeMetricsRowJson(json, row);
    json.endArray();
    return json.take();
}

std::string
ResultStore::toJson(const SweepMeta &meta) const
{
    JsonWriter json;
    json.beginObject();
    json.field("schema", "dol-sweep-v1");
    json.field("generator", meta.generator);
    json.key("config").beginObject();
    json.field("max_instrs", meta.maxInstrs);
    json.endObject();

    json.key("results").beginArray();
    for (const MetricsRow &row : rows())
        writeMetricsRowJson(json, row);
    json.endArray();

    // Quarantined cells (retry budget exhausted). Emitted only when
    // present: a clean sweep's document is byte-identical to one
    // produced before fault tolerance existed.
    if (!meta.failedCells.empty()) {
        json.key("failed_cells").beginArray();
        for (const FailedCell &cell : meta.failedCells)
            writeFailedCellJson(json, cell);
        json.endArray();
    }

    // Everything below is wall-clock dependent and excluded from the
    // determinism contract (see README "JSON schema").
    json.key("timing").beginObject();
    json.field("jobs", meta.jobs);
    json.field("elapsed_seconds", meta.elapsedSeconds);
    json.field("resumed_jobs", meta.resumedJobs);
    json.key("wall_ms").beginArray();
    for (const double ms : meta.wallMs)
        json.value(ms);
    json.endArray();
    json.endObject();

    json.endObject();
    std::string out = json.take();
    out.push_back('\n');
    return out;
}

bool
ResultStore::writeJsonFile(const std::string &path,
                           const SweepMeta &meta) const
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return false;
    const std::string text = toJson(meta);
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), file) == text.size();
    return std::fclose(file) == 0 && ok;
}

} // namespace dol::runner
