#include "runner/framed_file.hpp"

#include <cstring>
#include <filesystem>

#include <unistd.h>

#include "runner/wire.hpp"
#include "trace/trace_io.hpp"

namespace dol::runner
{

bool
FramedWriter::create(const std::string &path, const char (&magic)[8],
                     std::string *error)
{
    std::lock_guard lock(_mutex);
    if (_file) {
        std::fclose(_file);
        _file = nullptr;
    }
    _file = std::fopen(path.c_str(), "wb");
    if (!_file) {
        if (error)
            *error = "cannot create " + path;
        return false;
    }
    if (std::fwrite(magic, 1, kFrameMagicBytes, _file) !=
        kFrameMagicBytes) {
        std::fclose(_file);
        _file = nullptr;
        if (error)
            *error = "short write to " + path;
        return false;
    }
    return true;
}

bool
FramedWriter::openAppend(const std::string &path,
                         std::uint64_t good_bytes, std::string *error)
{
    std::lock_guard lock(_mutex);
    if (_file) {
        std::fclose(_file);
        _file = nullptr;
    }
    std::error_code ec;
    std::filesystem::resize_file(path, good_bytes, ec);
    if (ec) {
        if (error)
            *error = "cannot truncate " + path + ": " + ec.message();
        return false;
    }
    _file = std::fopen(path.c_str(), "ab");
    if (!_file) {
        if (error)
            *error = "cannot reopen " + path;
        return false;
    }
    return true;
}

bool
FramedWriter::appendRecord(std::uint8_t type,
                           const std::string &payload)
{
    std::lock_guard lock(_mutex);
    if (!_file)
        return false;
    std::string envelope;
    envelope.push_back(static_cast<char>(type));
    wire::putU32(envelope, static_cast<std::uint32_t>(payload.size()));
    wire::putU64(envelope, fnv64(payload.data(), payload.size()));
    if (std::fwrite(envelope.data(), 1, envelope.size(), _file) !=
            envelope.size() ||
        std::fwrite(payload.data(), 1, payload.size(), _file) !=
            payload.size()) {
        return false;
    }
    // The fsync is the crash-safety point: once append returns, a
    // SIGKILL cannot lose this record.
    if (std::fflush(_file) != 0)
        return false;
    return fsync(fileno(_file)) == 0;
}

void
FramedWriter::close()
{
    std::lock_guard lock(_mutex);
    if (_file) {
        std::fclose(_file);
        _file = nullptr;
    }
}

bool
FramedReader::open(const std::string &path, const char (&magic)[8])
{
    close();
    _fileExists = false;
    _valid = false;
    _tornTail = false;
    _pos = 0;
    _goodBytes = 0;

    _file = std::fopen(path.c_str(), "rb");
    if (!_file)
        return false;
    _fileExists = true;

    char header[kFrameMagicBytes];
    if (std::fread(header, 1, sizeof header, _file) != sizeof header ||
        std::memcmp(header, magic, sizeof header) != 0) {
        std::fclose(_file);
        _file = nullptr;
        return false;
    }
    _valid = true;
    _pos = kFrameMagicBytes;
    _goodBytes = kFrameMagicBytes;
    return true;
}

bool
FramedReader::next(Record &out)
{
    if (!_file)
        return false;

    unsigned char envelope[kFrameEnvelopeBytes];
    const std::size_t got =
        std::fread(envelope, 1, sizeof envelope, _file);
    if (got == 0)
        return false; // clean end of file
    if (got != sizeof envelope) {
        _tornTail = true;
        return false;
    }
    wire::Cursor env{envelope + 1, sizeof envelope - 1};
    const std::uint32_t length = env.u32();
    const std::uint64_t checksum = env.u64();

    std::string payload(length, '\0');
    if (length > 0 &&
        std::fread(payload.data(), 1, length, _file) != length) {
        _tornTail = true;
        return false;
    }
    if (fnv64(payload.data(), payload.size()) != checksum) {
        _tornTail = true;
        return false;
    }

    out.type = envelope[0];
    out.payload = std::move(payload);
    out.offset = _pos;
    _pos += kFrameEnvelopeBytes + length;
    // goodBytes only ever grows: a seek back and re-read must not
    // shrink the clean prefix a resuming writer will keep.
    if (_pos > _goodBytes)
        _goodBytes = _pos;
    return true;
}

bool
FramedReader::seek(std::uint64_t offset)
{
    if (!_file)
        return false;
    if (std::fseek(_file, static_cast<long>(offset), SEEK_SET) != 0)
        return false;
    _pos = offset;
    _tornTail = false;
    return true;
}

void
FramedReader::close()
{
    if (_file) {
        std::fclose(_file);
        _file = nullptr;
    }
}

} // namespace dol::runner
