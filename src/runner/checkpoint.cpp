#include "runner/checkpoint.hpp"

#include "runner/wire.hpp"

namespace dol::runner
{

namespace
{

void
putRow(std::string &out, const MetricsRow &row)
{
    wire::putString(out, row.workload);
    wire::putString(out, row.prefetcher);
    wire::putString(out, row.variant);
    wire::putU64(out, row.seed);
    wire::putF64(out, row.baselineIpc);
    wire::putF64(out, row.ipc);
    wire::putF64(out, row.speedup);
    wire::putF64(out, row.baselineMpkiL1);
    wire::putU64(out, row.prefetchesIssued);
    wire::putF64(out, row.scope);
    wire::putF64(out, row.effAccuracyL1);
    wire::putF64(out, row.effCoverageL1);
    wire::putF64(out, row.effAccuracyL2);
    wire::putF64(out, row.effCoverageL2);
    wire::putF64(out, row.trafficNormalized);
    wire::putU64(out, row.instructions);
    const auto counters = row.counters.entries();
    wire::putU32(out, static_cast<std::uint32_t>(counters.size()));
    for (const auto &[scope, name, value] : counters) {
        wire::putString(out, scope);
        wire::putString(out, name);
        wire::putU64(out, value);
    }
}

MetricsRow
readRow(wire::Cursor &in)
{
    MetricsRow row;
    row.workload = in.str();
    row.prefetcher = in.str();
    row.variant = in.str();
    row.seed = in.u64();
    row.baselineIpc = in.f64();
    row.ipc = in.f64();
    row.speedup = in.f64();
    row.baselineMpkiL1 = in.f64();
    row.prefetchesIssued = in.u64();
    row.scope = in.f64();
    row.effAccuracyL1 = in.f64();
    row.effCoverageL1 = in.f64();
    row.effAccuracyL2 = in.f64();
    row.effCoverageL2 = in.f64();
    row.trafficNormalized = in.f64();
    row.instructions = in.u64();
    const std::uint32_t counters = in.u32();
    for (std::uint32_t i = 0; i < counters && in.ok; ++i) {
        const std::string scope = in.str();
        const std::string name = in.str();
        row.counters.set(scope, name, in.u64());
    }
    return row;
}

wire::Cursor
cursorOver(const std::string &payload)
{
    return wire::Cursor{
        reinterpret_cast<const unsigned char *>(payload.data()),
        payload.size()};
}

} // namespace

std::string
encodePlanPayload(const JournalPlan &plan)
{
    std::string payload;
    wire::putU64(payload, plan.itemCount);
    wire::putU64(payload, plan.gridHash);
    wire::putU64(payload, plan.maxInstrs);
    return payload;
}

std::string
encodeJobDonePayload(const JournalJobDone &job)
{
    std::string payload;
    wire::putU64(payload, job.jobIndex);
    wire::putString(payload, job.label);
    wire::putString(payload, job.variant);
    wire::putU64(payload, job.seed);
    wire::putF64(payload, job.wallMs);
    wire::putU32(payload, static_cast<std::uint32_t>(job.rows.size()));
    for (const MetricsRow &row : job.rows)
        putRow(payload, row);
    return payload;
}

std::string
encodeCellFailedPayload(const JournalCellFailed &failed)
{
    std::string payload;
    wire::putU64(payload, failed.jobIndex);
    wire::putString(payload, failed.cell.label);
    wire::putString(payload, failed.cell.variant);
    wire::putU64(payload, failed.cell.seed);
    wire::putU64(payload, failed.cell.attempts);
    wire::putString(payload, failed.cell.kind);
    wire::putString(payload, failed.cell.error);
    return payload;
}

bool
decodePlanPayload(const std::string &payload, JournalPlan &out)
{
    wire::Cursor in = cursorOver(payload);
    out.itemCount = in.u64();
    out.gridHash = in.u64();
    out.maxInstrs = in.u64();
    return in.ok;
}

bool
decodeJobDonePayload(const std::string &payload, JournalJobDone &out)
{
    wire::Cursor in = cursorOver(payload);
    out.jobIndex = in.u64();
    out.label = in.str();
    out.variant = in.str();
    out.seed = in.u64();
    out.wallMs = in.f64();
    out.rows.clear();
    const std::uint32_t rows = in.u32();
    for (std::uint32_t i = 0; i < rows && in.ok; ++i)
        out.rows.push_back(readRow(in));
    return in.ok;
}

bool
decodeCellFailedPayload(const std::string &payload,
                        JournalCellFailed &out)
{
    wire::Cursor in = cursorOver(payload);
    out.jobIndex = in.u64();
    out.cell.label = in.str();
    out.cell.variant = in.str();
    out.cell.seed = in.u64();
    out.cell.attempts = static_cast<unsigned>(in.u64());
    out.cell.kind = in.str();
    out.cell.error = in.str();
    return in.ok;
}

bool
decodeJobIndex(const std::string &payload, std::uint64_t &out)
{
    wire::Cursor in = cursorOver(payload);
    out = in.u64();
    return in.ok;
}

bool
CheckpointJournal::create(const std::string &path,
                          const JournalPlan &plan, std::string *error)
{
    if (!_file.create(path, kCheckpointMagic, error))
        return false;
    if (!_file.appendRecord(
            static_cast<std::uint8_t>(JournalRecord::kPlan),
            encodePlanPayload(plan))) {
        if (error)
            *error = "cannot write checkpoint plan to " + path;
        return false;
    }
    return true;
}

bool
CheckpointJournal::openAppend(const std::string &path,
                              std::uint64_t good_bytes,
                              std::string *error)
{
    return _file.openAppend(path, good_bytes, error);
}

bool
CheckpointJournal::appendJobDone(const JournalJobDone &record)
{
    return _file.appendRecord(
        static_cast<std::uint8_t>(JournalRecord::kJobDone),
        encodeJobDonePayload(record));
}

bool
CheckpointJournal::appendCaseDone(std::uint64_t case_index)
{
    std::string payload;
    wire::putU64(payload, case_index);
    return _file.appendRecord(
        static_cast<std::uint8_t>(JournalRecord::kCaseDone), payload);
}

bool
CheckpointJournal::appendCellFailed(const JournalCellFailed &record)
{
    return _file.appendRecord(
        static_cast<std::uint8_t>(JournalRecord::kCellFailed),
        encodeCellFailedPayload(record));
}

CheckpointJournal::Load
CheckpointJournal::load(const std::string &path)
{
    Load out;
    FramedReader reader;
    if (!reader.open(path, kCheckpointMagic)) {
        out.fileExists = reader.fileExists();
        out.error = out.fileExists
                        ? path + " is not a DOLCKPT1 checkpoint"
                        : "no checkpoint at " + path;
        return out;
    }
    out.fileExists = true;
    out.valid = true;
    out.goodBytes = reader.goodBytes();

    // A record whose checksum verifies but whose payload does not
    // decode is as suspect as a torn tail: stop before it, so a
    // resuming writer truncates it away. Unknown record types with a
    // valid checksum are skipped instead — a journal written by a
    // newer tool must not make the clean prefix end early (and then
    // get truncated mid-file by openAppend).
    bool decodeFailed = false;
    FramedReader::Record rec;
    while (reader.next(rec)) {
        bool parsed = true;
        switch (static_cast<JournalRecord>(rec.type)) {
        case JournalRecord::kPlan: {
            JournalPlan plan;
            parsed = decodePlanPayload(rec.payload, plan);
            if (parsed)
                out.plan = plan;
            break;
        }
        case JournalRecord::kJobDone: {
            JournalJobDone job;
            parsed = decodeJobDonePayload(rec.payload, job);
            if (parsed)
                out.jobs.push_back(std::move(job));
            break;
        }
        case JournalRecord::kCaseDone: {
            std::uint64_t index = 0;
            parsed = decodeJobIndex(rec.payload, index);
            if (parsed)
                out.cases.push_back(index);
            break;
        }
        case JournalRecord::kCellFailed: {
            JournalCellFailed failed;
            parsed = decodeCellFailedPayload(rec.payload, failed);
            if (parsed)
                out.failedCells.push_back(std::move(failed));
            break;
        }
        default:
            break;
        }
        if (!parsed) {
            decodeFailed = true;
            break;
        }
        out.goodBytes =
            rec.offset + kFrameEnvelopeBytes + rec.payload.size();
    }
    out.cleanTail = !decodeFailed && !reader.tornTail();
    return out;
}

} // namespace dol::runner
