#include "runner/checkpoint.hpp"

#include <bit>
#include <cstring>
#include <filesystem>

#include <unistd.h>

#include "trace/trace_io.hpp"

namespace dol::runner
{

namespace
{

enum RecordType : std::uint8_t
{
    kPlan = 1,
    kJobDone = 2,
    kCaseDone = 3,
};

// Record envelope: type u8 | payload-length u32 | fnv64(payload) u64 |
// payload. All integers little-endian, independent of host order.
constexpr std::size_t kEnvelopeBytes = 1 + 4 + 8;

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putF64(std::string &out, double v)
{
    putU64(out, std::bit_cast<std::uint64_t>(v));
}

void
putString(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

/** Bounds-checked little-endian reader over a payload. */
struct Cursor
{
    const unsigned char *data;
    std::size_t size;
    std::size_t pos = 0;
    bool ok = true;

    bool
    need(std::size_t n)
    {
        if (!ok || size - pos < n)
            ok = false;
        return ok;
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(data + pos), n);
        pos += n;
        return s;
    }
};

void
putRow(std::string &out, const MetricsRow &row)
{
    putString(out, row.workload);
    putString(out, row.prefetcher);
    putString(out, row.variant);
    putU64(out, row.seed);
    putF64(out, row.baselineIpc);
    putF64(out, row.ipc);
    putF64(out, row.speedup);
    putF64(out, row.baselineMpkiL1);
    putU64(out, row.prefetchesIssued);
    putF64(out, row.scope);
    putF64(out, row.effAccuracyL1);
    putF64(out, row.effCoverageL1);
    putF64(out, row.effAccuracyL2);
    putF64(out, row.effCoverageL2);
    putF64(out, row.trafficNormalized);
    putU64(out, row.instructions);
    const auto counters = row.counters.entries();
    putU32(out, static_cast<std::uint32_t>(counters.size()));
    for (const auto &[scope, name, value] : counters) {
        putString(out, scope);
        putString(out, name);
        putU64(out, value);
    }
}

MetricsRow
readRow(Cursor &in)
{
    MetricsRow row;
    row.workload = in.str();
    row.prefetcher = in.str();
    row.variant = in.str();
    row.seed = in.u64();
    row.baselineIpc = in.f64();
    row.ipc = in.f64();
    row.speedup = in.f64();
    row.baselineMpkiL1 = in.f64();
    row.prefetchesIssued = in.u64();
    row.scope = in.f64();
    row.effAccuracyL1 = in.f64();
    row.effCoverageL1 = in.f64();
    row.effAccuracyL2 = in.f64();
    row.effCoverageL2 = in.f64();
    row.trafficNormalized = in.f64();
    row.instructions = in.u64();
    const std::uint32_t counters = in.u32();
    for (std::uint32_t i = 0; i < counters && in.ok; ++i) {
        const std::string scope = in.str();
        const std::string name = in.str();
        row.counters.set(scope, name, in.u64());
    }
    return row;
}

std::string
encodePlan(const JournalPlan &plan)
{
    std::string payload;
    putU64(payload, plan.itemCount);
    putU64(payload, plan.gridHash);
    putU64(payload, plan.maxInstrs);
    return payload;
}

std::string
encodeJobDone(const JournalJobDone &job)
{
    std::string payload;
    putU64(payload, job.jobIndex);
    putString(payload, job.label);
    putString(payload, job.variant);
    putU64(payload, job.seed);
    putF64(payload, job.wallMs);
    putU32(payload, static_cast<std::uint32_t>(job.rows.size()));
    for (const MetricsRow &row : job.rows)
        putRow(payload, row);
    return payload;
}

} // namespace

bool
CheckpointJournal::create(const std::string &path,
                          const JournalPlan &plan, std::string *error)
{
    {
        std::lock_guard lock(_mutex);
        if (_file) {
            std::fclose(_file);
            _file = nullptr;
        }
        _file = std::fopen(path.c_str(), "wb");
        if (!_file) {
            if (error)
                *error = "cannot create checkpoint " + path;
            return false;
        }
        if (std::fwrite(kCheckpointMagic, 1, sizeof kCheckpointMagic,
                        _file) != sizeof kCheckpointMagic) {
            std::fclose(_file);
            _file = nullptr;
            if (error)
                *error = "short write to checkpoint " + path;
            return false;
        }
    }
    if (!appendRecord(kPlan, encodePlan(plan))) {
        if (error)
            *error = "cannot write checkpoint plan to " + path;
        return false;
    }
    return true;
}

bool
CheckpointJournal::openAppend(const std::string &path,
                              std::uint64_t good_bytes,
                              std::string *error)
{
    std::lock_guard lock(_mutex);
    if (_file) {
        std::fclose(_file);
        _file = nullptr;
    }
    std::error_code ec;
    std::filesystem::resize_file(path, good_bytes, ec);
    if (ec) {
        if (error)
            *error = "cannot truncate checkpoint " + path + ": " +
                     ec.message();
        return false;
    }
    _file = std::fopen(path.c_str(), "ab");
    if (!_file) {
        if (error)
            *error = "cannot reopen checkpoint " + path;
        return false;
    }
    return true;
}

bool
CheckpointJournal::appendRecord(std::uint8_t type,
                                const std::string &payload)
{
    std::lock_guard lock(_mutex);
    if (!_file)
        return false;
    std::string envelope;
    envelope.push_back(static_cast<char>(type));
    putU32(envelope, static_cast<std::uint32_t>(payload.size()));
    putU64(envelope, fnv64(payload.data(), payload.size()));
    if (std::fwrite(envelope.data(), 1, envelope.size(), _file) !=
            envelope.size() ||
        std::fwrite(payload.data(), 1, payload.size(), _file) !=
            payload.size()) {
        return false;
    }
    // The fsync is the crash-safety point: once append returns, a
    // SIGKILL cannot lose this record.
    if (std::fflush(_file) != 0)
        return false;
    return fsync(fileno(_file)) == 0;
}

bool
CheckpointJournal::appendJobDone(const JournalJobDone &record)
{
    return appendRecord(kJobDone, encodeJobDone(record));
}

bool
CheckpointJournal::appendCaseDone(std::uint64_t case_index)
{
    std::string payload;
    putU64(payload, case_index);
    return appendRecord(kCaseDone, payload);
}

void
CheckpointJournal::close()
{
    std::lock_guard lock(_mutex);
    if (_file) {
        std::fclose(_file);
        _file = nullptr;
    }
}

CheckpointJournal::Load
CheckpointJournal::load(const std::string &path)
{
    Load out;
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        out.error = "no checkpoint at " + path;
        return out;
    }
    out.fileExists = true;

    std::string bytes;
    char buffer[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0)
        bytes.append(buffer, got);
    std::fclose(file);

    if (bytes.size() < sizeof kCheckpointMagic ||
        std::memcmp(bytes.data(), kCheckpointMagic,
                    sizeof kCheckpointMagic) != 0) {
        out.error = path + " is not a DOLCKPT1 checkpoint";
        return out;
    }
    out.valid = true;
    out.goodBytes = sizeof kCheckpointMagic;

    const auto *data =
        reinterpret_cast<const unsigned char *>(bytes.data());
    std::size_t pos = sizeof kCheckpointMagic;
    while (pos < bytes.size()) {
        // Envelope, then payload; any shortfall or checksum mismatch
        // is a torn tail — drop it and everything after.
        if (bytes.size() - pos < kEnvelopeBytes)
            break;
        Cursor env{data + pos + 1, kEnvelopeBytes - 1};
        const std::uint8_t type = data[pos];
        const std::uint32_t length = env.u32();
        const std::uint64_t checksum = env.u64();
        if (bytes.size() - pos - kEnvelopeBytes < length)
            break;
        const unsigned char *payload = data + pos + kEnvelopeBytes;
        if (fnv64(payload, length) != checksum)
            break;

        Cursor in{payload, length};
        bool parsed = true;
        switch (type) {
        case kPlan: {
            JournalPlan plan;
            plan.itemCount = in.u64();
            plan.gridHash = in.u64();
            plan.maxInstrs = in.u64();
            if (in.ok)
                out.plan = plan;
            parsed = in.ok;
            break;
        }
        case kJobDone: {
            JournalJobDone job;
            job.jobIndex = in.u64();
            job.label = in.str();
            job.variant = in.str();
            job.seed = in.u64();
            job.wallMs = in.f64();
            const std::uint32_t rows = in.u32();
            for (std::uint32_t i = 0; i < rows && in.ok; ++i)
                job.rows.push_back(readRow(in));
            if (in.ok)
                out.jobs.push_back(std::move(job));
            parsed = in.ok;
            break;
        }
        case kCaseDone:
            out.cases.push_back(in.u64());
            parsed = in.ok;
            break;
        default:
            parsed = false;
            break;
        }
        if (!parsed)
            break;
        pos += kEnvelopeBytes + length;
        out.goodBytes = pos;
    }
    out.cleanTail = out.goodBytes == bytes.size();
    return out;
}

} // namespace dol::runner
