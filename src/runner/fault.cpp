#include "runner/fault.hpp"

#include <csignal>
#include <cstdlib>

#include "runner/cli.hpp"

namespace dol::runner
{

const FaultPlan::Site *
FaultPlan::siteFor(std::size_t job_index) const
{
    for (const Site &site : sites) {
        if (site.jobIndex == job_index)
            return &site;
    }
    return nullptr;
}

const char *
faultKindName(FaultPlan::Kind kind)
{
    switch (kind) {
    case FaultPlan::Kind::kThrow:
        return "throw";
    case FaultPlan::Kind::kHang:
        return "hang";
    case FaultPlan::Kind::kAbort:
        return "abort";
    case FaultPlan::Kind::kStop:
        return "stop";
    }
    return "?";
}

bool
FaultPlan::parse(const std::string &spec, FaultPlan &out,
                 std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error)
            *error = "bad fault plan \"" + spec + "\": " + why;
        return false;
    };

    FaultPlan plan;
    for (const std::string &token : splitCommas(spec)) {
        const std::size_t at = token.find('@');
        if (at == std::string::npos)
            return fail("missing '@' in \"" + token + "\"");

        Site site;
        const std::string kind = token.substr(0, at);
        if (kind == "throw")
            site.kind = Kind::kThrow;
        else if (kind == "hang")
            site.kind = Kind::kHang;
        else if (kind == "abort")
            site.kind = Kind::kAbort;
        else if (kind == "stop")
            site.kind = Kind::kStop;
        else
            return fail("unknown fault kind \"" + kind + "\"");

        std::string where = token.substr(at + 1);
        const std::size_t colon = where.find(':');
        if (colon != std::string::npos) {
            std::uint64_t times = 0;
            if (!parseUnsignedInRange(where.substr(colon + 1), 1,
                                      1u << 20, times)) {
                return fail("bad attempt count in \"" + token + "\"");
            }
            site.times = static_cast<unsigned>(times);
            where = where.substr(0, colon);
        }
        std::uint64_t index = 0;
        if (!parseUnsigned(where, index))
            return fail("bad cell index in \"" + token + "\"");
        site.jobIndex = static_cast<std::size_t>(index);
        plan.sites.push_back(site);
    }
    if (plan.sites.empty())
        return fail("no fault sites");
    out = std::move(plan);
    return true;
}

namespace
{

std::atomic<bool> g_stop{false};
std::atomic<int> g_stop_signal{0};

extern "C" void
stopSignalHandler(int signo)
{
    // Second signal: the drain is stuck (or the user is impatient) —
    // fall back to the default disposition and die now.
    if (g_stop.exchange(true, std::memory_order_relaxed)) {
        std::signal(signo, SIG_DFL);
        std::raise(signo);
        return;
    }
    g_stop_signal.store(signo, std::memory_order_relaxed);
}

} // namespace

std::atomic<bool> &
signalStopFlag()
{
    return g_stop;
}

int
lastStopSignal()
{
    return g_stop_signal.load(std::memory_order_relaxed);
}

void
installStopHandlers()
{
    std::signal(SIGINT, stopSignalHandler);
    std::signal(SIGTERM, stopSignalHandler);
}

} // namespace dol::runner
