#include "runner/thread_pool.hpp"

namespace dol::runner
{

unsigned
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    _workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock lock(_mutex);
        _stopping = true;
    }
    _wake.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        std::unique_lock lock(_mutex);
        _queue.push_back(std::move(packaged));
    }
    _wake.notify_one();
    return future;
}

void
ThreadPool::wait()
{
    std::unique_lock lock(_mutex);
    _idle.wait(lock, [this] { return _queue.empty() && _active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock lock(_mutex);
            _wake.wait(lock, [this] {
                return _stopping || !_queue.empty();
            });
            // Drain the queue even when stopping: destruction means
            // "finish everything", not "abandon queued work".
            if (_queue.empty())
                return;
            task = std::move(_queue.front());
            _queue.pop_front();
            ++_active;
        }
        task(); // packaged_task captures any exception in the future
        {
            std::unique_lock lock(_mutex);
            --_active;
            if (_queue.empty() && _active == 0)
                _idle.notify_all();
        }
    }
}

} // namespace dol::runner
