/**
 * @file
 * Fixed-size thread pool for the experiment runner.
 *
 * Work items are submitted as callables and executed by a fixed set
 * of worker threads; submit() hands back a std::future so callers can
 * wait per-task and exceptions thrown inside a task propagate to
 * whoever calls future.get(). The destructor drains every queued task
 * before joining (shutdown-after-drain semantics), so submitting and
 * then destroying the pool is a valid "run everything" pattern.
 */

#ifndef DOL_RUNNER_THREAD_POOL_HPP
#define DOL_RUNNER_THREAD_POOL_HPP

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dol::runner
{

/** Worker count to use by default: every hardware thread. */
unsigned hardwareJobs();

class ThreadPool
{
  public:
    /** @param threads worker count; clamped to at least one. */
    explicit ThreadPool(unsigned threads);

    /** Drains all queued work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Queue one task. The returned future completes when the task
     * ran; an exception escaping the task is rethrown by get().
     */
    std::future<void> submit(std::function<void()> task);

    /** Block until every task submitted so far has finished. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(_workers.size());
    }

  private:
    void workerLoop();

    std::mutex _mutex;
    std::condition_variable _wake;  ///< workers: queue non-empty/stop
    std::condition_variable _idle;  ///< waiters: everything finished
    std::deque<std::packaged_task<void()>> _queue;
    std::vector<std::thread> _workers;
    unsigned _active = 0; ///< tasks currently executing
    bool _stopping = false;
};

} // namespace dol::runner

#endif // DOL_RUNNER_THREAD_POOL_HPP
