#include "runner/progress.hpp"

#include <unistd.h>

namespace dol::runner
{

ProgressMeter::ProgressMeter(std::size_t total, bool enabled,
                             std::FILE *out)
    : _out(out), _enabled(enabled && total > 0),
      _tty(isatty(fileno(out)) != 0), _total(total),
      _start(std::chrono::steady_clock::now())
{}

double
ProgressMeter::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - _start)
        .count();
}

void
ProgressMeter::onJobDone(const std::string &label, double wall_ms)
{
    std::lock_guard lock(_mutex);
    ++_done;
    _wallMsSum += wall_ms;
    if (!_enabled)
        return;

    // ETA from real elapsed time scaled by the remaining fraction:
    // robust to any worker count without modeling the pool.
    const double elapsed = elapsedSeconds();
    const double eta =
        _done ? elapsed * static_cast<double>(_total - _done) /
                    static_cast<double>(_done)
              : 0.0;

    if (_tty) {
        std::fprintf(_out,
                     "\r[%zu/%zu] %-32.32s %7.1f ms  eta %5.0fs",
                     _done, _total, label.c_str(), wall_ms, eta);
    } else {
        std::fprintf(_out, "[%zu/%zu] %s (%.1f ms, eta %.0fs)\n",
                     _done, _total, label.c_str(), wall_ms, eta);
    }
    std::fflush(_out);
}

void
ProgressMeter::finish()
{
    std::lock_guard lock(_mutex);
    if (!_enabled)
        return;
    if (_tty)
        std::fputc('\n', _out);
    std::fprintf(_out,
                 "sweep: %zu jobs in %.1fs (%.1f ms avg per job)\n",
                 _done, elapsedSeconds(),
                 _done ? _wallMsSum / static_cast<double>(_done) : 0.0);
    std::fflush(_out);
}

} // namespace dol::runner
