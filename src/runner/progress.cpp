#include "runner/progress.hpp"

#include <unistd.h>

namespace dol::runner
{

double
etaSeconds(std::size_t done, std::size_t skipped, std::size_t total,
           double elapsed_seconds)
{
    const std::size_t completed = done + skipped;
    // Degenerate sweeps: everything already accounted for (resume of
    // a finished sweep, all cells skipped), counters that overran the
    // total, or no executed job to extrapolate from.
    if (completed >= total || done == 0 || elapsed_seconds < 0.0)
        return 0.0;
    const std::size_t remaining = total - completed;
    return elapsed_seconds * static_cast<double>(remaining) /
           static_cast<double>(done);
}

ProgressMeter::ProgressMeter(std::size_t total, bool enabled,
                             std::FILE *out)
    : _out(out), _enabled(enabled && total > 0),
      _tty(isatty(fileno(out)) != 0), _total(total),
      _start(std::chrono::steady_clock::now())
{}

double
ProgressMeter::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - _start)
        .count();
}

void
ProgressMeter::printLine(const std::string &label, double wall_ms,
                         bool skipped)
{
    const double eta =
        etaSeconds(_done, _skipped, _total, elapsedSeconds());
    const std::size_t completed = _done + _skipped;
    const char *note = skipped ? " (from checkpoint)" : "";
    if (_tty) {
        std::fprintf(_out,
                     "\r[%zu/%zu] %-32.32s %7.1f ms  eta %5.0fs",
                     completed, _total, label.c_str(), wall_ms, eta);
    } else {
        std::fprintf(_out, "[%zu/%zu] %s (%.1f ms, eta %.0fs)%s\n",
                     completed, _total, label.c_str(), wall_ms, eta,
                     note);
    }
    std::fflush(_out);
}

void
ProgressMeter::onJobDone(const std::string &label, double wall_ms)
{
    std::lock_guard lock(_mutex);
    ++_done;
    _wallMsSum += wall_ms;
    if (_enabled)
        printLine(label, wall_ms, false);
}

void
ProgressMeter::onJobSkipped(const std::string &label)
{
    std::lock_guard lock(_mutex);
    ++_skipped;
    if (_enabled)
        printLine(label, 0.0, true);
}

void
ProgressMeter::finish()
{
    std::lock_guard lock(_mutex);
    if (!_enabled)
        return;
    if (_tty)
        std::fputc('\n', _out);
    if (_skipped) {
        std::fprintf(
            _out,
            "sweep: %zu jobs in %.1fs (%.1f ms avg per job, %zu "
            "merged from checkpoint)\n",
            _done + _skipped, elapsedSeconds(),
            _done ? _wallMsSum / static_cast<double>(_done) : 0.0,
            _skipped);
    } else {
        std::fprintf(
            _out, "sweep: %zu jobs in %.1fs (%.1f ms avg per job)\n",
            _done, elapsedSeconds(),
            _done ? _wallMsSum / static_cast<double>(_done) : 0.0);
    }
    std::fflush(_out);
}

} // namespace dol::runner
