#include "runner/sweep.hpp"

#include <chrono>
#include <exception>

#include "runner/progress.hpp"
#include "runner/thread_pool.hpp"

namespace dol::runner
{

std::uint64_t
cellSeed(std::string_view workload, std::string_view prefetcher,
         std::string_view variant)
{
    // FNV-1a 64-bit, with '\x1f' separators so ("ab","c") and
    // ("a","bc") hash differently.
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const auto mix = [&hash](std::string_view text) {
        for (const char c : text) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 0x100000001b3ull;
        }
        hash ^= 0x1f;
        hash *= 0x100000001b3ull;
    };
    mix(workload);
    mix(prefetcher);
    mix(variant);
    return hash;
}

SweepRunner::SweepRunner(const SimConfig &base, SweepOptions options)
    : _base(base), _options(options)
{}

unsigned
SweepRunner::workerCount() const
{
    return _options.jobs ? _options.jobs : hardwareJobs();
}

void
SweepRunner::addCell(const WorkloadSpec &spec,
                     const std::string &prefetcher,
                     RunOptions run_options, const std::string &variant)
{
    PendingJob job;
    job.label = prefetcher + "/" + spec.name + variant;
    job.variant = variant;
    job.seed = cellSeed(spec.name, prefetcher, variant);
    job.body = [spec, prefetcher, run_options = std::move(run_options)](
                   ExperimentRunner &runner) {
        std::vector<RunOutput> out;
        out.push_back(runner.run(spec, prefetcher, run_options));
        return out;
    };
    _pending.push_back(std::move(job));
}

void
SweepRunner::addGrid(const std::vector<WorkloadSpec> &specs,
                     const std::vector<std::string> &prefetchers,
                     const RunOptions &run_options,
                     const std::string &variant)
{
    for (const WorkloadSpec &spec : specs) {
        for (const std::string &prefetcher : prefetchers)
            addCell(spec, prefetcher, run_options, variant);
    }
}

void
SweepRunner::addJob(const std::string &label, JobBody body,
                    const std::string &variant)
{
    PendingJob job;
    job.label = label;
    job.variant = variant;
    job.seed = cellSeed(label, "", variant);
    job.body = std::move(body);
    _pending.push_back(std::move(job));
}

SweepRunner::Report
SweepRunner::run()
{
    std::vector<PendingJob> jobs;
    jobs.swap(_pending);

    const auto cache = std::make_shared<BaselineCache>();
    ProgressMeter meter(jobs.size(), _options.progress);

    std::vector<std::vector<RunOutput>> per_job(jobs.size());
    std::vector<double> per_job_ms(jobs.size(), 0.0);

    std::vector<std::future<void>> futures;
    futures.reserve(jobs.size());
    {
        ThreadPool pool(workerCount());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            futures.push_back(pool.submit([&, i] {
                const PendingJob &job = jobs[i];
                // Job-private config: only the seed differs between
                // cells, so shared baselines stay valid.
                SimConfig config = _base;
                config.mem.dram.rngSeed = job.seed;
                ExperimentRunner runner(config, cache);
                const auto start = std::chrono::steady_clock::now();
                per_job[i] = job.body(runner);
                per_job_ms[i] =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                meter.onJobDone(job.label, per_job_ms[i]);
            }));
        }
        pool.wait();
    }
    meter.finish();

    // Rethrow the first job failure (after every job drained, so the
    // worker threads are quiesced and partial results are complete).
    std::exception_ptr first_error;
    for (std::future<void> &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);

    // Aggregate in submission order: deterministic regardless of the
    // completion schedule above.
    Report report;
    report.meta.maxInstrs = _base.maxInstrs;
    report.meta.jobs = workerCount();
    report.meta.elapsedSeconds = meter.elapsedSeconds();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        for (RunOutput &out : per_job[i]) {
            report.store.append(
                makeMetricsRow(out, jobs[i].variant, jobs[i].seed));
            report.meta.wallMs.push_back(per_job_ms[i]);
            report.outputs.push_back(std::move(out));
        }
    }
    return report;
}

} // namespace dol::runner
