#include "runner/sweep.hpp"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <thread>

#include "common/cancel.hpp"
#include "runner/checkpoint.hpp"
#include "runner/progress.hpp"
#include "runner/thread_pool.hpp"

namespace dol::runner
{

std::uint64_t
cellSeed(std::string_view workload, std::string_view prefetcher,
         std::string_view variant)
{
    // FNV-1a 64-bit, with '\x1f' separators so ("ab","c") and
    // ("a","bc") hash differently.
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const auto mix = [&hash](std::string_view text) {
        for (const char c : text) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 0x100000001b3ull;
        }
        hash ^= 0x1f;
        hash *= 0x100000001b3ull;
    };
    mix(workload);
    mix(prefetcher);
    mix(variant);
    return hash;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
partitionRange(std::uint64_t count, unsigned parts)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    if (count == 0 || parts == 0)
        return ranges;
    const std::uint64_t n = parts < count ? parts : count;
    // First (count % n) ranges take one extra cell.
    const std::uint64_t base = count / n;
    const std::uint64_t extra = count % n;
    std::uint64_t begin = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t size = base + (i < extra ? 1 : 0);
        ranges.emplace_back(begin, begin + size);
        begin += size;
    }
    return ranges;
}

SweepRunner::SweepRunner(const SimConfig &base, SweepOptions options)
    : _base(base), _options(std::move(options))
{}

unsigned
SweepRunner::workerCount() const
{
    return _options.jobs ? _options.jobs : hardwareJobs();
}

void
SweepRunner::addCell(const WorkloadSpec &spec,
                     const std::string &prefetcher,
                     RunOptions run_options, const std::string &variant)
{
    PendingJob job;
    job.label = prefetcher + "/" + spec.name + variant;
    job.variant = variant;
    job.seed = cellSeed(spec.name, prefetcher, variant);
    job.body = [spec, prefetcher, run_options = std::move(run_options)](
                   ExperimentRunner &runner) {
        std::vector<RunOutput> out;
        out.push_back(runner.run(spec, prefetcher, run_options));
        return out;
    };
    _pending.push_back(std::move(job));
}

void
SweepRunner::addGrid(const std::vector<WorkloadSpec> &specs,
                     const std::vector<std::string> &prefetchers,
                     const RunOptions &run_options,
                     const std::string &variant)
{
    for (const WorkloadSpec &spec : specs) {
        for (const std::string &prefetcher : prefetchers)
            addCell(spec, prefetcher, run_options, variant);
    }
}

void
SweepRunner::addJob(const std::string &label, JobBody body,
                    const std::string &variant)
{
    PendingJob job;
    job.label = label;
    job.variant = variant;
    job.seed = cellSeed(label, "", variant);
    job.body = std::move(body);
    _pending.push_back(std::move(job));
}

std::uint64_t
SweepRunner::gridHash(const std::vector<PendingJob> &jobs) const
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const auto mixByte = [&hash](unsigned char byte) {
        hash ^= byte;
        hash *= 0x100000001b3ull;
    };
    const auto mixString = [&](std::string_view text) {
        for (const char c : text)
            mixByte(static_cast<unsigned char>(c));
        mixByte(0x1f);
    };
    for (const PendingJob &job : jobs) {
        mixString(job.label);
        mixString(job.variant);
        for (unsigned shift = 0; shift < 64; shift += 8)
            mixByte(static_cast<unsigned char>(job.seed >> shift));
    }
    return hash;
}

namespace
{

/** Sleep roughly @p ms, returning early once @p stop is raised. */
void
backoffSleep(double ms, const std::atomic<bool> &stop)
{
    using clock = std::chrono::steady_clock;
    const auto until =
        clock::now() + std::chrono::duration<double, std::milli>(ms);
    while (clock::now() < until) {
        if (stop.load(std::memory_order_relaxed))
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

/**
 * Act out one fault site on the worker thread. kThrow and kHang leave
 * via exceptions, kAbort leaves via the process exiting, kStop
 * returns so the job it targets still runs (it models a SIGTERM
 * arriving just as the cell starts: the in-flight cell completes and
 * journals, everything queued behind it drains).
 */
void
injectFault(FaultPlan::Kind kind, std::size_t job_index,
            std::atomic<bool> &stop, const CancelToken &token)
{
    switch (kind) {
    case FaultPlan::Kind::kThrow:
        throw std::runtime_error("injected fault: throw at job " +
                                 std::to_string(job_index));
    case FaultPlan::Kind::kHang:
        for (;;) {
            if (stop.load(std::memory_order_relaxed))
                throw CancelledError(
                    "injected hang interrupted by stop request");
            if (token.expired())
                throw CancelledError(
                    "injected hang exceeded the cell timeout");
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    case FaultPlan::Kind::kAbort:
        // No unwinding, no stdio flushing — indistinguishable from
        // SIGKILL except for the exit code.
        std::_Exit(137);
    case FaultPlan::Kind::kStop:
        stop.store(true, std::memory_order_relaxed);
        return;
    }
}

} // namespace

JournalPlan
SweepRunner::plan() const
{
    JournalPlan plan;
    plan.itemCount = _pending.size();
    plan.gridHash = gridHash(_pending);
    plan.maxInstrs = _base.maxInstrs;
    return plan;
}

SweepRunner::Report
SweepRunner::run()
{
    const JournalPlan plan = this->plan();
    std::vector<PendingJob> jobs;
    jobs.swap(_pending);

    std::atomic<bool> private_stop{false};
    std::atomic<bool> &stop =
        _options.stopFlag ? *_options.stopFlag : private_stop;

    enum : std::uint8_t
    {
        kPending, ///< not run (skipped by a drain if the sweep ends)
        kDone,    ///< executed this run
        kResumed, ///< merged from the checkpoint journal
        kFailed,  ///< retry budget exhausted (quarantined)
        kForeign, ///< outside [rangeBegin, rangeEnd): another
                  ///< worker's cells, skipped without "interrupted"
    };
    std::vector<std::uint8_t> state(jobs.size(), kPending);

    // `loaded` owns the records `resumed` points into.
    CheckpointJournal journal;
    CheckpointJournal::Load loaded;
    std::vector<const JournalJobDone *> resumed(jobs.size(), nullptr);
    if (!_options.checkpointPath.empty()) {
        std::string error;
        bool append = false;
        if (_options.resume) {
            loaded = CheckpointJournal::load(_options.checkpointPath);
            if (loaded.fileExists) {
                if (!loaded.valid)
                    throw std::runtime_error(
                        "checkpoint " + _options.checkpointPath +
                        ": " + loaded.error);
                if (!loaded.plan || !(*loaded.plan == plan))
                    throw std::runtime_error(
                        "checkpoint " + _options.checkpointPath +
                        " was written for a different sweep (grid or "
                        "instruction budget mismatch)");
                for (const JournalJobDone &rec : loaded.jobs) {
                    if (rec.jobIndex < jobs.size() &&
                        !resumed[rec.jobIndex]) {
                        resumed[rec.jobIndex] = &rec;
                        state[rec.jobIndex] = kResumed;
                    }
                }
                append = true;
            }
        }
        const bool opened =
            append ? journal.openAppend(_options.checkpointPath,
                                        loaded.goodBytes, &error)
                   : journal.create(_options.checkpointPath, plan,
                                    &error);
        if (!opened)
            throw std::runtime_error("checkpoint " +
                                     _options.checkpointPath + ": " +
                                     error);
    }

    const std::uint64_t range_end =
        _options.rangeEnd ? _options.rangeEnd : jobs.size();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (state[i] == kPending &&
            (i < _options.rangeBegin || i >= range_end))
            state[i] = kForeign;
    }

    const auto cache = std::make_shared<BaselineCache>();
    ProgressMeter meter(jobs.size(), _options.progress);

    std::vector<std::vector<RunOutput>> per_job(jobs.size());
    std::vector<double> per_job_ms(jobs.size(), 0.0);
    std::vector<FailedCell> failed(jobs.size());
    std::vector<std::exception_ptr> errors(jobs.size());

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (state[i] == kResumed || state[i] == kForeign)
            meter.onJobSkipped(jobs[i].label);
    }

    const auto supervise = [&](std::size_t i) {
        const PendingJob &job = jobs[i];
        const FaultPlan::Site *site =
            _options.faultPlan ? _options.faultPlan->siteFor(i)
                               : nullptr;
        const unsigned max_attempts = _options.retries + 1;
        std::string last_kind;
        std::string last_error;
        std::exception_ptr last_exception;
        unsigned attempts = 0;
        for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
            if (attempt > 0) {
                const unsigned doubling =
                    attempt - 1 < 20u ? attempt - 1 : 20u;
                backoffSleep(_options.retryBackoffMs *
                                 static_cast<double>(1u << doubling),
                             stop);
            }
            // Drain check: once stop is raised, jobs that have not
            // started an attempt stay kPending and re-run on resume.
            if (stop.load(std::memory_order_relaxed))
                return;
            ++attempts;
            CancelToken sim_token;
            if (_options.cellTimeoutMs > 0.0) {
                sim_token.deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            _options.cellTimeoutMs));
            }
            try {
                if (site && FaultPlan::firesOn(*site, attempt))
                    injectFault(site->kind, i, stop, sim_token);
                // Job-private config: only the seed differs between
                // cells, so shared baselines stay valid.
                SimConfig config = _base;
                config.mem.dram.rngSeed = job.seed;
                ExperimentRunner runner(config, cache);
                if (sim_token.hasDeadline())
                    runner.setCancelToken(&sim_token);
                const auto start = std::chrono::steady_clock::now();
                std::vector<RunOutput> outs = job.body(runner);
                per_job_ms[i] =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                if (journal.isOpen()) {
                    JournalJobDone rec;
                    rec.jobIndex = i;
                    rec.label = job.label;
                    rec.variant = job.variant;
                    rec.seed = job.seed;
                    rec.wallMs = per_job_ms[i];
                    rec.rows.reserve(outs.size());
                    for (const RunOutput &out : outs)
                        rec.rows.push_back(makeMetricsRow(
                            out, job.variant, job.seed));
                    journal.appendJobDone(rec);
                }
                per_job[i] = std::move(outs);
                state[i] = kDone;
                meter.onJobDone(job.label, per_job_ms[i]);
                return;
            } catch (const CancelledError &e) {
                if (stop.load(std::memory_order_relaxed)) {
                    // Drained, not failed: re-runs on resume.
                    return;
                }
                last_kind = "timeout";
                last_error = e.what();
                last_exception = std::current_exception();
            } catch (const std::exception &e) {
                last_kind = "error";
                last_error = e.what();
                last_exception = std::current_exception();
            } catch (...) {
                last_kind = "error";
                last_error = "unknown exception";
                last_exception = std::current_exception();
            }
        }
        state[i] = kFailed;
        if (_options.onError == SweepOptions::OnError::kQuarantine) {
            FailedCell cell;
            cell.label = job.label;
            cell.variant = job.variant;
            cell.seed = job.seed;
            cell.attempts = attempts;
            cell.kind = last_kind;
            cell.error = last_error;
            if (journal.isOpen() && _options.journalFailures) {
                JournalCellFailed rec;
                rec.jobIndex = i;
                rec.cell = cell;
                journal.appendCellFailed(rec);
            }
            failed[i] = std::move(cell);
            meter.onJobDone(job.label + " [failed]", per_job_ms[i]);
        } else {
            errors[i] = last_exception;
        }
    };

    std::vector<std::future<void>> futures;
    futures.reserve(jobs.size());
    {
        ThreadPool pool(workerCount());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (state[i] == kResumed || state[i] == kForeign)
                continue;
            futures.push_back(pool.submit([&supervise, i] {
                supervise(i);
            }));
        }
        pool.wait();
    }
    meter.finish();
    journal.close();

    // Supervision catches job errors itself; anything escaping to a
    // future is an infrastructure bug — surface the first one.
    for (std::future<void> &future : futures)
        future.get();

    // kPropagate: rethrow the first job failure in submission order,
    // after every other job drained (legacy semantics).
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }

    // Aggregate in submission order: deterministic regardless of the
    // completion schedule above.
    Report report;
    report.meta.maxInstrs = _base.maxInstrs;
    report.meta.jobs = workerCount();
    report.meta.elapsedSeconds = meter.elapsedSeconds();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        switch (state[i]) {
        case kDone:
            for (RunOutput &out : per_job[i]) {
                report.store.append(makeMetricsRow(
                    out, jobs[i].variant, jobs[i].seed));
                report.meta.wallMs.push_back(per_job_ms[i]);
                report.outputs.push_back(std::move(out));
            }
            break;
        case kResumed:
            for (const MetricsRow &row : resumed[i]->rows) {
                report.store.append(row);
                report.meta.wallMs.push_back(resumed[i]->wallMs);
            }
            ++report.meta.resumedJobs;
            break;
        case kFailed:
            report.meta.failedCells.push_back(std::move(failed[i]));
            break;
        case kForeign:
            // Another lease's cells: absent from this worker's
            // report by design, not an interruption.
            break;
        default:
            report.interrupted = true;
            break;
        }
    }
    return report;
}

} // namespace dol::runner
