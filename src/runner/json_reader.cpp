#include "runner/json_reader.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dol::runner
{

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v._type = Type::kBool;
    v._bool = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v._type = Type::kNumber;
    v._number = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v._type = Type::kString;
    v._string = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> a)
{
    JsonValue v;
    v._type = Type::kArray;
    v._array = std::move(a);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> o)
{
    JsonValue v;
    v._type = Type::kObject;
    v._object = std::move(o);
    return v;
}

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (_type != Type::kObject)
        return nullptr;
    const auto it = _object.find(name);
    return it == _object.end() ? nullptr : &it->second;
}

double
JsonValue::numberOr(const std::string &name, double fallback) const
{
    const JsonValue *v = find(name);
    return v && v->type() == Type::kNumber ? v->number() : fallback;
}

std::string
JsonValue::stringOr(const std::string &name,
                    const std::string &fallback) const
{
    const JsonValue *v = find(name);
    return v && v->type() == Type::kString ? v->str() : fallback;
}

namespace
{

class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : _text(text), _error(error)
    {}

    bool
    parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (_pos != _text.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &message)
    {
        if (_error) {
            *_error = message + " at offset " + std::to_string(_pos);
        }
        return false;
    }

    void
    skipSpace()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r')) {
            ++_pos;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (_text.substr(_pos, word.size()) != word)
            return false;
        _pos += word.size();
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        const char c = _text[_pos];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"': {
              std::string s;
              if (!parseString(s))
                  return false;
              out = JsonValue::makeString(std::move(s));
              return true;
          }
          case 't':
            if (!literal("true"))
                return fail("bad literal");
            out = JsonValue::makeBool(true);
            return true;
          case 'f':
            if (!literal("false"))
                return fail("bad literal");
            out = JsonValue::makeBool(false);
            return true;
          case 'n':
            if (!literal("null"))
                return fail("bad literal");
            out = JsonValue::makeNull();
            return true;
          default: return parseNumber(out);
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '+' ||
                _text[_pos] == '-')) {
            ++_pos;
        }
        if (_pos == start)
            return fail("expected value");
        const std::string token(_text.substr(start, _pos - start));
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0')
            return fail("bad number '" + token + "'");
        out = JsonValue::makeNumber(value);
        return true;
    }

    static void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
    }

    bool
    parseString(std::string &out)
    {
        ++_pos; // opening quote
        out.clear();
        while (_pos < _text.size()) {
            const char c = _text[_pos];
            if (c == '"') {
                ++_pos;
                return true;
            }
            if (c == '\\') {
                if (_pos + 1 >= _text.size())
                    return fail("dangling escape");
                const char esc = _text[_pos + 1];
                _pos += 2;
                switch (esc) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': {
                      if (_pos + 4 > _text.size())
                          return fail("short \\u escape");
                      unsigned code = 0;
                      for (int i = 0; i < 4; ++i) {
                          const char h = _text[_pos + i];
                          code <<= 4;
                          if (h >= '0' && h <= '9')
                              code |= static_cast<unsigned>(h - '0');
                          else if (h >= 'a' && h <= 'f')
                              code |= static_cast<unsigned>(
                                  h - 'a' + 10);
                          else if (h >= 'A' && h <= 'F')
                              code |= static_cast<unsigned>(
                                  h - 'A' + 10);
                          else
                              return fail("bad \\u escape");
                      }
                      _pos += 4;
                      appendUtf8(out, code);
                      break;
                  }
                  default: return fail("unknown escape");
                }
            } else {
                out.push_back(c);
                ++_pos;
            }
        }
        return fail("unterminated string");
    }

    /** Containers recurse through parseValue; a hostile document of
     *  100k unclosed '['s would otherwise smash the stack. 256 levels
     *  is far beyond anything the runner writes. */
    struct DepthGuard
    {
        explicit DepthGuard(int &depth) : _depth(depth) { ++_depth; }
        ~DepthGuard() { --_depth; }
        int &_depth;
    };
    static constexpr int kMaxDepth = 256;

    bool
    parseArray(JsonValue &out)
    {
        const DepthGuard guard(_depth);
        if (_depth > kMaxDepth)
            return fail("nesting too deep");
        ++_pos; // '['
        std::vector<JsonValue> elems;
        skipSpace();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            out = JsonValue::makeArray(std::move(elems));
            return true;
        }
        for (;;) {
            JsonValue elem;
            skipSpace();
            if (!parseValue(elem))
                return false;
            elems.push_back(std::move(elem));
            skipSpace();
            if (_pos >= _text.size())
                return fail("unterminated array");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == ']') {
                ++_pos;
                out = JsonValue::makeArray(std::move(elems));
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        const DepthGuard guard(_depth);
        if (_depth > kMaxDepth)
            return fail("nesting too deep");
        ++_pos; // '{'
        std::map<std::string, JsonValue> members;
        skipSpace();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            out = JsonValue::makeObject(std::move(members));
            return true;
        }
        for (;;) {
            skipSpace();
            if (_pos >= _text.size() || _text[_pos] != '"')
                return fail("expected member name");
            std::string name;
            if (!parseString(name))
                return false;
            skipSpace();
            if (_pos >= _text.size() || _text[_pos] != ':')
                return fail("expected ':'");
            ++_pos;
            skipSpace();
            JsonValue member;
            if (!parseValue(member))
                return false;
            members.emplace(std::move(name), std::move(member));
            skipSpace();
            if (_pos >= _text.size())
                return fail("unterminated object");
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == '}') {
                ++_pos;
                out = JsonValue::makeObject(std::move(members));
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    std::string_view _text;
    std::string *_error;
    std::size_t _pos = 0;
    int _depth = 0;
};

} // namespace

bool
parseJson(std::string_view text, JsonValue &out, std::string *error)
{
    return Parser(text, error).parse(out);
}

bool
parseJsonFile(const std::string &path, JsonValue &out,
              std::string *error)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::string text;
    char buffer[1 << 16];
    std::size_t got;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0)
        text.append(buffer, got);
    std::fclose(file);
    return parseJson(text, out, error);
}

} // namespace dol::runner
