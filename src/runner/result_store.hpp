/**
 * @file
 * Thread-safe result aggregation for parallel sweeps.
 *
 * Workers complete cells in schedule-dependent order; the store keeps
 * every row in its pre-assigned grid slot so serialization (CSV, the
 * dol-sweep-v1 JSON document) is always in grid order and therefore
 * byte-identical between `--jobs 1` and `--jobs N` runs. Wall-clock
 * timings are deliberately kept out of the metric rows — they live in
 * a separate, documented-as-nondeterministic "timing" section of the
 * JSON document.
 */

#ifndef DOL_RUNNER_RESULT_STORE_HPP
#define DOL_RUNNER_RESULT_STORE_HPP

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace dol::runner
{

class JsonWriter;

/** One flattened (workload, prefetcher, config) metric row. */
struct MetricsRow
{
    std::string workload;
    std::string prefetcher;
    /** Config variant label (e.g. ":L1", destination policy). */
    std::string variant;
    /** Deterministic per-cell seed the job ran with. */
    std::uint64_t seed = 0;

    double baselineIpc = 0.0;
    double ipc = 0.0;
    double speedup = 1.0;
    double baselineMpkiL1 = 0.0;
    std::uint64_t prefetchesIssued = 0;
    double scope = 0.0;
    double effAccuracyL1 = 0.0;
    double effCoverageL1 = 0.0;
    double effAccuracyL2 = 0.0;
    double effCoverageL2 = 0.0;
    double trafficNormalized = 1.0;
    std::uint64_t instructions = 0;

    /** Optional end-of-run counter snapshot (dolsim --counters);
     *  serialized as the row's "counters" JSON object when non-empty. */
    CounterRegistry counters;
};

/** Flatten a RunOutput into a metric row. */
MetricsRow makeMetricsRow(const RunOutput &out,
                          const std::string &variant,
                          std::uint64_t seed);

/**
 * Serialize one row as its dol-sweep-v1 "results" array element.
 * ResultStore::toJson() and the streaming fleet merger both emit rows
 * through this exact function, which is what makes a merged document
 * byte-identical to a single-process one.
 */
void writeMetricsRowJson(JsonWriter &json, const MetricsRow &row);

/**
 * A cell that exhausted its retry budget. The sweep completes around
 * it; the document records the loss explicitly instead of aborting.
 */
struct FailedCell
{
    std::string label;
    std::string variant;
    std::uint64_t seed = 0;
    /** Attempts made (first run + retries). */
    unsigned attempts = 0;
    /** "error" (threw) or "timeout" (cell deadline expired). */
    std::string kind;
    /** what() of the last attempt's exception. */
    std::string error;
};

/** Serialize one cell as its "failed_cells" array element (shared
 *  with the fleet merger for the same byte-identity reason as
 *  writeMetricsRowJson). */
void writeFailedCellJson(JsonWriter &json, const FailedCell &cell);

/** Sweep-level metadata serialized into the JSON header. */
struct SweepMeta
{
    std::string generator = "dolsim";
    std::uint64_t maxInstrs = 0;
    unsigned jobs = 1;
    /** Total sweep wall-clock (nondeterministic; timing section). */
    double elapsedSeconds = 0.0;
    /** Per-row wall milliseconds, grid order (timing section). */
    std::vector<double> wallMs;
    /** Jobs merged from a checkpoint instead of re-run (timing
     *  section: deterministic results stay byte-identical). */
    std::uint64_t resumedJobs = 0;
    /** Quarantined cells, submission order. Serialized as the
     *  "failed_cells" array — only when non-empty, so documents from
     *  clean sweeps keep their exact historical bytes. */
    std::vector<FailedCell> failedCells;
};

class ResultStore
{
  public:
    ResultStore() = default;

    /** Pre-size the grid: every row index must be < slots. */
    explicit ResultStore(std::size_t slots) { resize(slots); }

    /** Movable (fresh mutex); the source must be quiescent. */
    ResultStore(ResultStore &&other) noexcept;
    ResultStore &operator=(ResultStore &&other) noexcept;

    void resize(std::size_t slots);
    std::size_t size() const;

    /** Place @p row into grid slot @p index. Thread-safe. */
    void set(std::size_t index, MetricsRow row);

    /** Append a row at the end. Thread-safe. */
    void append(MetricsRow row);

    /** Snapshot of all filled rows, grid order. */
    std::vector<MetricsRow> rows() const;

    static const char *csvHeader();
    static std::string csvLine(const MetricsRow &row);

    /** Whole store as CSV (header + rows, grid order). */
    std::string toCsv() const;

    /**
     * Whole store as a dol-sweep-v1 JSON document. The "results"
     * array is deterministic for a given grid; "timing" is not.
     */
    std::string toJson(const SweepMeta &meta) const;

    /** Just the deterministic "results" array (determinism checks). */
    std::string resultsJson() const;

    /** Write toJson() to a file; false on I/O error. */
    bool writeJsonFile(const std::string &path,
                       const SweepMeta &meta) const;

  private:
    mutable std::mutex _mutex;
    std::vector<MetricsRow> _rows;
    std::vector<bool> _filled;
};

} // namespace dol::runner

#endif // DOL_RUNNER_RESULT_STORE_HPP
