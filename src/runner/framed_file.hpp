/**
 * @file
 * Append-only framed record files: the one durable container format
 * behind both DOLCKPT1 checkpoint journals and DOLLEAS1 lease
 * ledgers.
 *
 * Layout: an 8-byte magic, then records of
 *
 *     [type u8 | payload-length u32 | fnv64(payload) u64 | payload]
 *
 * all integers little-endian. The writer fsyncs after every append,
 * so at any kill point — SIGKILL included — the file holds a prefix
 * of whole records plus at most one torn tail. The reader streams
 * records one at a time (it never materializes the whole file) and
 * stops at the first short or checksum-failing record, reporting how
 * many clean bytes precede it; a resuming writer truncates the tail
 * away before appending.
 */

#ifndef DOL_RUNNER_FRAMED_FILE_HPP
#define DOL_RUNNER_FRAMED_FILE_HPP

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace dol::runner
{

/** Bytes before the payload: type u8 + length u32 + fnv64 u64. */
constexpr std::size_t kFrameEnvelopeBytes = 1 + 4 + 8;
constexpr std::size_t kFrameMagicBytes = 8;

/** Single-writer append side. Thread-safe; every append fsyncs. */
class FramedWriter
{
  public:
    FramedWriter() = default;
    ~FramedWriter() { close(); }

    FramedWriter(const FramedWriter &) = delete;
    FramedWriter &operator=(const FramedWriter &) = delete;

    /** Truncate/create @p path and write the 8-byte @p magic. */
    bool create(const std::string &path, const char (&magic)[8],
                std::string *error = nullptr);

    /**
     * Reopen an existing file for appending, first truncating it to
     * @p good_bytes (from a reader's goodBytes()) so a torn tail from
     * a previous crash never precedes new records.
     */
    bool openAppend(const std::string &path, std::uint64_t good_bytes,
                    std::string *error = nullptr);

    /**
     * Append + fsync one record. The fsync is the crash-safety
     * point: once this returns true, a SIGKILL cannot lose the
     * record.
     */
    bool appendRecord(std::uint8_t type, const std::string &payload);

    bool isOpen() const { return _file != nullptr; }
    void close();

  private:
    std::mutex _mutex;
    std::FILE *_file = nullptr;
};

/**
 * Streaming reader: records come back one at a time in file order,
 * with their byte offset, so callers can index large journals and
 * revisit individual records with seek() instead of holding every
 * decoded payload in memory.
 */
class FramedReader
{
  public:
    struct Record
    {
        std::uint8_t type = 0;
        std::string payload;
        /** Byte offset of the record's envelope in the file. */
        std::uint64_t offset = 0;
    };

    FramedReader() = default;
    ~FramedReader() { close(); }

    FramedReader(const FramedReader &) = delete;
    FramedReader &operator=(const FramedReader &) = delete;

    /**
     * Open @p path and check the magic. A missing file reports
     * fileExists()==false; wrong magic reports valid()==false. Both
     * leave the reader closed and return false.
     */
    bool open(const std::string &path, const char (&magic)[8]);

    /**
     * Read the next intact record. False at clean end-of-file or at
     * a torn/corrupt tail (distinguish with tornTail()); never
     * throws and never blocks on malformed input.
     */
    bool next(Record &out);

    /** Re-position to a record offset previously returned by next(). */
    bool seek(std::uint64_t offset);

    bool fileExists() const { return _fileExists; }
    /** Magic matched; false means not this format at all. */
    bool valid() const { return _valid; }
    /** A torn/corrupt tail was hit (only meaningful after next()
     *  returned false). */
    bool tornTail() const { return _tornTail; }
    /** Bytes of clean prefix (magic + whole verified records). */
    std::uint64_t goodBytes() const { return _goodBytes; }

    void close();

  private:
    std::FILE *_file = nullptr;
    bool _fileExists = false;
    bool _valid = false;
    bool _tornTail = false;
    std::uint64_t _pos = 0;
    std::uint64_t _goodBytes = 0;
};

} // namespace dol::runner

#endif // DOL_RUNNER_FRAMED_FILE_HPP
