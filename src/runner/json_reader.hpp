/**
 * @file
 * Minimal recursive-descent JSON parser: just enough for tools and
 * tests to read back the runner's structured result files (round-trip
 * checks, result post-processing) without an external dependency.
 *
 * Supports the full JSON value grammar with \uXXXX escapes decoded to
 * UTF-8. Numbers parse as double; integral values round-trip exactly
 * up to 2^53, which covers every counter the simulator emits into the
 * metric rows.
 */

#ifndef DOL_RUNNER_JSON_READER_HPP
#define DOL_RUNNER_JSON_READER_HPP

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dol::runner
{

class JsonValue
{
  public:
    enum class Type
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::kNull; }

    bool boolean() const { return _bool; }
    double number() const { return _number; }
    const std::string &str() const { return _string; }
    const std::vector<JsonValue> &array() const { return _array; }
    const std::map<std::string, JsonValue> &object() const
    {
        return _object;
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;

    /** Convenience accessors with defaults. */
    double numberOr(const std::string &name, double fallback) const;
    std::string stringOr(const std::string &name,
                         const std::string &fallback) const;

    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> a);
    static JsonValue makeObject(std::map<std::string, JsonValue> o);

  private:
    Type _type = Type::kNull;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<JsonValue> _array;
    std::map<std::string, JsonValue> _object;
};

/**
 * Parse a complete JSON document.
 * @param error receives a message with offset on failure (optional)
 * @return the value, or nullopt-equivalent: null value + error set
 */
bool parseJson(std::string_view text, JsonValue &out,
               std::string *error = nullptr);

/** Read and parse a whole file; false + error on I/O or syntax. */
bool parseJsonFile(const std::string &path, JsonValue &out,
                   std::string *error = nullptr);

} // namespace dol::runner

#endif // DOL_RUNNER_JSON_READER_HPP
