/**
 * @file
 * Small, strictly-validating helpers for command-line parsing.
 *
 * dolsim's flag handling routes every numeric or list-valued flag
 * through these functions so malformed input ("-4" jobs, "1e3"
 * instruction counts, empty file paths) is rejected with a message
 * instead of silently truncating through strtoul. Kept in the runner
 * library (not the tool) so unit tests can exercise each rule.
 */

#ifndef DOL_RUNNER_CLI_HPP
#define DOL_RUNNER_CLI_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace dol::runner
{

/** Split on commas, skipping empty tokens ("TPC,,SPP" -> 2 names). */
std::vector<std::string> splitCommas(const std::string &value);

/**
 * Parse a strictly non-negative decimal integer: every character a
 * digit, at least one digit, no overflow past 2^64-1.
 * @return false (out untouched) on any violation — including a
 *         leading '-' or '+', whitespace, hex, or exponents.
 */
bool parseUnsigned(const std::string &text, std::uint64_t &out);

/**
 * parseUnsigned with an inclusive upper bound (e.g. a jobs cap);
 * false when out of range.
 */
bool parseUnsignedInRange(const std::string &text, std::uint64_t min,
                          std::uint64_t max, std::uint64_t &out);

/**
 * Parse a --coordinator mode name. "hardwired" selects the paper's
 * fixed T2->P1->C1 policy, "adaptive" the feedback-driven one;
 * anything else — including the empty string — is rejected so a typo
 * can never silently fall back to the default policy.
 * @return false (out untouched) on an unknown mode.
 */
bool parseCoordinatorMode(const std::string &text, bool &adaptive_out);

/**
 * Per-cell trace file name for multi-cell sweeps:
 * "<base>.<workload>.<prefetcher><variant>". Single-cell sweeps use
 * @p base verbatim (callers special-case that).
 */
std::string cellTracePath(const std::string &base,
                          const std::string &workload,
                          const std::string &prefetcher,
                          const std::string &variant);

} // namespace dol::runner

#endif // DOL_RUNNER_CLI_HPP
