/**
 * @file
 * SweepRunner: expands a declarative (workload × prefetcher ×
 * config) grid into jobs, shards them across a fixed thread pool,
 * and aggregates results in grid order.
 *
 * Determinism contract: each job's seed derives from its cell key
 * (workload, prefetcher, variant) — never from the thread schedule —
 * and per-job simulator state (kernel, memory hierarchy, DRAM drop
 * RNG) is private to the job, so `--jobs 1` and `--jobs 16` produce
 * bit-identical metric rows. Baseline runs are shared through a
 * thread-safe per-sweep cache: the first job needing a workload's
 * baseline computes it once, everyone else blocks on the same future.
 *
 * Fault tolerance (all opt-in through SweepOptions):
 *  - checkpointPath journals every completed job (rows + counters,
 *    fsync'd) through a CheckpointJournal; resume=true skips the
 *    journaled jobs and merges their rows back so the final document
 *    is byte-identical to an uninterrupted run's deterministic parts.
 *  - cellTimeoutMs arms a per-attempt cooperative deadline (the
 *    simulator polls it every few thousand instructions), retries
 *    re-run throwing/timing-out cells with exponential backoff, and
 *    cells that exhaust the budget are quarantined into
 *    Report::meta.failedCells instead of aborting the sweep
 *    (onError = kQuarantine; the default kPropagate keeps the legacy
 *    rethrow-after-drain behavior).
 *  - stopFlag is polled before each job starts and at simulator
 *    cancellation points: once raised (signal handler, fault plan, or
 *    test), in-flight jobs finish — or unwind at the next poll — and
 *    are journaled, queued jobs are skipped, and run() returns an
 *    interrupted, resumable report.
 *  - faultPlan deterministically injects throw/hang/abort/stop faults
 *    into worker jobs for the crash-safety tests.
 */

#ifndef DOL_RUNNER_SWEEP_HPP
#define DOL_RUNNER_SWEEP_HPP

#include <atomic>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runner/checkpoint.hpp"
#include "runner/fault.hpp"
#include "runner/result_store.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

namespace dol::runner
{

/**
 * Deterministic per-cell seed: FNV-1a over the cell key. Identical
 * on every platform and independent of scheduling.
 */
std::uint64_t cellSeed(std::string_view workload,
                       std::string_view prefetcher,
                       std::string_view variant = "");

/**
 * Split @p count cells into at most @p parts contiguous, non-empty,
 * balanced [begin, end) ranges that exactly cover [0, count) in
 * order. Fewer than @p parts ranges come back when count < parts;
 * count == 0 yields no ranges. The fleet coordinator leases these
 * ranges to workers.
 */
std::vector<std::pair<std::uint64_t, std::uint64_t>>
partitionRange(std::uint64_t count, unsigned parts);

struct SweepOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Print the live progress line to stderr. */
    bool progress = true;

    /** Journal completed jobs here; empty = no checkpointing. */
    std::string checkpointPath;
    /** Load checkpointPath first and skip the jobs it records. A
     *  missing/empty journal resumes nothing; a journal written for a
     *  different grid is an error. */
    bool resume = false;

    /** Per-attempt wall-clock budget in ms; 0 = none. Cooperative:
     *  enforced at simulator cancellation points. */
    double cellTimeoutMs = 0.0;
    /** Extra attempts after the first for cells that throw or time
     *  out. */
    unsigned retries = 0;
    /** Backoff before retry r is retryBackoffMs * 2^r. */
    double retryBackoffMs = 100.0;

    enum class OnError
    {
        /** Rethrow the first job error from run() after draining. */
        kPropagate,
        /** Complete the sweep; record the cell in failedCells. */
        kQuarantine,
    };
    OnError onError = OnError::kPropagate;

    /** Graceful-drain flag (e.g. &signalStopFlag()); may also be
     *  raised by a stop@K fault. nullptr = sweep-private flag. */
    std::atomic<bool> *stopFlag = nullptr;

    /** Deterministic fault injection (tests); nullptr = none. */
    const FaultPlan *faultPlan = nullptr;

    /** Execute only jobs [rangeBegin, rangeEnd) of the queued grid —
     *  a fleet worker's lease. Jobs outside the range are skipped
     *  without marking the sweep interrupted, and the journal plan
     *  still describes the full grid, so every worker's journal
     *  shares one identity and their records merge by job index.
     *  rangeEnd = 0 means "to the end of the grid". */
    std::uint64_t rangeBegin = 0;
    std::uint64_t rangeEnd = 0;

    /** Also journal quarantined cells (kCellFailed records). Fleet
     *  workers set this so the coordinator counts a failed cell as
     *  covered — instead of endlessly re-leasing it — and the merger
     *  surfaces it in the merged document's failed_cells. Only
     *  meaningful with a checkpointPath and onError::kQuarantine. */
    bool journalFailures = false;
};

/**
 * A job body runs on a worker with a job-private ExperimentRunner
 * (seeded per the cell key, sharing the sweep's baseline cache) and
 * returns the outputs to record, in order. Simple grid cells return
 * exactly one output; composite jobs (e.g. a dependent
 * baseline→measure chain) may return several or none.
 */
using JobBody =
    std::function<std::vector<RunOutput>(ExperimentRunner &)>;

class SweepRunner
{
  public:
    explicit SweepRunner(const SimConfig &base,
                         SweepOptions options = {});

    /** Replace the execution options (worker count, progress). */
    void setOptions(SweepOptions options)
    {
        _options = std::move(options);
    }

    /** One (workload, prefetcher) cell with optional run options. */
    void addCell(const WorkloadSpec &spec,
                 const std::string &prefetcher,
                 RunOptions run_options = {},
                 const std::string &variant = "");

    /** Full cross product: every workload × every prefetcher. */
    void addGrid(const std::vector<WorkloadSpec> &specs,
                 const std::vector<std::string> &prefetchers,
                 const RunOptions &run_options = {},
                 const std::string &variant = "");

    /**
     * Custom job for flows that don't fit a plain cell (multicore
     * mixes, dependent run chains). Outputs land in submission order
     * like any other job's.
     */
    void addJob(const std::string &label, JobBody body,
                const std::string &variant = "");

    struct Report
    {
        /** Outputs of jobs executed this run, flattened in submission
         *  order. Jobs merged from a checkpoint contribute metric
         *  rows to `store` but no RunOutput (the journal keeps rows,
         *  not full simulator state). */
        std::vector<RunOutput> outputs;
        /** Flattened metric rows, grid order — executed and resumed
         *  jobs alike. */
        ResultStore store;
        /** Header/timing info for ResultStore::toJson(), including
         *  failedCells and the resumed-job count. */
        SweepMeta meta;
        /** A stop request drained the sweep early; the skipped jobs
         *  are absent from `store` and the checkpoint can resume
         *  them. */
        bool interrupted = false;

        bool ok() const
        {
            return !interrupted && meta.failedCells.empty();
        }
    };

    /**
     * Execute all queued jobs. Blocks until the sweep completes or
     * drains. In kPropagate mode an exception thrown by a job body
     * (after retries) is rethrown here once every other job drained;
     * in kQuarantine mode failures land in meta.failedCells instead.
     * The queue is consumed: a second run() starts empty.
     */
    Report run();

    std::size_t pendingJobs() const { return _pending.size(); }

    /** Journal identity of the currently queued grid — exactly what
     *  run() writes as the kPlan record. The fleet coordinator pins
     *  this into the lease ledger; every worker rebuilds the grid
     *  from the same arguments and refuses a mismatching ledger. */
    JournalPlan plan() const;

    /** Resolved worker count (options.jobs or hw concurrency). */
    unsigned workerCount() const;

  private:
    struct PendingJob
    {
        std::string label;
        std::string variant;
        std::uint64_t seed;
        JobBody body;
    };

    /** FNV-1a over every pending job's (label, variant, seed):
     *  identifies the grid a checkpoint belongs to. */
    std::uint64_t gridHash(const std::vector<PendingJob> &jobs) const;

    SimConfig _base;
    SweepOptions _options;
    std::vector<PendingJob> _pending;
};

} // namespace dol::runner

#endif // DOL_RUNNER_SWEEP_HPP
