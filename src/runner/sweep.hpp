/**
 * @file
 * SweepRunner: expands a declarative (workload × prefetcher ×
 * config) grid into jobs, shards them across a fixed thread pool,
 * and aggregates results in grid order.
 *
 * Determinism contract: each job's seed derives from its cell key
 * (workload, prefetcher, variant) — never from the thread schedule —
 * and per-job simulator state (kernel, memory hierarchy, DRAM drop
 * RNG) is private to the job, so `--jobs 1` and `--jobs 16` produce
 * bit-identical metric rows. Baseline runs are shared through a
 * thread-safe per-sweep cache: the first job needing a workload's
 * baseline computes it once, everyone else blocks on the same future.
 */

#ifndef DOL_RUNNER_SWEEP_HPP
#define DOL_RUNNER_SWEEP_HPP

#include <functional>
#include <string>
#include <vector>

#include "runner/result_store.hpp"
#include "sim/experiment.hpp"
#include "workloads/suite.hpp"

namespace dol::runner
{

/**
 * Deterministic per-cell seed: FNV-1a over the cell key. Identical
 * on every platform and independent of scheduling.
 */
std::uint64_t cellSeed(std::string_view workload,
                       std::string_view prefetcher,
                       std::string_view variant = "");

struct SweepOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;
    /** Print the live progress line to stderr. */
    bool progress = true;
};

/**
 * A job body runs on a worker with a job-private ExperimentRunner
 * (seeded per the cell key, sharing the sweep's baseline cache) and
 * returns the outputs to record, in order. Simple grid cells return
 * exactly one output; composite jobs (e.g. a dependent
 * baseline→measure chain) may return several or none.
 */
using JobBody =
    std::function<std::vector<RunOutput>(ExperimentRunner &)>;

class SweepRunner
{
  public:
    explicit SweepRunner(const SimConfig &base,
                         SweepOptions options = {});

    /** Replace the execution options (worker count, progress). */
    void setOptions(SweepOptions options) { _options = options; }

    /** One (workload, prefetcher) cell with optional run options. */
    void addCell(const WorkloadSpec &spec,
                 const std::string &prefetcher,
                 RunOptions run_options = {},
                 const std::string &variant = "");

    /** Full cross product: every workload × every prefetcher. */
    void addGrid(const std::vector<WorkloadSpec> &specs,
                 const std::vector<std::string> &prefetchers,
                 const RunOptions &run_options = {},
                 const std::string &variant = "");

    /**
     * Custom job for flows that don't fit a plain cell (multicore
     * mixes, dependent run chains). Outputs land in submission order
     * like any other job's.
     */
    void addJob(const std::string &label, JobBody body,
                const std::string &variant = "");

    struct Report
    {
        /** Every job's outputs, flattened in submission order. */
        std::vector<RunOutput> outputs;
        /** Flattened metric rows, same order. */
        ResultStore store;
        /** Header/timing info for ResultStore::toJson(). */
        SweepMeta meta;
    };

    /**
     * Execute all queued jobs. Blocks until the sweep completes; an
     * exception thrown by any job body is rethrown here (remaining
     * jobs still drain first). The queue is consumed: a second run()
     * starts empty.
     */
    Report run();

    std::size_t pendingJobs() const { return _pending.size(); }

    /** Resolved worker count (options.jobs or hw concurrency). */
    unsigned workerCount() const;

  private:
    struct PendingJob
    {
        std::string label;
        std::string variant;
        std::uint64_t seed;
        JobBody body;
    };

    SimConfig _base;
    SweepOptions _options;
    std::vector<PendingJob> _pending;
};

} // namespace dol::runner

#endif // DOL_RUNNER_SWEEP_HPP
