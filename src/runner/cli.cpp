#include "runner/cli.hpp"

namespace dol::runner
{

std::vector<std::string>
splitCommas(const std::string &value)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        if (comma > start)
            out.push_back(value.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

bool
parseUnsigned(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        const auto digit = static_cast<std::uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10)
            return false; // overflow
        value = value * 10 + digit;
    }
    out = value;
    return true;
}

bool
parseUnsignedInRange(const std::string &text, std::uint64_t min,
                     std::uint64_t max, std::uint64_t &out)
{
    std::uint64_t value = 0;
    if (!parseUnsigned(text, value) || value < min || value > max)
        return false;
    out = value;
    return true;
}

bool
parseCoordinatorMode(const std::string &text, bool &adaptive_out)
{
    if (text == "hardwired") {
        adaptive_out = false;
        return true;
    }
    if (text == "adaptive") {
        adaptive_out = true;
        return true;
    }
    return false;
}

std::string
cellTracePath(const std::string &base, const std::string &workload,
              const std::string &prefetcher, const std::string &variant)
{
    return base + "." + workload + "." + prefetcher + variant;
}

} // namespace dol::runner
