/**
 * @file
 * Little-endian wire encoding shared by the durable on-disk formats
 * (DOLCKPT1 checkpoint journals, DOLLEAS1 lease ledgers).
 *
 * Every integer is serialized little-endian byte by byte, independent
 * of host order, and doubles travel bit-exact through u64 so no text
 * round trip can perturb a resumed or merged value. The Cursor is a
 * bounds-checked reader: any shortfall flips `ok` and every later
 * read returns zero, so record decoders can run a straight-line
 * sequence of reads and check `ok` once at the end.
 */

#ifndef DOL_RUNNER_WIRE_HPP
#define DOL_RUNNER_WIRE_HPP

#include <bit>
#include <cstdint>
#include <string>

namespace dol::runner::wire
{

inline void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void
putF64(std::string &out, double v)
{
    putU64(out, std::bit_cast<std::uint64_t>(v));
}

inline void
putString(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

/** Bounds-checked little-endian reader over a payload. */
struct Cursor
{
    const unsigned char *data;
    std::size_t size;
    std::size_t pos = 0;
    bool ok = true;

    bool
    need(std::size_t n)
    {
        if (!ok || size - pos < n)
            ok = false;
        return ok;
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(data + pos), n);
        pos += n;
        return s;
    }
};

} // namespace dol::runner::wire

#endif // DOL_RUNNER_WIRE_HPP
