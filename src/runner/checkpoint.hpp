/**
 * @file
 * Crash-safe checkpoint journal for sweeps and fuzz campaigns.
 *
 * The journal is an append-only binary file ("DOLCKPT1" magic) of
 * length-prefixed, FNV-1a-checksummed records (framing shared with
 * the DOLLEAS1 lease ledger — see runner/framed_file.hpp), fsync'd
 * after every append, so at any kill point — SIGKILL included — the
 * file holds a prefix of whole records plus at most one torn tail.
 * The loader stops at the first short or checksum-failing record,
 * reports how many clean bytes precede it, and a resuming writer
 * truncates the tail away before appending.
 *
 * Record kinds:
 *   kPlan       sweep identity: item count, grid hash, instr budget.
 *               Written first; resume refuses a journal whose plan
 *               does not match the sweep being resumed.
 *   kJobDone    one completed sweep job: index, label, variant, seed,
 *               wall time, and every metric row the job produced —
 *               enough to merge the job into the final dol-sweep-v1
 *               document byte-identically without re-simulating.
 *               Doubles are stored bit-exact and counters as raw
 *               (scope, name, u64) triples, so no text round trip can
 *               perturb the resumed output.
 *   kCaseDone   one passing fuzz-campaign case (index only). Failing
 *               cases are deliberately not journaled: a resumed
 *               campaign re-runs them, regenerating the identical
 *               diff and reproducer files.
 *   kCellFailed one quarantined cell (opt-in via
 *               SweepOptions::journalFailures; fleet workers set it).
 *               A resuming sweep re-runs these cells — the record
 *               exists so a fleet coordinator can count the cell as
 *               covered and the merger can surface it in the merged
 *               document's failed_cells section instead of silently
 *               dropping a foreign journal's losses.
 *
 * In-flight work is never journaled and re-runs on resume; the
 * journal never has to encode an exception mid-flight.
 *
 * Two read paths exist: CheckpointJournal::load() materializes every
 * record (convenient for small journals), and CheckpointReader
 * streams records one at a time with their file offsets — the fleet
 * merger uses it to index 10k-cell journals and re-read individual
 * rows without ever holding a whole journal in memory.
 */

#ifndef DOL_RUNNER_CHECKPOINT_HPP
#define DOL_RUNNER_CHECKPOINT_HPP

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "runner/framed_file.hpp"
#include "runner/result_store.hpp"

namespace dol::runner
{

constexpr char kCheckpointMagic[8] = {'D', 'O', 'L', 'C',
                                      'K', 'P', 'T', '1'};

/** Wire record types of the DOLCKPT1 format. */
enum class JournalRecord : std::uint8_t
{
    kPlan = 1,
    kJobDone = 2,
    kCaseDone = 3,
    kCellFailed = 4,
};

/** Identity of the sweep/campaign a journal belongs to. */
struct JournalPlan
{
    /** Total jobs (sweep) or cases (campaign). */
    std::uint64_t itemCount = 0;
    /** FNV-1a over every job's (label, variant, seed) — or, for a
     *  campaign, over (seed, mutation). */
    std::uint64_t gridHash = 0;
    std::uint64_t maxInstrs = 0;

    bool
    operator==(const JournalPlan &other) const
    {
        return itemCount == other.itemCount &&
               gridHash == other.gridHash &&
               maxInstrs == other.maxInstrs;
    }
};

/** One completed sweep job, with everything needed to merge it. */
struct JournalJobDone
{
    std::uint64_t jobIndex = 0;
    std::string label;
    std::string variant;
    std::uint64_t seed = 0;
    double wallMs = 0.0;
    std::vector<MetricsRow> rows;
};

/** One quarantined cell (journalFailures mode). */
struct JournalCellFailed
{
    std::uint64_t jobIndex = 0;
    FailedCell cell;
};

// Payload codecs, shared by the journal writer, load(), and the
// fleet merger's two-pass streaming reads. Decoders return false on
// a short or malformed payload and leave @p out unspecified.
std::string encodePlanPayload(const JournalPlan &plan);
std::string encodeJobDonePayload(const JournalJobDone &job);
std::string encodeCellFailedPayload(const JournalCellFailed &failed);
bool decodePlanPayload(const std::string &payload, JournalPlan &out);
bool decodeJobDonePayload(const std::string &payload,
                          JournalJobDone &out);
bool decodeCellFailedPayload(const std::string &payload,
                             JournalCellFailed &out);
/** Decode just the leading jobIndex of a kJobDone/kCellFailed
 *  payload — the cheap index pass of a streaming merge. */
bool decodeJobIndex(const std::string &payload, std::uint64_t &out);

class CheckpointJournal
{
  public:
    CheckpointJournal() = default;

    CheckpointJournal(const CheckpointJournal &) = delete;
    CheckpointJournal &operator=(const CheckpointJournal &) = delete;

    /** Truncate/create @p path and write the plan record. */
    bool create(const std::string &path, const JournalPlan &plan,
                std::string *error = nullptr);

    /**
     * Reopen an existing journal for appending, first truncating it
     * to @p good_bytes (from Load::goodBytes) so a torn tail from the
     * previous crash never precedes new records.
     */
    bool openAppend(const std::string &path, std::uint64_t good_bytes,
                    std::string *error = nullptr);

    /** Append + fsync one completed job. Thread-safe. */
    bool appendJobDone(const JournalJobDone &record);

    /** Append + fsync one passing campaign case. Thread-safe. */
    bool appendCaseDone(std::uint64_t case_index);

    /** Append + fsync one quarantined cell. Thread-safe. */
    bool appendCellFailed(const JournalCellFailed &record);

    bool isOpen() const { return _file.isOpen(); }
    void close() { _file.close(); }

    struct Load
    {
        bool fileExists = false;
        /** Header parsed (magic ok). False => not a journal at all. */
        bool valid = false;
        /** False when a torn/corrupt tail was dropped. */
        bool cleanTail = true;
        /** Bytes of clean prefix (header + whole good records). */
        std::uint64_t goodBytes = 0;
        std::optional<JournalPlan> plan;
        std::vector<JournalJobDone> jobs;
        std::vector<std::uint64_t> cases;
        std::vector<JournalCellFailed> failedCells;
        std::string error;
    };

    /**
     * Read every intact record of @p path. Never throws: a missing
     * file reports fileExists=false, garbage reports valid=false, and
     * a torn tail is dropped with cleanTail=false.
     */
    static Load load(const std::string &path);

  private:
    FramedWriter _file;
};

/**
 * Streaming DOLCKPT1 reader: FramedReader pinned to the checkpoint
 * magic. Iterate with next(); a record's offset can be revisited
 * later with seek() — the cross-journal merge reads each journal
 * once to index it, then seeks back to the winning record per cell,
 * so peak memory stays one decoded row regardless of journal size.
 */
class CheckpointReader
{
  public:
    bool
    open(const std::string &path)
    {
        return _reader.open(path, kCheckpointMagic);
    }

    bool next(FramedReader::Record &out) { return _reader.next(out); }
    bool seek(std::uint64_t offset) { return _reader.seek(offset); }

    bool fileExists() const { return _reader.fileExists(); }
    bool valid() const { return _reader.valid(); }
    bool tornTail() const { return _reader.tornTail(); }
    std::uint64_t goodBytes() const { return _reader.goodBytes(); }

  private:
    FramedReader _reader;
};

} // namespace dol::runner

#endif // DOL_RUNNER_CHECKPOINT_HPP
