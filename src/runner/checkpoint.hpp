/**
 * @file
 * Crash-safe checkpoint journal for sweeps and fuzz campaigns.
 *
 * The journal is an append-only binary file ("DOLCKPT1" magic) of
 * length-prefixed, FNV-1a-checksummed records, fsync'd after every
 * append, so at any kill point — SIGKILL included — the file holds a
 * prefix of whole records plus at most one torn tail. The loader
 * stops at the first short or checksum-failing record, reports how
 * many clean bytes precede it, and a resuming writer truncates the
 * tail away before appending.
 *
 * Record kinds:
 *   kPlan     sweep identity: item count, grid hash, instr budget.
 *             Written first; resume refuses a journal whose plan does
 *             not match the sweep being resumed.
 *   kJobDone  one completed sweep job: index, label, variant, seed,
 *             wall time, and every metric row the job produced —
 *             enough to merge the job into the final dol-sweep-v1
 *             document byte-identically without re-simulating.
 *             Doubles are stored bit-exact and counters as raw
 *             (scope, name, u64) triples, so no text round trip can
 *             perturb the resumed output.
 *   kCaseDone one passing fuzz-campaign case (index only). Failing
 *             cases are deliberately not journaled: a resumed
 *             campaign re-runs them, regenerating the identical diff
 *             and reproducer files.
 *
 * Only successes are journaled. Failed or in-flight work re-runs on
 * resume; the journal never has to encode an exception.
 */

#ifndef DOL_RUNNER_CHECKPOINT_HPP
#define DOL_RUNNER_CHECKPOINT_HPP

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runner/result_store.hpp"

namespace dol::runner
{

constexpr char kCheckpointMagic[8] = {'D', 'O', 'L', 'C',
                                      'K', 'P', 'T', '1'};

/** Identity of the sweep/campaign a journal belongs to. */
struct JournalPlan
{
    /** Total jobs (sweep) or cases (campaign). */
    std::uint64_t itemCount = 0;
    /** FNV-1a over every job's (label, variant, seed) — or, for a
     *  campaign, over (seed, mutation). */
    std::uint64_t gridHash = 0;
    std::uint64_t maxInstrs = 0;

    bool
    operator==(const JournalPlan &other) const
    {
        return itemCount == other.itemCount &&
               gridHash == other.gridHash &&
               maxInstrs == other.maxInstrs;
    }
};

/** One completed sweep job, with everything needed to merge it. */
struct JournalJobDone
{
    std::uint64_t jobIndex = 0;
    std::string label;
    std::string variant;
    std::uint64_t seed = 0;
    double wallMs = 0.0;
    std::vector<MetricsRow> rows;
};

class CheckpointJournal
{
  public:
    CheckpointJournal() = default;
    ~CheckpointJournal() { close(); }

    CheckpointJournal(const CheckpointJournal &) = delete;
    CheckpointJournal &operator=(const CheckpointJournal &) = delete;

    /** Truncate/create @p path and write the plan record. */
    bool create(const std::string &path, const JournalPlan &plan,
                std::string *error = nullptr);

    /**
     * Reopen an existing journal for appending, first truncating it
     * to @p good_bytes (from Load::goodBytes) so a torn tail from the
     * previous crash never precedes new records.
     */
    bool openAppend(const std::string &path, std::uint64_t good_bytes,
                    std::string *error = nullptr);

    /** Append + fsync one completed job. Thread-safe. */
    bool appendJobDone(const JournalJobDone &record);

    /** Append + fsync one passing campaign case. Thread-safe. */
    bool appendCaseDone(std::uint64_t case_index);

    bool isOpen() const { return _file != nullptr; }
    void close();

    struct Load
    {
        bool fileExists = false;
        /** Header parsed (magic ok). False => not a journal at all. */
        bool valid = false;
        /** False when a torn/corrupt tail was dropped. */
        bool cleanTail = true;
        /** Bytes of clean prefix (header + whole good records). */
        std::uint64_t goodBytes = 0;
        std::optional<JournalPlan> plan;
        std::vector<JournalJobDone> jobs;
        std::vector<std::uint64_t> cases;
        std::string error;
    };

    /**
     * Read every intact record of @p path. Never throws: a missing
     * file reports fileExists=false, garbage reports valid=false, and
     * a torn tail is dropped with cleanTail=false.
     */
    static Load load(const std::string &path);

  private:
    bool appendRecord(std::uint8_t type, const std::string &payload);

    std::mutex _mutex;
    std::FILE *_file = nullptr;
};

} // namespace dol::runner

#endif // DOL_RUNNER_CHECKPOINT_HPP
