/**
 * @file
 * Deterministic fault injection and graceful-stop plumbing for sweeps.
 *
 * A FaultPlan is parsed from a compact spec string and names, per job
 * index, a fault to inject into the worker executing that job:
 *
 *   throw@K        throw from cell K on every attempt
 *   throw@K:N      throw from cell K on the first N attempts only
 *                  (attempt N and later succeed — exercises retry)
 *   hang@K[:N]     spin at cell K until the cancel token fires
 *                  (exercises --cell-timeout and signal drain)
 *   abort@K        die with std::_Exit at cell K — no unwinding, no
 *                  buffered-file flushing, exactly like SIGKILL
 *                  (exercises crash-safe checkpoint recovery)
 *   stop@K         raise the sweep's stop flag as cell K starts
 *                  (deterministic, in-process stand-in for SIGTERM)
 *
 * Sites combine with commas ("throw@1:1,hang@3"). Everything is a
 * pure function of the spec + the deterministic job order, so fault
 * tests replay bit-identically from a seed.
 *
 * The same header hosts the process-wide stop flag that dolsim's
 * SIGINT/SIGTERM handlers set: installStopHandlers() is idempotent,
 * the handlers only touch atomics (async-signal-safe), and a second
 * signal restores the default disposition and re-raises so a stuck
 * drain can always be forced down.
 */

#ifndef DOL_RUNNER_FAULT_HPP
#define DOL_RUNNER_FAULT_HPP

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dol::runner
{

struct FaultPlan
{
    enum class Kind
    {
        kThrow,
        kHang,
        kAbort,
        kStop,
    };

    struct Site
    {
        Kind kind = Kind::kThrow;
        std::size_t jobIndex = 0;
        /** Inject on attempts [0, times); 0 means every attempt. */
        unsigned times = 0;
    };

    std::vector<Site> sites;

    bool empty() const { return sites.empty(); }

    /** First site for @p job_index, or nullptr. */
    const Site *siteFor(std::size_t job_index) const;

    /** True when @p site fires on @p attempt (0-based). */
    static bool
    firesOn(const Site &site, unsigned attempt)
    {
        return site.times == 0 || attempt < site.times;
    }

    /**
     * Parse a spec string ("throw@2", "hang@1:2,abort@4").
     * @return false + error message on a malformed spec.
     */
    static bool parse(const std::string &spec, FaultPlan &out,
                      std::string *error = nullptr);
};

const char *faultKindName(FaultPlan::Kind kind);

/**
 * Process-wide stop flag for graceful drain. Signal handlers set it;
 * sweeps and campaigns observe it through SweepOptions::stopFlag /
 * CampaignOptions::stopFlag.
 */
std::atomic<bool> &signalStopFlag();

/** Signal number that raised the stop flag (0 if none yet). */
int lastStopSignal();

/**
 * Install SIGINT/SIGTERM handlers that raise the stop flag (first
 * signal) and restore the default action + re-raise (second signal).
 * Idempotent; call from tools, never from library code.
 */
void installStopHandlers();

} // namespace dol::runner

#endif // DOL_RUNNER_FAULT_HPP
