/**
 * @file
 * Live progress line for parallel sweeps: completed/total, the label
 * that just finished, per-job wall time and an ETA extrapolated from
 * the mean executed-job time. On a TTY it rewrites one stderr line;
 * piped into a log it prints one line per completed job so CI output
 * stays greppable.
 *
 * Resume-aware: jobs merged from a checkpoint (or skipped by a drain)
 * are reported through onJobSkipped() — they advance the completed
 * count but never feed the ETA, so resuming an almost-finished sweep
 * neither divides by zero nor extrapolates a bogus finish time from
 * instantaneous journal reads.
 */

#ifndef DOL_RUNNER_PROGRESS_HPP
#define DOL_RUNNER_PROGRESS_HPP

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

namespace dol::runner
{

/**
 * Remaining-time estimate, pure for unit testing. Extrapolates from
 * executed jobs only; degenerate sweeps — nothing executed yet,
 * nothing remaining, all cells skipped on resume, or counters that
 * somehow overran the total — all report 0 instead of dividing by
 * zero or underflowing the remaining count.
 */
double etaSeconds(std::size_t done, std::size_t skipped,
                  std::size_t total, double elapsed_seconds);

class ProgressMeter
{
  public:
    /**
     * @param total   number of jobs the sweep will run
     * @param enabled false silences all output (e.g. --csv to stdout
     *                with stderr redirected into the same file)
     * @param out     stream to write to (stderr by default)
     */
    explicit ProgressMeter(std::size_t total, bool enabled = true,
                           std::FILE *out = stderr);

    /** Record one finished job; prints the progress line. */
    void onJobDone(const std::string &label, double wall_ms);

    /** Record a job that was merged from a checkpoint or skipped by
     *  a graceful stop: counts toward progress, not toward ETA. */
    void onJobSkipped(const std::string &label);

    /** Finish the line (TTY mode) and print the sweep total. */
    void finish();

    double elapsedSeconds() const;

  private:
    void printLine(const std::string &label, double wall_ms,
                   bool skipped);

    std::FILE *_out;
    bool _enabled;
    bool _tty;
    std::size_t _total;
    std::size_t _done = 0;
    std::size_t _skipped = 0;
    double _wallMsSum = 0.0;
    std::chrono::steady_clock::time_point _start;
    std::mutex _mutex;
};

} // namespace dol::runner

#endif // DOL_RUNNER_PROGRESS_HPP
