/**
 * @file
 * Live progress line for parallel sweeps: completed/total, the label
 * that just finished, per-job wall time and an ETA extrapolated from
 * the mean job time. On a TTY it rewrites one stderr line; piped into
 * a log it prints one line per completed job so CI output stays
 * greppable. This is the runner's first observability hook — later
 * PRs can swap in richer sinks behind the same onJobDone() call.
 */

#ifndef DOL_RUNNER_PROGRESS_HPP
#define DOL_RUNNER_PROGRESS_HPP

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

namespace dol::runner
{

class ProgressMeter
{
  public:
    /**
     * @param total   number of jobs the sweep will run
     * @param enabled false silences all output (e.g. --csv to stdout
     *                with stderr redirected into the same file)
     * @param out     stream to write to (stderr by default)
     */
    explicit ProgressMeter(std::size_t total, bool enabled = true,
                           std::FILE *out = stderr);

    /** Record one finished job; prints the progress line. */
    void onJobDone(const std::string &label, double wall_ms);

    /** Finish the line (TTY mode) and print the sweep total. */
    void finish();

    double elapsedSeconds() const;

  private:
    std::FILE *_out;
    bool _enabled;
    bool _tty;
    std::size_t _total;
    std::size_t _done = 0;
    double _wallMsSum = 0.0;
    std::chrono::steady_clock::time_point _start;
    std::mutex _mutex;
};

} // namespace dol::runner

#endif // DOL_RUNNER_PROGRESS_HPP
