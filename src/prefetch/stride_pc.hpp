/**
 * @file
 * Classic per-PC stride prefetcher (Chen & Baer style reference point
 * table). Not part of the paper's evaluated set, but a useful simple
 * baseline for tests and examples.
 */

#ifndef DOL_PREFETCH_STRIDE_PC_HPP
#define DOL_PREFETCH_STRIDE_PC_HPP

#include <cstdint>
#include <vector>

#include "common/sat_counter.hpp"
#include "prefetch/prefetcher.hpp"

namespace dol
{

class StridePcPrefetcher : public Prefetcher
{
  public:
    explicit StridePcPrefetcher(unsigned entries = 64,
                                unsigned degree = 2)
        : Prefetcher("StridePC"), _degree(degree), _table(entries)
    {}

    void
    train(const AccessInfo &access, PrefetchEmitter &emitter) override
    {
        if (!access.isLoad)
            return;
        Entry &entry = _table[access.pc % _table.size()];
        if (entry.pc != access.pc) {
            entry = Entry{};
            entry.pc = access.pc;
            entry.lastAddr = access.addr;
            return;
        }
        const std::int64_t delta =
            static_cast<std::int64_t>(access.addr) -
            static_cast<std::int64_t>(entry.lastAddr);
        if (delta == entry.stride && delta != 0)
            entry.conf.increment();
        else
            entry.conf.decrement();
        entry.stride = delta;
        entry.lastAddr = access.addr;

        if (entry.conf.value() >= 2 && entry.stride != 0) {
            for (unsigned i = 1; i <= _degree; ++i) {
                emitter.emit(access.addr + entry.stride *
                                               static_cast<std::int64_t>(i),
                             kL1);
            }
        }
    }

    std::size_t
    storageBits() const override
    {
        // pc tag (16) + last addr (32) + stride (16) + conf (2)
        return _table.size() * (16 + 32 + 16 + 2);
    }

  private:
    struct Entry
    {
        Pc pc = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        SatCounter conf{3};
    };

    unsigned _degree;
    std::vector<Entry> _table;
};

} // namespace dol

#endif // DOL_PREFETCH_STRIDE_PC_HPP
