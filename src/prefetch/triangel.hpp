/**
 * @file
 * Triangel-style temporal prefetcher (after arXiv 2406.10627), used
 * here as a coordinator extra: a Markov address-pair history table
 * trained on the per-PC primary-miss stream, with the two filters
 * that make temporal prefetching practical at bounded storage:
 *
 *  - a training-unit sampler: a load PC earns training state only
 *    after it has demonstrably missed often enough;
 *  - metadata-reuse filtering: a small sample table estimates how
 *    often recorded pairs recur; recurring pairs raise and unstable
 *    pairs lower a per-unit pattern-confidence score, and the score
 *    gates prediction, so PCs whose metadata is never reused stop
 *    prefetching even though they keep training.
 *
 * All state lives in BoundedLruTable (hardware-table semantics, no
 * node-based containers on the access path).
 */

#ifndef DOL_PREFETCH_TRIANGEL_HPP
#define DOL_PREFETCH_TRIANGEL_HPP

#include <cstdint>

#include "common/flat_table.hpp"
#include "prefetch/prefetcher.hpp"

namespace dol
{

class TriangelPrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        std::size_t historyEntries = 4096; ///< Markov pair table
        std::size_t sampleEntries = 512;   ///< metadata-reuse sample
        std::size_t unitEntries = 256;     ///< training-unit tracker
        unsigned degree = 4;               ///< prefetches per trigger
        unsigned lookahead = 2;            ///< chain hops per trigger
        /** Primary misses before a PC becomes a training unit. */
        unsigned trainThreshold = 2;
        /** Pattern-confidence floor below which prediction is off. */
        int scoreFloor = 0;
    };

    TriangelPrefetcher();
    explicit TriangelPrefetcher(const Params &params);

    void train(const AccessInfo &access,
               PrefetchEmitter &emitter) override;

    std::size_t storageBits() const override;

    void exportCounters(CounterRegistry &registry) const override;

    /** Test hook: has @p pc passed the training-unit sampler? */
    bool isTrainingUnit(Pc pc) const;
    /** Test hook: pattern-confidence score of @p pc (0 if untracked). */
    int unitScore(Pc pc) const;
    /** Test hook: does @p line own a history entry? */
    bool hasPair(Addr line) const;

  private:
    static constexpr unsigned kWays = 2;
    static constexpr std::uint8_t kConfMax = 15;
    static constexpr int kScoreMin = -64;
    static constexpr int kScoreMax = 64;

    struct Unit
    {
        std::uint32_t misses = 0;
        std::int32_t score = 0;
    };

    struct Entry
    {
        Addr succ[kWays] = {kNoAddr, kNoAddr};
        std::uint8_t conf[kWays] = {0, 0};
    };

    void recordPair(Addr prev, Addr line, Unit &unit);
    unsigned predict(Addr line, PrefetchEmitter &emitter);

    Params _params;
    BoundedLruTable<Pc, Unit> _units;
    BoundedLruTable<Pc, Addr> _lastMiss;
    BoundedLruTable<Addr, Addr> _sample;
    BoundedLruTable<Addr, Entry> _history;

    std::uint64_t _sampledPairs = 0;
    std::uint64_t _reuseHits = 0;
    std::uint64_t _recordedPairs = 0;
    std::uint64_t _predictions = 0;
    std::uint64_t _unitRejects = 0;
};

} // namespace dol

#endif // DOL_PREFETCH_TRIANGEL_HPP
