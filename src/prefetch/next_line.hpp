/**
 * @file
 * Next-N-line prefetcher (Jouppi-style stream buffer degenerate case).
 * Used as the simplest baseline and as a building block in tests.
 */

#ifndef DOL_PREFETCH_NEXT_LINE_HPP
#define DOL_PREFETCH_NEXT_LINE_HPP

#include "prefetch/prefetcher.hpp"

namespace dol
{

class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(unsigned degree = 1,
                                bool on_miss_only = true)
        : Prefetcher("NextLine"), _degree(degree),
          _onMissOnly(on_miss_only)
    {}

    void
    train(const AccessInfo &access, PrefetchEmitter &emitter) override
    {
        if (_onMissOnly && !access.l1PrimaryMiss)
            return;
        for (unsigned i = 1; i <= _degree; ++i)
            emitter.emit(access.line() + i * kLineBytes, kL1);
    }

    /** Stateless: a couple of config registers at most. */
    std::size_t storageBits() const override { return 16; }

  private:
    unsigned _degree;
    bool _onMissOnly;
};

} // namespace dol

#endif // DOL_PREFETCH_NEXT_LINE_HPP
