#include "prefetch/vldp.hpp"

#include <algorithm>

namespace dol
{

VldpPrefetcher::VldpPrefetcher() : VldpPrefetcher(Params()) {}

VldpPrefetcher::VldpPrefetcher(const Params &params)
    : Prefetcher("VLDP"), _params(params),
      _history(params.historyEntries),
      _offsets(params.offsetEntries)
{
    for (auto &table : _tables)
        table.resize(params.tableEntries);
}

VldpPrefetcher::DhbEntry &
VldpPrefetcher::lookupPage(std::uint64_t page)
{
    DhbEntry *victim = &_history[0];
    for (DhbEntry &entry : _history) {
        if (entry.pageTag == page) {
            entry.lruStamp = ++_stamp;
            return entry;
        }
        if (entry.lruStamp < victim->lruStamp)
            victim = &entry;
    }
    *victim = DhbEntry{};
    victim->pageTag = page;
    victim->lruStamp = ++_stamp;
    return *victim;
}

void
VldpPrefetcher::updateTables(const DhbEntry &entry, std::int16_t new_delta)
{
    // Train each table whose history length is available: the history
    // seen *before* this delta predicts it.
    for (unsigned len = 1; len <= entry.numDeltas && len <= kNumTables;
         ++len) {
        const std::uint64_t key = historyKey(entry, len);
        auto &table = _tables[len - 1];
        DptEntry &slot = table[key % table.size()];
        if (slot.key == key) {
            if (slot.prediction == new_delta) {
                if (slot.confidence < 3)
                    ++slot.confidence;
            } else if (slot.confidence > 0) {
                --slot.confidence;
            } else {
                slot.prediction = new_delta;
            }
        } else {
            slot = DptEntry{key, new_delta, 0};
        }
    }
}

std::int16_t
VldpPrefetcher::predict(const DhbEntry &entry) const
{
    for (unsigned len = std::min<unsigned>(entry.numDeltas, kNumTables);
         len >= 1; --len) {
        const std::uint64_t key = historyKey(entry, len);
        const auto &table = _tables[len - 1];
        const DptEntry &slot = table[key % table.size()];
        // Longer histories may predict with low confidence; shorter
        // ones require at least weak confidence.
        const unsigned needed = len == kNumTables ? 0 : 1;
        if (slot.key == key && slot.confidence >= needed)
            return slot.prediction;
    }
    return 0;
}

void
VldpPrefetcher::train(const AccessInfo &access, PrefetchEmitter &emitter)
{
    // VLDP trains on the primary miss stream plus hits on prefetched
    // lines; plain hits carry no new information for it.
    if (!access.l1PrimaryMiss && access.l1Hit)
        return;

    const std::uint64_t page = access.addr >> kPageBits;
    const auto offset = static_cast<std::uint8_t>(
        (access.addr >> kLineBits) & (kLinesPerPage - 1));

    DhbEntry &entry = lookupPage(page);

    if (!entry.seenFirstAccess) {
        entry.seenFirstAccess = true;
        entry.lastOffset = offset;
        // First touch of a page: consult the OPT.
        const OptEntry &opt = _offsets[offset % _offsets.size()];
        if (opt.valid && opt.offset == offset && opt.confidence >= 1) {
            const int target = offset + opt.prediction;
            if (target >= 0 &&
                target < static_cast<int>(kLinesPerPage)) {
                emitter.emit((page << kPageBits) +
                                 (static_cast<Addr>(target)
                                  << kLineBits),
                             kL1);
            }
        }
        return;
    }

    const auto delta =
        static_cast<std::int16_t>(static_cast<int>(offset) -
                                  static_cast<int>(entry.lastOffset));
    if (delta == 0)
        return;

    if (entry.numDeltas == 0) {
        // Second access to the page trains the OPT.
        OptEntry &opt = _offsets[entry.lastOffset % _offsets.size()];
        if (opt.valid && opt.offset == entry.lastOffset) {
            if (opt.prediction == delta) {
                if (opt.confidence < 3)
                    ++opt.confidence;
            } else if (opt.confidence > 0) {
                --opt.confidence;
            } else {
                opt.prediction = delta;
            }
        } else {
            opt = OptEntry{entry.lastOffset, delta, 0, true};
        }
    }

    updateTables(entry, delta);

    // Push the new delta into the page's history (newest first).
    for (unsigned i = kMaxHistory; i-- > 1;)
        entry.deltas[i] = entry.deltas[i - 1];
    entry.deltas[0] = delta;
    if (entry.numDeltas < kMaxHistory)
        ++entry.numDeltas;
    entry.lastOffset = offset;

    // Chained lookahead: speculatively apply predicted deltas.
    DhbEntry spec = entry;
    int current = offset;
    for (unsigned i = 0; i < _params.degree; ++i) {
        const std::int16_t next = predict(spec);
        if (next == 0)
            break;
        current += next;
        if (current < 0 || current >= static_cast<int>(kLinesPerPage))
            break;
        emitter.emit((page << kPageBits) +
                         (static_cast<Addr>(current) << kLineBits),
                     kL1);
        for (unsigned j = kMaxHistory; j-- > 1;)
            spec.deltas[j] = spec.deltas[j - 1];
        spec.deltas[0] = next;
        if (spec.numDeltas < kMaxHistory)
            ++spec.numDeltas;
    }
}

std::size_t
VldpPrefetcher::storageBits() const
{
    // DHB: page tag (16) + 3 deltas (12 each) + offset (6) + misc (4)
    // DPT: key tag (12) + prediction (12) + confidence (2)
    // OPT: offset (6) + prediction (12) + confidence (2) + valid (1)
    std::size_t total = _history.size() * (16 + 3 * 12 + 6 + 4);
    for (const auto &table : _tables)
        total += table.size() * (12 + 12 + 2);
    total += _offsets.size() * (6 + 12 + 2 + 1);
    return total;
}

} // namespace dol
