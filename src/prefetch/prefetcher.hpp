/**
 * @file
 * The prefetcher component interface.
 *
 * A Prefetcher observes the demand access stream (train) and, for the
 * paper's instruction-based components, the full retire stream
 * (onInstr) and prefetch fill completions (onFill). Prefetches are
 * issued through a PrefetchEmitter, which binds the component identity
 * and the current cycle and lets the harness override the destination
 * level (the Figure 16 experiment).
 */

#ifndef DOL_PREFETCH_PREFETCHER_HPP
#define DOL_PREFETCH_PREFETCHER_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "cpu/core.hpp"
#include "cpu/instr.hpp"
#include "mem/memory_system.hpp"

namespace dol
{

class TraceContext;
class CounterRegistry;

/** One demand access as seen by the prefetchers (post L1 lookup). */
struct AccessInfo
{
    Pc pc = 0;
    /** Call-site-disambiguated PC: pc ^ RAS.top (paper IV-A.2). */
    Pc mPc = 0;
    Addr addr = 0; ///< byte address
    bool isLoad = true;
    bool l1Hit = false;
    bool l1PrimaryMiss = false;
    bool l1HitPrefetched = false;
    /** Component whose prefetch the L1 hit landed on (0 = none). */
    ComponentId l1HitComp = kNoComponent;
    bool l2Hit = false;
    bool l3Hit = false;
    std::uint64_t value = 0; ///< value returned (loads)
    Cycle when = 0;          ///< cycle the access issued
    Cycle completion = 0;    ///< cycle the value arrived

    Addr line() const { return lineAddr(addr); }
};

/**
 * Issues prefetches on behalf of one component. The harness sets the
 * context (component id + current cycle) before every training call.
 */
class PrefetchEmitter
{
  public:
    explicit PrefetchEmitter(MemorySystem &mem) : _mem(&mem) {}

    void
    setContext(ComponentId comp, Cycle when)
    {
        _comp = comp;
        _when = when;
    }

    /** Force all prefetches to one level (Figure 16 sweeps). */
    void forceDestLevel(std::optional<unsigned> level) { _force = level; }
    std::optional<unsigned> forcedDestLevel() const { return _force; }

    /**
     * Oracle destination policy (Figure 16's "stratified" bars): maps
     * (target address, natural destination) to the level to use.
     */
    using DestOracle = std::function<unsigned(Addr, unsigned)>;
    void setDestOracle(DestOracle oracle) { _oracle = std::move(oracle); }

    /**
     * One attempted prefetch emission, as seen by the hook: the target
     * address, resolved destination level, issuing component, request
     * cycle, and the memory system's verdict (issued / filtered /
     * dropped). The differential checker (src/check/) compares this
     * stream against the reference models' predictions.
     */
    struct EmitRecord
    {
        Addr addr = 0;
        unsigned level = kL1;
        ComponentId comp = kNoComponent;
        Cycle when = 0;
        PrefetchOutcome outcome = PrefetchOutcome::kIssued;
    };

    /** Observe every attempted emission (nullptr = off, the default). */
    using EmitHook = std::function<void(const EmitRecord &)>;
    void setEmitHook(EmitHook hook) { _hook = std::move(hook); }

    PrefetchOutcome
    emit(Addr addr, unsigned dest_level = kL1, std::uint8_t priority = 1)
    {
        return emitAt(addr, _when, dest_level, priority);
    }

    /** Issue at an explicit time (P1's chained fills). */
    PrefetchOutcome
    emitAt(Addr addr, Cycle when, unsigned dest_level = kL1,
           std::uint8_t priority = 1)
    {
        const unsigned level = resolveDest(addr, dest_level);
        if (_budget == 0) {
            // Adaptive degree cap: the request never reaches the
            // memory system, so throttling only removes traffic.
            ++_throttledCount;
            const PrefetchOutcome outcome =
                PrefetchOutcome::kDroppedThrottle;
            if (_hook)
                _hook({addr, level, _comp, when, outcome});
            return outcome;
        }
        if (_budget != kUnlimitedBudget)
            --_budget;
        const PrefetchOutcome outcome = account(
            _mem->prefetch(addr, level, _comp, when, priority));
        if (_hook)
            _hook({addr, level, _comp, when, outcome});
        return outcome;
    }

    ComponentId component() const { return _comp; }
    Cycle now() const { return _when; }

    /** Running count of prefetches that actually issued (for the
     *  adaptive coordinator's accuracy bookkeeping). */
    std::uint64_t issuedCount() const { return _issuedCount; }

    /**
     * Per-call emission budget (the adaptive coordinator's degree
     * cap). kUnlimitedBudget — the default, and the only value the
     * hardwired coordinator ever sees — disables the mechanism
     * entirely.
     */
    static constexpr std::uint32_t kUnlimitedBudget = 0xffffffffu;
    void setEmitBudget(std::uint32_t budget) { _budget = budget; }
    std::uint32_t emitBudget() const { return _budget; }

    /** Emissions blocked by an exhausted budget. */
    std::uint64_t throttledCount() const { return _throttledCount; }

  private:
    unsigned
    resolveDest(Addr addr, unsigned dest_level) const
    {
        if (_oracle)
            return _oracle(addr, dest_level);
        return _force.value_or(dest_level);
    }

    PrefetchOutcome
    account(PrefetchOutcome outcome)
    {
        if (outcome == PrefetchOutcome::kIssued)
            ++_issuedCount;
        return outcome;
    }

    MemorySystem *_mem;
    ComponentId _comp = kNoComponent;
    Cycle _when = 0;
    std::optional<unsigned> _force;
    DestOracle _oracle;
    EmitHook _hook;
    std::uint64_t _issuedCount = 0;
    std::uint32_t _budget = kUnlimitedBudget;
    std::uint64_t _throttledCount = 0;
};

class Prefetcher
{
  public:
    explicit Prefetcher(std::string name) : _name(std::move(name)) {}
    virtual ~Prefetcher() = default;

    Prefetcher(const Prefetcher &) = delete;
    Prefetcher &operator=(const Prefetcher &) = delete;

    /** Train on one demand access (loads and stores at L1). */
    virtual void train(const AccessInfo &access,
                       PrefetchEmitter &emitter) = 0;

    /**
     * Observe one retired instruction (all classes). Components that
     * watch branches or register dependences (T2, P1) override this;
     * cache-access-pattern prefetchers do not need to.
     *
     * @param m_pc call-site-disambiguated PC (pc ^ RAS.top)
     */
    virtual void
    onInstr(const Instr &instr, const RetireInfo &retire, Pc m_pc,
            PrefetchEmitter &emitter)
    {
        (void)instr; (void)retire; (void)m_pc; (void)emitter;
    }

    /** A prefetch issued by component @p comp filled at @p completion. */
    virtual void
    onFill(ComponentId comp, Addr line_addr, Cycle completion,
           PrefetchEmitter &emitter)
    {
        (void)comp; (void)line_addr; (void)completion; (void)emitter;
    }

    /** Hardware budget of the design, in bits (Table II). */
    virtual std::size_t storageBits() const = 0;

    /**
     * Allocate component identities. Monolithic prefetchers take one
     * id; composites override this to give every sub-component its
     * own, so metrics can attribute each prefetch.
     */
    using IdAllocator =
        std::function<ComponentId(const std::string &name)>;

    virtual void
    assignIds(const IdAllocator &alloc)
    {
        setId(alloc(name()));
    }

    const std::string &name() const { return _name; }

    ComponentId id() const { return _id; }
    void setId(ComponentId id) { _id = id; }

    /**
     * Attach the observability event bus (nullptr = tracing off, the
     * default). Composites override to fan the context out to their
     * sub-components.
     */
    virtual void setTraceContext(TraceContext *trace) { _trace = trace; }
    TraceContext *traceContext() const { return _trace; }

    /**
     * Export this component's decision counters into @p registry,
     * scoped under the component name. Called once at end of run —
     * components keep plain members on the hot path.
     */
    virtual void exportCounters(CounterRegistry &registry) const
    {
        (void)registry;
    }

  protected:
    TraceContext *_trace = nullptr;

  private:
    std::string _name;
    ComponentId _id = kNoComponent;
};

} // namespace dol

#endif // DOL_PREFETCH_PREFETCHER_HPP
