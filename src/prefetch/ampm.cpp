#include "prefetch/ampm.hpp"

#include <bit>

#include "common/log.hpp"

namespace dol
{

AmpmPrefetcher::AmpmPrefetcher() : AmpmPrefetcher(Params()) {}

AmpmPrefetcher::AmpmPrefetcher(const Params &params)
    : Prefetcher("AMPM"), _params(params), _zones(params.maps)
{
    if (!std::has_single_bit(params.linesPerZone))
        fatal("AMPM: linesPerZone must be a power of two");
    _zoneBits = kLineBits +
                static_cast<unsigned>(std::countr_zero(
                    static_cast<std::uint32_t>(params.linesPerZone)));
    for (Zone &zone : _zones)
        zone.states.resize(params.linesPerZone, kInit);
}

AmpmPrefetcher::Zone &
AmpmPrefetcher::lookupZone(std::uint64_t zone_num)
{
    Zone *victim = &_zones[0];
    for (Zone &zone : _zones) {
        if (zone.valid && zone.tag == zone_num) {
            zone.lruStamp = ++_stamp;
            return zone;
        }
        if (!zone.valid) {
            victim = &zone;
            break;
        }
        if (zone.lruStamp < victim->lruStamp)
            victim = &zone;
    }
    victim->tag = zone_num;
    victim->valid = true;
    victim->lruStamp = ++_stamp;
    std::fill(victim->states.begin(), victim->states.end(),
              static_cast<std::uint8_t>(kInit));
    return *victim;
}

void
AmpmPrefetcher::train(const AccessInfo &access, PrefetchEmitter &emitter)
{
    const std::uint64_t zone_num = access.addr >> _zoneBits;
    const int index = static_cast<int>(
        (access.addr >> kLineBits) & (_params.linesPerZone - 1));

    Zone &zone = lookupZone(zone_num);
    zone.states[static_cast<std::size_t>(index)] = kAccessed;

    if (!access.l1PrimaryMiss && !access.l1HitPrefetched)
        return;

    // Pattern match: for each stride, two prior accesses at that
    // stride justify prefetching forward.
    unsigned issued = 0;
    const Addr zone_base = zone_num << _zoneBits;
    for (unsigned k = 1;
         k <= _params.maxStride && issued < _params.maxDegree; ++k) {
        const bool fwd = wasAccessed(zone, index - static_cast<int>(k)) &&
                         wasAccessed(zone, index - 2 * static_cast<int>(k));
        if (fwd) {
            const int target = index + static_cast<int>(k);
            if (target < static_cast<int>(_params.linesPerZone) &&
                zone.states[static_cast<std::size_t>(target)] == kInit) {
                emitter.emit(zone_base +
                                 (static_cast<Addr>(target) << kLineBits),
                             kL1);
                zone.states[static_cast<std::size_t>(target)] =
                    kPrefetched;
                ++issued;
            }
        }
        const bool bwd = wasAccessed(zone, index + static_cast<int>(k)) &&
                         wasAccessed(zone, index + 2 * static_cast<int>(k));
        if (bwd && issued < _params.maxDegree) {
            const int target = index - static_cast<int>(k);
            if (target >= 0 &&
                zone.states[static_cast<std::size_t>(target)] == kInit) {
                emitter.emit(zone_base +
                                 (static_cast<Addr>(target) << kLineBits),
                             kL1);
                zone.states[static_cast<std::size_t>(target)] =
                    kPrefetched;
                ++issued;
            }
        }
    }
}

std::size_t
AmpmPrefetcher::storageBits() const
{
    // Tag (16) + 2 bits per line per map.
    return _zones.size() * (16 + 2 * _params.linesPerZone);
}

} // namespace dol
