#include "prefetch/pchase.hpp"

#include "mem/memory_image.hpp"
#include "trace/counters.hpp"

namespace dol
{

PChasePrefetcher::PChasePrefetcher(const ValueSource *memory)
    : PChasePrefetcher(Params(), memory)
{}

PChasePrefetcher::PChasePrefetcher(const Params &params,
                                   const ValueSource *memory)
    : Prefetcher("PChase"), _params(params), _memory(memory),
      _chains(params.entries)
{}

unsigned
PChasePrefetcher::chainConfidence(Pc pc) const
{
    const Chain *chain = _chains.find(pc);
    return chain ? chain->conf : 0;
}

std::int64_t
PChasePrefetcher::chainOffset(Pc pc) const
{
    const Chain *chain = _chains.find(pc);
    return chain && chain->hasOffset ? chain->offset : 0;
}

void
PChasePrefetcher::train(const AccessInfo &access,
                        PrefetchEmitter &emitter)
{
    if (!access.isLoad)
        return;
    Chain &chain = _chains.insert(access.pc);

    if (chain.hasValue) {
        const std::int64_t delta = static_cast<std::int64_t>(
            access.addr - chain.lastValue);
        if (delta >= -_params.maxOffset && delta <= _params.maxOffset) {
            if (chain.hasOffset && delta == chain.offset) {
                if (chain.conf + 1u == _params.confirmThreshold)
                    ++_confirmed;
                if (chain.conf < _params.confMax)
                    ++chain.conf;
            } else {
                chain.offset = delta;
                chain.hasOffset = true;
                chain.conf = 1;
            }
        } else {
            // The address did not come from the previous value: the
            // chain (if any) broke.
            ++_breaks;
            if (chain.conf > 0)
                --chain.conf;
        }
    }
    chain.lastValue = access.value;
    chain.hasValue = access.value != 0;

    if (chain.conf < _params.confirmThreshold || !chain.hasValue)
        return;
    // Prefetch matters only where demand would stall.
    if (!access.l1PrimaryMiss && !access.l1HitPrefetched)
        return;

    std::uint64_t value = access.value;
    for (unsigned hop = 0; hop < _params.hops; ++hop) {
        if (value == 0)
            break;
        const Addr target = static_cast<Addr>(
            static_cast<std::int64_t>(value) + chain.offset);
        emitter.emit(target, kL1);
        if (hop == 0)
            ++_emitted;
        else
            ++_hopEmitted;
        if (!_memory)
            break;
        value = _memory->read64(target);
    }
}

std::size_t
PChasePrefetcher::storageBits() const
{
    // PC tag (32) + last value (64) + offset (16) + confidence (3)
    // + valid bits (2) per entry.
    return _params.entries * (32 + 64 + 16 + 3 + 2);
}

void
PChasePrefetcher::exportCounters(CounterRegistry &registry) const
{
    registry.set(name(), "chains_confirmed", _confirmed);
    registry.set(name(), "emitted", _emitted);
    registry.set(name(), "hop_emitted", _hopEmitted);
    registry.set(name(), "chain_breaks", _breaks);
}

} // namespace dol
