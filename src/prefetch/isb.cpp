#include "prefetch/isb.hpp"

namespace dol
{

IsbPrefetcher::IsbPrefetcher() : IsbPrefetcher(Params()) {}

IsbPrefetcher::IsbPrefetcher(const Params &params)
    : Prefetcher("ISB"), _params(params)
{}

Addr
IsbPrefetcher::structuralOf(Addr line_addr) const
{
    const auto it = _psMap.find(lineAddr(line_addr));
    return it == _psMap.end() ? kNoAddr : it->second;
}

Addr
IsbPrefetcher::allocateStructural()
{
    // New streams start on a fresh chunk so unrelated streams never
    // blend in structural space.
    const Addr structural = _nextStructural;
    _nextStructural += _params.streamChunk;
    return structural;
}

void
IsbPrefetcher::train(const AccessInfo &access, PrefetchEmitter &emitter)
{
    if (!access.l1PrimaryMiss)
        return;
    const Addr line = access.line();

    if (_psMap.size() > _params.maxMappings) {
        // Finite translation storage: a full structure restarts
        // training (modelling wholesale eviction).
        _psMap.clear();
        _spMap.clear();
        _lastMiss.clear();
    }

    // Training: give consecutive structural addresses to consecutive
    // misses of the same PC.
    const auto last_it = _lastMiss.find(access.pc);
    if (last_it != _lastMiss.end() && last_it->second != line) {
        const Addr prev = last_it->second;
        auto prev_ps = _psMap.find(prev);
        if (prev_ps == _psMap.end()) {
            const Addr structural = allocateStructural();
            prev_ps = _psMap.emplace(prev, structural).first;
            _spMap[structural] = prev;
        }
        const Addr next_structural = prev_ps->second + 1;
        // Chunk boundaries end a stream; established mappings and
        // occupied slots are left alone (remapping on every revisit
        // would tear chains apart at their wrap-around edges).
        if (next_structural % _params.streamChunk != 0 &&
            !_psMap.contains(line) &&
            !_spMap.contains(next_structural)) {
            _psMap[line] = next_structural;
            _spMap[next_structural] = line;
        }
    }
    _lastMiss[access.pc] = line;

    // Prediction: walk forward in structural space.
    const auto ps = _psMap.find(line);
    if (ps == _psMap.end())
        return;
    for (unsigned k = 1; k <= _params.degree; ++k) {
        const Addr structural = ps->second + k;
        if (structural % _params.streamChunk <
            ps->second % _params.streamChunk) {
            break; // crossed a chunk boundary
        }
        const auto sp = _spMap.find(structural);
        if (sp == _spMap.end())
            break;
        emitter.emit(sp->second, kL1);
    }
}

std::size_t
IsbPrefetcher::storageBits() const
{
    // Modelled as the on-chip caches of the PS/SP maps (the full maps
    // live off-chip in the real design): 8 KB on-chip budget.
    return 8 * 1024 * 8;
}

} // namespace dol
