#include "prefetch/isb.hpp"

namespace dol
{

IsbPrefetcher::IsbPrefetcher() : IsbPrefetcher(Params()) {}

IsbPrefetcher::IsbPrefetcher(const Params &params)
    : Prefetcher("ISB"), _params(params)
{}

Addr
IsbPrefetcher::structuralOf(Addr line_addr) const
{
    const Addr *structural = _psMap.find(lineAddr(line_addr));
    return structural ? *structural : kNoAddr;
}

Addr
IsbPrefetcher::allocateStructural()
{
    // New streams start on a fresh chunk so unrelated streams never
    // blend in structural space.
    const Addr structural = _nextStructural;
    _nextStructural += _params.streamChunk;
    return structural;
}

void
IsbPrefetcher::train(const AccessInfo &access, PrefetchEmitter &emitter)
{
    if (!access.l1PrimaryMiss)
        return;
    const Addr line = access.line();

    if (_psMap.size() > _params.maxMappings) {
        // Finite translation storage: a full structure restarts
        // training (modelling wholesale eviction).
        _psMap.clear();
        _spMap.clear();
        _lastMiss.clear();
    }

    // Training: give consecutive structural addresses to consecutive
    // misses of the same PC. (FlatHashMap pointers are invalidated by
    // inserts, so looked-up values are copied out first.)
    const Addr *last = _lastMiss.find(access.pc);
    if (last && *last != line) {
        const Addr prev = *last;
        const Addr *prev_ps = _psMap.find(prev);
        Addr prev_structural;
        if (!prev_ps) {
            prev_structural = allocateStructural();
            _psMap.insert(prev, prev_structural);
            _spMap.insert(prev_structural, prev);
        } else {
            prev_structural = *prev_ps;
        }
        const Addr next_structural = prev_structural + 1;
        // Chunk boundaries end a stream; established mappings and
        // occupied slots are left alone (remapping on every revisit
        // would tear chains apart at their wrap-around edges).
        if (next_structural % _params.streamChunk != 0 &&
            !_psMap.contains(line) &&
            !_spMap.contains(next_structural)) {
            _psMap.insert(line, next_structural);
            _spMap.insert(next_structural, line);
        }
    }
    _lastMiss.insert(access.pc, line);

    // Prediction: walk forward in structural space.
    const Addr *ps = _psMap.find(line);
    if (!ps)
        return;
    const Addr base_structural = *ps;
    for (unsigned k = 1; k <= _params.degree; ++k) {
        const Addr structural = base_structural + k;
        if (structural % _params.streamChunk <
            base_structural % _params.streamChunk) {
            break; // crossed a chunk boundary
        }
        const Addr *physical = _spMap.find(structural);
        if (!physical)
            break;
        emitter.emit(*physical, kL1);
    }
}

std::size_t
IsbPrefetcher::storageBits() const
{
    // Modelled as the on-chip caches of the PS/SP maps (the full maps
    // live off-chip in the real design): 8 KB on-chip budget.
    return 8 * 1024 * 8;
}

} // namespace dol
