#include "prefetch/bop.hpp"

#include <algorithm>

namespace dol
{

namespace
{

/** Offsets with no prime factor above 5, up to 64 (Michaud's list). */
const int kOffsetList[] = {1, 2, 3, 4, 5, 6, 8, 9, 10, 12,
                           15, 16, 18, 20, 24, 25, 27, 30, 32, 36,
                           40, 45, 48, 50, 54, 60, 64};

} // namespace

BopPrefetcher::BopPrefetcher() : BopPrefetcher(Params()) {}

BopPrefetcher::BopPrefetcher(const Params &params)
    : Prefetcher("BOP"), _params(params),
      _offsets(std::begin(kOffsetList), std::end(kOffsetList)),
      _scores(_offsets.size(), 0),
      _rr(params.rrEntries, kNoAddr)
{}

bool
BopPrefetcher::rrContains(Addr line_addr) const
{
    return _rr[lineNum(line_addr) % _rr.size()] == lineAddr(line_addr);
}

void
BopPrefetcher::rrInsert(Addr line_addr)
{
    _rr[lineNum(line_addr) % _rr.size()] = lineAddr(line_addr);
}

void
BopPrefetcher::advanceLearning(Addr line_addr)
{
    // Test the current candidate offset against this trigger access.
    const int offset = _offsets[_candidate];
    const Addr base = line_addr - static_cast<Addr>(offset) * kLineBytes;
    if (rrContains(base)) {
        if (++_scores[_candidate] >= _params.scoreMax) {
            // Early winner: adopt it and start a new phase.
            _bestOffset = offset;
            _enabled = true;
            std::fill(_scores.begin(), _scores.end(), 0);
            _candidate = 0;
            _round = 0;
            return;
        }
    }

    if (++_candidate >= _offsets.size()) {
        _candidate = 0;
        if (++_round >= _params.roundMax) {
            // Phase over: adopt the best scoring offset.
            const auto best_it =
                std::max_element(_scores.begin(), _scores.end());
            const unsigned best_score = *best_it;
            _bestOffset = _offsets[static_cast<std::size_t>(
                best_it - _scores.begin())];
            _enabled = best_score > _params.badScore;
            std::fill(_scores.begin(), _scores.end(), 0);
            _round = 0;
        }
    }
}

void
BopPrefetcher::train(const AccessInfo &access, PrefetchEmitter &emitter)
{
    // BOP triggers on L1 misses and on hits to prefetched lines.
    if (!access.l1PrimaryMiss && !access.l1HitPrefetched)
        return;

    const Addr line = access.line();
    advanceLearning(line);

    if (_enabled) {
        emitter.emit(line + static_cast<Addr>(_bestOffset) * kLineBytes,
                     kL1);
    } else {
        // Degenerate mode: BOP still records the access so learning
        // can resume, but issues nothing.
        rrInsert(line);
    }
}

void
BopPrefetcher::onFill(ComponentId comp, Addr line_addr, Cycle completion,
                      PrefetchEmitter &emitter)
{
    (void)completion;
    (void)emitter;
    if (comp != id())
        return;
    // Insert the *base* address (fill minus current offset), so a hit
    // in RR means "a prefetch with this offset would have completed".
    rrInsert(line_addr - static_cast<Addr>(_bestOffset) * kLineBytes);
}

std::size_t
BopPrefetcher::storageBits() const
{
    // RR: 12-bit partial tags; scores: 5 bits per offset; prefetch
    // bits per Table II: 1 Kb.
    return _rr.size() * 12 + _scores.size() * 5 + 1024;
}

} // namespace dol
