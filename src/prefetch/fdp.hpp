/**
 * @file
 * FDP: Feedback-Directed Prefetching (Srinath et al., HPCA 2007).
 *
 * A stream prefetcher whose aggressiveness (degree and distance) is
 * throttled by runtime feedback: measured prefetch accuracy, lateness,
 * and cache pollution (tracked with a Bloom filter of evicted-by-
 * prefetch lines). Table II configuration: 64 streams, 1 Kb tag array,
 * 8 Kb Bloom filter (2.5 KB).
 */

#ifndef DOL_PREFETCH_FDP_HPP
#define DOL_PREFETCH_FDP_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace dol
{

class FdpPrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned streams = 64;
        unsigned bloomBits = 8192;
        /** Feedback sampling interval, in training events. */
        unsigned sampleInterval = 2048;
        unsigned maxDegree = 4;
        unsigned minDegree = 1;
        unsigned maxDistance = 16;
    };

    FdpPrefetcher();
    explicit FdpPrefetcher(const Params &params);

    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;

    std::size_t storageBits() const override;

    unsigned currentDegree() const { return _degree; }

  private:
    struct Stream
    {
        Addr lastLine = kNoAddr; ///< most recent miss in the stream
        int direction = 0;       ///< +1 ascending, -1 descending, 0 new
        unsigned confirmations = 0;
        bool trained = false;
        std::uint64_t lruStamp = 0;
    };

    Stream *findStream(Addr line_addr);
    Stream &allocateStream(Addr line_addr);
    void sampleFeedback();

    Params _params;
    std::vector<Stream> _streams;
    std::uint64_t _stamp = 0;

    unsigned _degree = 2;
    unsigned _distance = 4;

    // Feedback counters over the current sampling window. "Used" is
    // approximated by demand hits on prefetched lines, which in a
    // monolithic configuration are this prefetcher's own lines.
    std::uint64_t _issuedWindow = 0;
    std::uint64_t _usedWindow = 0;
    std::uint64_t _pollutionWindow = 0;
    std::uint64_t _events = 0;
};

} // namespace dol

#endif // DOL_PREFETCH_FDP_HPP
