/**
 * @file
 * ISB: Irregular Stream Buffer (Jain & Lin, MICRO 2013), the
 * reduced-storage Markov variant the paper's related work discusses.
 *
 * Correlated miss addresses are assigned consecutive *structural*
 * addresses; a physical-to-structural (PS) map and its inverse (SP)
 * translate between the spaces. Irregular-but-repeating sequences
 * become sequential streams in structural space, where a trivial
 * next-k prefetcher runs.
 */

#ifndef DOL_PREFETCH_ISB_HPP
#define DOL_PREFETCH_ISB_HPP

#include <cstdint>
#include <vector>

#include "common/flat_table.hpp"
#include "prefetch/prefetcher.hpp"

namespace dol
{

class IsbPrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned degree = 3;       ///< structural lookahead
        std::size_t maxMappings = 1u << 16; ///< PS/SP capacity
        /** Structural addresses per stream region. */
        unsigned streamChunk = 256;
    };

    IsbPrefetcher();
    explicit IsbPrefetcher(const Params &params);

    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;

    std::size_t storageBits() const override;

    /** Test hook: structural address of a line (kNoAddr if unmapped). */
    Addr structuralOf(Addr line_addr) const;

  private:
    Addr allocateStructural();

    Params _params;
    /** Per-PC training context: the previous miss line of that PC. */
    FlatHashMap<Pc, Addr> _lastMiss;
    FlatHashMap<Addr, Addr> _psMap; ///< physical -> structural
    FlatHashMap<Addr, Addr> _spMap; ///< structural -> physical
    Addr _nextStructural = 0;
};

} // namespace dol

#endif // DOL_PREFETCH_ISB_HPP
