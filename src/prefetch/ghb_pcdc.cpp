#include "prefetch/ghb_pcdc.hpp"

#include <array>

namespace dol
{

bool
GhbPcdcPrefetcher::linkValid(std::uint32_t link,
                             std::uint64_t expected_seq) const
{
    return link != kNoLink && link < _ghb.size() &&
           _ghb[link].seq == expected_seq;
}

void
GhbPcdcPrefetcher::train(const AccessInfo &access,
                         PrefetchEmitter &emitter)
{
    if (!access.l1PrimaryMiss)
        return;
    const Addr line = access.line();

    // Insert into the GHB, linking to the previous miss of this PC.
    IndexEntry &idx = _index[access.pc % _index.size()];
    std::uint32_t prev_link = kNoLink;
    std::uint64_t prev_seq = 0;
    if (idx.valid && idx.pc == access.pc) {
        prev_link = idx.head;
        prev_seq = idx.headSeq;
    }

    const std::uint32_t slot = _head;
    _head = (_head + 1) % _ghb.size();
    ++_seq;
    _ghb[slot] = GhbEntry{line, prev_link, _seq};
    _ghbPrevSeq[slot] = prev_seq;

    idx.valid = true;
    idx.pc = access.pc;
    idx.head = slot;
    idx.headSeq = _seq;

    // Recover the last few addresses of this PC's chain and convert
    // them to deltas (newest first).
    std::array<Addr, 9> history{};
    unsigned depth = 0;
    std::uint32_t walk = slot;
    std::uint64_t expect = _seq;
    while (depth < history.size() && walk != kNoLink &&
           _ghb[walk].seq == expect) {
        history[depth++] = _ghb[walk].lineAddr;
        expect = _ghbPrevSeq[walk];
        walk = _ghb[walk].prev;
        if (expect == 0)
            break;
    }
    if (depth < 3)
        return;

    std::array<std::int64_t, 8> deltas{};
    const unsigned num_deltas = depth - 1;
    for (unsigned i = 0; i < num_deltas; ++i) {
        deltas[i] = static_cast<std::int64_t>(history[i]) -
                    static_cast<std::int64_t>(history[i + 1]);
    }

    // Delta correlation: find the most recent earlier occurrence of
    // the newest delta pair and replay the deltas that followed it.
    // No correlation, no prefetch — that is what keeps PC/DC quiet on
    // patternless streams.
    const std::int64_t d1 = deltas[0];
    const std::int64_t d2 = num_deltas >= 2 ? deltas[1] : 0;
    if (d1 == 0)
        return;

    unsigned match = 0;
    for (unsigned j = 1; j + 1 < num_deltas; ++j) {
        if (deltas[j] == d1 && deltas[j + 1] == d2) {
            match = j;
            break;
        }
    }
    if (match == 0)
        return;

    Addr next = history[0];
    for (unsigned i = 0; i < _degree; ++i) {
        // Replay the deltas that followed the earlier occurrence
        // (deltas[match-1], deltas[match-2], ...), wrapping on the
        // matched period.
        const unsigned idx = match - 1 - (i % match);
        next = static_cast<Addr>(static_cast<std::int64_t>(next) +
                                 deltas[idx]);
        emitter.emit(next, kL1);
    }
}

} // namespace dol
