#include "prefetch/triangel.hpp"

#include <algorithm>

#include "trace/counters.hpp"

namespace dol
{

TriangelPrefetcher::TriangelPrefetcher()
    : TriangelPrefetcher(Params())
{}

TriangelPrefetcher::TriangelPrefetcher(const Params &params)
    : Prefetcher("Triangel"), _params(params),
      _units(params.unitEntries), _lastMiss(params.unitEntries),
      _sample(params.sampleEntries), _history(params.historyEntries)
{}

bool
TriangelPrefetcher::isTrainingUnit(Pc pc) const
{
    const Unit *unit = _units.find(pc);
    return unit && unit->misses >= _params.trainThreshold;
}

int
TriangelPrefetcher::unitScore(Pc pc) const
{
    const Unit *unit = _units.find(pc);
    return unit ? unit->score : 0;
}

bool
TriangelPrefetcher::hasPair(Addr line) const
{
    return _history.contains(lineAddr(line));
}

void
TriangelPrefetcher::recordPair(Addr prev, Addr line, Unit &unit)
{
    if (Entry *entry = _history.find(prev)) {
        // The pair's trigger already earned history space: confirm or
        // contend for a way.
        for (unsigned w = 0; w < kWays; ++w) {
            if (entry->succ[w] == line) {
                entry->conf[w] = std::min<std::uint8_t>(
                    entry->conf[w] + 1, kConfMax);
                unit.score = std::min(unit.score + 1, kScoreMax);
                return;
            }
        }
        unsigned victim = 0;
        for (unsigned w = 1; w < kWays; ++w) {
            if (entry->conf[w] < entry->conf[victim])
                victim = w;
        }
        // Decay-then-replace: a recurring successor survives a few
        // conflicting observations before losing its way.
        if (entry->conf[victim] > 0) {
            --entry->conf[victim];
        } else {
            entry->succ[victim] = line;
            entry->conf[victim] = 1;
        }
        return;
    }

    // Metadata-reuse estimator: the sample table holds a subset of
    // recent pairs. Seeing the same pair again is evidence the
    // history metadata would be reused (score up); seeing the trigger
    // with a *different* successor is evidence the pattern is
    // unstable (score down). A fresh trigger is neutral — long-reuse
    // workloads simply fall out of the sample window.
    if (Addr *sampled = _sample.find(prev)) {
        if (*sampled == line) {
            ++_reuseHits;
            unit.score = std::min(unit.score + 2, kScoreMax);
        } else {
            *sampled = line;
            unit.score = std::max(unit.score - 1, kScoreMin);
        }
    } else {
        _sample.insert(prev) = line;
        ++_sampledPairs;
        // A never-before-seen pair drags the score down: a PC whose
        // pairs are all fresh (a random stream) pins itself at the
        // floor and never predicts, while a recurring sequence earns
        // the score back through history confirmations.
        unit.score = std::max(unit.score - 1, kScoreMin);
    }

    // Trained units record pairs directly; the score (reuse minus
    // instability, plus confirmations) gates *prediction*, not
    // recording, so cold history can still warm up.
    Entry &fresh = _history.insert(prev);
    fresh.succ[0] = line;
    fresh.conf[0] = 1;
    for (unsigned w = 1; w < kWays; ++w) {
        fresh.succ[w] = kNoAddr;
        fresh.conf[w] = 0;
    }
    ++_recordedPairs;
}

unsigned
TriangelPrefetcher::predict(Addr line, PrefetchEmitter &emitter)
{
    unsigned issued = 0;
    Addr cursor = line;
    for (unsigned hop = 0;
         hop <= _params.lookahead && issued < _params.degree; ++hop) {
        const Entry *entry = _history.find(cursor);
        if (!entry)
            break;
        Addr strongest = kNoAddr;
        std::uint8_t strongest_conf = 0;
        for (unsigned w = 0; w < kWays && issued < _params.degree;
             ++w) {
            if (entry->succ[w] == kNoAddr || entry->conf[w] == 0)
                continue;
            emitter.emit(entry->succ[w], kL1);
            ++issued;
            if (entry->conf[w] > strongest_conf) {
                strongest_conf = entry->conf[w];
                strongest = entry->succ[w];
            }
        }
        if (strongest == kNoAddr)
            break;
        cursor = strongest; // follow the likeliest chain forward
    }
    return issued;
}

void
TriangelPrefetcher::train(const AccessInfo &access,
                          PrefetchEmitter &emitter)
{
    if (!access.isLoad)
        return;
    // Train on the temporal trigger stream: primary misses plus hits
    // on prefetched lines, so a chain keeps advancing once covered.
    if (!access.l1PrimaryMiss && !access.l1HitPrefetched)
        return;
    const Addr line = access.line();

    Unit &unit = _units.insert(access.pc);
    ++unit.misses;
    if (unit.misses < _params.trainThreshold) {
        ++_unitRejects;
        return;
    }

    Addr &last = _lastMiss.insert(access.pc);
    if (last != 0 && last != line)
        recordPair(last, line, unit);
    last = line;

    if (unit.score >= _params.scoreFloor)
        _predictions += predict(line, emitter);
}

std::size_t
TriangelPrefetcher::storageBits() const
{
    // Line tags are 26 bits (paper Table II convention), confidences
    // 4 bits, PC tags 32 bits, unit state 40 bits.
    const std::size_t history =
        _params.historyEntries * (26 + kWays * (26 + 4));
    const std::size_t sample = _params.sampleEntries * (26 + 26);
    const std::size_t units = _params.unitEntries * (32 + 40);
    const std::size_t last = _params.unitEntries * (32 + 26);
    return history + sample + units + last;
}

void
TriangelPrefetcher::exportCounters(CounterRegistry &registry) const
{
    registry.set(name(), "sampled_pairs", _sampledPairs);
    registry.set(name(), "reuse_hits", _reuseHits);
    registry.set(name(), "recorded_pairs", _recordedPairs);
    registry.set(name(), "predictions", _predictions);
    registry.set(name(), "unit_rejects", _unitRejects);
}

} // namespace dol
