/**
 * @file
 * BOP: Best-Offset Prefetcher (Michaud, HPCA 2016).
 *
 * A learning phase scores candidate offsets against a Recent Requests
 * table: offset d scores a point when, for a miss on line X, line X-d
 * was recently fetched (meaning a prefetch with offset d would have
 * been timely). At the end of a round the best-scoring offset becomes
 * the prefetch offset. Table II configuration: 1K-entry RR table,
 * 1 Kb of prefetch bits (4 KB total).
 */

#ifndef DOL_PREFETCH_BOP_HPP
#define DOL_PREFETCH_BOP_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace dol
{

class BopPrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned rrEntries = 1024;
        unsigned scoreMax = 31;   ///< early-exit score
        unsigned roundMax = 100;  ///< rounds per learning phase
        unsigned badScore = 10;   ///< below this, prefetch disabled
    };

    BopPrefetcher();
    explicit BopPrefetcher(const Params &params);

    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;

    void onFill(ComponentId comp, Addr line_addr, Cycle completion,
                PrefetchEmitter &emitter) override;

    std::size_t storageBits() const override;

    int currentOffset() const { return _bestOffset; }

  private:
    bool rrContains(Addr line_addr) const;
    void rrInsert(Addr line_addr);
    void advanceLearning(Addr line_addr);

    Params _params;
    /** Michaud's offset list: products of small primes up to 64. */
    std::vector<int> _offsets;
    std::vector<unsigned> _scores;
    std::vector<Addr> _rr;

    unsigned _candidate = 0; ///< offset index tested this step
    unsigned _round = 0;
    int _bestOffset = 1;
    bool _enabled = true;
};

} // namespace dol

#endif // DOL_PREFETCH_BOP_HPP
