#include "prefetch/markov.hpp"

#include <algorithm>

namespace dol
{

MarkovPrefetcher::MarkovPrefetcher() : MarkovPrefetcher(Params()) {}

MarkovPrefetcher::MarkovPrefetcher(const Params &params)
    : Prefetcher("Markov"), _params(params), _table(params.entries)
{
    _params.ways = std::min(_params.ways, kMaxWays);
}

void
MarkovPrefetcher::train(const AccessInfo &access,
                        PrefetchEmitter &emitter)
{
    if (!access.l1PrimaryMiss)
        return;
    const Addr line = access.line();

    // Record this miss as the successor of the previous one
    // (move-to-front within the row's inline MRU array).
    if (_lastMissLine != kNoAddr && _lastMissLine != line) {
        Row &row = _table[lineNum(_lastMissLine) % _table.size()];
        if (row.tag != _lastMissLine) {
            row.tag = _lastMissLine;
            row.count = 0;
        }
        unsigned pos = row.count;
        for (unsigned w = 0; w < row.count; ++w) {
            if (row.succ[w] == line) {
                pos = w;
                break;
            }
        }
        if (pos == row.count) {
            // Not present: grow if room, else drop the LRU way.
            if (row.count < _params.ways)
                ++row.count;
            pos = row.count - 1;
        }
        for (unsigned w = pos; w > 0; --w)
            row.succ[w] = row.succ[w - 1];
        row.succ[0] = line;
    }
    _lastMissLine = line;

    // Predict: prefetch the remembered successors of this line.
    const Row &row = _table[lineNum(line) % _table.size()];
    if (row.tag == line) {
        const unsigned limit =
            std::min<unsigned>(row.count, _params.degree);
        for (unsigned w = 0; w < limit; ++w)
            emitter.emit(row.succ[w], kL1);
    }
}

std::size_t
MarkovPrefetcher::storageBits() const
{
    // Tag (26) + ways x successor (26 each). The paper's point about
    // Markov prefetchers: this is a lot of storage (here ~40 KB).
    return _table.size() * (26 + _params.ways * 26);
}

} // namespace dol
