#include "prefetch/markov.hpp"

#include <algorithm>

namespace dol
{

MarkovPrefetcher::MarkovPrefetcher() : MarkovPrefetcher(Params()) {}

MarkovPrefetcher::MarkovPrefetcher(const Params &params)
    : Prefetcher("Markov"), _params(params), _table(params.entries)
{
    for (Row &row : _table)
        row.successors.reserve(params.ways);
}

void
MarkovPrefetcher::train(const AccessInfo &access,
                        PrefetchEmitter &emitter)
{
    if (!access.l1PrimaryMiss)
        return;
    const Addr line = access.line();

    // Record this miss as the successor of the previous one.
    if (_lastMissLine != kNoAddr && _lastMissLine != line) {
        Row &row = _table[lineNum(_lastMissLine) % _table.size()];
        if (row.tag != _lastMissLine) {
            row.tag = _lastMissLine;
            row.successors.clear();
        }
        auto it = std::find(row.successors.begin(),
                            row.successors.end(), line);
        if (it != row.successors.end())
            row.successors.erase(it);
        row.successors.insert(row.successors.begin(), line);
        if (row.successors.size() > _params.ways)
            row.successors.pop_back();
    }
    _lastMissLine = line;

    // Predict: prefetch the remembered successors of this line.
    const Row &row = _table[lineNum(line) % _table.size()];
    if (row.tag == line) {
        unsigned issued = 0;
        for (Addr successor : row.successors) {
            if (issued++ >= _params.degree)
                break;
            emitter.emit(successor, kL1);
        }
    }
}

std::size_t
MarkovPrefetcher::storageBits() const
{
    // Tag (26) + ways x successor (26 each). The paper's point about
    // Markov prefetchers: this is a lot of storage (here ~40 KB).
    return _table.size() * (26 + _params.ways * 26);
}

} // namespace dol
