#include "prefetch/sms.hpp"

#include <bit>

namespace dol
{

SmsPrefetcher::SmsPrefetcher() : SmsPrefetcher(Params()) {}

SmsPrefetcher::SmsPrefetcher(const Params &params)
    : Prefetcher("SMS"), _params(params),
      _accumulation(params.accumulationEntries),
      _filter(params.filterEntries),
      _pht(params.phtEntries)
{}

void
SmsPrefetcher::endGeneration(ActiveRegion &entry)
{
    if (!entry.valid)
        return;
    // Record footprints with at least two lines; single-line regions
    // carry no spatial information.
    if (std::popcount(entry.pattern) >= 2) {
        PhtEntry &slot = _pht[entry.key % _pht.size()];
        slot.key = entry.key;
        slot.pattern = entry.pattern;
        slot.valid = true;
    }
    entry.valid = false;
}

void
SmsPrefetcher::train(const AccessInfo &access, PrefetchEmitter &emitter)
{
    const std::uint64_t region = regionOf(access.addr);
    const unsigned offset = offsetOf(access.addr);
    const Pattern bit = Pattern{1} << offset;

    // Already accumulating this region?
    for (ActiveRegion &entry : _accumulation) {
        if (entry.valid && entry.region == region) {
            entry.pattern |= bit;
            entry.lruStamp = ++_stamp;
            return;
        }
    }

    // In the filter (seen exactly once)? Promote to the AT.
    for (ActiveRegion &entry : _filter) {
        if (entry.valid && entry.region == region) {
            ActiveRegion promoted = entry;
            entry.valid = false;
            promoted.pattern |= bit;
            promoted.lruStamp = ++_stamp;

            ActiveRegion *victim = &_accumulation[0];
            for (ActiveRegion &slot : _accumulation) {
                if (!slot.valid) {
                    victim = &slot;
                    break;
                }
                if (slot.lruStamp < victim->lruStamp)
                    victim = &slot;
            }
            endGeneration(*victim); // capacity eviction ends it
            *victim = promoted;
            victim->valid = true;
            return;
        }
    }

    // Brand-new region: this access is the trigger. Predict from the
    // PHT, then start tracking a new generation in the filter.
    if (access.l1PrimaryMiss) {
        const std::uint64_t key = keyOf(access.pc, offset);
        const PhtEntry &slot = _pht[key % _pht.size()];
        if (slot.valid && slot.key == key) {
            const Addr base = region << _params.regionBits;
            for (unsigned i = 0; i < linesPerRegion(); ++i) {
                if (i != offset && (slot.pattern >> i) & 1) {
                    emitter.emit(base +
                                     (static_cast<Addr>(i) << kLineBits),
                                 kL1);
                }
            }
        }
    }

    ActiveRegion *victim = &_filter[0];
    for (ActiveRegion &slot : _filter) {
        if (!slot.valid) {
            victim = &slot;
            break;
        }
        if (slot.lruStamp < victim->lruStamp)
            victim = &slot;
    }
    *victim = ActiveRegion{};
    victim->region = region;
    victim->key = keyOf(access.pc, offset);
    victim->pattern = bit;
    victim->valid = true;
    victim->lruStamp = ++_stamp;
}

std::size_t
SmsPrefetcher::storageBits() const
{
    const unsigned pattern_bits = linesPerRegion();
    // AT/FR: region tag (26) + key (16) + pattern; PHT: key tag (16) +
    // pattern.
    return _accumulation.size() * (26 + 16 + pattern_bits) +
           _filter.size() * (26 + 16 + pattern_bits) +
           _pht.size() * (16 + pattern_bits);
}

} // namespace dol
