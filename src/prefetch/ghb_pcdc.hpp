/**
 * @file
 * GHB PC/DC prefetcher (Nesbit & Smith, HPCA 2004).
 *
 * A Global History Buffer holds the L1 miss stream as a circular
 * buffer; an index table links together the misses of each PC. On a
 * miss, the last few addresses of the triggering PC are recovered from
 * the chain, converted to deltas, and delta correlation predicts the
 * next addresses. Table II configuration: 256-entry GHB, 256-entry
 * index table (4 KB).
 */

#ifndef DOL_PREFETCH_GHB_PCDC_HPP
#define DOL_PREFETCH_GHB_PCDC_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace dol
{

class GhbPcdcPrefetcher : public Prefetcher
{
  public:
    explicit GhbPcdcPrefetcher(unsigned ghb_entries = 256,
                               unsigned index_entries = 256,
                               unsigned degree = 4)
        : Prefetcher("GHB-PC/DC"), _degree(degree),
          _ghb(ghb_entries), _index(index_entries)
    {}

    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;

    std::size_t
    storageBits() const override
    {
        // GHB entry: line address (32) + link pointer (log2 entries);
        // index entry: PC tag (16) + head pointer.
        const std::size_t link = 8;
        return _ghb.size() * (32 + link) + _index.size() * (16 + link);
    }

  private:
    struct GhbEntry
    {
        Addr lineAddr = kNoAddr;
        std::uint32_t prev = kNoLink; ///< previous miss of the same PC
        std::uint64_t seq = 0;        ///< global insertion number
    };

    struct IndexEntry
    {
        Pc pc = 0;
        std::uint32_t head = kNoLink;
        std::uint64_t headSeq = 0;
        bool valid = false;
    };

    static constexpr std::uint32_t kNoLink = 0xffffffff;

    /** True when the link still points at the miss it was made for. */
    bool linkValid(std::uint32_t link, std::uint64_t expected_seq) const;

    unsigned _degree;
    std::vector<GhbEntry> _ghb;
    /** Sequence number each entry's prev link was created against. */
    std::vector<std::uint64_t> _ghbPrevSeq =
        std::vector<std::uint64_t>(_ghb.size(), 0);
    std::vector<IndexEntry> _index;
    std::uint32_t _head = 0;
    std::uint64_t _seq = 0;
};

} // namespace dol

#endif // DOL_PREFETCH_GHB_PCDC_HPP
