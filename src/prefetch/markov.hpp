/**
 * @file
 * Markov prefetcher (Joseph & Grunwald, ISCA 1997) — one of the
 * irregular-pattern baselines the paper's related-work section builds
 * on. A correlation table maps each miss line address to the most
 * recent successor lines observed after it; on a miss, the stored
 * successors are prefetched.
 */

#ifndef DOL_PREFETCH_MARKOV_HPP
#define DOL_PREFETCH_MARKOV_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace dol
{

class MarkovPrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned entries = 4096; ///< correlation table rows
        /** Successors kept per row (clamped to kMaxWays). */
        unsigned ways = 2;
        unsigned degree = 2;     ///< successors prefetched per miss
    };

    /** Inline successor storage per row; rows never heap-allocate. */
    static constexpr unsigned kMaxWays = 4;

    MarkovPrefetcher();
    explicit MarkovPrefetcher(const Params &params);

    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;

    std::size_t storageBits() const override;

  private:
    struct Row
    {
        Addr tag = kNoAddr;
        Addr succ[kMaxWays] = {};   ///< MRU first
        std::uint8_t count = 0;     ///< valid successors
    };

    Params _params;
    std::vector<Row> _table;
    Addr _lastMissLine = kNoAddr;
};

} // namespace dol

#endif // DOL_PREFETCH_MARKOV_HPP
