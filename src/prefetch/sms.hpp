/**
 * @file
 * SMS: Spatial Memory Streaming (Somogyi et al., ISCA 2006).
 *
 * Tracks the footprint (bit pattern of touched lines) of each active
 * spatial region generation, indexed by the trigger instruction's
 * PC-and-offset; when a generation ends, the pattern is stored in a
 * Pattern History Table. A later trigger by the same PC/offset replays
 * the whole recorded footprint as prefetches. Table II configuration:
 * 64-entry accumulation table, 32-entry filter table, 512-entry PHT
 * (12 KB).
 */

#ifndef DOL_PREFETCH_SMS_HPP
#define DOL_PREFETCH_SMS_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace dol
{

class SmsPrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned accumulationEntries = 64;
        unsigned filterEntries = 32;
        unsigned phtEntries = 512;
        /** Spatial region: 2 KB = 32 cache lines. */
        unsigned regionBits = 11;
    };

    SmsPrefetcher();
    explicit SmsPrefetcher(const Params &params);

    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;

    std::size_t storageBits() const override;

  private:
    using Pattern = std::uint32_t;

    unsigned linesPerRegion() const
    {
        return 1u << (_params.regionBits - kLineBits);
    }

    std::uint64_t regionOf(Addr addr) const
    {
        return addr >> _params.regionBits;
    }

    unsigned offsetOf(Addr addr) const
    {
        return static_cast<unsigned>((addr >> kLineBits) &
                                     (linesPerRegion() - 1));
    }

    /** PHT index: trigger PC xor trigger offset (the SMS key). */
    std::uint64_t keyOf(Pc pc, unsigned offset) const
    {
        return pc ^ offset;
    }

    struct ActiveRegion
    {
        std::uint64_t region = ~std::uint64_t{0};
        std::uint64_t key = 0; ///< trigger PC/offset key
        Pattern pattern = 0;
        bool valid = false;
        std::uint64_t lruStamp = 0;
    };

    struct PhtEntry
    {
        std::uint64_t key = ~std::uint64_t{0};
        Pattern pattern = 0;
        bool valid = false;
    };

    void endGeneration(ActiveRegion &entry);

    Params _params;
    std::vector<ActiveRegion> _accumulation;
    std::vector<ActiveRegion> _filter; ///< single-access regions
    std::vector<PhtEntry> _pht;
    std::uint64_t _stamp = 0;
};

} // namespace dol

#endif // DOL_PREFETCH_SMS_HPP
