#include "prefetch/spp.hpp"

namespace dol
{

SppPrefetcher::SppPrefetcher() : SppPrefetcher(Params()) {}

SppPrefetcher::SppPrefetcher(const Params &params)
    : Prefetcher("SPP"), _params(params),
      _signatures(params.signatureEntries),
      _patterns(params.patternEntries),
      _filter(params.filterEntries, kNoAddr)
{}

SppPrefetcher::SignatureEntry &
SppPrefetcher::lookupSignature(std::uint64_t page)
{
    // 4-way associative search over a small direct region.
    const std::size_t ways = 4;
    const std::size_t sets = _signatures.size() / ways;
    const std::size_t base = (page % sets) * ways;
    SignatureEntry *victim = &_signatures[base];
    for (std::size_t w = 0; w < ways; ++w) {
        SignatureEntry &entry = _signatures[base + w];
        if (entry.pageTag == page) {
            entry.lruStamp = ++_stamp;
            return entry;
        }
        if (entry.lruStamp < victim->lruStamp)
            victim = &entry;
    }
    *victim = SignatureEntry{};
    victim->pageTag = page;
    victim->lruStamp = ++_stamp;
    return *victim;
}

void
SppPrefetcher::updatePattern(std::uint16_t sig, std::int16_t delta)
{
    PatternEntry &entry = _patterns[sig % _patterns.size()];
    if (entry.totalCounter >= kCounterMax) {
        // Periodically age all counters to keep ratios meaningful.
        for (PatternSlot &slot : entry.slots)
            slot.counter /= 2;
        entry.totalCounter /= 2;
    }
    ++entry.totalCounter;

    PatternSlot *victim = &entry.slots[0];
    for (PatternSlot &slot : entry.slots) {
        if (slot.counter > 0 && slot.delta == delta) {
            ++slot.counter;
            return;
        }
        if (slot.counter < victim->counter)
            victim = &slot;
    }
    victim->delta = delta;
    victim->counter = 1;
}

bool
SppPrefetcher::filterContains(Addr line_addr) const
{
    return _filter[lineNum(line_addr) % _filter.size()] ==
           lineAddr(line_addr);
}

void
SppPrefetcher::filterInsert(Addr line_addr)
{
    _filter[lineNum(line_addr) % _filter.size()] = lineAddr(line_addr);
}

void
SppPrefetcher::train(const AccessInfo &access, PrefetchEmitter &emitter)
{
    const std::uint64_t page = access.addr >> kPageBits;
    const auto offset = static_cast<std::uint8_t>(
        (access.addr >> kLineBits) & (kLinesPerPage - 1));

    SignatureEntry &entry = lookupSignature(page);
    const bool fresh = entry.signature == 0 && entry.lastOffset == 0;
    const auto delta =
        static_cast<std::int16_t>(static_cast<int>(offset) -
                                  static_cast<int>(entry.lastOffset));

    if (!fresh && delta != 0)
        updatePattern(entry.signature, delta);

    const std::uint16_t old_sig = entry.signature;
    if (delta != 0 || fresh)
        entry.signature = updateSignature(old_sig, delta);
    entry.lastOffset = offset;

    if (fresh || delta == 0)
        return;

    // Lookahead along the signature path.
    std::uint16_t sig = entry.signature;
    int current_offset = offset;
    unsigned path_conf = 100;
    for (unsigned depth = 0; depth < _params.maxLookahead; ++depth) {
        const PatternEntry &pattern = _patterns[sig % _patterns.size()];
        if (pattern.totalCounter == 0)
            break;

        // Best delta by counter.
        const PatternSlot *best = nullptr;
        for (const PatternSlot &slot : pattern.slots) {
            if (slot.counter > 0 &&
                (!best || slot.counter > best->counter)) {
                best = &slot;
            }
        }
        if (!best)
            break;

        path_conf = path_conf * best->counter / pattern.totalCounter;
        if (path_conf < _params.stopThreshold)
            break;

        current_offset += best->delta;
        if (current_offset < 0 ||
            current_offset >= static_cast<int>(kLinesPerPage)) {
            break; // page boundary: the simple GHR-free variant stops
        }
        if (path_conf >= _params.issueThreshold) {
            const Addr target =
                (page << kPageBits) +
                (static_cast<Addr>(current_offset) << kLineBits);
            if (!filterContains(target)) {
                emitter.emit(target, kL1);
                filterInsert(target);
            }
        }
        sig = updateSignature(sig, best->delta);
    }
}

std::size_t
SppPrefetcher::storageBits() const
{
    // ST: page tag (16) + signature (12) + offset (6)
    // PT: 4 x (delta 7 + counter 4) + total counter 4
    // Filter: 1 partial tag bit-line each (modelled as 10-bit tags)
    return _signatures.size() * (16 + kSignatureBits + 6) +
           _patterns.size() * (kDeltasPerPattern * (7 + 4) + 4) +
           _filter.size() * 10;
}

} // namespace dol
