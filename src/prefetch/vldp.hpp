/**
 * @file
 * VLDP: Variable Length Delta Prefetcher (Shevgoor et al., MICRO 2015).
 *
 * A Delta History Buffer tracks the last few deltas per page; multiple
 * Delta Prediction Tables — indexed by delta histories of increasing
 * length — predict the next delta, longest match winning; an Offset
 * Prediction Table predicts the first prefetch on a brand-new page from
 * its first accessed offset. Table II configuration: 64-entry DHB,
 * 128-entry DPTs, 128-entry OPT (3.25 KB).
 */

#ifndef DOL_PREFETCH_VLDP_HPP
#define DOL_PREFETCH_VLDP_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace dol
{

class VldpPrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned historyEntries = 64; ///< DHB pages tracked
        unsigned tableEntries = 128;  ///< per DPT
        unsigned offsetEntries = 128; ///< OPT
        unsigned degree = 4;          ///< lookahead chain length
    };

    VldpPrefetcher();
    explicit VldpPrefetcher(const Params &params);

    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;

    std::size_t storageBits() const override;

  private:
    static constexpr unsigned kPageBits = 12;
    static constexpr unsigned kLinesPerPage =
        1u << (kPageBits - kLineBits);
    static constexpr unsigned kNumTables = 3; ///< history lengths 1..3
    static constexpr unsigned kMaxHistory = kNumTables;

    struct DhbEntry
    {
        std::uint64_t pageTag = ~std::uint64_t{0};
        std::array<std::int16_t, kMaxHistory> deltas{}; ///< newest first
        std::uint8_t numDeltas = 0;
        std::uint8_t lastOffset = 0;
        bool seenFirstAccess = false;
        std::uint64_t lruStamp = 0;
    };

    struct DptEntry
    {
        std::uint64_t key = ~std::uint64_t{0};
        std::int16_t prediction = 0;
        std::uint8_t confidence = 0; ///< 2-bit
    };

    struct OptEntry
    {
        std::uint8_t offset = 0;
        std::int16_t prediction = 0;
        std::uint8_t confidence = 0;
        bool valid = false;
    };

    static std::uint64_t
    historyKey(const DhbEntry &entry, unsigned length)
    {
        std::uint64_t key = 0;
        for (unsigned i = 0; i < length; ++i) {
            key = (key << 12) ^
                  static_cast<std::uint16_t>(entry.deltas[i] & 0xfff);
        }
        return key ^ (std::uint64_t{length} << 60);
    }

    DhbEntry &lookupPage(std::uint64_t page);
    void updateTables(const DhbEntry &entry, std::int16_t new_delta);

    /** Longest-match prediction; returns 0 when nothing matches. */
    std::int16_t predict(const DhbEntry &entry) const;

    Params _params;
    std::vector<DhbEntry> _history;
    std::array<std::vector<DptEntry>, kNumTables> _tables;
    std::vector<OptEntry> _offsets;
    std::uint64_t _stamp = 0;
};

} // namespace dol

#endif // DOL_PREFETCH_VLDP_HPP
