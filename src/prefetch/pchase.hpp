/**
 * @file
 * Pointer-chase prefetcher (after arXiv 1801.08088), used here as a
 * monolithic coordinator extra. Unlike P1 it sees no decoder taint
 * and tracks no registers: it detects self-referencing load chains
 * purely from the demand address/value stream. For every load PC it
 * checks whether the current effective address equals the previous
 * load's returned value plus a small constant offset — the signature
 * of `p = p->next` traversals. A confirmed chain prefetches the next
 * node, and when a memory image is available the chain is
 * dereferenced for deeper hops (modelling the returned-value feedback
 * loop of the original design).
 */

#ifndef DOL_PREFETCH_PCHASE_HPP
#define DOL_PREFETCH_PCHASE_HPP

#include <cstdint>

#include "common/flat_table.hpp"
#include "prefetch/prefetcher.hpp"

namespace dol
{

class ValueSource;

class PChasePrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        std::size_t entries = 256;    ///< tracked load PCs
        unsigned confirmThreshold = 2; ///< matches before issuing
        unsigned confMax = 7;
        /** Link-field offset bound: |addr - prev value| accepted. */
        std::int64_t maxOffset = 128;
        unsigned hops = 2; ///< prefetch depth along the chain
    };

    explicit PChasePrefetcher(const ValueSource *memory = nullptr);
    PChasePrefetcher(const Params &params, const ValueSource *memory);

    void train(const AccessInfo &access,
               PrefetchEmitter &emitter) override;

    std::size_t storageBits() const override;

    void exportCounters(CounterRegistry &registry) const override;

    /** Test hook: confirmed chain confidence of @p pc (0 if none). */
    unsigned chainConfidence(Pc pc) const;
    /** Test hook: detected link offset of @p pc. */
    std::int64_t chainOffset(Pc pc) const;

  private:
    struct Chain
    {
        std::uint64_t lastValue = 0;
        std::int64_t offset = 0;
        std::uint8_t conf = 0;
        bool hasValue = false;
        bool hasOffset = false;
    };

    Params _params;
    const ValueSource *_memory;
    BoundedLruTable<Pc, Chain> _chains;

    std::uint64_t _confirmed = 0;
    std::uint64_t _emitted = 0;
    std::uint64_t _hopEmitted = 0;
    std::uint64_t _breaks = 0;
};

} // namespace dol

#endif // DOL_PREFETCH_PCHASE_HPP
