/**
 * @file
 * SPP: Signature Path Prefetcher (Kim et al., MICRO 2016), adapted to
 * train at L1 as all prefetchers in the paper do.
 *
 * Per-page signatures compress recent delta history; a pattern table
 * maps signatures to candidate deltas with confidence counters; a
 * lookahead loop walks the speculative signature path, multiplying
 * path confidence, until it falls below the issue threshold. Table II
 * configuration: 256-entry ST, 512-entry PT, 1024-entry prefetch
 * filter, 8-entry GHR (5 KB).
 */

#ifndef DOL_PREFETCH_SPP_HPP
#define DOL_PREFETCH_SPP_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace dol
{

class SppPrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned signatureEntries = 256;
        unsigned patternEntries = 512;
        unsigned filterEntries = 1024;
        unsigned maxLookahead = 8;
        /** Path-confidence issue threshold (fixed point / 100). */
        unsigned issueThreshold = 25;
        /** Confidence below which the lookahead stops entirely. */
        unsigned stopThreshold = 10;
    };

    SppPrefetcher();
    explicit SppPrefetcher(const Params &params);

    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;

    std::size_t storageBits() const override;

  private:
    static constexpr unsigned kPageBits = 12; ///< 4 KB pages
    static constexpr unsigned kLinesPerPage =
        1u << (kPageBits - kLineBits);
    static constexpr unsigned kSignatureBits = 12;
    static constexpr unsigned kDeltasPerPattern = 4;
    static constexpr unsigned kCounterMax = 15;

    struct SignatureEntry
    {
        std::uint64_t pageTag = ~std::uint64_t{0};
        std::uint16_t signature = 0;
        std::uint8_t lastOffset = 0;
        std::uint64_t lruStamp = 0;
    };

    struct PatternSlot
    {
        std::int16_t delta = 0;
        std::uint8_t counter = 0;
    };

    struct PatternEntry
    {
        PatternSlot slots[kDeltasPerPattern];
        std::uint8_t totalCounter = 0;
    };

    static std::uint16_t
    updateSignature(std::uint16_t sig, std::int16_t delta)
    {
        const auto folded = static_cast<std::uint16_t>(delta & 0x7f);
        return static_cast<std::uint16_t>(((sig << 3) ^ folded) &
                                          ((1u << kSignatureBits) - 1));
    }

    SignatureEntry &lookupSignature(std::uint64_t page);
    void updatePattern(std::uint16_t sig, std::int16_t delta);

    /** Simple direct-mapped recent-prefetch filter. */
    bool filterContains(Addr line_addr) const;
    void filterInsert(Addr line_addr);

    Params _params;
    std::vector<SignatureEntry> _signatures;
    std::vector<PatternEntry> _patterns;
    std::vector<Addr> _filter;
    std::uint64_t _stamp = 0;
};

} // namespace dol

#endif // DOL_PREFETCH_SPP_HPP
