#include "prefetch/fdp.hpp"

#include <algorithm>

namespace dol
{

FdpPrefetcher::FdpPrefetcher() : FdpPrefetcher(Params()) {}

FdpPrefetcher::FdpPrefetcher(const Params &params)
    : Prefetcher("FDP"), _params(params), _streams(params.streams)
{}

FdpPrefetcher::Stream *
FdpPrefetcher::findStream(Addr line_addr)
{
    // A miss belongs to a stream when it lands within the training
    // window ahead of (or behind) the stream's last address.
    const auto line = static_cast<std::int64_t>(lineNum(line_addr));
    Stream *best = nullptr;
    std::int64_t best_gap = 0;
    for (Stream &stream : _streams) {
        if (stream.lastLine == kNoAddr)
            continue;
        const auto last =
            static_cast<std::int64_t>(lineNum(stream.lastLine));
        const std::int64_t gap = line - last;
        const std::int64_t window = 16;
        if (gap == 0 || gap > window || gap < -window)
            continue;
        if (stream.direction != 0 &&
            ((gap > 0) != (stream.direction > 0))) {
            continue;
        }
        if (!best || std::abs(gap) < std::abs(best_gap)) {
            best = &stream;
            best_gap = gap;
        }
    }
    return best;
}

FdpPrefetcher::Stream &
FdpPrefetcher::allocateStream(Addr line_addr)
{
    Stream *victim = &_streams[0];
    for (Stream &stream : _streams) {
        if (stream.lastLine == kNoAddr) {
            victim = &stream;
            break;
        }
        if (stream.lruStamp < victim->lruStamp)
            victim = &stream;
    }
    *victim = Stream{};
    victim->lastLine = lineAddr(line_addr);
    victim->lruStamp = ++_stamp;
    return *victim;
}

void
FdpPrefetcher::sampleFeedback()
{
    // Thresholds follow the spirit of the paper's high/low accuracy
    // split (late-prefetch handling folds into the accuracy knob).
    const double accuracy =
        _issuedWindow ? static_cast<double>(_usedWindow) / _issuedWindow
                      : 1.0;
    if (accuracy > 0.75) {
        _degree = std::min(_degree + 1, _params.maxDegree);
        _distance = std::min(_distance * 2, _params.maxDistance);
    } else if (accuracy < 0.40) {
        _degree = std::max(_degree - 1, _params.minDegree);
        _distance = std::max(_distance / 2, 1u);
    }
    _issuedWindow = 0;
    _usedWindow = 0;
    _pollutionWindow = 0;
}

void
FdpPrefetcher::train(const AccessInfo &access, PrefetchEmitter &emitter)
{
    if (access.l1HitPrefetched)
        ++_usedWindow;

    if (++_events % _params.sampleInterval == 0)
        sampleFeedback();

    if (!access.l1PrimaryMiss)
        return;

    const Addr line = access.line();
    Stream *stream = findStream(line);
    if (!stream) {
        allocateStream(line);
        return;
    }

    stream->lruStamp = ++_stamp;
    const auto gap = static_cast<std::int64_t>(lineNum(line)) -
                     static_cast<std::int64_t>(lineNum(stream->lastLine));
    const int direction = gap > 0 ? 1 : -1;
    if (stream->direction == 0) {
        stream->direction = direction;
        stream->confirmations = 1;
    } else if (stream->direction == direction) {
        ++stream->confirmations;
    }
    stream->lastLine = line;
    if (stream->confirmations >= 2)
        stream->trained = true;

    if (!stream->trained)
        return;

    // Issue degree prefetches starting at the current distance.
    for (unsigned i = 1; i <= _degree; ++i) {
        const std::int64_t target_line =
            static_cast<std::int64_t>(lineNum(line)) +
            stream->direction *
                static_cast<std::int64_t>(_distance + i - 1);
        if (target_line < 0)
            break;
        const auto outcome =
            emitter.emit(static_cast<Addr>(target_line) << kLineBits,
                         kL1);
        if (outcome == PrefetchOutcome::kIssued)
            ++_issuedWindow;
    }
}

std::size_t
FdpPrefetcher::storageBits() const
{
    // Streams: last line (32) + direction (2) + confirmations (4);
    // plus the Table II tag array (1 Kb) and Bloom filter (8 Kb).
    return _streams.size() * (32 + 2 + 4) + 1024 + _params.bloomBits;
}

} // namespace dol
