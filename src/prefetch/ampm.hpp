/**
 * @file
 * AMPM: Access Map Pattern Matching (Ishii et al., JILP 2011).
 *
 * Memory is divided into zones; each zone keeps a 2-bit state per
 * cache line (init / accessed / prefetched). On an access at line t,
 * the prefetcher checks every candidate stride k: if lines (t - k) and
 * (t - 2k) have been accessed, the zone plausibly contains a stride-k
 * stream and (t + k) is prefetched. Table II configuration: 128 access
 * maps, 256 bits per map (4 KB).
 */

#ifndef DOL_PREFETCH_AMPM_HPP
#define DOL_PREFETCH_AMPM_HPP

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hpp"

namespace dol
{

class AmpmPrefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned maps = 128;
        /** Zone: 128 lines x 2 bits = 256 bits per map (8 KB zone). */
        unsigned linesPerZone = 128;
        unsigned maxDegree = 4;
        unsigned maxStride = 16;
    };

    AmpmPrefetcher();
    explicit AmpmPrefetcher(const Params &params);

    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;

    std::size_t storageBits() const override;

  private:
    enum LineState : std::uint8_t
    {
        kInit = 0,
        kAccessed = 1,
        kPrefetched = 2,
    };

    struct Zone
    {
        std::uint64_t tag = ~std::uint64_t{0};
        std::vector<std::uint8_t> states;
        std::uint64_t lruStamp = 0;
        bool valid = false;
    };

    Zone &lookupZone(std::uint64_t zone_num);

    /** Accessed (demand or prefetch-then-used proxy) check. */
    static bool
    wasAccessed(const Zone &zone, int index)
    {
        return index >= 0 &&
               index < static_cast<int>(zone.states.size()) &&
               zone.states[static_cast<std::size_t>(index)] != kInit;
    }

    Params _params;
    std::vector<Zone> _zones;
    std::uint64_t _stamp = 0;
    unsigned _zoneBits;
};

} // namespace dol

#endif // DOL_PREFETCH_AMPM_HPP
