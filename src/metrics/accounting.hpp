/**
 * @file
 * Prefetch accounting: the paper's scope and effective-accuracy
 * bookkeeping, kept outside the memory model via the listener
 * interface.
 *
 * Scope (paper section III): the footprint FP is the set of unique
 * line addresses of baseline (shadow) L1 misses, weighted by miss
 * count; PFP is the set of lines attempted by a prefetcher. The scope
 * is the weighted fraction of FP covered by PFP.
 *
 * Per-category (LHF/MHF/HHF) counters implement Figure 13, and an
 * optional exclude-set confines counters to the region TPC does not
 * cover (Figure 14).
 */

#ifndef DOL_METRICS_ACCOUNTING_HPP
#define DOL_METRICS_ACCOUNTING_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_set>

#include "common/flat_table.hpp"
#include "mem/listener.hpp"
#include "metrics/stratify.hpp"

namespace dol
{

class PrefetchAccounting : public MemListener
{
  public:
    PrefetchAccounting()
    {
        // The footprint / PFP sets grow to tens of thousands of lines
        // over a run; pre-sizing skips the doubling rehashes the
        // profiler otherwise attributes ~20% of sim time to.
        _fp.reserve(1u << 16);
        _pfp.reserve(1u << 16);
        _issueCategory.reserve(1u << 15);
    }

    struct CategoryCounters
    {
        std::uint64_t issued = 0;
        std::uint64_t used = 0;
        double inducedCredit = 0.0;

        double
        effectiveAccuracy() const
        {
            return issued ? (static_cast<double>(used) - inducedCredit) /
                                static_cast<double>(issued)
                          : 0.0;
        }
    };

    /** Attach the offline ground-truth classifier (Figure 13/16). */
    void
    setStratifier(const OfflineStratifier *stratifier)
    {
        _stratifier = stratifier;
    }

    /**
     * Confine the "focus" counters to lines outside @p exclude —
     * the region TPC does not cover (Figure 14).
     */
    void
    setExcludeSet(std::shared_ptr<const std::unordered_set<Addr>> exclude)
    {
        // Copied into a flat probe-once set: inFocus() runs on every
        // issued prefetch when an exclude set is attached (Fig. 14).
        _exclude.clear();
        _haveExclude = exclude != nullptr;
        if (exclude) {
            _exclude.reserve(exclude->size());
            for (const Addr line : *exclude)
                _exclude.insert(line);
        }
    }

    // --- MemListener ------------------------------------------------
    void shadowMiss(unsigned level, Addr line, Pc pc) override;
    void prefetchIssued(ComponentId comp, Addr line, unsigned dest,
                        Cycle when) override;
    void prefetchUsed(ComponentId comp, unsigned level,
                      Addr line) override;
    void inducedMiss(unsigned level, Addr line,
                     std::span<const ComponentId> comps) override;

    // --- results ------------------------------------------------------
    /** Scope of the whole prefetcher (all components). */
    double scope() const;

    /** Scope of one component's prefetching footprint. */
    double scopeOf(ComponentId comp) const;

    /** Scope within one ground-truth category. */
    double scopeInCategory(Fruit fruit) const;

    /** Category counters (all components together). */
    const CategoryCounters &category(Fruit fruit) const
    {
        return _categories[static_cast<unsigned>(fruit)];
    }

    /** Focus-region (outside the exclude set) counters and scope. */
    const CategoryCounters &focus() const { return _focus; }
    double focusScope() const;

    /** The set of lines this run prefetched (becomes the next
     *  experiment's exclude set). */
    std::shared_ptr<std::unordered_set<Addr>> takePfp();

    std::uint64_t footprintLines() const { return _fp.size(); }
    std::uint64_t footprintWeight() const { return _fpWeight; }

  private:
    bool
    inFocus(Addr line) const
    {
        return _haveExclude && !_exclude.contains(line);
    }

    const OfflineStratifier *_stratifier = nullptr;
    bool _haveExclude = false;
    FlatHashSet<Addr> _exclude;

    /** Baseline L1 miss footprint with weights. */
    FlatHashMap<Addr, std::uint32_t> _fp;
    std::uint64_t _fpWeight = 0;

    FlatHashSet<Addr> _pfp;
    std::array<FlatHashSet<Addr>, kMaxComponents> _pfpByComp;

    std::array<CategoryCounters, kNumFruit> _categories{};
    CategoryCounters _focus{};

    /** Which category each prefetched line was charged to. */
    FlatHashMap<Addr, std::uint8_t> _issueCategory;
};

} // namespace dol

#endif // DOL_METRICS_ACCOUNTING_HPP
