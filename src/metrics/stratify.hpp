/**
 * @file
 * Offline ground-truth stratifier (paper section V-C.1).
 *
 * The paper divides all accesses into three categories of increasing
 * prefetch difficulty — low-, mid-, and high-hanging fruit — "done
 * offline to have a better approximation to ground truth":
 *
 *   LHF: canonical strided accesses
 *   MHF: non-strided accesses with high spatial locality
 *   HHF: everything else
 *
 * Because workload traces are deterministic (seeded generators), the
 * harness feeds a baseline pass of the demand stream through this
 * classifier before the measured run; every prefetch is then labelled
 * by the category of its target line.
 */

#ifndef DOL_METRICS_STRATIFY_HPP
#define DOL_METRICS_STRATIFY_HPP

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hpp"

namespace dol
{

enum class Fruit : std::uint8_t
{
    kLHF = 0,
    kMHF = 1,
    kHHF = 2,
};

constexpr unsigned kNumFruit = 3;

inline const char *
fruitName(Fruit fruit)
{
    switch (fruit) {
      case Fruit::kLHF: return "LHF";
      case Fruit::kMHF: return "MHF";
      case Fruit::kHHF: return "HHF";
    }
    return "?";
}

class OfflineStratifier
{
  public:
    struct Params
    {
        /** Same-delta run that makes a PC's accesses "strided". */
        unsigned strideRun = 4;
        /** Distinct lines per 1 KB region for "high locality". */
        unsigned denseLines = 6;
    };

    OfflineStratifier() = default;

    explicit OfflineStratifier(const Params &params) : _params(params) {}

    /** Feed one demand access of the baseline pass. */
    void
    observe(Pc pc, Addr addr)
    {
        const Addr line = lineAddr(addr);

        PcState &state = _pcs[pc];
        const std::int64_t delta =
            static_cast<std::int64_t>(addr) -
            static_cast<std::int64_t>(state.lastAddr);
        if (state.seen && delta == state.delta && delta != 0) {
            if (state.runLength < 0xff)
                ++state.runLength;
            if (state.runLength + 1 >= _params.strideRun) {
                // The run is canonical: mark the lines it covers.
                _lhfLines.insert(line);
                _lhfLines.insert(lineAddr(state.lastAddr));
                // Strided PCs keep extending their line set; also
                // pre-mark the forward continuation so prefetches
                // ahead of the demand stream classify correctly.
                _lhfLines.insert(lineAddr(
                    static_cast<Addr>(static_cast<std::int64_t>(addr) +
                                      delta)));
            }
        } else {
            state.delta = delta;
            state.runLength = 0;
        }
        state.lastAddr = addr;
        state.seen = true;

        _regionLines[regionNum(addr)] |=
            static_cast<std::uint16_t>(1u << lineInRegion(addr));
    }

    /** Classify a line address (call after the baseline pass). */
    Fruit
    classify(Addr line_addr) const
    {
        const Addr line = lineAddr(line_addr);
        if (_lhfLines.contains(line))
            return Fruit::kLHF;
        const auto it = _regionLines.find(regionNum(line));
        if (it != _regionLines.end() &&
            static_cast<unsigned>(std::popcount(it->second)) >
                _params.denseLines) {
            return Fruit::kMHF;
        }
        return Fruit::kHHF;
    }

    std::size_t lhfLineCount() const { return _lhfLines.size(); }
    std::size_t regionCount() const { return _regionLines.size(); }

  private:
    struct PcState
    {
        Addr lastAddr = 0;
        std::int64_t delta = 0;
        std::uint8_t runLength = 0;
        bool seen = false;
    };

    Params _params{};
    std::unordered_map<Pc, PcState> _pcs;
    std::unordered_set<Addr> _lhfLines;
    std::unordered_map<std::uint64_t, std::uint16_t> _regionLines;
};

} // namespace dol

#endif // DOL_METRICS_STRATIFY_HPP
