#include "metrics/accounting.hpp"

namespace dol
{

void
PrefetchAccounting::shadowMiss(unsigned level, Addr line, Pc pc)
{
    (void)pc;
    if (level != kL1)
        return;
    ++_fp[line];
    ++_fpWeight;
}

void
PrefetchAccounting::prefetchIssued(ComponentId comp, Addr line,
                                   unsigned dest, Cycle when)
{
    (void)dest;
    (void)when;
    _pfp.insert(line);
    _pfpByComp[comp].insert(line);

    Fruit fruit = Fruit::kHHF;
    if (_stratifier)
        fruit = _stratifier->classify(line);
    ++_categories[static_cast<unsigned>(fruit)].issued;
    _issueCategory[line] = static_cast<std::uint8_t>(fruit);

    if (inFocus(line))
        ++_focus.issued;
}

void
PrefetchAccounting::prefetchUsed(ComponentId comp, unsigned level,
                                 Addr line)
{
    (void)comp;
    (void)level;
    if (level != kL1 && level != kL2)
        return;
    const std::uint8_t *category = _issueCategory.find(line);
    const unsigned fruit =
        category ? *category : static_cast<unsigned>(Fruit::kHHF);
    ++_categories[fruit].used;
    if (inFocus(line))
        ++_focus.used;
}

void
PrefetchAccounting::inducedMiss(unsigned level, Addr line,
                                std::span<const ComponentId> comps)
{
    (void)comps;
    if (level != kL1)
        return;
    // Charge the negative credit to the category (and focus region) of
    // the victim lines' prefetches. We approximate with the category
    // of the missing line itself, which the prefetched lines displaced.
    const std::uint8_t *category = _issueCategory.find(line);
    const unsigned fruit =
        category ? *category
                 : static_cast<unsigned>(
                       _stratifier ? _stratifier->classify(line)
                                   : Fruit::kHHF);
    _categories[fruit].inducedCredit += 1.0;
    if (inFocus(line))
        _focus.inducedCredit += 1.0;
}

double
PrefetchAccounting::scope() const
{
    if (_fpWeight == 0)
        return 0.0;
    std::uint64_t covered = 0;
    _fp.forEach([&](Addr line, std::uint32_t weight) {
        if (_pfp.contains(line))
            covered += weight;
    });
    return static_cast<double>(covered) /
           static_cast<double>(_fpWeight);
}

double
PrefetchAccounting::scopeOf(ComponentId comp) const
{
    if (_fpWeight == 0)
        return 0.0;
    const auto &pfp = _pfpByComp[comp];
    std::uint64_t covered = 0;
    _fp.forEach([&](Addr line, std::uint32_t weight) {
        if (pfp.contains(line))
            covered += weight;
    });
    return static_cast<double>(covered) /
           static_cast<double>(_fpWeight);
}

double
PrefetchAccounting::scopeInCategory(Fruit fruit) const
{
    if (!_stratifier)
        return 0.0;
    std::uint64_t total = 0;
    std::uint64_t covered = 0;
    _fp.forEach([&](Addr line, std::uint32_t weight) {
        if (_stratifier->classify(line) != fruit)
            return;
        total += weight;
        if (_pfp.contains(line))
            covered += weight;
    });
    return total ? static_cast<double>(covered) /
                       static_cast<double>(total)
                 : 0.0;
}

double
PrefetchAccounting::focusScope() const
{
    if (!_haveExclude)
        return 0.0;
    std::uint64_t total = 0;
    std::uint64_t covered = 0;
    _fp.forEach([&](Addr line, std::uint32_t weight) {
        if (!inFocus(line))
            return;
        total += weight;
        if (_pfp.contains(line))
            covered += weight;
    });
    return total ? static_cast<double>(covered) /
                       static_cast<double>(total)
                 : 0.0;
}

std::shared_ptr<std::unordered_set<Addr>>
PrefetchAccounting::takePfp()
{
    // Materialise a node-based copy: the exclude-set plumbing between
    // chained experiments keeps the shared_ptr API.
    auto out = std::make_shared<std::unordered_set<Addr>>();
    out->reserve(_pfp.size());
    _pfp.forEach([&](Addr line) { out->insert(line); });
    return out;
}

} // namespace dol
