/**
 * @file
 * Minimal fixed-width text table used by the benchmark harnesses to
 * print paper-style result rows.
 */

#ifndef DOL_METRICS_TABLE_HPP
#define DOL_METRICS_TABLE_HPP

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace dol
{

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers)
        : _headers(std::move(headers)),
          _widths(_headers.size())
    {
        for (std::size_t i = 0; i < _headers.size(); ++i)
            _widths[i] = _headers[i].size();
    }

    void
    addRow(std::vector<std::string> cells)
    {
        cells.resize(_headers.size());
        for (std::size_t i = 0; i < cells.size(); ++i)
            _widths[i] = std::max(_widths[i], cells[i].size());
        _rows.push_back(std::move(cells));
    }

    void
    print(std::FILE *out = stdout) const
    {
        printRow(out, _headers);
        std::string rule;
        for (std::size_t i = 0; i < _widths.size(); ++i) {
            rule.append(_widths[i] + 2, '-');
            if (i + 1 < _widths.size())
                rule.push_back('+');
        }
        std::fprintf(out, "%s\n", rule.c_str());
        for (const auto &row : _rows)
            printRow(out, row);
    }

  private:
    void
    printRow(std::FILE *out, const std::vector<std::string> &cells) const
    {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            std::fprintf(out, " %-*s ",
                         static_cast<int>(_widths[i]),
                         i < cells.size() ? cells[i].c_str() : "");
            if (i + 1 < _widths.size())
                std::fprintf(out, "|");
        }
        std::fprintf(out, "\n");
    }

    std::vector<std::string> _headers;
    std::vector<std::size_t> _widths;
    std::vector<std::vector<std::string>> _rows;
};

/** printf-style float formatting helper for table cells. */
inline std::string
fmt(const char *format, double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, format, value);
    return buffer;
}

} // namespace dol

#endif // DOL_METRICS_TABLE_HPP
