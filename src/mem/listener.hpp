/**
 * @file
 * Observer interface over memory-system events. The metrics layer
 * (scope, effective accuracy, stratification) and the prefetch system
 * (P1's value-chaining on fills) both subscribe through this interface,
 * keeping the memory model free of analysis concerns.
 */

#ifndef DOL_MEM_LISTENER_HPP
#define DOL_MEM_LISTENER_HPP

#include <span>
#include <vector>

#include "common/types.hpp"
#include "mem/cache.hpp"

namespace dol
{

/** Cache level indices used throughout. */
enum : unsigned { kL1 = 0, kL2 = 1, kL3 = 2, kNumCacheLevels = 3 };

class MemListener
{
  public:
    virtual ~MemListener() = default;

    /** Primary demand miss in the *baseline* (shadow) hierarchy. */
    virtual void
    shadowMiss(unsigned level, Addr line_addr, Pc pc)
    {
        (void)level; (void)line_addr; (void)pc;
    }

    /** Primary demand miss in the real hierarchy. */
    virtual void
    demandMiss(unsigned level, Addr line_addr, Pc pc)
    {
        (void)level; (void)line_addr; (void)pc;
    }

    /** A prefetch left the prefetcher (post duplicate filtering). */
    virtual void
    prefetchIssued(ComponentId comp, Addr line_addr, unsigned dest_level,
                   Cycle when)
    {
        (void)comp; (void)line_addr; (void)dest_level; (void)when;
    }

    /** A prefetch fill completes at @p completion (value chaining). */
    virtual void
    prefetchFill(ComponentId comp, Addr line_addr, Cycle completion)
    {
        (void)comp; (void)line_addr; (void)completion;
    }

    /** First demand use of a prefetched line (positive credit). */
    virtual void
    prefetchUsed(ComponentId comp, unsigned level, Addr line_addr)
    {
        (void)comp; (void)level; (void)line_addr;
    }

    /**
     * Demand miss that the baseline would have avoided; negative
     * credit split equally among @p comps_in_set (paper section V-C.1).
     */
    virtual void
    inducedMiss(unsigned level, Addr line_addr,
                std::span<const ComponentId> comps_in_set)
    {
        (void)level; (void)line_addr; (void)comps_in_set;
    }

    /** A prefetch was shed (full MSHRs or controller queue). */
    virtual void
    prefetchDropped(ComponentId comp, Addr line_addr)
    {
        (void)comp; (void)line_addr;
    }

    /** A never-used prefetched line left the cache (pure pollution). */
    virtual void
    prefetchEvictedUnused(ComponentId comp, unsigned level,
                          Addr line_addr)
    {
        (void)comp; (void)level; (void)line_addr;
    }
};

/** Fan-out listener: forwards every event to all registered sinks. */
class ListenerChain : public MemListener
{
  public:
    void add(MemListener *listener) { _sinks.push_back(listener); }

    void
    shadowMiss(unsigned level, Addr line, Pc pc) override
    {
        for (auto *s : _sinks)
            s->shadowMiss(level, line, pc);
    }

    void
    demandMiss(unsigned level, Addr line, Pc pc) override
    {
        for (auto *s : _sinks)
            s->demandMiss(level, line, pc);
    }

    void
    prefetchIssued(ComponentId comp, Addr line, unsigned dest,
                   Cycle when) override
    {
        for (auto *s : _sinks)
            s->prefetchIssued(comp, line, dest, when);
    }

    void
    prefetchFill(ComponentId comp, Addr line, Cycle completion) override
    {
        for (auto *s : _sinks)
            s->prefetchFill(comp, line, completion);
    }

    void
    prefetchUsed(ComponentId comp, unsigned level, Addr line) override
    {
        for (auto *s : _sinks)
            s->prefetchUsed(comp, level, line);
    }

    void
    inducedMiss(unsigned level, Addr line,
                std::span<const ComponentId> comps) override
    {
        for (auto *s : _sinks)
            s->inducedMiss(level, line, comps);
    }

    void
    prefetchDropped(ComponentId comp, Addr line) override
    {
        for (auto *s : _sinks)
            s->prefetchDropped(comp, line);
    }

    void
    prefetchEvictedUnused(ComponentId comp, unsigned level,
                          Addr line) override
    {
        for (auto *s : _sinks)
            s->prefetchEvictedUnused(comp, level, line);
    }

  private:
    std::vector<MemListener *> _sinks;
};

} // namespace dol

#endif // DOL_MEM_LISTENER_HPP
