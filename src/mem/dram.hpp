/**
 * @file
 * DDR3-style main memory model (Table I: 1600 MHz, 2 channels,
 * 2 ranks/channel, 8 banks/rank) with open-row tracking, a shared data
 * bus per channel, and a bounded controller queue.
 *
 * The controller queue implements the paper's section V-C.1 drop
 * experiment: when the queue fills, the default policy drops a random
 * queued prefetch to admit new work, while the priority-aware policy
 * drops the lowest-priority prefetch (in TPC's case, C1's region
 * prefetches). A dropped queued prefetch is reported through a
 * cancellation hook so the owning cache level can discard the
 * speculatively installed line.
 */

#ifndef DOL_MEM_DRAM_HPP
#define DOL_MEM_DRAM_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace dol
{

/** What the controller drops when its queue is full. */
enum class DropPolicy : std::uint8_t
{
    kRandomPrefetch,      ///< default: drop a random queued prefetch
    kLowPriorityPrefetch, ///< drop the lowest-priority prefetch first
};

/**
 * How the controller orders requests competing for a channel.
 *
 * kDemandFirst is the legacy behaviour and adds no queueing delay of
 * its own: demands bypass queued prefetches (prefetches self-throttle
 * at the occupancy limit upstream), so nothing extra is modelled.
 * kFifo charges every request one burst slot per live queued entry
 * ahead of it, regardless of type or origin — an aggressive co-runner
 * can starve everyone. kCoreRoundRobin caps what one core can inflict
 * on another: a request waits one slot per own queued entry plus at
 * most (own + 1) slots per competing core.
 */
enum class ArbitrationPolicy : std::uint8_t
{
    kDemandFirst, ///< default: legacy zero-delay demand bypass
    kFifo,        ///< strict arrival order across cores and types
    kCoreRoundRobin, ///< per-core fair slotting
};

/** Canonical CLI/JSON name of an arbitration policy. */
const char *arbitrationName(ArbitrationPolicy policy);

/** Parse an arbitration name; returns false on unknown input. */
bool arbitrationFromName(const std::string &name,
                         ArbitrationPolicy &out);

struct DramParams
{
    unsigned channels = 2;
    unsigned ranksPerChannel = 2;
    unsigned banksPerRank = 8;

    /** Row buffer size per bank. */
    std::uint32_t rowBytes = 8192;

    // Timing constants from Table I, converted to 3 GHz core cycles.
    Cycle tRCD = nsToCycles(13.75);
    Cycle tRP = nsToCycles(13.75);
    Cycle tCAS = nsToCycles(13.75);
    /** 64-byte burst at DDR3-1600 x64: 4 DRAM cycles = 5 ns. */
    Cycle tBurst = nsToCycles(5.0);
    /**
     * Controller front-end overhead per request: queue arbitration,
     * scheduling, command/PHY latency. Folded into one constant
     * because the model has no cycle-level controller pipeline.
     */
    Cycle tController = nsToCycles(20.0);

    /**
     * Read/write queue capacity per channel. The default is generous:
     * bus and bank busy times already throttle throughput, so queue
     * overflow (and the drop policies it triggers) matters mainly in
     * the multicore drop-policy experiment, which shrinks this.
     */
    unsigned queueCapacity = 64;

    DropPolicy dropPolicy = DropPolicy::kRandomPrefetch;

    ArbitrationPolicy arbitration = ArbitrationPolicy::kDemandFirst;

    /**
     * Bandwidth cap: lines the controller admits per windowCycles
     * window across all channels. 0 disables the cap (default), which
     * preserves the single-core timing exactly. When a window's quota
     * is exhausted, the request is deferred to the next window
     * boundary.
     */
    std::uint64_t linesPerWindow = 0;
    Cycle windowCycles = nsToCycles(1000.0);

    /**
     * Seed for the random-drop victim RNG. Parallel sweeps derive
     * this from the cell key so a run's drop decisions never depend
     * on which worker thread executed it.
     */
    std::uint64_t rngSeed = 0xd0a11a5ull;
};

struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t droppedPrefetches = 0;
    std::uint64_t queueFullDemandStalls = 0;
    /** Total cycles added by fifo/round-robin queue arbitration. */
    std::uint64_t arbDelayCycles = 0;
    std::uint64_t arbDelayedRequests = 0;
    /** Demand requests whose arbitration delay included at least one
     *  live queued prefetch. Structurally zero under kDemandFirst. */
    std::uint64_t demandsDelayedByPrefetch = 0;
    /** Requests pushed to the next bandwidth window. */
    std::uint64_t windowDeferrals = 0;
    std::uint64_t bandwidthStallCycles = 0;
};

class Dram
{
  public:
    struct Result
    {
        Cycle completion = 0;
        bool dropped = false; ///< prefetch shed by the controller
    };

    /** Callback invoked when a queued prefetch is cancelled. */
    using CancelHook = std::function<void(Addr line_addr)>;

    explicit Dram(const DramParams &params = {});

    /**
     * Issue one line-sized access.
     *
     * @param line_addr line address
     * @param now       cycle the request reaches the controller
     * @param is_write  writeback traffic (never dropped)
     * @param is_prefetch prefetch fill (candidate for dropping)
     * @param priority  higher value = more confident prefetch
     * @param core      originating core, for attribution/arbitration
     */
    Result access(Addr line_addr, Cycle now, bool is_write,
                  bool is_prefetch = false, std::uint8_t priority = 0,
                  std::uint8_t core = 0);

    void setCancelHook(CancelHook hook) { _cancel = std::move(hook); }

    /** Live read-queue occupancy of the channel serving @p line. */
    std::size_t occupancy(Addr line_addr, Cycle now);

    const DramParams &params() const { return _params; }
    const DramStats &stats() const { return _stats; }

    /** Total lines transferred (reads + writes), the traffic metric. */
    std::uint64_t
    linesTransferred() const
    {
        return _stats.reads + _stats.writes;
    }

    /** Lines attributed to @p core (sums to linesTransferred). */
    std::uint64_t
    coreLines(unsigned core) const
    {
        return core < _coreLines.size() ? _coreLines[core] : 0;
    }

    /** Prefetch lines attributed to @p core. */
    std::uint64_t
    corePrefetchLines(unsigned core) const
    {
        return core < _corePrefetchLines.size()
                   ? _corePrefetchLines[core]
                   : 0;
    }

  private:
    struct Bank
    {
        std::uint64_t openRow = ~std::uint64_t{0};
        Cycle readyAt = 0;
    };

    struct QueueEntry
    {
        Addr lineAddr = kNoAddr;
        Cycle completion = 0;
        bool isPrefetch = false;
        std::uint8_t priority = 0;
        std::uint8_t coreId = 0;
    };

    struct Channel
    {
        std::vector<Bank> banks;
        Cycle busReadyAt = 0;
        std::vector<QueueEntry> queue;
        /** Latest completion of any queued entry: once the clock
         *  passes it the whole queue is dead and pruneQueue clears it
         *  in O(1) instead of filtering (event-driven fast path). */
        Cycle liveMax = 0;
    };

    unsigned channelOf(Addr line_addr) const;
    unsigned bankOf(Addr line_addr) const;
    std::uint64_t rowOf(Addr line_addr) const;

    /** Drop completed entries; returns live occupancy. */
    std::size_t pruneQueue(Channel &channel, Cycle now);

    /**
     * Make room in a full queue according to the drop policy.
     * @return false when the incoming prefetch itself should be shed.
     */
    bool makeRoom(Channel &channel, Cycle now, bool incoming_is_prefetch,
                  std::uint8_t incoming_priority);

    struct ArbDelay
    {
        Cycle cycles = 0;
        bool behindPrefetch = false;
    };

    /** Queue-arbitration delay for a request arriving at @p now. */
    ArbDelay arbitrationDelay(Channel &channel, Cycle now,
                              std::uint8_t core) const;

    /** Bandwidth-window throttle; may defer @p now to a boundary. */
    Cycle applyBandwidthWindow(Cycle now);

    DramParams _params;
    /** Event-driven fast path enabled (hotpath::fastPath() at ctor). */
    bool _fastPath;
    std::vector<Channel> _channels;
    DramStats _stats;
    /** Scratch for makeRoom's drop-candidate list (no per-call heap). */
    std::vector<std::size_t> _dropScratch;
    std::vector<std::uint64_t> _coreLines;
    std::vector<std::uint64_t> _corePrefetchLines;
    /** Monotonic controller clock for occupancy decisions. */
    Cycle _clock = 0;
    /** Bandwidth-window state: current window index and lines used. */
    std::uint64_t _windowIndex = 0;
    std::uint64_t _windowLines = 0;
    Rng _rng;
    CancelHook _cancel;
};

} // namespace dol

#endif // DOL_MEM_DRAM_HPP
