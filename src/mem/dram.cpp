#include "mem/dram.hpp"

#include <algorithm>

namespace dol
{

Dram::Dram(const DramParams &params)
    : _params(params), _channels(params.channels),
      _rng(params.rngSeed)
{
    for (Channel &channel : _channels) {
        channel.banks.resize(params.ranksPerChannel *
                             params.banksPerRank);
        channel.queue.reserve(params.queueCapacity);
    }
}

unsigned
Dram::channelOf(Addr line_addr) const
{
    return static_cast<unsigned>(lineNum(line_addr) % _params.channels);
}

unsigned
Dram::bankOf(Addr line_addr) const
{
    const auto banks = _params.ranksPerChannel * _params.banksPerRank;
    // XOR-hash higher address bits into the bank index, as real
    // controllers do, so power-of-two strides do not serialize on a
    // single bank.
    const std::uint64_t idx = lineNum(line_addr) / _params.channels;
    return static_cast<unsigned>((idx ^ (idx >> 7) ^ (idx >> 13)) %
                                 banks);
}

std::uint64_t
Dram::rowOf(Addr line_addr) const
{
    const auto lines_per_row = _params.rowBytes / kLineBytes;
    const auto banks = _params.ranksPerChannel * _params.banksPerRank;
    return lineNum(line_addr) / _params.channels / banks / lines_per_row;
}

std::size_t
Dram::pruneQueue(Channel &channel, Cycle now)
{
    std::erase_if(channel.queue, [now](const QueueEntry &entry) {
        return entry.completion <= now;
    });
    return channel.queue.size();
}

bool
Dram::makeRoom(Channel &channel, Cycle now, bool incoming_is_prefetch,
               std::uint8_t incoming_priority)
{
    // Collect queued prefetches as drop candidates.
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < channel.queue.size(); ++i) {
        if (channel.queue[i].isPrefetch)
            candidates.push_back(i);
    }

    if (candidates.empty()) {
        // Only demands queued: a prefetch is shed, a demand waits.
        if (incoming_is_prefetch)
            return false;
        ++_stats.queueFullDemandStalls;
        return true; // caller delays to the earliest completion
    }

    std::size_t victim = candidates.front();
    if (_params.dropPolicy == DropPolicy::kRandomPrefetch) {
        victim = candidates[_rng.below(candidates.size())];
        // Random policy treats the incoming prefetch as one more
        // equally likely victim.
        if (incoming_is_prefetch &&
            _rng.below(candidates.size() + 1) == candidates.size()) {
            return false;
        }
    } else {
        for (std::size_t idx : candidates) {
            if (channel.queue[idx].priority <
                channel.queue[victim].priority) {
                victim = idx;
            }
        }
        // Priority-aware: shed the incoming prefetch instead if it is
        // the least confident request in sight.
        if (incoming_is_prefetch &&
            incoming_priority <= channel.queue[victim].priority) {
            return false;
        }
    }

    if (_cancel)
        _cancel(channel.queue[victim].lineAddr);
    ++_stats.droppedPrefetches;
    channel.queue.erase(channel.queue.begin() +
                        static_cast<std::ptrdiff_t>(victim));
    return true;
}

std::size_t
Dram::occupancy(Addr line_addr, Cycle now)
{
    _clock = std::max(_clock, now);
    return pruneQueue(_channels[channelOf(line_addr)], _clock);
}

Dram::Result
Dram::access(Addr line_addr, Cycle now, bool is_write, bool is_prefetch,
             std::uint8_t priority)
{
    Channel &channel = _channels[channelOf(line_addr)];
    _clock = std::max(_clock, now);

    if (pruneQueue(channel, _clock) >= _params.queueCapacity) {
        if (!makeRoom(channel, _clock, is_prefetch, priority)) {
            ++_stats.droppedPrefetches;
            return {0, true};
        }
        if (pruneQueue(channel, _clock) >= _params.queueCapacity) {
            // Demands wait for the oldest request to drain.
            Cycle earliest = kNoCycle;
            for (const QueueEntry &entry : channel.queue)
                earliest = std::min(earliest, entry.completion);
            now = std::max(now, earliest);
            pruneQueue(channel, now);
        }
    }

    Bank &bank = channel.banks[bankOf(line_addr)];
    const std::uint64_t row = rowOf(line_addr);

    Cycle start = std::max(now + _params.tController, bank.readyAt);
    Cycle access_lat;
    if (bank.openRow == row) {
        access_lat = _params.tCAS;
        ++_stats.rowHits;
    } else {
        access_lat = _params.tRP + _params.tRCD + _params.tCAS;
        bank.openRow = row;
        ++_stats.rowMisses;
    }

    const Cycle bus_start =
        std::max(start + access_lat, channel.busReadyAt);
    const Cycle completion = bus_start + _params.tBurst;
    channel.busReadyAt = completion;
    // The bank is busy for its own access and burst only; coupling in
    // bus queueing would make backlog feed on itself.
    bank.readyAt = start + access_lat + _params.tBurst;

    if (is_write)
        ++_stats.writes;
    else
        ++_stats.reads;

    if (channel.queue.size() < _params.queueCapacity) {
        channel.queue.push_back(
            {lineAddr(line_addr), completion, is_prefetch, priority});
    }

    return {completion, false};
}

} // namespace dol
