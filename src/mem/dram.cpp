#include "mem/dram.hpp"

#include <algorithm>
#include <array>

#include "common/hotpath.hpp"

namespace dol
{

const char *
arbitrationName(ArbitrationPolicy policy)
{
    switch (policy) {
    case ArbitrationPolicy::kFifo:
        return "fifo";
    case ArbitrationPolicy::kCoreRoundRobin:
        return "rr";
    case ArbitrationPolicy::kDemandFirst:
        break;
    }
    return "demand-first";
}

bool
arbitrationFromName(const std::string &name, ArbitrationPolicy &out)
{
    if (name == "demand-first") {
        out = ArbitrationPolicy::kDemandFirst;
    } else if (name == "fifo") {
        out = ArbitrationPolicy::kFifo;
    } else if (name == "rr") {
        out = ArbitrationPolicy::kCoreRoundRobin;
    } else {
        return false;
    }
    return true;
}

Dram::Dram(const DramParams &params)
    : _params(params), _fastPath(hotpath::fastPath()),
      _channels(params.channels), _rng(params.rngSeed)
{
    for (Channel &channel : _channels) {
        channel.banks.resize(params.ranksPerChannel *
                             params.banksPerRank);
        channel.queue.reserve(params.queueCapacity);
    }
    _dropScratch.reserve(params.queueCapacity);
}

unsigned
Dram::channelOf(Addr line_addr) const
{
    return static_cast<unsigned>(lineNum(line_addr) % _params.channels);
}

unsigned
Dram::bankOf(Addr line_addr) const
{
    const auto banks = _params.ranksPerChannel * _params.banksPerRank;
    // XOR-hash higher address bits into the bank index, as real
    // controllers do, so power-of-two strides do not serialize on a
    // single bank.
    const std::uint64_t idx = lineNum(line_addr) / _params.channels;
    return static_cast<unsigned>((idx ^ (idx >> 7) ^ (idx >> 13)) %
                                 banks);
}

std::uint64_t
Dram::rowOf(Addr line_addr) const
{
    const auto lines_per_row = _params.rowBytes / kLineBytes;
    const auto banks = _params.ranksPerChannel * _params.banksPerRank;
    return lineNum(line_addr) / _params.channels / banks / lines_per_row;
}

std::size_t
Dram::pruneQueue(Channel &channel, Cycle now)
{
    // Quiescence fast path: every queued entry completes no later
    // than liveMax, so once the clock passes it the filter below
    // would remove everything — clear in O(1) instead. Exact: the
    // surviving set is identical (empty) either way.
    if (_fastPath && now >= channel.liveMax) {
        channel.queue.clear();
        return 0;
    }
    std::erase_if(channel.queue, [now](const QueueEntry &entry) {
        return entry.completion <= now;
    });
    return channel.queue.size();
}

bool
Dram::makeRoom(Channel &channel, Cycle now, bool incoming_is_prefetch,
               std::uint8_t incoming_priority)
{
    // Collect queued prefetches as drop candidates (member scratch:
    // this runs on every queue-full event and must not allocate).
    std::vector<std::size_t> &candidates = _dropScratch;
    candidates.clear();
    for (std::size_t i = 0; i < channel.queue.size(); ++i) {
        if (channel.queue[i].isPrefetch)
            candidates.push_back(i);
    }

    if (candidates.empty()) {
        // Only demands queued: a prefetch is shed, a demand waits.
        if (incoming_is_prefetch)
            return false;
        ++_stats.queueFullDemandStalls;
        return true; // caller delays to the earliest completion
    }

    std::size_t victim = candidates.front();
    if (_params.dropPolicy == DropPolicy::kRandomPrefetch) {
        victim = candidates[_rng.below(candidates.size())];
        // Random policy treats the incoming prefetch as one more
        // equally likely victim.
        if (incoming_is_prefetch &&
            _rng.below(candidates.size() + 1) == candidates.size()) {
            return false;
        }
    } else {
        for (std::size_t idx : candidates) {
            if (channel.queue[idx].priority <
                channel.queue[victim].priority) {
                victim = idx;
            }
        }
        // Priority-aware: shed the incoming prefetch instead if it is
        // the least confident request in sight.
        if (incoming_is_prefetch &&
            incoming_priority <= channel.queue[victim].priority) {
            return false;
        }
    }

    if (_cancel)
        _cancel(channel.queue[victim].lineAddr);
    ++_stats.droppedPrefetches;
    channel.queue.erase(channel.queue.begin() +
                        static_cast<std::ptrdiff_t>(victim));
    return true;
}

std::size_t
Dram::occupancy(Addr line_addr, Cycle now)
{
    _clock = std::max(_clock, now);
    return pruneQueue(_channels[channelOf(line_addr)], _clock);
}

Dram::ArbDelay
Dram::arbitrationDelay(Channel &channel, Cycle now,
                       std::uint8_t core) const
{
    ArbDelay result;
    std::uint64_t slots = 0;
    bool live_prefetch = false;
    if (_params.arbitration == ArbitrationPolicy::kFifo) {
        // Strict arrival order: one burst slot per live entry.
        for (const QueueEntry &entry : channel.queue) {
            if (entry.completion <= now)
                continue;
            ++slots;
            live_prefetch |= entry.isPrefetch;
        }
    } else {
        // Round-robin: wait behind every own entry, but at most
        // (own + 1) entries of any competing core — a quiet core's
        // first request slots in after one round of the busy cores.
        std::array<std::uint64_t, 256> counts{};
        for (const QueueEntry &entry : channel.queue) {
            if (entry.completion <= now)
                continue;
            ++counts[entry.coreId];
            live_prefetch |= entry.isPrefetch;
        }
        const std::uint64_t own = counts[core];
        slots = own;
        for (std::size_t c = 0; c < counts.size(); ++c) {
            if (c == core || counts[c] == 0)
                continue;
            slots += std::min(counts[c], own + 1);
        }
    }
    result.cycles = slots * _params.tBurst;
    result.behindPrefetch = slots > 0 && live_prefetch;
    return result;
}

Cycle
Dram::applyBandwidthWindow(Cycle now)
{
    const Cycle window =
        _params.windowCycles > 0 ? _params.windowCycles : 1;
    const std::uint64_t index = now / window;
    if (index > _windowIndex) {
        _windowIndex = index;
        _windowLines = 0;
    }
    if (_windowLines >= _params.linesPerWindow) {
        const Cycle boundary =
            static_cast<Cycle>(_windowIndex + 1) * window;
        _stats.bandwidthStallCycles += boundary - now;
        ++_stats.windowDeferrals;
        now = boundary;
        _windowIndex = now / window;
        _windowLines = 0;
    }
    ++_windowLines;
    return now;
}

Dram::Result
Dram::access(Addr line_addr, Cycle now, bool is_write, bool is_prefetch,
             std::uint8_t priority, std::uint8_t core)
{
    Channel &channel = _channels[channelOf(line_addr)];
    _clock = std::max(_clock, now);

    // Queue arbitration. kDemandFirst is the legacy zero-delay path:
    // demands bypass queued prefetches and prefetches self-throttle
    // at the occupancy limit upstream, so no extra delay is modelled.
    if (_params.arbitration != ArbitrationPolicy::kDemandFirst) {
        pruneQueue(channel, _clock);
        const ArbDelay arb = arbitrationDelay(channel, _clock, core);
        if (arb.cycles > 0) {
            // The delay is relative to the request's own arrival, so
            // a core that queues little is punished little (RR) or in
            // proportion to the whole backlog (FIFO).
            now += arb.cycles;
            _clock = std::max(_clock, now);
            _stats.arbDelayCycles += arb.cycles;
            ++_stats.arbDelayedRequests;
            if (!is_write && !is_prefetch && arb.behindPrefetch)
                ++_stats.demandsDelayedByPrefetch;
        }
    }

    // Bandwidth cap: defer over-quota requests to the next window.
    if (_params.linesPerWindow > 0) {
        now = applyBandwidthWindow(now);
        _clock = std::max(_clock, now);
    }

    if (pruneQueue(channel, _clock) >= _params.queueCapacity) {
        if (!makeRoom(channel, _clock, is_prefetch, priority)) {
            ++_stats.droppedPrefetches;
            return {0, true};
        }
        if (pruneQueue(channel, _clock) >= _params.queueCapacity) {
            // Demands wait for the oldest request to drain.
            Cycle earliest = kNoCycle;
            for (const QueueEntry &entry : channel.queue)
                earliest = std::min(earliest, entry.completion);
            now = std::max(now, earliest);
            pruneQueue(channel, now);
        }
    }

    Bank &bank = channel.banks[bankOf(line_addr)];
    const std::uint64_t row = rowOf(line_addr);

    Cycle start = std::max(now + _params.tController, bank.readyAt);
    Cycle access_lat;
    if (bank.openRow == row) {
        access_lat = _params.tCAS;
        ++_stats.rowHits;
    } else {
        access_lat = _params.tRP + _params.tRCD + _params.tCAS;
        bank.openRow = row;
        ++_stats.rowMisses;
    }

    const Cycle bus_start =
        std::max(start + access_lat, channel.busReadyAt);
    const Cycle completion = bus_start + _params.tBurst;
    channel.busReadyAt = completion;
    // The bank is busy for its own access and burst only; coupling in
    // bus queueing would make backlog feed on itself.
    bank.readyAt = start + access_lat + _params.tBurst;

    if (is_write)
        ++_stats.writes;
    else
        ++_stats.reads;

    // Per-core attribution: every counted line is charged to exactly
    // one core, so the per-core sums equal linesTransferred().
    if (core >= _coreLines.size())
        _coreLines.resize(core + 1, 0);
    ++_coreLines[core];
    if (is_prefetch) {
        if (core >= _corePrefetchLines.size())
            _corePrefetchLines.resize(core + 1, 0);
        ++_corePrefetchLines[core];
    }

    if (channel.queue.size() < _params.queueCapacity) {
        channel.queue.push_back({lineAddr(line_addr), completion,
                                 is_prefetch, priority, core});
        if (completion > channel.liveMax)
            channel.liveMax = completion;
    }

    return {completion, false};
}

} // namespace dol
