/**
 * @file
 * Set-associative cache model with LRU replacement, per-line prefetch
 * metadata, and an integrated MSHR file.
 *
 * The model is functional-with-timestamps: state changes apply in call
 * order, while each line carries a readyAt cycle so a demand hit on an
 * in-flight (prefetched or fetched) line pays the residual latency.
 * Per-line metadata records which prefetcher component installed the
 * line and whether it has served a demand access yet — the raw material
 * of the paper's effective-accuracy credit assignment.
 */

#ifndef DOL_MEM_CACHE_HPP
#define DOL_MEM_CACHE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dol
{

/** Identifier of the prefetcher component that installed a line. */
using ComponentId = std::uint8_t;
constexpr ComponentId kNoComponent = 0;
constexpr unsigned kMaxComponents = 32;

class Cache
{
  public:
    struct Params
    {
        std::string name = "cache";
        std::uint32_t sizeBytes = 64 * 1024;
        std::uint32_t assoc = 4;
        /** Tag+data access latency in core cycles. */
        Cycle latency = 3;
        /** MSHR entries; 0 disables miss tracking (shadow tags). */
        std::uint32_t mshrs = 32;
    };

    struct Line
    {
        Addr tag = kNoAddr; ///< full line address (kNoAddr = invalid)
        bool valid = false;
        bool dirty = false;
        bool prefetched = false; ///< installed by a prefetch
        bool used = false;       ///< has served a demand access
        ComponentId comp = kNoComponent;
        /** Core that installed the line (shared-cache attribution). */
        std::uint8_t owner = 0;
        Cycle readyAt = 0; ///< fill completion time
    };

    /** Description of a line pushed out by an insertion. */
    struct Victim
    {
        Addr lineAddr = kNoAddr;
        bool dirty = false;
        bool prefetched = false;
        bool used = false;
        ComponentId comp = kNoComponent;
        std::uint8_t owner = 0;
    };

    explicit Cache(const Params &params);

    /** Look up a line; nullptr on miss. Does not update LRU. */
    Line *find(Addr line_addr);
    const Line *find(Addr line_addr) const;

    /** Promote a line to MRU. */
    void touch(Line &line);

    /**
     * Insert a line, evicting the LRU way if the set is full.
     *
     * @return the victim, if a valid line was displaced.
     */
    std::optional<Victim> insert(Addr line_addr, Line **out_line);

    /** Remove a line if present (used for prefetch cancellation). */
    bool invalidate(Addr line_addr);

    /**
     * Collect the component ids of prefetched lines in the set mapped
     * by @p line_addr (for induced-miss negative credit splitting).
     */
    void prefetchedCompsInSet(Addr line_addr,
                              std::vector<ComponentId> &out) const;

    // --- MSHR file ------------------------------------------------
    struct MshrEntry
    {
        Addr lineAddr = kNoAddr;
        Cycle completion = 0; ///< slot free once completion <= now
        ComponentId comp = kNoComponent; ///< prefetch that allocated it
        bool isPrefetch = false;
        bool used = false; ///< a demand access merged with the fetch
    };

    /**
     * Outstanding fetch of this line as of @p now, or nullptr when
     * none is pending.
     */
    MshrEntry *pendingEntry(Addr line_addr, Cycle now);

    /**
     * Completion time of an outstanding fetch of this line, or
     * kNoCycle when none is pending as of @p now.
     */
    Cycle pendingCompletion(Addr line_addr, Cycle now) const;

    /** True when no MSHR can accept a new miss at @p now. */
    bool mshrFull(Cycle now) const;

    /** Number of MSHRs still tracking an in-flight fetch at @p now. */
    std::uint32_t liveMshrCount(Cycle now) const;

    /** Earliest time an MSHR frees; kNoCycle if none allocated. */
    Cycle earliestMshrFree() const;

    /** Allocate an MSHR for a fetch completing at @p completion. */
    void addMshr(Addr line_addr, Cycle completion,
                 ComponentId comp = kNoComponent,
                 bool is_prefetch = false);

    /**
     * Free a live prefetch-held MSHR so a demand miss can proceed
     * (demands always outrank prefetches for miss resources).
     *
     * @return true when a slot was reclaimed.
     */
    bool stealPrefetchMshr(Cycle now);

    const Params &params() const { return _params; }
    Cycle latency() const { return _params.latency; }
    std::uint32_t numSets() const { return _numSets; }

  private:
    std::size_t setIndex(Addr line_addr) const;

    Params _params;
    std::uint32_t _numSets;
    /** Event-driven fast path enabled (hotpath::fastPath() at ctor). */
    bool _fastPath;
    std::vector<Line> _lines;
    /** Tag-only mirror of _lines (kNoAddr = invalid): find() scans 8
     *  bytes per way instead of the 40-byte Line, so a set fits in one
     *  cache line. Maintained by insert()/invalidate() — callers
     *  mutate every other Line field but never tag/valid. */
    std::vector<Addr> _tags;
    /** LRU stamps, same index space as _lines/_tags: the insert()
     *  victim scan reads only _tags + _stamps (two dense arrays). */
    std::vector<std::uint64_t> _stamps;
    std::vector<MshrEntry> _mshrs;
    /** Latest completion ever registered in the MSHR file: once the
     *  clock passes it nothing is in flight, and every MSHR query
     *  short-circuits without scanning (the event-driven fast path).
     *  Monotone upper bound — stealPrefetchMshr may clear the entry
     *  that set it, which only makes the fast path conservative. */
    Cycle _mshrMaxCompletion = 0;
    std::uint64_t _stampCounter = 0;
};

} // namespace dol

#endif // DOL_MEM_CACHE_HPP
