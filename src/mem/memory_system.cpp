#include "mem/memory_system.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "trace/context.hpp"
#include "trace/counters.hpp"

namespace dol
{

namespace
{

/**
 * How long a prefetch may wait for an MSHR before being shed. Demands
 * are insulated from waiting prefetches (they steal slots, and a
 * demand never waits longer than its own refetch), so the queue can
 * be generous; only hopeless backlog is shed.
 */
constexpr Cycle kPrefetchQueueHorizon = 1000;

/** MSHRs held back for demand misses; prefetches may not take them. */
constexpr std::uint32_t kDemandReservedMshrs = 4;

/**
 * New prefetches are rejected while their channel's read queue holds
 * this many live requests: keeps burst backlog (and thus every fill's
 * queueing delay) bounded to a few memory round trips.
 */
constexpr std::size_t kPrefetchOccupancyLimit = 20;

Cache::Params
scaled(Cache::Params p, unsigned factor, const char *suffix)
{
    p.sizeBytes *= factor;
    p.name += suffix;
    return p;
}

} // namespace

SharedMemory::SharedMemory(const MemParams &params, unsigned num_cores)
    : _l3(scaled(params.l3, std::max(1u, num_cores), "")),
      _shadowL3(scaled(params.l3, std::max(1u, num_cores), ".shadow")),
      _dram(params.dram)
{
    _dram.setCancelHook([this](Addr line_addr) {
        // Discard the speculatively installed copies of a prefetch the
        // controller decided to shed.
        if (Cache::Line *line = _l3.find(line_addr)) {
            if (line->prefetched && !line->used)
                _l3.invalidate(line_addr);
        }
        for (MemorySystem *core : _cores)
            core->cancelPrefetchLine(line_addr);
    });
}

void
SharedMemory::registerCore(MemorySystem *core)
{
    _cores.push_back(core);
}

MemorySystem::MemorySystem(const MemParams &params,
                           std::shared_ptr<SharedMemory> shared)
    : _shared(shared ? std::move(shared)
                     : std::make_shared<SharedMemory>(params, 1)),
      _l1(params.l1),
      _l2(params.l2),
      _shadowL1(scaled(params.l1, 1, ".shadow")),
      _shadowL2(scaled(params.l2, 1, ".shadow"))
{
    _shared->registerCore(this);
    _compScratch.reserve(32);

    const DramParams &dram = _shared->dram().params();
    _demandRefetchBound = _l1.latency() + _l2.latency() +
                          _shared->l3().latency() + dram.tController +
                          dram.tRP + dram.tRCD + dram.tCAS +
                          dram.tBurst;
}

Cache *
MemorySystem::levelCache(unsigned level)
{
    switch (level) {
      case kL1: return &_l1;
      case kL2: return &_l2;
      case kL3: return &_shared->_l3;
      default: panic("bad cache level");
    }
}

Cache *
MemorySystem::shadowCache(unsigned level)
{
    switch (level) {
      case kL1: return &_shadowL1;
      case kL2: return &_shadowL2;
      case kL3: return &_shared->_shadowL3;
      default: panic("bad cache level");
    }
}

Cache &
MemorySystem::cacheAt(unsigned level)
{
    return *levelCache(level);
}

DataPort::Result
MemorySystem::demandLoad(Addr addr, Pc pc, Cycle when)
{
    return demandAccess(addr, pc, when, false);
}

DataPort::Result
MemorySystem::demandStore(Addr addr, Pc pc, Cycle when)
{
    return demandAccess(addr, pc, when, true);
}

void
MemorySystem::shadowFill(unsigned level, Addr line, bool dirty)
{
    Cache *cache = shadowCache(level);
    if (Cache::Line *existing = cache->find(line)) {
        existing->dirty = existing->dirty || dirty;
        cache->touch(*existing);
        return;
    }
    Cache::Line *filled = nullptr;
    auto victim = cache->insert(line, &filled);
    filled->dirty = dirty;
    if (victim && victim->dirty) {
        if (level == kL3)
            ++_shared->_shadowDramWrites;
        else
            shadowFill(level + 1, victim->lineAddr, true);
    }
}

void
MemorySystem::shadowWalk(Addr line, Pc pc, bool is_store,
                         std::array<bool, kNumCacheLevels> &probed,
                         std::array<bool, kNumCacheLevels> &hit)
{
    for (unsigned lv = 0; lv < kNumCacheLevels; ++lv) {
        Cache *cache = shadowCache(lv);
        probed[lv] = true;
        if (Cache::Line *found = cache->find(line)) {
            hit[lv] = true;
            cache->touch(*found);
            if (is_store && lv == kL1)
                found->dirty = true;
            // Pull the line into the upper shadow levels, as the
            // baseline hierarchy would.
            for (unsigned up = lv; up-- > 0;)
                shadowFill(up, line, is_store && up == kL1);
            return;
        }
        hit[lv] = false;
        ++_stats.level[lv].shadowMisses;
        if (_listener)
            _listener->shadowMiss(lv, line, pc);
    }
    ++_shared->_shadowDramReads;
    for (unsigned lv = kNumCacheLevels; lv-- > 0;)
        shadowFill(lv, line, is_store && lv == kL1);
}

void
MemorySystem::handleVictim(unsigned level, const Cache::Victim &victim,
                           Cycle now)
{
    LevelStats &ls = _stats.level[level];
    ++ls.evictions;
    if (_trace) {
        std::uint8_t flags = 0;
        if (victim.dirty)
            flags |= kEvictDirty;
        if (victim.prefetched)
            flags |= kEvictPrefetched;
        if (victim.used)
            flags |= kEvictUsed;
        _trace->record(TraceEventType::kCacheEvict, now,
                       victim.lineAddr, 0,
                       static_cast<std::uint8_t>(victim.comp),
                       static_cast<std::uint8_t>(level), flags);
    }
    if (victim.prefetched && !victim.used) {
        ++ls.unusedPrefetchEvictions;
        if (_listener) {
            _listener->prefetchEvictedUnused(victim.comp, level,
                                             victim.lineAddr);
        }
    }
    if (level == kL3 && victim.owner != _coreId)
        ++_shared->shareStatsFor(_coreId).l3EvictionsOfOthers;
    if (!victim.dirty)
        return;
    ++ls.writebacks;
    if (level == kL3) {
        // Charge the writeback to the core whose dirty data it is.
        _shared->_dram.access(victim.lineAddr, now, /*is_write=*/true,
                              /*is_prefetch=*/false, /*priority=*/0,
                              victim.owner);
        return;
    }
    // Write the dirty line into the next level down.
    Cache *below = levelCache(level + 1);
    if (Cache::Line *line = below->find(victim.lineAddr)) {
        line->dirty = true;
        return;
    }
    fillLine(level + 1, victim.lineAddr, now, false, kNoComponent, true,
             now);
}

void
MemorySystem::fillLine(unsigned level, Addr line, Cycle completion,
                       bool prefetched, ComponentId comp, bool dirty,
                       Cycle now)
{
    Cache *cache = levelCache(level);
    if (Cache::Line *existing = cache->find(line)) {
        existing->dirty = existing->dirty || dirty;
        existing->readyAt = std::min(existing->readyAt, completion);
        cache->touch(*existing);
        return;
    }
    Cache::Line *filled = nullptr;
    auto victim = cache->insert(line, &filled);
    filled->readyAt = completion;
    filled->prefetched = prefetched;
    filled->comp = comp;
    filled->dirty = dirty;
    filled->owner = _coreId;
    if (level == kL3)
        ++_shared->shareStatsFor(_coreId).l3Insertions;
    if (victim)
        handleVictim(level, *victim, now);
}

DataPort::Result
MemorySystem::demandAccess(Addr addr, Pc pc, Cycle when, bool is_store)
{
    const Addr line = lineAddr(addr);
    Result res{};
    _memClock = std::max(_memClock, when);

    // Baseline walk first: the alternate reality is independent of the
    // prefetcher-perturbed state.
    std::array<bool, kNumCacheLevels> shadow_probed{};
    std::array<bool, kNumCacheLevels> shadow_hit{};
    shadowWalk(line, pc, is_store, shadow_probed, shadow_hit);

    Cycle now = when;
    for (unsigned lv = 0; lv < kNumCacheLevels; ++lv) {
        Cache *cache = levelCache(lv);
        LevelStats &ls = _stats.level[lv];
        ++ls.demandAccesses;

        if (Cache::Line *found = cache->find(line)) {
            const Cycle lookup_done = now + cache->latency();
            const Cycle completion = std::min(
                std::max(lookup_done, found->readyAt),
                lookup_done + _demandRefetchBound);
            const bool in_flight = found->readyAt > lookup_done;

            if (in_flight && !found->prefetched) {
                // Merged with an outstanding demand fetch: a secondary
                // miss, ignored by the footprint (paper footnote 2).
                ++ls.secondaryMisses;
            } else if (in_flight) {
                ++ls.latePrefetchHits;
                ++ls.demandHits;
                DOL_TRACE_EVENT(_trace, TraceEventType::kPrefetchLate,
                                now, line, pc,
                                static_cast<std::uint8_t>(found->comp),
                                static_cast<std::uint8_t>(lv), 0);
            } else {
                ++ls.demandHits;
            }
            DOL_TRACE_EVENT(_trace, TraceEventType::kCacheHit, now,
                            line, pc,
                            static_cast<std::uint8_t>(found->comp),
                            static_cast<std::uint8_t>(lv),
                            static_cast<std::uint8_t>(
                                (is_store ? 1u : 0u) |
                                (found->prefetched ? 2u : 0u) |
                                (in_flight ? 4u : 0u)));

            cache->touch(*found);
            if (is_store)
                found->dirty = true;
            if (lv == kL1 && found->prefetched) {
                res.l1HitPrefetched = true;
                res.l1HitComp = found->comp;
            }
            if (found->prefetched && !found->used) {
                found->used = true;
                ++_stats.comp[found->comp].used;
                DOL_TRACE_EVENT(_trace, TraceEventType::kPrefetchUsed,
                                now, line, pc,
                                static_cast<std::uint8_t>(found->comp),
                                static_cast<std::uint8_t>(lv), 0);
                if (_listener)
                    _listener->prefetchUsed(found->comp, lv, line);
            }

            if (lv == kL1)
                res.l1Hit = true;
            else if (lv == kL2)
                res.l2Hit = true;
            else
                res.l3Hit = true;

            // Pull the line into the levels above the hit (the walk
            // loop already recorded their misses).
            for (unsigned up = lv; up-- > 0;) {
                fillLine(up, line, completion, false, kNoComponent,
                         is_store && up == kL1, now);
            }
            res.completion = completion;
            if (lv != kL1)
                res.l1PrimaryMiss = true;
            return res;
        }

        // Primary miss at this level.
        ++ls.primaryMisses;
        DOL_TRACE_EVENT(_trace, TraceEventType::kCacheMiss, now, line,
                        pc, 0, static_cast<std::uint8_t>(lv),
                        is_store ? 1 : 0);
        if (lv == kL1)
            res.l1PrimaryMiss = true;
        if (_listener)
            _listener->demandMiss(lv, line, pc);

        if (shadow_probed[lv] && shadow_hit[lv]) {
            // The baseline would have hit here: this miss is a
            // casualty of prefetching. Split one negative credit among
            // the prefetched lines currently in the set.
            ++ls.inducedMisses;
            cache->prefetchedCompsInSet(line, _compScratch);
            if (!_compScratch.empty()) {
                const double share =
                    1.0 / static_cast<double>(_compScratch.size());
                for (ComponentId comp : _compScratch)
                    _stats.comp[comp].inducedCredit += share;
            }
            if (_listener) {
                _listener->inducedMiss(
                    lv, line,
                    std::span<const ComponentId>(_compScratch));
            }
        }

        if (cache->mshrFull(std::max(now, _memClock))) {
            // Demands outrank prefetches: reclaim a prefetch-held
            // slot before stalling for a free one.
            if (!cache->stealPrefetchMshr(std::max(now, _memClock))) {
                ++ls.mshrStalls;
                now = std::max(now, cache->earliestMshrFree());
            }
        }
        now += cache->latency();
    }

    // Missed the whole hierarchy: fetch the line from DRAM.
    const auto dram_result =
        _shared->_dram.access(line, now, /*is_write=*/false,
                              /*is_prefetch=*/false, /*priority=*/0,
                              _coreId);
    const Cycle completion = dram_result.completion;

    for (unsigned lv = 0; lv < kNumCacheLevels; ++lv) {
        levelCache(lv)->addMshr(line, completion);
        fillLine(lv, line, completion, false, kNoComponent,
                 is_store && lv == kL1, now);
    }
    res.completion = completion;
    return res;
}

PrefetchOutcome
MemorySystem::prefetch(Addr addr, unsigned dest_level, ComponentId comp,
                       Cycle when, std::uint8_t priority)
{
    const Addr line = lineAddr(addr);
    if (dest_level >= kNumCacheLevels)
        panic("prefetch to invalid level");
    _memClock = std::max(_memClock, when);

    // Duplicate filtering: already cached at or above the target, or
    // already being fetched.
    for (unsigned lv = 0; lv <= dest_level; ++lv) {
        if (levelCache(lv)->find(line)) {
            ++_stats.comp[comp].filtered;
            return PrefetchOutcome::kFilteredPresent;
        }
    }
    Cache *dest = levelCache(dest_level);
    if (dest->pendingEntry(line, _memClock)) {
        ++_stats.comp[comp].filtered;
        return PrefetchOutcome::kFilteredPending;
    }
    // Prefetches do not compete for demand MSHRs: their throttle is
    // the memory controller. When the target channel's read queue is
    // already deep, the request is rejected at generation time —
    // components resume from their frontier, so issue self-paces to
    // available bandwidth instead of stretching every completion.
    if (_shared->_dram.occupancy(line, std::max(when, _memClock)) >=
        kPrefetchOccupancyLimit) {
        ++_stats.comp[comp].droppedQueue;
        DOL_TRACE_EVENT(_trace, TraceEventType::kPrefetchDropped, when,
                        line, 0, static_cast<std::uint8_t>(comp),
                        static_cast<std::uint8_t>(dest_level), 1);
        return PrefetchOutcome::kDroppedQueue;
    }

    ++_stats.comp[comp].issued;
    DOL_TRACE_EVENT(_trace, TraceEventType::kPrefetchIssued, when,
                    line, 0, static_cast<std::uint8_t>(comp),
                    static_cast<std::uint8_t>(dest_level), priority);
    if (_listener)
        _listener->prefetchIssued(comp, line, dest_level, when);

    // Locate the closest copy below the destination.
    Cycle now = when + dest->latency();
    Cycle completion = 0;
    unsigned src_level = kNumCacheLevels;
    for (unsigned lv = dest_level + 1; lv < kNumCacheLevels; ++lv) {
        Cache *cache = levelCache(lv);
        if (Cache::Line *found = cache->find(line)) {
            completion =
                std::max(now + cache->latency(), found->readyAt);
            cache->touch(*found);
            src_level = lv;
            break;
        }
        now += cache->latency();
    }
    if (src_level == kNumCacheLevels) {
        const auto dram_result = _shared->_dram.access(
            line, now, /*is_write=*/false, /*is_prefetch=*/true,
            priority, _coreId);
        if (dram_result.dropped) {
            ++_stats.comp[comp].droppedQueue;
            DOL_TRACE_EVENT(_trace, TraceEventType::kPrefetchDropped,
                            when, line, 0,
                            static_cast<std::uint8_t>(comp),
                            static_cast<std::uint8_t>(dest_level), 2);
            if (_listener)
                _listener->prefetchDropped(comp, line);
            return PrefetchOutcome::kDroppedQueue;
        }
        completion = dram_result.completion;
    }

    // Install into every level from just above the source up to the
    // destination (the data passes through them on the way in).
    const unsigned lowest_fill =
        src_level == kNumCacheLevels ? kNumCacheLevels - 1
                                     : src_level - 1;
    for (unsigned lv = lowest_fill + 1; lv-- > dest_level;) {
        fillLine(lv, line, completion, true, comp, false, when);
        ++_stats.level[lv].prefetchFills;
    }
    ++_stats.comp[comp].filled;
    DOL_TRACE_EVENT(_trace, TraceEventType::kPrefetchFilled,
                    completion, line, 0,
                    static_cast<std::uint8_t>(comp),
                    static_cast<std::uint8_t>(dest_level), 0);
    if (_listener)
        _listener->prefetchFill(comp, line, completion);
    return PrefetchOutcome::kIssued;
}

void
MemorySystem::cancelPrefetchLine(Addr line_addr)
{
    unsigned level = kL1;
    for (Cache *cache : {&_l1, &_l2}) {
        if (Cache::Line *line = cache->find(line_addr)) {
            if (line->prefetched && !line->used) {
                DOL_TRACE_EVENT(_trace,
                                TraceEventType::kPrefetchDemoted,
                                _memClock, line_addr, 0,
                                static_cast<std::uint8_t>(line->comp),
                                static_cast<std::uint8_t>(level), 0);
                cache->invalidate(line_addr);
            }
        }
        ++level;
    }
}

void
MemorySystem::exportCounters(CounterRegistry &registry) const
{
    static const char *const kLevelNames[kNumCacheLevels] = {"L1", "L2",
                                                             "L3"};
    for (unsigned lv = 0; lv < kNumCacheLevels; ++lv) {
        const LevelStats &ls = _stats.level[lv];
        const std::string scope = kLevelNames[lv];
        registry.set(scope, "demand_accesses", ls.demandAccesses);
        registry.set(scope, "demand_hits", ls.demandHits);
        registry.set(scope, "primary_misses", ls.primaryMisses);
        registry.set(scope, "secondary_misses", ls.secondaryMisses);
        registry.set(scope, "late_prefetch_hits", ls.latePrefetchHits);
        registry.set(scope, "induced_misses", ls.inducedMisses);
        registry.set(scope, "prefetch_fills", ls.prefetchFills);
        registry.set(scope, "mshr_stalls", ls.mshrStalls);
        registry.set(scope, "evictions", ls.evictions);
        registry.set(scope, "writebacks", ls.writebacks);
        registry.set(scope, "unused_prefetch_evictions",
                     ls.unusedPrefetchEvictions);
        registry.set(scope, "shadow_misses", ls.shadowMisses);
    }
}

} // namespace dol
