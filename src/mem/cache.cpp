#include "mem/cache.hpp"

#include <bit>

#include "common/hotpath.hpp"
#include "common/log.hpp"
#include "common/simd.hpp"

namespace dol
{

Cache::Cache(const Params &params)
    : _params(params), _fastPath(hotpath::fastPath())
{
    const std::uint32_t lines = params.sizeBytes / kLineBytes;
    if (params.assoc == 0 || lines == 0 || lines % params.assoc != 0)
        fatal("cache geometry: size must be a multiple of assoc lines");
    _numSets = lines / params.assoc;
    if (!std::has_single_bit(_numSets))
        fatal("cache geometry: number of sets must be a power of two");
    _lines.resize(lines);
    _tags.assign(lines, kNoAddr);
    _stamps.assign(lines, 0);
    _mshrs.resize(params.mshrs);
}

std::size_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<std::size_t>(lineNum(line_addr) & (_numSets - 1)) *
           _params.assoc;
}

Cache::Line *
Cache::find(Addr line_addr)
{
    const std::size_t base = setIndex(line_addr);
    const Addr tag = lineAddr(line_addr);
    // Line addresses have zeroed offset bits, so a valid tag can never
    // equal kNoAddr (all ones): the tag mirror alone decides the hit.
    // The whole set compares in one or two vector ops (simd.hpp).
    const int way = simd::findTag(_tags.data() + base, _params.assoc, tag);
    return way >= 0 ? &_lines[base + static_cast<unsigned>(way)]
                    : nullptr;
}

const Cache::Line *
Cache::find(Addr line_addr) const
{
    return const_cast<Cache *>(this)->find(line_addr);
}

void
Cache::touch(Line &line)
{
    _stamps[static_cast<std::size_t>(&line - _lines.data())] =
        ++_stampCounter;
}

std::optional<Cache::Victim>
Cache::insert(Addr line_addr, Line **out_line)
{
    const std::size_t base = setIndex(line_addr);
    // Victim scan over the dense tag/stamp mirrors: first free way,
    // else least-recently-stamped — identical order to a scan of the
    // Line structs themselves. The free-way search is a vector tag
    // match; the stamp argmin keeps the scalar tie-break.
    const std::size_t victim_index =
        base + simd::victimWay(_tags.data() + base,
                               _stamps.data() + base, _params.assoc,
                               kNoAddr);
    Line *victim_line = &_lines[victim_index];

    std::optional<Victim> victim;
    if (victim_line->valid) {
        victim = Victim{victim_line->tag, victim_line->dirty,
                        victim_line->prefetched, victim_line->used,
                        victim_line->comp, victim_line->owner};
    }

    *victim_line = Line{};
    victim_line->tag = lineAddr(line_addr);
    victim_line->valid = true;
    _tags[static_cast<std::size_t>(victim_line - _lines.data())] =
        victim_line->tag;
    touch(*victim_line);
    if (out_line)
        *out_line = victim_line;
    return victim;
}

bool
Cache::invalidate(Addr line_addr)
{
    if (Line *line = find(line_addr)) {
        *line = Line{};
        const std::size_t index =
            static_cast<std::size_t>(line - _lines.data());
        _tags[index] = kNoAddr;
        _stamps[index] = 0;
        return true;
    }
    return false;
}

void
Cache::prefetchedCompsInSet(Addr line_addr,
                            std::vector<ComponentId> &out) const
{
    out.clear();
    const std::size_t base = setIndex(line_addr);
    for (std::uint32_t way = 0; way < _params.assoc; ++way) {
        const Line &line = _lines[base + way];
        if (line.valid && line.prefetched)
            out.push_back(line.comp);
    }
}

Cache::MshrEntry *
Cache::pendingEntry(Addr line_addr, Cycle now)
{
    // Quiescence fast path: once every fill in the file has landed
    // (now is past the latest completion ever registered), no entry
    // can be pending — skip the scan entirely. Exact by definition:
    // an entry is live iff entry.completion > now.
    if (_fastPath && now >= _mshrMaxCompletion)
        return nullptr;
    const Addr tag = lineAddr(line_addr);
    for (MshrEntry &entry : _mshrs) {
        if (entry.lineAddr == tag && entry.completion > now)
            return &entry;
    }
    return nullptr;
}

Cycle
Cache::pendingCompletion(Addr line_addr, Cycle now) const
{
    if (_fastPath && now >= _mshrMaxCompletion)
        return kNoCycle;
    const Addr tag = lineAddr(line_addr);
    for (const MshrEntry &entry : _mshrs) {
        if (entry.lineAddr == tag && entry.completion > now)
            return entry.completion;
    }
    return kNoCycle;
}

std::uint32_t
Cache::liveMshrCount(Cycle now) const
{
    if (_fastPath && now >= _mshrMaxCompletion)
        return 0;
    std::uint32_t live = 0;
    for (const MshrEntry &entry : _mshrs) {
        if (entry.completion > now)
            ++live;
    }
    return live;
}

bool
Cache::mshrFull(Cycle now) const
{
    // No in-flight fill => some slot is reusable (or there are no
    // slots at all, in which case the file never reports full).
    if (_fastPath && now >= _mshrMaxCompletion)
        return false;
    for (const MshrEntry &entry : _mshrs) {
        if (entry.completion <= now)
            return false;
    }
    return !_mshrs.empty();
}

Cycle
Cache::earliestMshrFree() const
{
    Cycle earliest = kNoCycle;
    for (const MshrEntry &entry : _mshrs)
        earliest = std::min(earliest, entry.completion);
    return earliest;
}

void
Cache::addMshr(Addr line_addr, Cycle completion, ComponentId comp,
               bool is_prefetch)
{
    if (_mshrs.empty())
        return;
    // Reuse the slot that frees soonest; the caller has already
    // guaranteed availability (or accepted the overwrite for shadow
    // structures that do not model MSHR pressure).
    MshrEntry *slot = &_mshrs[0];
    for (MshrEntry &entry : _mshrs) {
        if (entry.completion < slot->completion)
            slot = &entry;
    }
    *slot = MshrEntry{lineAddr(line_addr), completion, comp,
                      is_prefetch, false};
    if (completion > _mshrMaxCompletion)
        _mshrMaxCompletion = completion;
}

bool
Cache::stealPrefetchMshr(Cycle now)
{
    if (_fastPath && now >= _mshrMaxCompletion)
        return false;
    // Reclaim the most speculative victim: the prefetch completing
    // furthest in the future.
    MshrEntry *victim = nullptr;
    for (MshrEntry &entry : _mshrs) {
        if (entry.isPrefetch && entry.completion > now &&
            (!victim || entry.completion > victim->completion)) {
            victim = &entry;
        }
    }
    if (!victim)
        return false;
    *victim = MshrEntry{};
    return true;
}

} // namespace dol
