/**
 * @file
 * Sparse byte-addressable memory image.
 *
 * Workload generators write pointer values into it so that the data
 * structures they traverse are coherent; the P1 component reads it to
 * model the value a returning prefetch delivers to its chasing FSM
 * (paper section IV-B: "the value from the previous prefetch will be
 * stored [and] the next prefetch will be issued").
 */

#ifndef DOL_MEM_MEMORY_IMAGE_HPP
#define DOL_MEM_MEMORY_IMAGE_HPP

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace dol
{

/** Read-only view of simulated memory contents. */
class ValueSource
{
  public:
    virtual ~ValueSource() = default;
    /** 64-bit little-endian read; unwritten memory reads as zero. */
    virtual std::uint64_t read64(Addr addr) const = 0;
};

class MemoryImage : public ValueSource
{
  public:
    std::uint64_t
    read64(Addr addr) const override
    {
        std::uint64_t value = 0;
        auto *bytes = reinterpret_cast<std::uint8_t *>(&value);
        for (unsigned i = 0; i < 8; ++i)
            bytes[i] = readByte(addr + i);
        return value;
    }

    void
    write64(Addr addr, std::uint64_t value)
    {
        const auto *bytes = reinterpret_cast<const std::uint8_t *>(&value);
        for (unsigned i = 0; i < 8; ++i)
            writeByte(addr + i, bytes[i]);
    }

    std::size_t pageCount() const { return _pages.size(); }

  private:
    static constexpr unsigned kPageBits = 12;
    static constexpr std::size_t kPageBytes = 1u << kPageBits;

    std::uint8_t
    readByte(Addr addr) const
    {
        const auto it = _pages.find(addr >> kPageBits);
        if (it == _pages.end())
            return 0;
        return it->second[addr & (kPageBytes - 1)];
    }

    void
    writeByte(Addr addr, std::uint8_t byte)
    {
        auto &page = _pages[addr >> kPageBits];
        if (page.empty())
            page.resize(kPageBytes, 0);
        page[addr & (kPageBytes - 1)] = byte;
    }

    std::unordered_map<Addr, std::vector<std::uint8_t>> _pages;
};

} // namespace dol

#endif // DOL_MEM_MEMORY_IMAGE_HPP
