/**
 * @file
 * Sparse byte-addressable memory image.
 *
 * Workload generators write pointer values into it so that the data
 * structures they traverse are coherent; the P1 component reads it to
 * model the value a returning prefetch delivers to its chasing FSM
 * (paper section IV-B: "the value from the previous prefetch will be
 * stored [and] the next prefetch will be issued").
 *
 * Pages live in a flat open-addressed table keyed by page number and
 * point into a slab arena (64 pages per backing allocation, PR 9) —
 * building a pointer-chase image used to cost one malloc per touched
 * 4 KB page, re-paid on every bench repetition. The aligned fast path
 * resolves a 64-bit read or write with one table probe and one
 * memcpy; only accesses straddling a page boundary fall back to the
 * byte loop.
 */

#ifndef DOL_MEM_MEMORY_IMAGE_HPP
#define DOL_MEM_MEMORY_IMAGE_HPP

#include <cstdint>
#include <cstring>

#include "common/arena.hpp"
#include "common/flat_table.hpp"
#include "common/types.hpp"

namespace dol
{

/** Read-only view of simulated memory contents. */
class ValueSource
{
  public:
    virtual ~ValueSource() = default;
    /** 64-bit little-endian read; unwritten memory reads as zero. */
    virtual std::uint64_t read64(Addr addr) const = 0;
};

class MemoryImage : public ValueSource
{
  public:
    std::uint64_t
    read64(Addr addr) const override
    {
        const std::size_t offset = addr & (kPageBytes - 1);
        if (offset <= kPageBytes - 8) {
            const Page *page = _pages.find(addr >> kPageBits);
            if (!page)
                return 0;
            std::uint64_t value;
            std::memcpy(&value, *page + offset, 8);
            return value;
        }
        std::uint64_t value = 0;
        auto *bytes = reinterpret_cast<std::uint8_t *>(&value);
        for (unsigned i = 0; i < 8; ++i)
            bytes[i] = readByte(addr + i);
        return value;
    }

    void
    write64(Addr addr, std::uint64_t value)
    {
        const std::size_t offset = addr & (kPageBytes - 1);
        if (offset <= kPageBytes - 8) {
            std::memcpy(pageFor(addr) + offset, &value, 8);
            return;
        }
        const auto *bytes = reinterpret_cast<const std::uint8_t *>(&value);
        for (unsigned i = 0; i < 8; ++i)
            writeByte(addr + i, bytes[i]);
    }

    std::size_t pageCount() const { return _pages.size(); }

  private:
    static constexpr unsigned kPageBits = 12;
    static constexpr std::size_t kPageBytes = 1u << kPageBits;

    /** Raw pointer into _arena; owned by the arena, never freed
     *  individually (the image only grows until destruction). */
    using Page = std::uint8_t *;

    Page
    pageFor(Addr addr)
    {
        auto [page, inserted] = _pages.tryEmplace(addr >> kPageBits);
        if (inserted)
            *page = _arena.allocate(); // zero-filled by the arena
        return *page;
    }

    std::uint8_t
    readByte(Addr addr) const
    {
        const Page *page = _pages.find(addr >> kPageBits);
        if (!page)
            return 0;
        return (*page)[addr & (kPageBytes - 1)];
    }

    void
    writeByte(Addr addr, std::uint8_t byte)
    {
        pageFor(addr)[addr & (kPageBytes - 1)] = byte;
    }

    FlatHashMap<std::uint64_t, Page> _pages;
    /** Backing store: one malloc per 64 pages instead of per page. */
    SlabArena _arena{kPageBytes, 64};
};

} // namespace dol

#endif // DOL_MEM_MEMORY_IMAGE_HPP
