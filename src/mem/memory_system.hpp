/**
 * @file
 * The three-level memory hierarchy of Table I, glued to the DRAM model
 * and instrumented with alternate-reality (shadow) tags.
 *
 * Each core owns a private L1D and L2 plus shadow replicas of both; a
 * SharedMemory object holds the shared L3, its shadow, and the DRAM
 * controller. The shadow hierarchy processes only demand accesses, so
 * its miss stream *is* the baseline (no-prefetch) miss stream — it
 * supplies the footprint FP for the scope metric, the denominator of
 * effective coverage, and the oracle for prefetch-induced misses
 * (paper sections III and V-C.1).
 */

#ifndef DOL_MEM_MEMORY_SYSTEM_HPP
#define DOL_MEM_MEMORY_SYSTEM_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "cpu/core.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/listener.hpp"

namespace dol
{

class TraceContext;
class CounterRegistry;

/** Full hierarchy configuration; defaults reproduce Table I. */
struct MemParams
{
    Cache::Params l1{"L1D", 64 * 1024, 4, nsToCycles(1.0), 32};
    Cache::Params l2{"L2", 256 * 1024, 8, nsToCycles(3.0), 32};
    /** Per-core share; the constructor scales by core count. */
    Cache::Params l3{"L3", 2 * 1024 * 1024, 16, nsToCycles(12.0), 64};
    DramParams dram{};
};

/** Counters kept per cache level. */
struct LevelStats
{
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t primaryMisses = 0;
    std::uint64_t secondaryMisses = 0; ///< merged with in-flight fetch
    std::uint64_t latePrefetchHits = 0;
    std::uint64_t inducedMisses = 0;
    std::uint64_t prefetchFills = 0;
    std::uint64_t mshrStalls = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t unusedPrefetchEvictions = 0;
    std::uint64_t shadowMisses = 0; ///< baseline primary misses
};

/** Counters kept per prefetcher component. */
struct ComponentStats
{
    std::uint64_t issued = 0;
    std::uint64_t filled = 0;
    std::uint64_t used = 0;
    std::uint64_t filtered = 0;
    std::uint64_t droppedMshr = 0;
    std::uint64_t droppedQueue = 0;
    /** Fractional negative credits from induced misses. */
    double inducedCredit = 0.0;
};

struct MemStats
{
    std::array<LevelStats, kNumCacheLevels> level{};
    std::array<ComponentStats, kMaxComponents> comp{};

    /** Sum of issued prefetches over all components. */
    std::uint64_t
    prefetchesIssued() const
    {
        std::uint64_t total = 0;
        for (const auto &c : comp)
            total += c.issued;
        return total;
    }

    std::uint64_t
    prefetchesUsed() const
    {
        std::uint64_t total = 0;
        for (const auto &c : comp)
            total += c.used;
        return total;
    }
};

class MemorySystem;

/** Per-core footprint in the shared levels (contention attribution). */
struct CoreShareStats
{
    /** Lines this core installed into the shared L3. */
    std::uint64_t l3Insertions = 0;
    /** Valid L3 lines this core displaced that another core owned. */
    std::uint64_t l3EvictionsOfOthers = 0;
};

/** State shared by all cores: L3, its shadow, and the DRAM channel. */
class SharedMemory
{
  public:
    SharedMemory(const MemParams &params, unsigned num_cores = 1);

    Cache &l3() { return _l3; }
    Cache &shadowL3() { return _shadowL3; }
    Dram &dram() { return _dram; }
    const Dram &dram() const { return _dram; }

    /** Shared-L3 attribution for @p core (zeroes when untracked). */
    const CoreShareStats &coreShare(unsigned core) const
    {
        static const CoreShareStats kEmpty{};
        return core < _coreShare.size() ? _coreShare[core] : kEmpty;
    }

    /** Baseline DRAM traffic, in lines (shadow L3 misses + WBs). */
    std::uint64_t
    baselineDramLines() const
    {
        return _shadowDramReads + _shadowDramWrites;
    }

    std::uint64_t shadowDramReads() const { return _shadowDramReads; }

    void registerCore(MemorySystem *core);

  private:
    friend class MemorySystem;

    CoreShareStats &shareStatsFor(unsigned core)
    {
        if (core >= _coreShare.size())
            _coreShare.resize(core + 1);
        return _coreShare[core];
    }

    Cache _l3;
    Cache _shadowL3;
    Dram _dram;
    std::uint64_t _shadowDramReads = 0;
    std::uint64_t _shadowDramWrites = 0;
    std::vector<MemorySystem *> _cores;
    std::vector<CoreShareStats> _coreShare;
};

/** Outcome of a prefetch request. */
enum class PrefetchOutcome : std::uint8_t
{
    kIssued,
    kFilteredPresent, ///< line already cached at/above the target
    kFilteredPending, ///< fetch already outstanding
    kDroppedMshr,     ///< no MSHR available at the target level
    kDroppedQueue,    ///< shed by the memory controller
    kDroppedThrottle, ///< blocked by the adaptive emission budget
};

class MemorySystem : public DataPort
{
  public:
    /**
     * Build a per-core hierarchy.
     *
     * @param params  cache/DRAM configuration
     * @param shared  shared L3+DRAM; nullptr builds a private one
     *                (the common single-core case)
     */
    explicit MemorySystem(const MemParams &params = {},
                          std::shared_ptr<SharedMemory> shared = nullptr);

    // DataPort
    Result demandLoad(Addr addr, Pc pc, Cycle when) override;
    Result demandStore(Addr addr, Pc pc, Cycle when) override;

    /**
     * Issue a prefetch of @p addr into @p dest_level.
     *
     * @param priority drop priority at the memory controller; higher
     *                 values survive longer (T2/P1 > C1).
     */
    PrefetchOutcome prefetch(Addr addr, unsigned dest_level,
                             ComponentId comp, Cycle when,
                             std::uint8_t priority = 1);

    void setListener(MemListener *listener) { _listener = listener; }

    /** Attach the observability event bus (nullptr = tracing off). */
    void setTraceContext(TraceContext *trace) { _trace = trace; }

    /**
     * Identify this hierarchy's core for shared-resource attribution
     * (DRAM lines, L3 insertions/evictions). Defaults to 0, so the
     * single-core path is unchanged.
     */
    void setCoreId(unsigned id)
    {
        _coreId = static_cast<std::uint8_t>(id);
    }
    unsigned coreId() const { return _coreId; }

    /** Fold the per-level stats into @p registry (end of run). */
    void exportCounters(CounterRegistry &registry) const;

    const MemStats &stats() const { return _stats; }
    SharedMemory &shared() { return *_shared; }
    const SharedMemory &shared() const { return *_shared; }

    Cache &cacheAt(unsigned level);

    /** DRAM lines moved for this run (all cores, incl. writebacks). */
    std::uint64_t
    dramLines() const
    {
        return _shared->dram().linesTransferred();
    }

    /**
     * Invalidate an unused prefetched copy of @p line_addr in the
     * private levels (memory-controller cancellation).
     */
    void cancelPrefetchLine(Addr line_addr);

  private:
    Result demandAccess(Addr addr, Pc pc, Cycle when, bool is_store);

    void shadowWalk(Addr line, Pc pc, bool is_store,
                    std::array<bool, kNumCacheLevels> &probed,
                    std::array<bool, kNumCacheLevels> &hit);
    void shadowFill(unsigned level, Addr line, bool dirty);

    /** Install @p line at @p level; handles eviction/writeback. */
    void fillLine(unsigned level, Addr line, Cycle completion,
                  bool prefetched, ComponentId comp, bool dirty,
                  Cycle now);
    void handleVictim(unsigned level, const Cache::Victim &victim,
                      Cycle now);

    Cache *levelCache(unsigned level);
    Cache *shadowCache(unsigned level);

    std::shared_ptr<SharedMemory> _shared;
    Cache _l1;
    Cache _l2;
    Cache _shadowL1;
    Cache _shadowL2;

    /**
     * Upper bound on what a demand pays when it finds its line in
     * flight: it could always have fetched the line itself, so it is
     * never slower than a full (row-miss) memory round trip. This
     * also absorbs timestamp skew between out-of-order issue times.
     */
    Cycle _demandRefetchBound = 0;

    /**
     * Monotonic view of time at the memory interface. Dataflow issue
     * times are not monotonic in program order; occupancy questions
     * (are the MSHRs full?) are asked against this clock so a stale
     * timestamp cannot make long-completed fetches look live.
     */
    Cycle _memClock = 0;

    MemListener *_listener = nullptr;
    TraceContext *_trace = nullptr;
    MemStats _stats;
    std::uint8_t _coreId = 0;
    std::vector<ComponentId> _compScratch;
};

} // namespace dol

#endif // DOL_MEM_MEMORY_SYSTEM_HPP
