/**
 * @file
 * Register taint propagation, the decoder circuit P1 uses to discover
 * loads whose addresses depend on a producer load (paper section IV-B).
 *
 * A 64-bit vector holds one taint bit per logical register. Seeding
 * sets the bit of the producer's destination; each later instruction
 * propagates taint from sources to destination. The sweep ends when the
 * producer instruction is encountered again (one loop iteration).
 */

#ifndef DOL_CPU_TAINT_HPP
#define DOL_CPU_TAINT_HPP

#include <cstdint>

#include "cpu/instr.hpp"

namespace dol
{

class TaintTracker
{
  public:
    /** Clear all taint and mark the producer's destination register. */
    void
    seed(RegId producer_dst)
    {
        _bits = 0;
        if (producer_dst < kNumRegs)
            _bits = std::uint64_t{1} << producer_dst;
    }

    /**
     * Propagate taint across one instruction.
     *
     * @return true when the instruction read at least one tainted
     *         source register (i.e. it is transitively dependent).
     */
    bool
    propagate(const Instr &in)
    {
        const bool src_tainted =
            isTainted(in.src1) || isTainted(in.src2);
        if (in.dst < kNumRegs) {
            const std::uint64_t bit = std::uint64_t{1} << in.dst;
            if (src_tainted)
                _bits |= bit;
            else
                _bits &= ~bit;
        }
        return src_tainted;
    }

    bool
    isTainted(RegId reg) const
    {
        return reg < kNumRegs && (_bits >> reg) & 1;
    }

    std::uint64_t bits() const { return _bits; }

    void clear() { _bits = 0; }

    /** Storage footprint in bits (one per logical register). */
    static constexpr unsigned storageBits() { return kNumRegs; }

  private:
    std::uint64_t _bits = 0;
};

} // namespace dol

#endif // DOL_CPU_TAINT_HPP
