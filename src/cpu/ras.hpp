/**
 * @file
 * Return address stack. T2 xors the RAS top into the PC to form the
 * "mPC" that disambiguates strided streams reached through different
 * call sites (paper section IV-A.2).
 */

#ifndef DOL_CPU_RAS_HPP
#define DOL_CPU_RAS_HPP

#include <array>
#include <cstddef>

#include "common/types.hpp"

namespace dol
{

/** Fixed-depth circular return address stack (Table I: 32 entries). */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::size_t depth = 32) : _depth(depth) {}

    void
    push(Pc return_addr)
    {
        _top = (_top + 1) % _depth;
        _stack[_top] = return_addr;
        if (_size < _depth)
            ++_size;
    }

    void
    pop()
    {
        if (_size == 0)
            return;
        --_size;
        _top = (_top + _depth - 1) % _depth;
    }

    /** Top of stack; zero when empty so mPC == PC outside any call. */
    Pc top() const { return _size ? _stack[_top] : 0; }

    std::size_t size() const { return _size; }
    std::size_t depth() const { return _depth; }

  private:
    static constexpr std::size_t kMaxDepth = 64;
    std::array<Pc, kMaxDepth> _stack{};
    std::size_t _depth;
    std::size_t _top = 0;
    std::size_t _size = 0;
};

} // namespace dol

#endif // DOL_CPU_RAS_HPP
