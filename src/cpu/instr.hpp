/**
 * @file
 * The dynamic instruction record that workload generators emit and the
 * timing core consumes. This is the "trace format" of the simulator.
 *
 * The record carries everything the paper's mechanisms need to observe:
 * program counters and branch structure (T2's loop detection), logical
 * source/destination registers (P1's decoder taint circuit), effective
 * addresses, and the value a load returns (P1's pointer chasing).
 */

#ifndef DOL_CPU_INSTR_HPP
#define DOL_CPU_INSTR_HPP

#include <cstdint>

#include "common/types.hpp"

namespace dol
{

/** Logical register identifier; the ISA has 64 integer registers. */
using RegId = std::uint8_t;
constexpr unsigned kNumRegs = 64;
constexpr RegId kNoReg = 0xff;

/** Dynamic operation class. */
enum class Op : std::uint8_t
{
    kAlu,    ///< register-to-register arithmetic
    kLoad,   ///< memory read
    kStore,  ///< memory write
    kBranch, ///< conditional or unconditional branch
    kCall,   ///< function call (pushes the RAS)
    kReturn, ///< function return (pops the RAS)
};

/** One retired dynamic instruction. */
struct Instr
{
    Pc pc = 0;
    Op op = Op::kAlu;

    /** Effective byte address (loads and stores). */
    Addr addr = 0;
    /** Value returned by a load / written by a store. */
    std::uint64_t value = 0;
    /** Access size in bytes (loads and stores). */
    std::uint8_t size = 8;

    /** Branch / call target; meaningful when op is a control op. */
    Pc target = 0;
    /** Branch direction (branches only). */
    bool taken = false;
    /** Set by the generator when the front end would mispredict. */
    bool mispredicted = false;

    RegId dst = kNoReg;
    RegId src1 = kNoReg;
    RegId src2 = kNoReg;

    /** Execution latency in cycles for non-memory operations. */
    std::uint8_t latency = 1;

    bool isLoad() const { return op == Op::kLoad; }
    bool isStore() const { return op == Op::kStore; }
    bool isMem() const { return isLoad() || isStore(); }

    bool
    isControl() const
    {
        return op == Op::kBranch || op == Op::kCall || op == Op::kReturn;
    }

    /** A taken branch to a lower PC: the raw material of loops. */
    bool
    isBackwardBranch() const
    {
        return op == Op::kBranch && taken && target < pc;
    }
};

/** Convenience constructors used heavily by generators and tests. */
inline Instr
makeAlu(Pc pc, RegId dst = kNoReg, RegId s1 = kNoReg, RegId s2 = kNoReg,
        std::uint8_t latency = 1)
{
    Instr in;
    in.pc = pc;
    in.op = Op::kAlu;
    in.dst = dst;
    in.src1 = s1;
    in.src2 = s2;
    in.latency = latency;
    return in;
}

inline Instr
makeLoad(Pc pc, Addr addr, std::uint64_t value = 0, RegId dst = kNoReg,
         RegId base = kNoReg)
{
    Instr in;
    in.pc = pc;
    in.op = Op::kLoad;
    in.addr = addr;
    in.value = value;
    in.dst = dst;
    in.src1 = base;
    return in;
}

inline Instr
makeStore(Pc pc, Addr addr, std::uint64_t value = 0, RegId data = kNoReg,
          RegId base = kNoReg)
{
    Instr in;
    in.pc = pc;
    in.op = Op::kStore;
    in.addr = addr;
    in.value = value;
    in.src1 = base;
    in.src2 = data;
    return in;
}

inline Instr
makeBranch(Pc pc, Pc target, bool taken, bool mispredicted = false)
{
    Instr in;
    in.pc = pc;
    in.op = Op::kBranch;
    in.target = target;
    in.taken = taken;
    in.mispredicted = mispredicted;
    return in;
}

inline Instr
makeCall(Pc pc, Pc target)
{
    Instr in;
    in.pc = pc;
    in.op = Op::kCall;
    in.target = target;
    in.taken = true;
    return in;
}

inline Instr
makeReturn(Pc pc, Pc target)
{
    Instr in;
    in.pc = pc;
    in.op = Op::kReturn;
    in.target = target;
    in.taken = true;
    return in;
}

} // namespace dol

#endif // DOL_CPU_INSTR_HPP
