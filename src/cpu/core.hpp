/**
 * @file
 * The timing core: a dataflow approximation of the 4-wide out-of-order
 * processor in Table I.
 *
 * The model processes the retire stream in order but computes, per
 * instruction, a dispatch time (bounded by front-end width and ROB
 * occupancy), an issue time (bounded by register dependences and LSQ
 * occupancy for memory operations), and a finish time. Dependent loads
 * therefore serialize (pointer chasing pays full round trips) while
 * independent strided loads overlap up to the MSHR limit — exactly the
 * behaviours the paper's prefetcher components exploit.
 */

#ifndef DOL_CPU_CORE_HPP
#define DOL_CPU_CORE_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "cpu/instr.hpp"
#include "cpu/ras.hpp"

namespace dol
{

class TraceContext;

/** Core parameters (defaults follow Table I). */
struct CoreParams
{
    unsigned width = 4;              ///< dispatch/retire width
    unsigned robSize = 192;          ///< reorder buffer entries
    unsigned lsqSize = 96;           ///< load/store queue entries
    unsigned branchMissPenalty = 15; ///< front-end refill cycles
    unsigned agenLatency = 1;        ///< address generation cycles
};

/**
 * Abstract data-side memory port. The memory hierarchy implements this;
 * the core only needs completion times and hit levels.
 */
class DataPort
{
  public:
    struct Result
    {
        Cycle completion = 0; ///< cycle the value is ready
        bool l1Hit = false;
        bool l2Hit = false;
        bool l3Hit = false;
        /** Primary L1 miss (secondary misses are ignored, paper fn 2). */
        bool l1PrimaryMiss = false;
        /** The L1 hit landed on a prefetched line (BOP/FDP training). */
        bool l1HitPrefetched = false;
        /** Component that prefetched the hit line (0 = none). */
        std::uint8_t l1HitComp = 0;
    };

    virtual ~DataPort() = default;
    virtual Result demandLoad(Addr addr, Pc pc, Cycle when) = 0;
    virtual Result demandStore(Addr addr, Pc pc, Cycle when) = 0;
};

/** Per-instruction timing outcome handed to the prefetching machinery. */
struct RetireInfo
{
    Cycle dispatch = 0;   ///< dispatch cycle
    Cycle issue = 0;      ///< execute/agen cycle
    Cycle finish = 0;     ///< completion cycle
    DataPort::Result mem; ///< memory outcome (memory ops only)
};

/** Aggregate core statistics for one simulation. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    Cycle cycles = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

class Core
{
  public:
    explicit Core(const CoreParams &params = {})
        : _params(params),
          _retireRing(params.robSize, 0),
          _lsqRing(params.lsqSize, 0),
          _regReady(kNumRegs, 0)
    {}

    /**
     * Account one retired instruction.
     *
     * @param in   the dynamic instruction
     * @param port data-side port used for loads and stores
     * @return per-instruction timing, for prefetcher training
     */
    RetireInfo step(const Instr &in, DataPort &port);

    const CoreStats &stats() const { return _stats; }
    const CoreParams &params() const { return _params; }

    /** Architectural RAS as seen at retire (used to form T2's mPC). */
    const ReturnAddressStack &ras() const { return _ras; }

    /** Final cycle count: the latest finish time observed so far. */
    Cycle finalCycle() const { return _maxFinish; }

    /** Attach the observability event bus (nullptr = tracing off). */
    void setTraceContext(TraceContext *trace) { _trace = trace; }

  private:
    Cycle regReady(RegId reg) const
    {
        return reg < kNumRegs ? _regReady[reg] : 0;
    }

    CoreParams _params;

    /** Retire time of instruction (i - robSize), as a ring buffer. */
    std::vector<Cycle> _retireRing;
    /** Completion time of memory op (j - lsqSize), as a ring buffer. */
    std::vector<Cycle> _lsqRing;
    std::vector<Cycle> _regReady;

    ReturnAddressStack _ras;

    Cycle _nextDispatch = 0;
    unsigned _laneUsed = 0;
    Cycle _retireCursor = 0;
    Cycle _maxFinish = 0;
    std::uint64_t _instrIndex = 0;
    std::uint64_t _memIndex = 0;

    TraceContext *_trace = nullptr;
    CoreStats _stats;
};

} // namespace dol

#endif // DOL_CPU_CORE_HPP
