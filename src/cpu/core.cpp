#include "cpu/core.hpp"

#include "trace/context.hpp"

namespace dol
{

RetireInfo
Core::step(const Instr &in, DataPort &port)
{
    RetireInfo info;

    // Dispatch: bounded by front-end width and by the ROB — instruction
    // i cannot enter until instruction (i - robSize) has retired.
    const Cycle rob_free = _retireRing[_instrIndex % _params.robSize];
    Cycle dispatch = std::max(_nextDispatch, rob_free);
    if (dispatch > _nextDispatch) {
        _nextDispatch = dispatch;
        _laneUsed = 0;
    }
    info.dispatch = dispatch;
    if (++_laneUsed >= _params.width) {
        ++_nextDispatch;
        _laneUsed = 0;
    }

    // Issue and finish, by operation class.
    const Cycle operands =
        std::max(regReady(in.src1), regReady(in.src2));
    Cycle finish = 0;

    switch (in.op) {
      case Op::kAlu:
        finish = std::max(dispatch, operands) + in.latency;
        info.issue = finish - in.latency;
        break;

      case Op::kLoad:
      case Op::kStore: {
        Cycle agen = std::max(dispatch, operands) + _params.agenLatency;
        // LSQ: memory op j waits for (j - lsqSize) to complete.
        agen = std::max(agen, _lsqRing[_memIndex % _params.lsqSize]);
        info.issue = agen;
        info.mem = in.isLoad() ? port.demandLoad(in.addr, in.pc, agen)
                               : port.demandStore(in.addr, in.pc, agen);
        // Stores retire once their address and data are known; the
        // cache absorbs the write in the background.
        finish = in.isLoad() ? info.mem.completion : agen + 1;
        _lsqRing[_memIndex % _params.lsqSize] = info.mem.completion;
        ++_memIndex;
        if (in.isLoad())
            ++_stats.loads;
        else
            ++_stats.stores;
        break;
      }

      case Op::kBranch:
      case Op::kCall:
      case Op::kReturn: {
        finish = std::max(dispatch, operands) + in.latency;
        info.issue = finish - in.latency;
        ++_stats.branches;
        if (in.mispredicted) {
            // Front end restarts after the branch resolves.
            ++_stats.mispredicts;
            DOL_TRACE_EVENT(_trace, TraceEventType::kCoreMispredict,
                            finish, in.target, in.pc, 0, 0,
                            in.taken ? 1 : 0);
            _nextDispatch = std::max(
                _nextDispatch, finish + _params.branchMissPenalty);
            _laneUsed = 0;
        }
        if (in.op == Op::kCall)
            _ras.push(in.pc + 4);
        else if (in.op == Op::kReturn)
            _ras.pop();
        break;
      }
    }

    if (in.dst < kNumRegs)
        _regReady[in.dst] = finish;

    // In-order retirement: the retire cursor never moves backwards.
    _retireCursor = std::max(_retireCursor, finish);
    _retireRing[_instrIndex % _params.robSize] = _retireCursor;
    ++_instrIndex;

    _maxFinish = std::max(_maxFinish, finish);
    info.finish = finish;

    ++_stats.instructions;
    _stats.cycles = _maxFinish;
    return info;
}

} // namespace dol
