/**
 * @file
 * Flat, allocation-free hash tables for the per-access hot loop.
 *
 * Every structure the paper specifies is a small bounded table (the
 * SIT, the instruction-state bits, the Region/Instruction Monitors),
 * and the simulator state that mirrors them is keyed by small integer
 * keys (PC, mPC, line address, region number). `std::unordered_map`
 * buys none of that shape: every insert allocates a node, every probe
 * chases a pointer, and the default hash is identity. The tables here
 * store open-addressed slots in one contiguous power-of-two array
 * with linear probing and a strong 64-bit mixer, so the common
 * hit-probe touches one or two cache lines and inserts never allocate
 * per node.
 *
 * Three variants:
 *  - FlatHashMap / FlatHashSet: unbounded semantics (grow by
 *    rehashing at 7/8 load, erase by backward shift). Drop-in for the
 *    unordered containers they replace — same find/insert/erase
 *    semantics, so the migration is layout-only and golden traces
 *    stay byte-identical.
 *  - BoundedLruTable: fixed capacity, linear probe window,
 *    LRU-stamp eviction inside the window — the shape of a hardware
 *    set-indexed table (SPP's signature table, BOP's RR table).
 *  - DirectMapTable: one slot per set, insert overwrites on
 *    conflict — the cheapest possible lookup for caches of derived
 *    values where collisions only cost recomputation.
 *
 * All variants are deterministic: layout depends only on the key
 * sequence, never on pointers or global state.
 */

#ifndef DOL_COMMON_FLAT_TABLE_HPP
#define DOL_COMMON_FLAT_TABLE_HPP

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace dol
{

/** SplitMix64 finalizer: the integer-key mixer for every table. */
constexpr std::uint64_t
flatHashMix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/**
 * Open-addressing hash map with linear probing and backward-shift
 * deletion. Key must be an integer-like trivially copyable type;
 * Value may be move-only. References returned by find()/operator[]
 * are invalidated by any insert or erase.
 */
template <typename Key, typename Value>
class FlatHashMap
{
    struct Slot
    {
        Key key{};
        Value value{};
    };

    static constexpr std::uint8_t kEmpty = 0;
    static constexpr std::uint8_t kFull = 1;

  public:
    FlatHashMap() = default;

    FlatHashMap(const FlatHashMap &) = default;
    FlatHashMap &operator=(const FlatHashMap &) = default;
    FlatHashMap(FlatHashMap &&) noexcept = default;
    FlatHashMap &operator=(FlatHashMap &&) noexcept = default;

    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    std::size_t capacity() const { return _slots.size(); }

    /** Grow so that @p count keys fit without rehashing. */
    void
    reserve(std::size_t count)
    {
        std::size_t want = 8;
        while (want - want / 8 < count)
            want *= 2;
        if (want > _slots.size())
            rehash(want);
    }

    void
    clear()
    {
        std::fill(_ctrl.begin(), _ctrl.end(), kEmpty);
        for (Slot &slot : _slots)
            slot = Slot{};
        _size = 0;
    }

    Value *
    find(const Key &key)
    {
        const std::size_t index = findIndex(key);
        return index == kNotFound ? nullptr : &_slots[index].value;
    }

    const Value *
    find(const Key &key) const
    {
        const std::size_t index = findIndex(key);
        return index == kNotFound ? nullptr : &_slots[index].value;
    }

    bool contains(const Key &key) const
    {
        return findIndex(key) != kNotFound;
    }

    /**
     * Find-or-insert with a default-constructed value.
     * @return (value pointer, inserted?)
     */
    std::pair<Value *, bool>
    tryEmplace(const Key &key)
    {
        growIfNeeded();
        std::size_t index = probeStart(key);
        while (_ctrl[index] == kFull) {
            if (_slots[index].key == key)
                return {&_slots[index].value, false};
            index = next(index);
        }
        _ctrl[index] = kFull;
        _slots[index].key = key;
        _slots[index].value = Value{};
        ++_size;
        return {&_slots[index].value, true};
    }

    Value &operator[](const Key &key) { return *tryEmplace(key).first; }

    /** Insert or overwrite. @return true when the key was new. */
    bool
    insert(const Key &key, Value value)
    {
        auto [slot, inserted] = tryEmplace(key);
        *slot = std::move(value);
        return inserted;
    }

    /** @return true when the key was present. */
    bool
    erase(const Key &key)
    {
        std::size_t hole = findIndex(key);
        if (hole == kNotFound)
            return false;
        // Backward-shift deletion: walk the probe chain after the
        // hole and pull back every slot whose home position cannot
        // reach it through the hole.
        _ctrl[hole] = kEmpty;
        _slots[hole] = Slot{};
        std::size_t index = next(hole);
        while (_ctrl[index] == kFull) {
            const std::size_t home = probeStart(_slots[index].key);
            const bool reachable =
                hole <= index ? (home <= hole || home > index)
                              : (home <= hole && home > index);
            if (reachable) {
                _slots[hole] = std::move(_slots[index]);
                _ctrl[hole] = kFull;
                _ctrl[index] = kEmpty;
                _slots[index] = Slot{};
                hole = index;
            }
            index = next(index);
        }
        --_size;
        return true;
    }

    /** Visit every (key, value); unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < _slots.size(); ++i) {
            if (_ctrl[i] == kFull)
                fn(_slots[i].key, _slots[i].value);
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i < _slots.size(); ++i) {
            if (_ctrl[i] == kFull)
                fn(_slots[i].key, _slots[i].value);
        }
    }

  private:
    static constexpr std::size_t kNotFound = SIZE_MAX;

    std::size_t
    probeStart(const Key &key) const
    {
        return static_cast<std::size_t>(
            flatHashMix(static_cast<std::uint64_t>(key)) &
            (_slots.size() - 1));
    }

    std::size_t next(std::size_t index) const
    {
        return (index + 1) & (_slots.size() - 1);
    }

    std::size_t
    findIndex(const Key &key) const
    {
        if (_slots.empty())
            return kNotFound;
        std::size_t index = probeStart(key);
        while (_ctrl[index] == kFull) {
            if (_slots[index].key == key)
                return index;
            index = next(index);
        }
        return kNotFound;
    }

    void
    growIfNeeded()
    {
        // Grow at 7/8 load; linear probe chains stay short.
        if (_slots.empty())
            rehash(8);
        else if ((_size + 1) * 8 > _slots.size() * 7)
            rehash(_slots.size() * 2);
    }

    void
    rehash(std::size_t new_capacity)
    {
        assert(std::has_single_bit(new_capacity));
        std::vector<Slot> old_slots = std::move(_slots);
        std::vector<std::uint8_t> old_ctrl = std::move(_ctrl);
        _slots.clear();
        _slots.resize(new_capacity);
        _ctrl.assign(new_capacity, kEmpty);
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (old_ctrl[i] != kFull)
                continue;
            std::size_t index = probeStart(old_slots[i].key);
            while (_ctrl[index] == kFull)
                index = next(index);
            _ctrl[index] = kFull;
            _slots[index] = std::move(old_slots[i]);
        }
    }

    std::vector<Slot> _slots;
    std::vector<std::uint8_t> _ctrl;
    std::size_t _size = 0;
};

/** FlatHashMap with no payload: a set of integer-like keys. */
template <typename Key>
class FlatHashSet
{
    struct Nothing
    {};

  public:
    std::size_t size() const { return _map.size(); }
    bool empty() const { return _map.empty(); }
    void clear() { _map.clear(); }
    void reserve(std::size_t count) { _map.reserve(count); }

    bool contains(const Key &key) const { return _map.contains(key); }

    /** @return true when the key was new. */
    bool insert(const Key &key) { return _map.tryEmplace(key).second; }

    bool erase(const Key &key) { return _map.erase(key); }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        _map.forEach([&](const Key &key, const Nothing &) { fn(key); });
    }

  private:
    FlatHashMap<Key, Nothing> _map;
};

/**
 * Fixed-capacity table with hardware-table semantics: a power-of-two
 * slot array, a bounded linear probe window, and LRU-stamp eviction
 * within the window when every slot is taken. Lookups miss (and
 * inserts evict) exactly as a set-indexed hardware table would —
 * callers must tolerate entries disappearing.
 */
template <typename Key, typename Value, unsigned kProbeWindow = 8>
class BoundedLruTable
{
    struct Slot
    {
        Key key{};
        Value value{};
        std::uint64_t lruStamp = 0;
        bool valid = false;
    };

  public:
    explicit BoundedLruTable(std::size_t capacity = 64)
        : _slots(std::bit_ceil(capacity))
    {}

    std::size_t capacity() const { return _slots.size(); }

    std::size_t
    size() const
    {
        std::size_t count = 0;
        for (const Slot &slot : _slots)
            count += slot.valid ? 1 : 0;
        return count;
    }

    void
    clear()
    {
        for (Slot &slot : _slots)
            slot = Slot{};
        _stamp = 0;
    }

    /** Touches the entry's LRU stamp on hit. */
    Value *
    find(const Key &key)
    {
        std::size_t index = probeStart(key);
        for (unsigned i = 0; i < window(); ++i) {
            Slot &slot = _slots[index];
            if (slot.valid && slot.key == key) {
                slot.lruStamp = ++_stamp;
                return &slot.value;
            }
            index = next(index);
        }
        return nullptr;
    }

    const Value *
    find(const Key &key) const
    {
        std::size_t index = probeStart(key);
        for (unsigned i = 0; i < window(); ++i) {
            const Slot &slot = _slots[index];
            if (slot.valid && slot.key == key)
                return &slot.value;
            index = next(index);
        }
        return nullptr;
    }

    bool contains(const Key &key) const { return find(key) != nullptr; }

    /**
     * Find-or-allocate; allocation evicts the LRU slot of the probe
     * window when no slot is free. @return (value, evicted key or
     * nullopt-like flag via @p evicted_key when non-null)
     */
    Value &
    insert(const Key &key, bool *evicted = nullptr,
           Key *evicted_key = nullptr)
    {
        if (evicted)
            *evicted = false;
        std::size_t index = probeStart(key);
        Slot *victim = nullptr;
        for (unsigned i = 0; i < window(); ++i) {
            Slot &slot = _slots[index];
            if (slot.valid && slot.key == key) {
                slot.lruStamp = ++_stamp;
                return slot.value;
            }
            if (!slot.valid) {
                if (!victim || victim->valid)
                    victim = &slot;
            } else if (!victim ||
                       (victim->valid &&
                        slot.lruStamp < victim->lruStamp)) {
                victim = &slot;
            }
            index = next(index);
        }
        if (victim->valid) {
            if (evicted)
                *evicted = true;
            if (evicted_key)
                *evicted_key = victim->key;
        }
        *victim = Slot{};
        victim->valid = true;
        victim->key = key;
        victim->lruStamp = ++_stamp;
        return victim->value;
    }

    bool
    erase(const Key &key)
    {
        std::size_t index = probeStart(key);
        for (unsigned i = 0; i < window(); ++i) {
            Slot &slot = _slots[index];
            if (slot.valid && slot.key == key) {
                slot = Slot{};
                return true;
            }
            index = next(index);
        }
        return false;
    }

  private:
    unsigned
    window() const
    {
        return kProbeWindow < _slots.size()
                   ? kProbeWindow
                   : static_cast<unsigned>(_slots.size());
    }

    std::size_t
    probeStart(const Key &key) const
    {
        return static_cast<std::size_t>(
            flatHashMix(static_cast<std::uint64_t>(key)) &
            (_slots.size() - 1));
    }

    std::size_t next(std::size_t index) const
    {
        return (index + 1) & (_slots.size() - 1);
    }

    std::vector<Slot> _slots;
    std::uint64_t _stamp = 0;
};

/**
 * Direct-mapped table: one slot per set, overwrite on conflict. The
 * cheapest lookup that exists; correct only for state that may be
 * silently forgotten (memoized derivations, last-seen hints).
 */
template <typename Key, typename Value>
class DirectMapTable
{
    struct Slot
    {
        Key key{};
        Value value{};
        bool valid = false;
    };

  public:
    explicit DirectMapTable(std::size_t capacity = 64)
        : _slots(std::bit_ceil(capacity))
    {}

    std::size_t capacity() const { return _slots.size(); }

    void
    clear()
    {
        for (Slot &slot : _slots)
            slot = Slot{};
    }

    Value *
    find(const Key &key)
    {
        Slot &slot = _slots[indexOf(key)];
        return slot.valid && slot.key == key ? &slot.value : nullptr;
    }

    const Value *
    find(const Key &key) const
    {
        const Slot &slot = _slots[indexOf(key)];
        return slot.valid && slot.key == key ? &slot.value : nullptr;
    }

    bool contains(const Key &key) const { return find(key) != nullptr; }

    /** Find-or-overwrite the slot; @return (value, overwrote other?) */
    std::pair<Value *, bool>
    insert(const Key &key)
    {
        Slot &slot = _slots[indexOf(key)];
        const bool conflict = slot.valid && slot.key != key;
        if (!slot.valid || conflict) {
            slot.value = Value{};
            slot.key = key;
            slot.valid = true;
        }
        return {&slot.value, conflict};
    }

  private:
    std::size_t
    indexOf(const Key &key) const
    {
        return static_cast<std::size_t>(
            flatHashMix(static_cast<std::uint64_t>(key)) &
            (_slots.size() - 1));
    }

    std::vector<Slot> _slots;
};

} // namespace dol

#endif // DOL_COMMON_FLAT_TABLE_HPP
