/**
 * @file
 * Lightweight statistics helpers: running means, geometric means, and
 * fixed-bucket histograms used by the experiment harnesses.
 */

#ifndef DOL_COMMON_STATS_HPP
#define DOL_COMMON_STATS_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace dol
{

/** Incremental mean / min / max accumulator. */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++_count;
        _sum += x;
        _min = std::min(_min, x);
        _max = std::max(_max, x);
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Geometric mean of a sequence of positive values. */
inline double
geomean(std::span<const double> values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Weighted arithmetic mean; zero total weight yields zero. */
inline double
weightedMean(std::span<const double> values, std::span<const double> weights)
{
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        num += values[i] * weights[i];
        den += weights[i];
    }
    return den > 0.0 ? num / den : 0.0;
}

/**
 * Simple least-squares linear regression, used to reproduce the trend
 * line in the paper's Figure 12 (accuracy falling with scope).
 */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
};

inline LinearFit
linearFit(std::span<const double> xs, std::span<const double> ys)
{
    LinearFit fit;
    const std::size_t n = std::min(xs.size(), ys.size());
    if (n < 2)
        return fit;
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (std::size_t i = 0; i < n; ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    if (denom != 0.0) {
        fit.slope = (n * sxy - sx * sy) / denom;
        fit.intercept = (sy - fit.slope * sx) / n;
    }
    return fit;
}

} // namespace dol

#endif // DOL_COMMON_STATS_HPP
