/**
 * @file
 * Slab arena for fixed-size transient blocks (PR 9).
 *
 * The per-access hot loop after PR 4/6 holds almost all of its state
 * in flat tables and rings, but two allocation patterns survived:
 * the MemoryImage demand-allocates one 4 KB heap array per touched
 * page (thousands of mallocs per cell construction, re-paid every
 * bench rep), and the simulator's transient queues (fill events,
 * kernel instruction windows) grow geometrically from small seeds.
 *
 * SlabArena replaces the per-page churn: it hands out fixed-size,
 * zero-initialised blocks carved from larger slabs (one malloc per
 * `blocksPerSlab` allocations) and releases everything wholesale on
 * destruction or reset(). It is deliberately bump-only — the image
 * never frees individual pages, and a free list would buy nothing
 * but bookkeeping on this workload.
 */

#ifndef DOL_COMMON_ARENA_HPP
#define DOL_COMMON_ARENA_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dol
{

class SlabArena
{
  public:
    /**
     * @param block_bytes    size of each allocated block
     * @param blocks_per_slab blocks carved from one backing slab
     */
    explicit SlabArena(std::size_t block_bytes,
                       std::size_t blocks_per_slab = 64)
        : _blockBytes(block_bytes ? block_bytes : 1),
          _blocksPerSlab(blocks_per_slab ? blocks_per_slab : 1)
    {}

    SlabArena(const SlabArena &) = delete;
    SlabArena &operator=(const SlabArena &) = delete;

    /** A zero-initialised block; valid until destruction/reset(). */
    std::uint8_t *
    allocate()
    {
        if (_usedInSlab == _blocksPerSlab || _slabs.empty()) {
            // Value-initialisation zeroes the whole slab up front:
            // one memset per slab instead of one per block.
            _slabs.push_back(std::make_unique<std::uint8_t[]>(
                _blockBytes * _blocksPerSlab));
            _usedInSlab = 0;
        }
        return _slabs.back().get() + (_usedInSlab++) * _blockBytes;
    }

    /** Drop every block and slab (all outstanding pointers die). */
    void
    reset()
    {
        _slabs.clear();
        _usedInSlab = 0;
    }

    std::size_t blockBytes() const { return _blockBytes; }

    /** Blocks handed out since construction/reset. */
    std::size_t
    blocksAllocated() const
    {
        return _slabs.empty()
                   ? 0
                   : (_slabs.size() - 1) * _blocksPerSlab + _usedInSlab;
    }

    /** Backing allocations made (the malloc count the arena saves). */
    std::size_t slabCount() const { return _slabs.size(); }

  private:
    std::size_t _blockBytes;
    std::size_t _blocksPerSlab;
    std::size_t _usedInSlab = 0;
    std::vector<std::unique_ptr<std::uint8_t[]>> _slabs;
};

} // namespace dol

#endif // DOL_COMMON_ARENA_HPP
