/**
 * @file
 * Saturating counter, the workhorse state element of prefetcher FSMs.
 */

#ifndef DOL_COMMON_SAT_COUNTER_HPP
#define DOL_COMMON_SAT_COUNTER_HPP

#include <cassert>
#include <cstdint>

namespace dol
{

/**
 * An unsigned saturating counter with a configurable ceiling.
 *
 * Used for confidence tracking in prefetcher components (e.g. the
 * stride-stability counters in T2's SIT and SPP's path confidence).
 */
class SatCounter
{
  public:
    explicit SatCounter(unsigned max_value = 3, unsigned initial = 0)
        : _value(initial), _max(max_value)
    {
        assert(initial <= max_value);
    }

    /** Increment, saturating at the ceiling. Returns the new value. */
    unsigned
    increment()
    {
        if (_value < _max)
            ++_value;
        return _value;
    }

    /** Decrement, saturating at zero. Returns the new value. */
    unsigned
    decrement()
    {
        if (_value > 0)
            --_value;
        return _value;
    }

    void reset(unsigned v = 0) { assert(v <= _max); _value = v; }

    unsigned value() const { return _value; }
    unsigned max() const { return _max; }
    bool saturated() const { return _value == _max; }

    /** True when the counter is in its upper half (weak "taken"). */
    bool high() const { return _value * 2 > _max; }

  private:
    unsigned _value;
    unsigned _max;
};

} // namespace dol

#endif // DOL_COMMON_SAT_COUNTER_HPP
