/**
 * @file
 * Fundamental type aliases and address arithmetic used across the
 * division-of-labor prefetching library.
 */

#ifndef DOL_COMMON_TYPES_HPP
#define DOL_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace dol
{

/** Byte-granularity virtual address. */
using Addr = std::uint64_t;

/** Core clock cycle count (3 GHz core clock throughout). */
using Cycle = std::uint64_t;

/** Program counter of a static instruction. */
using Pc = std::uint64_t;

/** Sentinel for "no cycle" / "not scheduled". */
constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid addresses. */
constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Cache line geometry: 64-byte lines everywhere (Table I). */
constexpr unsigned kLineBits = 6;
constexpr unsigned kLineBytes = 1u << kLineBits;

/** Region geometry used by the C1 component: 16 lines = 1 KB. */
constexpr unsigned kRegionLineCount = 16;
constexpr unsigned kRegionBits = kLineBits + 4;
constexpr unsigned kRegionBytes = 1u << kRegionBits;

/** Core clock in Hz; Table I specifies a 3.0 GHz core. */
constexpr double kCoreClockHz = 3.0e9;

/** Convert a byte address to its cache line address (low bits zero). */
constexpr Addr
lineAddr(Addr byte_addr)
{
    return byte_addr & ~Addr{kLineBytes - 1};
}

/** Convert a byte address to a cache line number. */
constexpr Addr
lineNum(Addr byte_addr)
{
    return byte_addr >> kLineBits;
}

/** Convert a byte address to its 1 KB region number. */
constexpr Addr
regionNum(Addr byte_addr)
{
    return byte_addr >> kRegionBits;
}

/** Index of a line within its 16-line region. */
constexpr unsigned
lineInRegion(Addr byte_addr)
{
    return static_cast<unsigned>((byte_addr >> kLineBits) &
                                 (kRegionLineCount - 1));
}

/** Convert nanoseconds to core cycles at the 3 GHz core clock. */
constexpr Cycle
nsToCycles(double ns)
{
    return static_cast<Cycle>(ns * kCoreClockHz / 1.0e9 + 0.5);
}

} // namespace dol

#endif // DOL_COMMON_TYPES_HPP
