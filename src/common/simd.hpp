/**
 * @file
 * Vector tag scans for the cache SoA mirrors (PR 9).
 *
 * Cache::find() and the insert() victim scan probe dense arrays of
 * 64-bit tags (`_tags`) and LRU stamps (`_stamps`) that PR 4 laid out
 * exactly so a set fits in one or two cache lines. This header turns
 * the per-way scalar loops into data-parallel compares:
 *
 *  - AVX2: 4 tags per compare (one op for an L1 set, two for L2,
 *    four for L3), selected at runtime via __builtin_cpu_supports so
 *    a binary built without -mavx2 still uses it on capable hosts;
 *  - SSE2: 2 tags per compare (64-bit equality composed from two
 *    32-bit compares — baseline x86-64 has no cmpeq_epi64);
 *  - scalar: the reference implementation, always compiled, used on
 *    non-x86 hosts and whenever DOL_SIMD=scalar forces it.
 *
 * Every vector routine is differentially tested against the scalar
 * one (tests/test_simd.cpp), and CI runs the cache suites once with
 * DOL_SIMD=scalar so both paths stay covered on any host.
 *
 * The selected level resolves once per process: the environment
 * variable DOL_SIMD (scalar|sse2|avx2, clamped to host support) wins,
 * else the best supported level. Tests may override in-process with
 * overrideLevel().
 */

#ifndef DOL_COMMON_SIMD_HPP
#define DOL_COMMON_SIMD_HPP

#include <cstdint>
#include <cstdlib>
#include <cstring>

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
#define DOL_SIMD_X86 1
#include <immintrin.h>
#endif

namespace dol::simd
{

enum Level : int
{
    kScalar = 0,
    kSse2 = 1,
    kAvx2 = 2,
};

/**
 * Index of the first element of tags[0..n) equal to @p needle, or -1.
 * The "first match" contract matters: MSHR files can hold a stale and
 * a live entry for the same line, and callers resolve ties by index.
 */
inline int
findTagScalar(const std::uint64_t *tags, unsigned n,
              std::uint64_t needle)
{
    for (unsigned i = 0; i < n; ++i) {
        if (tags[i] == needle)
            return static_cast<int>(i);
    }
    return -1;
}

/**
 * Victim way for an insertion: the first way whose tag equals
 * @p invalid (a free way), else the way with the smallest stamp
 * (earliest index on ties) — the exact order of the scalar scan the
 * cache used before.
 */
inline unsigned
victimWayScalar(const std::uint64_t *tags, const std::uint64_t *stamps,
                unsigned n, std::uint64_t invalid)
{
    unsigned victim = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (tags[i] == invalid)
            return i;
        if (stamps[i] < stamps[victim])
            victim = i;
    }
    return victim;
}

#ifdef DOL_SIMD_X86

inline int
findTagSse2(const std::uint64_t *tags, unsigned n, std::uint64_t needle)
{
    const __m128i want =
        _mm_set1_epi64x(static_cast<long long>(needle));
    unsigned i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tags + i));
        // SSE2 has no 64-bit compare: a qword is equal iff both of
        // its dwords compare equal.
        const __m128i eq32 = _mm_cmpeq_epi32(v, want);
        const __m128i eq64 = _mm_and_si128(
            eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
        const int mask = _mm_movemask_epi8(eq64);
        if (mask)
            return static_cast<int>(i + ((mask & 0xFF) ? 0 : 1));
    }
    for (; i < n; ++i) {
        if (tags[i] == needle)
            return static_cast<int>(i);
    }
    return -1;
}

__attribute__((target("avx2"))) inline int
findTagAvx2(const std::uint64_t *tags, unsigned n, std::uint64_t needle)
{
    const __m256i want =
        _mm256_set1_epi64x(static_cast<long long>(needle));
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + i));
        const __m256i eq = _mm256_cmpeq_epi64(v, want);
        const int mask =
            _mm256_movemask_pd(_mm256_castsi256_pd(eq));
        if (mask)
            return static_cast<int>(
                i + static_cast<unsigned>(__builtin_ctz(
                        static_cast<unsigned>(mask))));
    }
    for (; i < n; ++i) {
        if (tags[i] == needle)
            return static_cast<int>(i);
    }
    return -1;
}

#endif // DOL_SIMD_X86

namespace detail
{

inline int
detectLevel()
{
    int best = kScalar;
#ifdef DOL_SIMD_X86
    best = kSse2; // baseline x86-64
    if (__builtin_cpu_supports("avx2"))
        best = kAvx2;
#endif
    if (const char *env = std::getenv("DOL_SIMD")) {
        int wanted = best;
        if (std::strcmp(env, "scalar") == 0)
            wanted = kScalar;
        else if (std::strcmp(env, "sse2") == 0)
            wanted = kSse2;
        else if (std::strcmp(env, "avx2") == 0)
            wanted = kAvx2;
        best = wanted < best ? wanted : best; // clamp to host support
    }
    return best;
}

/** Namespace-scope inline variable, NOT a function-local static: the
 *  hot scans read this on every call and must not pay the thread-safe
 *  static-init guard (dynamic init runs before main; getenv is safe
 *  there). */
inline int g_level = detectLevel();

} // namespace detail

/** The active implementation level (resolved once, overridable). */
inline int
level()
{
    return detail::g_level;
}

/** Test hook: pin the level; callers must not exceed host support. */
inline void
overrideLevel(int level)
{
    detail::g_level = level;
}

inline const char *
levelName(int level)
{
    switch (level) {
      case kAvx2: return "avx2";
      case kSse2: return "sse2";
      default: return "scalar";
    }
}

/** Dispatching tag search; see findTagScalar for the contract. */
inline int
findTag(const std::uint64_t *tags, unsigned n, std::uint64_t needle)
{
#ifdef DOL_SIMD_X86
    // The AVX2 kernel cannot inline into baseline callers (it carries
    // a target attribute), so its call overhead only amortises on
    // wide scans (L2/L3 sets, MSHR files). Narrow sets take the SSE2
    // path, which inlines fully right here.
    const int lvl = level();
    if (lvl >= kAvx2 && n >= 8)
        return findTagAvx2(tags, n, needle);
    if (lvl >= kSse2)
        return findTagSse2(tags, n, needle);
#endif
    return findTagScalar(tags, n, needle);
}

/** Dispatching victim scan; see victimWayScalar for the contract. */
inline unsigned
victimWay(const std::uint64_t *tags, const std::uint64_t *stamps,
          unsigned n, std::uint64_t invalid)
{
    // The free-way search vectorises (it is a tag match against the
    // invalid marker); the stamp argmin stays scalar — for 4/8/16
    // ways the compare chain is short and the tie-break (earliest
    // index) must match the reference exactly.
    const int free_way = findTag(tags, n, invalid);
    if (free_way >= 0)
        return static_cast<unsigned>(free_way);
    unsigned victim = 0;
    for (unsigned i = 1; i < n; ++i) {
        if (stamps[i] < stamps[victim])
            victim = i;
    }
    return victim;
}

} // namespace dol::simd

#endif // DOL_COMMON_SIMD_HPP
