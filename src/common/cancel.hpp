/**
 * @file
 * Cooperative cancellation for long-running simulation work.
 *
 * A CancelToken combines a shared stop flag (set by a signal handler
 * or a supervisor when a sweep should drain) with an optional
 * per-attempt wall-clock deadline (the runner's per-cell timeout).
 * Work that wants to be cancellable polls cancelled() at natural
 * checkpoints — the simulator does so every few thousand instructions
 * — and throws CancelledError, which the runner's supervision layer
 * maps onto "timed out" (deadline hit) or "drained" (stop requested).
 *
 * The token is created by the supervising thread and read on the
 * worker thread executing the attempt; only the stop flag is shared
 * across threads, and it is atomic.
 */

#ifndef DOL_COMMON_CANCEL_HPP
#define DOL_COMMON_CANCEL_HPP

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace dol
{

struct CancelToken
{
    /** Sweep-wide stop flag (graceful drain); nullptr = none. */
    const std::atomic<bool> *stopFlag = nullptr;
    /** Per-attempt deadline; the epoch value means "no deadline". */
    std::chrono::steady_clock::time_point deadline{};

    bool
    hasDeadline() const
    {
        return deadline != std::chrono::steady_clock::time_point{};
    }

    bool
    stopRequested() const
    {
        return stopFlag != nullptr &&
               stopFlag->load(std::memory_order_relaxed);
    }

    bool
    expired() const
    {
        return hasDeadline() &&
               std::chrono::steady_clock::now() >= deadline;
    }

    bool cancelled() const { return stopRequested() || expired(); }
};

/** Thrown from a cancellation point once a token reports cancelled. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &what)
        : std::runtime_error(what)
    {}
};

} // namespace dol

#endif // DOL_COMMON_CANCEL_HPP
