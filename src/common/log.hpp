/**
 * @file
 * Error-reporting helpers in the gem5 spirit: panic() for internal
 * invariant violations, fatal() for user/configuration errors.
 */

#ifndef DOL_COMMON_LOG_HPP
#define DOL_COMMON_LOG_HPP

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace dol
{

/** Abort on an internal bug; never reachable in a correct build. */
[[noreturn]] inline void
panic(std::string_view msg)
{
    std::fprintf(stderr, "panic: %.*s\n",
                 static_cast<int>(msg.size()), msg.data());
    std::abort();
}

/** Exit on a user error (bad configuration or arguments). */
[[noreturn]] inline void
fatal(std::string_view msg)
{
    std::fprintf(stderr, "fatal: %.*s\n",
                 static_cast<int>(msg.size()), msg.data());
    std::exit(1);
}

/** Non-fatal advisory, printed once per call site is the caller's job. */
inline void
warn(std::string_view msg)
{
    std::fprintf(stderr, "warn: %.*s\n",
                 static_cast<int>(msg.size()), msg.data());
}

} // namespace dol

#endif // DOL_COMMON_LOG_HPP
