/**
 * @file
 * Runtime kill-switches for the structural hot-path optimisations
 * (PR 9): the event-driven fast paths (MSHR/DRAM-queue scan skipping)
 * and, via simd.hpp, the vector tag scans.
 *
 * Both switches resolve once per process from the environment and can
 * be overridden in-process by tests, so a single binary can run the
 * optimised and the reference path back to back and compare results
 * byte for byte:
 *
 *  - DOL_FASTPATH=0  disables the quiescence short-circuits (every
 *    scan runs in full, as before PR 9);
 *  - DOL_SIMD=scalar|sse2|avx2  pins the tag-scan implementation
 *    (see simd.hpp).
 *
 * Components *cache* the flag at construction (a member bool), so the
 * override must be set before the component is built. The fast paths
 * are provably result-identical; the switches exist so CI can prove
 * it on every host rather than trust the proof.
 */

#ifndef DOL_COMMON_HOTPATH_HPP
#define DOL_COMMON_HOTPATH_HPP

#include <cstdlib>
#include <cstring>

namespace dol::hotpath
{

namespace detail
{

inline bool
envDisabled(const char *name)
{
    const char *value = std::getenv(name);
    return value && std::strcmp(value, "0") == 0;
}

/** Inline variable (pre-main dynamic init), not a function-local
 *  static — readers never pay the static-init guard. */
inline bool g_fastPath = !envDisabled("DOL_FASTPATH");

} // namespace detail

/** Are the event-driven scan short-circuits enabled? */
inline bool
fastPath()
{
    return detail::g_fastPath;
}

/**
 * Test hook: force the fast paths on or off for components built
 * after this call. Not thread-safe; call before spawning sweeps.
 */
inline void
overrideFastPath(bool enabled)
{
    detail::g_fastPath = enabled;
}

} // namespace dol::hotpath

#endif // DOL_COMMON_HOTPATH_HPP
