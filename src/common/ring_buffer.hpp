/**
 * @file
 * Growable power-of-two ring buffer (FIFO).
 *
 * Replaces `std::deque` on the simulator's fill and instruction
 * queues: both are drained in order and stay small, which a deque
 * punishes with 512-byte chunk allocations and per-push map
 * bookkeeping. The ring grows geometrically on the rare overflow and
 * never allocates otherwise; a high-water mark records the deepest
 * the queue ever got (MSHR/backpressure observability).
 */

#ifndef DOL_COMMON_RING_BUFFER_HPP
#define DOL_COMMON_RING_BUFFER_HPP

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace dol
{

template <typename T>
class RingBuffer
{
  public:
    explicit RingBuffer(std::size_t initial_capacity = 16)
        : _slots(std::bit_ceil(initial_capacity))
    {}

    bool empty() const { return _count == 0; }
    std::size_t size() const { return _count; }
    std::size_t capacity() const { return _slots.size(); }

    /** Deepest size() ever reached (not reset by clear()). */
    std::size_t highWaterMark() const { return _highWater; }

    T &front()
    {
        assert(_count > 0);
        return _slots[_head];
    }

    const T &front() const
    {
        assert(_count > 0);
        return _slots[_head];
    }

    void
    push_back(const T &value)
    {
        if (_count == _slots.size())
            grow();
        _slots[(_head + _count) & (_slots.size() - 1)] = value;
        ++_count;
        if (_count > _highWater)
            _highWater = _count;
    }

    void
    pop_front()
    {
        assert(_count > 0);
        _slots[_head] = T{};
        _head = (_head + 1) & (_slots.size() - 1);
        --_count;
    }

    /**
     * Pop up to @p max elements into @p out in FIFO order.
     *
     * Bulk drain for the batched step pipeline (PR 9): two copy_n
     * spans (head to end of the backing array, then the wrap) replace
     * per-element front()/pop_front() round trips.
     *
     * @return elements copied (min(max, size())).
     */
    std::size_t
    popBulk(T *out, std::size_t max)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "popBulk skips per-slot destruction");
        const std::size_t want = std::min(max, _count);
        const std::size_t mask = _slots.size() - 1;
        const std::size_t first =
            std::min(want, _slots.size() - _head);
        std::copy_n(_slots.data() + _head, first, out);
        std::copy_n(_slots.data(), want - first, out + first);
        _head = (_head + want) & mask;
        _count -= want;
        if (_count == 0)
            _head = 0;
        return want;
    }

    void
    clear()
    {
        while (_count > 0)
            pop_front();
        _head = 0;
    }

  private:
    void
    grow()
    {
        std::vector<T> bigger(_slots.size() * 2);
        for (std::size_t i = 0; i < _count; ++i)
            bigger[i] = std::move(_slots[(_head + i) &
                                         (_slots.size() - 1)]);
        _slots = std::move(bigger);
        _head = 0;
    }

    std::vector<T> _slots;
    std::size_t _head = 0;
    std::size_t _count = 0;
    std::size_t _highWater = 0;
};

} // namespace dol

#endif // DOL_COMMON_RING_BUFFER_HPP
