/**
 * @file
 * Small deterministic PRNG used by the synthetic workload generators.
 *
 * Workload traces must be exactly reproducible from a seed: the offline
 * LHF/MHF/HHF stratifier re-generates the same trace the measured run
 * consumes (DESIGN.md section 5). xoshiro256** gives us speed and a
 * fixed cross-platform sequence, unlike std::mt19937 distributions.
 */

#ifndef DOL_COMMON_RNG_HPP
#define DOL_COMMON_RNG_HPP

#include <cstdint>

namespace dol
{

/** xoshiro256** by Blackman & Vigna (public domain reference impl). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding, per the xoshiro authors' recommendation.
        std::uint64_t x = seed;
        for (auto &word : _state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift reduction; bias is negligible for our bounds.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4];
};

} // namespace dol

#endif // DOL_COMMON_RNG_HPP
