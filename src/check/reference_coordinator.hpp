/**
 * @file
 * Reference model of the composite coordinator's routing policy
 * (paper sections IV-D/IV-E): fixed T2 -> P1 -> C1 claim priority,
 * round-robin binding of unclaimed instructions to extra components,
 * and rebinding to whichever extra's prefetched line the instruction
 * later hits.
 *
 * Claim signals are inputs: the harness derives the T2 claim from the
 * independent ReferenceT2 and reads the P1/C1 claims from production
 * (those components' internal pattern detectors are separately
 * tested; here they are environment). What the reference re-derives
 * — and the differential diffs — is the *routing* those claims
 * produce: ownership, the binding table, and which extra may train.
 */

#ifndef DOL_CHECK_REFERENCE_COORDINATOR_HPP
#define DOL_CHECK_REFERENCE_COORDINATOR_HPP

#include <unordered_map>

#include "check/mutation.hpp"
#include "core/composite.hpp"

namespace dol::check
{

class ReferenceCoordinator
{
  public:
    ReferenceCoordinator(std::size_t num_extras, Mutation mutation)
        : _numExtras(num_extras), _mutation(mutation)
    {}

    /** Post-train claim signals for one access, in priority order. */
    struct Claims
    {
        bool t2 = false;
        bool p1 = false;
        bool c1 = false;
    };

    /**
     * Route one trained access.
     *
     * @param hit_extra_idx index of the extra whose prefetched line
     *        this access hit in L1, or -1
     * @return the extra index whose training the coordinator allows
     *         for this access, or -1 when the access was claimed
     */
    int
    onAccess(const AccessInfo &access, const Claims &claims,
             int hit_extra_idx)
    {
        if (claims.t2 || claims.p1 || claims.c1 || _numExtras == 0)
            return -1;

        if (access.l1HitPrefetched && hit_extra_idx >= 0 &&
            _mutation != Mutation::kDropRebinding) {
            auto target = static_cast<unsigned>(hit_extra_idx);
            if (_mutation == Mutation::kRebindWrongExtra &&
                _numExtras >= 3) {
                target = (target + 1) %
                         static_cast<unsigned>(_numExtras);
            }
            _bindings[access.mPc] = target;
        }
        if (_bindings.size() > (1u << 16))
            _bindings.clear();

        auto it = _bindings.find(access.mPc);
        if (it == _bindings.end()) {
            it = _bindings
                     .emplace(access.mPc,
                              _nextBinding++ %
                                  static_cast<unsigned>(_numExtras))
                     .first;
        }
        return static_cast<int>(it->second);
    }

    CompositePrefetcher::Owner
    ownerOf(Pc m_pc, const Claims &claims) const
    {
        if (claims.t2)
            return CompositePrefetcher::Owner::kT2;
        if (claims.p1)
            return CompositePrefetcher::Owner::kP1;
        if (claims.c1)
            return CompositePrefetcher::Owner::kC1;
        if (_bindings.contains(m_pc))
            return CompositePrefetcher::Owner::kExtra;
        return CompositePrefetcher::Owner::kNone;
    }

    int
    boundExtraOf(Pc m_pc) const
    {
        const auto it = _bindings.find(m_pc);
        return it == _bindings.end() ? -1
                                     : static_cast<int>(it->second);
    }

  private:
    std::size_t _numExtras;
    Mutation _mutation;
    std::unordered_map<Pc, unsigned> _bindings;
    unsigned _nextBinding = 0;
};

} // namespace dol::check

#endif // DOL_CHECK_REFERENCE_COORDINATOR_HPP
