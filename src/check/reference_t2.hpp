/**
 * @file
 * Reference model of the T2 stride prefetcher's training automaton
 * (paper section IV-A), re-implemented from the textbook description
 * rather than from src/core/t2.cpp.
 *
 * Deliberate simplifications versus production, all valid inside the
 * fuzz domain (see fuzz_workload.hpp):
 *  - per-instruction state and stride entries live in unbounded maps
 *    keyed directly by mPC — the fuzz generator keeps the working set
 *    far below the production SIT/state-table capacities, so the
 *    production structures never evict either;
 *  - the loop-timed distance formula is not modelled — fuzz traces
 *    contain no control instructions, so production T2 always falls
 *    back to the default distance (the formula itself is covered by
 *    dedicated unit tests in tests/test_t2.cpp);
 *  - whether an entry is a confirmed strided-pointer producer is P1's
 *    decision, queried from the environment instead of modelled.
 *
 * Prefetch resource verdicts (MSHR/queue drops) are environment
 * input: the reference asks the Env for each attempted emission's
 * outcome, and the differential harness answers from the production
 * emission record, diffing target addresses positionally.
 */

#ifndef DOL_CHECK_REFERENCE_T2_HPP
#define DOL_CHECK_REFERENCE_T2_HPP

#include <functional>
#include <unordered_map>

#include "check/mutation.hpp"
#include "core/t2.hpp"

namespace dol::check
{

class ReferenceT2
{
  public:
    struct Env
    {
        /** Outcome of the next attempted emission at @p target. */
        std::function<PrefetchOutcome(Addr target)> emit;
        /** Has P1 confirmed this mPC as a pointer producer? */
        std::function<bool(Pc m_pc)> ptrProducer;
    };

    ReferenceT2(const T2Prefetcher::Params &params, Mutation mutation);

    void train(const AccessInfo &access, const Env &env);

    InstrState stateOf(Pc m_pc) const;

    /** Does this mPC's post-train state claim the instruction? */
    bool
    claims(Pc m_pc) const
    {
        const InstrState state = stateOf(m_pc);
        return state == InstrState::kStrided ||
               state == InstrState::kObservation;
    }

  private:
    struct Entry
    {
        Addr lastAddr = 0;
        std::int64_t delta = 0;
        unsigned sameDeltaCount = 0;
        unsigned diffDeltaCount = 0;
        Addr lastIssuedLine = kNoAddr;
    };

    unsigned confirmThreshold() const;
    void issueStream(Entry &entry, const AccessInfo &access,
                     unsigned dist, const Env &env);

    T2Prefetcher::Params _params;
    Mutation _mutation;
    std::unordered_map<Pc, InstrState> _states;
    std::unordered_map<Pc, Entry> _entries;
};

} // namespace dol::check

#endif // DOL_CHECK_REFERENCE_T2_HPP
