/**
 * @file
 * Seeded fuzz campaigns: N differential cases, run in parallel on the
 * experiment runner's thread pool, with byte-identical reporting
 * regardless of the job count.
 *
 * Case i's seed derives from the campaign seed by SplitMix64, so the
 * workload of every case is fixed before any thread starts; results
 * land in a pre-sized slot vector indexed by case, so the summary
 * text is a pure function of (seed, cases, mutation). Failures are
 * shrunk in the worker that found them and written to the reproducer
 * directory as a DOLTRC01 trace plus a text sidecar containing the
 * exact replay command.
 */

#ifndef DOL_CHECK_CAMPAIGN_HPP
#define DOL_CHECK_CAMPAIGN_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "check/differential.hpp"

namespace dol::check
{

struct CampaignOptions
{
    std::uint64_t cases = 1000;
    std::uint64_t seed = 1;
    /** Worker threads; 0 = one per hardware thread. */
    unsigned jobs = 0;
    /** Directory for shrunk reproducers (created if missing). */
    std::string reproDir = "fuzz-repro";
    /** Reference-model mutation for checker self-tests. */
    Mutation mutation = Mutation::kNone;
    /** Shrink failures before writing them out. */
    bool shrink = true;
    std::size_t maxShrinkEvaluations = 2000;

    /**
     * Journal passing cases here (crash-safe resume); empty = no
     * checkpointing. Failing cases are never journaled: a resumed
     * campaign re-runs them, regenerating the identical diff summary
     * and reproducer files, so an interrupted-then-resumed campaign
     * reports byte-identically to an uninterrupted one.
     */
    std::string checkpointPath;
    /** Skip the cases checkpointPath records as passed. */
    bool resume = false;
    /** Graceful-drain flag shared with the signal handlers; nullptr =
     *  campaign-private flag. */
    std::atomic<bool> *stopFlag = nullptr;
    /** Test hook: raise the stop flag after this many cases complete
     *  in this run (0 = never). Makes "interrupt mid-campaign"
     *  deterministic without signals. */
    std::uint64_t stopAfterCases = 0;
};

struct CaseFailure
{
    std::uint64_t index = 0;
    std::uint64_t caseSeed = 0;
    DiffResult diff;
    std::size_t originalRecords = 0;
    std::size_t shrunkRecords = 0;
    std::string reproPath;
};

struct CampaignReport
{
    std::uint64_t cases = 0;
    std::uint64_t seed = 0;
    std::vector<CaseFailure> failures; ///< ascending case index

    /** Cases executed in this run / skipped via the checkpoint. */
    std::uint64_t casesRun = 0;
    std::uint64_t casesResumed = 0;
    /** A stop request drained the campaign before every case ran. */
    bool interrupted = false;

    bool ok() const { return failures.empty() && !interrupted; }

    /** Deterministic human-readable summary (diffed in CI). */
    std::string summaryText() const;
};

CampaignReport runCampaign(const CampaignOptions &options);

/**
 * Scan cases sequentially until one fails, shrink it, and return the
 * failure (reproducer is not written). Used by the mutation
 * self-tests, which assert a planted bug is caught within a case
 * budget and shrinks below a size bound.
 */
struct MutationProbe
{
    bool found = false;
    CaseFailure failure;
    std::vector<TraceRecord> shrunk;
};

MutationProbe probeMutation(std::uint64_t campaign_seed,
                            std::uint64_t max_cases, Mutation mutation,
                            std::size_t max_shrink_evaluations = 2000);

} // namespace dol::check

#endif // DOL_CHECK_CAMPAIGN_HPP
