#include "check/fuzz_workload.hpp"

#include "common/rng.hpp"

namespace dol::check
{

std::uint64_t
splitMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
caseSeed(std::uint64_t campaign_seed, std::uint64_t index)
{
    return splitMix(campaign_seed ^ splitMix(index + 1));
}

FuzzParams
makeFuzzParams(std::uint64_t case_seed)
{
    Rng rng(splitMix(case_seed ^ 0xF00Dull));
    FuzzParams params;
    params.t2.strideThreshold =
        static_cast<unsigned>(rng.range(2, 20));
    params.t2.earlyThreshold = static_cast<unsigned>(rng.range(1, 6));
    params.t2.nonStrideThreshold =
        static_cast<unsigned>(rng.range(1, 6));
    params.t2.defaultDistance = static_cast<unsigned>(rng.range(1, 16));
    params.t2.maxCatchup = static_cast<unsigned>(rng.range(1, 8));
    // Per-case component mix: each optional expert is sometimes off,
    // so the coordinator's fallthrough paths all get fuzzed. With C1
    // off, written-off instructions reach the extras after only a few
    // accesses, which keeps rebinding reproducers short.
    params.enableP1 = rng.chance(0.7);
    params.enableC1 = rng.chance(0.6);
    params.extraDegree2 = static_cast<unsigned>(rng.range(1, 3));
    params.opSeed = splitMix(case_seed ^ 0xCACEull);
    // Appended draws only below this line: earlier draws must keep
    // consuming the same rng prefix so a case seed's historical
    // parameters stay stable.
    params.numExtras = rng.chance(0.5) ? 3 : 2;
    params.extraDegree3 = static_cast<unsigned>(rng.range(1, 3));
    params.temporalSlot = rng.chance(0.7);
    return params;
}

namespace
{

/** One interleaved pattern generator slot. */
struct Slot
{
    enum class Kind
    {
        kStride,
        kChase,
        kDense,
        kZigzag,
        kRandom,
        kPtrArray,
        kTemporal,
    };

    Kind kind;
    Pc pc = 0;
    Pc pc2 = 0; ///< dependent PC (kPtrArray) / second PC (kZigzag)

    // kStride
    Addr base = 0;
    std::int64_t delta = 0;
    std::uint64_t position = 0;
    std::uint64_t burstLimit = 0;

    // kChase
    std::vector<Addr> nodes;
    std::vector<std::uint64_t> values;
    std::int64_t chainDelta = 0;

    // kDense
    Addr region = 0;
    std::vector<unsigned> lineOrder;
    std::size_t linePos = 0;
    unsigned touches = 0;

    // kPtrArray
    Addr arrayBase = 0;
    std::int64_t ptrDelta = 0;
};

std::int64_t
pickStrideDelta(Rng &rng)
{
    static constexpr std::int64_t kPalette[] = {8,   16,  -16, 64,
                                                -64, 128, 192, -192,
                                                24,  -8,  1024};
    return kPalette[rng.below(std::size(kPalette))];
}

std::uint64_t
pickBurstLimit(Rng &rng, const T2Prefetcher::Params &t2)
{
    // Run lengths deliberately straddle the confirmation and early
    // thresholds so state transitions land on boundary accesses.
    switch (rng.below(7)) {
      case 0:
        return t2.earlyThreshold > 1 ? t2.earlyThreshold - 1 : 1;
      case 1:
        return t2.earlyThreshold + 1;
      case 2:
        return t2.strideThreshold > 1 ? t2.strideThreshold - 1 : 1;
      case 3:
        return t2.strideThreshold;
      case 4:
        return t2.strideThreshold + 2;
      case 5:
        return t2.strideThreshold + t2.nonStrideThreshold + 4;
      default:
        return rng.range(3, 40);
    }
}

} // namespace

std::vector<TraceRecord>
makeFuzzTrace(std::uint64_t case_seed, const FuzzParams &params)
{
    Rng rng(case_seed);
    std::vector<Slot> slots;
    Pc next_pc = 0x1000;
    const auto take_pc = [&] {
        const Pc pc = next_pc;
        next_pc += 0x40;
        return pc;
    };

    const std::uint64_t stride_slots = rng.range(2, 4);
    for (std::uint64_t i = 0; i < stride_slots; ++i) {
        Slot slot;
        slot.kind = Slot::Kind::kStride;
        slot.pc = take_pc();
        slot.base = 0x100000 + rng.below(1024) * kRegionBytes;
        slot.delta = pickStrideDelta(rng);
        slot.burstLimit = pickBurstLimit(rng, params.t2);
        slots.push_back(std::move(slot));
    }

    if (rng.chance(0.8)) {
        Slot slot;
        slot.kind = Slot::Kind::kChase;
        slot.pc = take_pc();
        slot.chainDelta =
            static_cast<std::int64_t>(rng.below(3)) * 8;
        const std::uint64_t nodes = rng.range(8, 24);
        for (std::uint64_t i = 0; i < nodes; ++i) {
            slot.nodes.push_back(0x40000000 +
                                 rng.below(1u << 16) * kLineBytes +
                                 rng.below(8) * 8);
        }
        for (std::uint64_t i = 0; i < nodes; ++i) {
            // Node i's loaded value leads to node i+1 (wrapping), so
            // the chain is coherent: next_addr = value + chainDelta.
            const Addr next = slot.nodes[(i + 1) % nodes];
            slot.values.push_back(static_cast<std::uint64_t>(
                static_cast<std::int64_t>(next) - slot.chainDelta));
        }
        slots.push_back(std::move(slot));
    }

    {
        Slot slot;
        slot.kind = Slot::Kind::kDense;
        slot.pc = take_pc();
        slots.push_back(std::move(slot));
    }
    {
        Slot slot;
        slot.kind = Slot::Kind::kZigzag;
        slot.pc = take_pc();
        slot.pc2 = take_pc();
        slots.push_back(std::move(slot));
    }
    {
        Slot slot;
        slot.kind = Slot::Kind::kRandom;
        slot.pc = take_pc();
        slots.push_back(std::move(slot));
    }
    if (params.enableP1 && rng.chance(0.3)) {
        Slot slot;
        slot.kind = Slot::Kind::kPtrArray;
        slot.pc = take_pc();
        slot.pc2 = take_pc();
        slot.arrayBase = 0x20000000 + rng.below(256) * kRegionBytes;
        slot.ptrDelta = static_cast<std::int64_t>(rng.below(3)) * 8;
        slots.push_back(std::move(slot));
    }
    if (params.temporalSlot) {
        // A short scattered sequence revisited cyclically: no stride,
        // no region density, no pointer values — just recurrence. It
        // stays unclaimed, so it lands on an extra binding and keeps
        // re-hitting prefetched lines, stirring the rebinding paths.
        Slot slot;
        slot.kind = Slot::Kind::kTemporal;
        slot.pc = take_pc();
        const std::uint64_t length = rng.range(8, 24);
        for (std::uint64_t i = 0; i < length; ++i) {
            slot.nodes.push_back(0xA0000000 +
                                 rng.below(1u << 16) * kLineBytes);
        }
        slots.push_back(std::move(slot));
    }

    std::vector<TraceRecord> records;
    const std::uint64_t total = 1500 + rng.below(1500);
    const auto emit = [&](const Instr &instr) {
        records.push_back(TraceRecord::pack(instr));
    };

    std::size_t chase_pos = 0;
    std::uint64_t ptr_index = 0;
    while (records.size() < total) {
        Slot &slot = slots[rng.below(slots.size())];
        switch (slot.kind) {
          case Slot::Kind::kStride: {
            const Addr addr = static_cast<Addr>(
                static_cast<std::int64_t>(slot.base) +
                slot.delta *
                    static_cast<std::int64_t>(slot.position));
            if (rng.chance(0.1))
                emit(makeStore(slot.pc, addr, 0, 2, 3));
            else
                emit(makeLoad(slot.pc, addr, 0, 2, 3));
            if (++slot.position >= slot.burstLimit) {
                slot.position = 0;
                slot.base = 0x100000 + rng.below(1024) * kRegionBytes;
                if (rng.chance(0.5))
                    slot.delta = pickStrideDelta(rng);
                slot.burstLimit = pickBurstLimit(rng, params.t2);
            }
            break;
          }

          case Slot::Kind::kChase: {
            const std::size_t i = chase_pos % slot.nodes.size();
            emit(makeLoad(slot.pc, slot.nodes[i], slot.values[i], 40,
                          40));
            ++chase_pos;
            break;
          }

          case Slot::Kind::kDense: {
            if (slot.linePos >= slot.lineOrder.size()) {
                // Next region: touch `touches` distinct lines, in a
                // seeded order, straddling C1's density threshold.
                slot.region = 0x80000000 +
                              rng.below(1u << 14) * kRegionBytes;
                static constexpr unsigned kTouches[] = {4,  5,  6, 7,
                                                        8,  12, 16};
                slot.touches = kTouches[rng.below(std::size(kTouches))];
                slot.lineOrder.clear();
                for (unsigned line = 0; line < kRegionLineCount;
                     ++line) {
                    slot.lineOrder.push_back(line);
                }
                for (std::size_t j = slot.lineOrder.size(); j > 1;
                     --j) {
                    std::swap(slot.lineOrder[j - 1],
                              slot.lineOrder[rng.below(j)]);
                }
                slot.lineOrder.resize(slot.touches);
                slot.linePos = 0;
            }
            const Addr addr =
                slot.region +
                slot.lineOrder[slot.linePos++] * kLineBytes;
            if (rng.chance(0.15))
                emit(makeStore(slot.pc, addr, 0, 4, 5));
            else
                emit(makeLoad(slot.pc, addr, 0, 4, 5));
            break;
          }

          case Slot::Kind::kZigzag: {
            // A pair landing on the extras' next-line predictions:
            // the second access hits a line an extra prefetched,
            // which is the coordinator's rebinding trigger.
            const Addr base =
                0xC0000000 + rng.below(1u << 15) * kRegionBytes;
            emit(makeLoad(slot.pc, base, 0, 6, 7));
            emit(makeLoad(slot.pc2, base + kLineBytes, 0, 6, 7));
            break;
          }

          case Slot::Kind::kRandom: {
            const Addr addr =
                0xE0000000 + rng.below(1u << 20) * kLineBytes;
            if (rng.chance(0.2))
                emit(makeStore(slot.pc, addr, 0, 8, 9));
            else
                emit(makeLoad(slot.pc, addr, 0, 8, 9));
            break;
          }

          case Slot::Kind::kTemporal: {
            const std::size_t i = slot.position % slot.nodes.size();
            emit(makeLoad(slot.pc, slot.nodes[i], 0, 30, 31));
            ++slot.position;
            break;
          }

          case Slot::Kind::kPtrArray: {
            // Strided producer whose loaded values are pointers; the
            // dependent load follows them at a learned offset — the
            // paper's array-of-pointers pattern, P1's taint-scout
            // territory.
            const Addr elem = slot.arrayBase + ptr_index * 8;
            const Addr target = 0x30000000 +
                                splitMix(case_seed ^ ptr_index) %
                                    (1u << 20) * kLineBytes;
            const std::uint64_t value = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(target) - slot.ptrDelta);
            emit(makeLoad(slot.pc, elem, value, 20, 21));
            emit(makeLoad(slot.pc2, target, 0, 22, 20));
            ++ptr_index;
            break;
          }
        }

        if (rng.chance(0.05))
            emit(makeAlu(0x8000, 10, 2, 4));
    }

    return records;
}

} // namespace dol::check
