/**
 * @file
 * The differential harness: production vs. reference, per access.
 *
 * One fuzz case runs three checks over the same seeded trace:
 *
 *  1. Standalone cache differential — the production Cache and the
 *     naive ReferenceCache execute an identical find/touch/insert/
 *     invalidate stream derived from the trace; every hit verdict,
 *     line-metadata read, and eviction victim is diffed.
 *
 *  2. Simulator-coupled differential — the full production pipeline
 *     (TPC composite + two next-line extras) runs the trace while
 *     ReferenceT2 and ReferenceCoordinator consume the identical
 *     access stream through Simulator::setAccessObserver. Per access
 *     the harness diffs: T2 per-instruction state, T2's attempted
 *     prefetch sequence (paired positionally against the emission
 *     records from PrefetchEmitter::setEmitHook, resource verdicts
 *     treated as environment), coordinator ownership, the
 *     instruction->extra binding, and emission attribution (C1 and
 *     the extras may only emit on accesses routed to them).
 *
 *  3. Determinism — the simulator-coupled run repeats from scratch
 *     and the end-of-run counter registry (PR-2's observability
 *     substrate) must match byte for byte.
 *
 * The first divergence stops the case and is reported with its access
 * index, which is what the shrinker minimises against.
 */

#ifndef DOL_CHECK_DIFFERENTIAL_HPP
#define DOL_CHECK_DIFFERENTIAL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "check/fuzz_workload.hpp"
#include "check/mutation.hpp"

namespace dol::check
{

struct DiffResult
{
    bool ok = true;
    /** Which check diverged: cache / t2 / coordinator / determinism /
     *  precondition. */
    std::string check;
    /** Index of the diverging access (or cache op) in the trace. */
    std::uint64_t index = 0;
    std::string message;

    std::string summary() const;
};

struct CheckConfig
{
    FuzzParams params{};
    Mutation mutation = Mutation::kNone;
    /** Run the double-execution byte-determinism check. */
    bool determinism = true;
};

/** Run every differential check over @p records. */
DiffResult checkTrace(const std::vector<TraceRecord> &records,
                      const CheckConfig &config);

/** Convenience: generate and check one fuzz case. */
DiffResult checkCase(std::uint64_t case_seed,
                     Mutation mutation = Mutation::kNone);

} // namespace dol::check

#endif // DOL_CHECK_DIFFERENTIAL_HPP
