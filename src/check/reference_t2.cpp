#include "check/reference_t2.hpp"

#include <algorithm>

namespace dol::check
{

ReferenceT2::ReferenceT2(const T2Prefetcher::Params &params,
                         Mutation mutation)
    : _params(params), _mutation(mutation)
{}

InstrState
ReferenceT2::stateOf(Pc m_pc) const
{
    const auto it = _states.find(m_pc);
    return it == _states.end() ? InstrState::kUnknown : it->second;
}

unsigned
ReferenceT2::confirmThreshold() const
{
    if (_mutation == Mutation::kT2ConfirmThreshold)
        return _params.strideThreshold + 1;
    return _params.strideThreshold;
}

void
ReferenceT2::issueStream(Entry &entry, const AccessInfo &access,
                         unsigned dist, const Env &env)
{
    if (entry.delta == 0)
        return;
    const bool forward = entry.delta > 0;
    const std::int64_t magnitude = std::max<std::int64_t>(
        std::llabs(entry.delta), kLineBytes);
    const std::int64_t step = forward ? magnitude : -magnitude;
    const Addr target = static_cast<Addr>(
        static_cast<std::int64_t>(access.addr) +
        entry.delta * static_cast<std::int64_t>(dist));

    const bool have_frontier =
        entry.lastIssuedLine != kNoAddr &&
        (forward ? entry.lastIssuedLine >= access.addr
                 : entry.lastIssuedLine <= access.addr);
    Addr frontier = have_frontier ? entry.lastIssuedLine : access.addr;

    unsigned issued = 0;
    while (issued < _params.maxCatchup &&
           (forward ? frontier < target : frontier > target)) {
        const Addr next = static_cast<Addr>(
            static_cast<std::int64_t>(frontier) + step);
        const PrefetchOutcome outcome = env.emit(next);
        if (outcome == PrefetchOutcome::kDroppedMshr ||
            outcome == PrefetchOutcome::kDroppedQueue) {
            break;
        }
        frontier = next;
        ++issued;
    }
    if (issued > 0 || have_frontier)
        entry.lastIssuedLine = frontier;
}

void
ReferenceT2::train(const AccessInfo &access, const Env &env)
{
    const Pc m_pc = _params.useCallSiteXor ? access.mPc : access.pc;
    const InstrState state = stateOf(m_pc);

    switch (state) {
      case InstrState::kUnknown:
        if (access.l1PrimaryMiss) {
            _states[m_pc] = InstrState::kObservation;
            Entry fresh;
            fresh.lastAddr = access.addr;
            _entries[m_pc] = fresh;
        }
        break;

      case InstrState::kObservation: {
        Entry &entry = _entries[m_pc];
        const std::int64_t delta =
            static_cast<std::int64_t>(access.addr) -
            static_cast<std::int64_t>(entry.lastAddr);
        if (delta != 0 && delta == entry.delta) {
            if (entry.sameDeltaCount < 255)
                ++entry.sameDeltaCount;
            entry.diffDeltaCount = 0;
            if (entry.sameDeltaCount >= confirmThreshold())
                _states[m_pc] = InstrState::kStrided;
        } else {
            entry.delta = delta;
            entry.sameDeltaCount = 0;
            if (++entry.diffDeltaCount >= _params.nonStrideThreshold) {
                _states[m_pc] = InstrState::kNonStrided;
                entry.lastAddr = access.addr;
                break;
            }
        }
        entry.lastAddr = access.addr;
        if (entry.sameDeltaCount >= _params.earlyThreshold)
            issueStream(entry, access, _params.defaultDistance, env);
        break;
      }

      case InstrState::kStrided: {
        Entry &entry = _entries[m_pc];
        const std::int64_t delta =
            static_cast<std::int64_t>(access.addr) -
            static_cast<std::int64_t>(entry.lastAddr);
        if (delta != 0 && delta == entry.delta) {
            entry.diffDeltaCount = 0;
            if (entry.sameDeltaCount < 255)
                ++entry.sameDeltaCount;
        } else if (++entry.diffDeltaCount >=
                   _params.nonStrideThreshold) {
            _states[m_pc] = InstrState::kObservation;
            entry.delta = delta;
            entry.sameDeltaCount = 0;
            entry.diffDeltaCount = 0;
            entry.lastIssuedLine = kNoAddr;
            entry.lastAddr = access.addr;
            break;
        }
        entry.lastAddr = access.addr;
        unsigned dist = _params.defaultDistance;
        if (env.ptrProducer && env.ptrProducer(m_pc))
            dist = std::min(2 * dist, _params.maxDistance);
        issueStream(entry, access, dist, env);
        break;
      }

      case InstrState::kNonStrided:
        break;
    }
}

} // namespace dol::check
