/**
 * @file
 * Naive reference re-implementation of the adaptive coordinator's
 * window-decision policy (AdaptiveCoordinator::endWindow).
 *
 * The production coordinator logs every closed window — the raw
 * issued/used inputs per slot plus the pressure-probe delta — into an
 * AdaptiveWindowRecord stream. This model replays those inputs through
 * an independent, deliberately plain transcription of the documented
 * decision sequence and produces its own post-decision slot states;
 * the checker diffs the two per window, per slot, per field. The
 * production loop and this one share no code beyond AdaptiveParams and
 * the state/record structs, so a slipped threshold comparison, a
 * mis-ordered ramp/pressure branch, or a probation off-by-one on
 * either side surfaces as a field diff on the first affected window.
 *
 * kDegreeRampStuck plants the canonical ramp bug on this side: the
 * reference reports maxDegree for every extra on every window, so the
 * very first closed window must diverge — proving the degree field of
 * the diff has teeth.
 */

#ifndef DOL_CHECK_REFERENCE_ADAPTIVE_HPP
#define DOL_CHECK_REFERENCE_ADAPTIVE_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/mutation.hpp"
#include "core/adaptive.hpp"

namespace dol::check
{

class ReferenceAdaptive
{
  public:
    ReferenceAdaptive(const AdaptiveParams &params,
                      std::size_t num_extras,
                      Mutation mutation = Mutation::kNone)
        : _params(params), _mutation(mutation)
    {
        _slots.resize(AdaptiveCoordinator::kFirstExtraSlot + num_extras);
        for (std::size_t i = AdaptiveCoordinator::kFirstExtraSlot;
             i < _slots.size(); ++i) {
            _slots[i].degree = params.startDegree;
        }
    }

    /**
     * Close one window from the logged inputs; returns the reference's
     * post-decision state of every slot (same order as the production
     * record's outputs vector).
     */
    std::vector<AdaptiveSlotState>
    endWindow(const std::vector<AdaptiveWindowInput> &inputs,
              std::uint64_t pressure_delta)
    {
        ++_windows;
        for (std::size_t index = 0; index < _slots.size(); ++index) {
            AdaptiveSlotState &state = _slots[index];
            const AdaptiveWindowInput &in = inputs[index];

            // 1. Coverage EWMA. The production model increments its
            // window counter before deciding, so "first window" is
            // _windows == 1 on both sides.
            const std::int32_t cov_sample =
                permille(in.used, _params.windowAccesses);
            if (_windows == 1)
                state.ewmaCov = cov_sample;
            else
                state.ewmaCov +=
                    (cov_sample - state.ewmaCov) >> _params.ewmaShift;

            // 2. Accuracy EWMA, only when the window issued enough.
            const bool has_verdict =
                in.issued >= _params.minWindowIssued;
            if (has_verdict) {
                const std::int32_t acc_sample =
                    permille(in.used, in.issued);
                if (!state.ewmaValid) {
                    state.ewmaAcc = acc_sample;
                    state.ewmaValid = true;
                } else {
                    state.ewmaAcc += (acc_sample - state.ewmaAcc) >>
                                     _params.ewmaShift;
                }
            }

            if (index >= AdaptiveCoordinator::kFirstExtraSlot) {
                // 3. Extras: pressure halving trumps the ramp. The
                // ramp trusts the sticky EWMA (no fresh verdict
                // required, so sparse accurate extras are not starved
                // by slow start); halving demands fresh evidence.
                if (pressure_delta > 0 && state.degree > 1) {
                    state.degree >>= 1;
                } else if (state.ewmaValid &&
                           state.ewmaAcc >=
                               static_cast<std::int32_t>(
                                   _params.rampHiPermille) &&
                           state.degree < _params.maxDegree) {
                    state.degree = std::min<std::uint32_t>(
                        state.degree * 2, _params.maxDegree);
                } else if (has_verdict && state.ewmaValid &&
                           state.ewmaAcc <
                               static_cast<std::int32_t>(
                                   _params.rampLoPermille) &&
                           state.degree > 1) {
                    state.degree >>= 1;
                }
                if (_mutation == Mutation::kDegreeRampStuck)
                    state.degree = _params.maxDegree;
            } else if (state.demoted) {
                // 4a. Demoted claimants serve probation; re-admission
                // wipes the accuracy history.
                if (--state.probationLeft == 0) {
                    state.demoted = false;
                    state.belowStreak = 0;
                    state.ewmaValid = false;
                    state.ewmaAcc = 0;
                }
            } else {
                // 4b. Healthy claimants extend or reset the streak.
                if (has_verdict && state.ewmaValid &&
                    state.ewmaAcc < static_cast<std::int32_t>(
                                        _params.demoteFloorPermille)) {
                    ++state.belowStreak;
                } else {
                    state.belowStreak = 0;
                }
                if (state.belowStreak >= _params.demoteWindows) {
                    state.demoted = true;
                    state.belowStreak = 0;
                    state.probationLeft = _params.probationWindows;
                }
            }
        }
        return _slots;
    }

  private:
    static std::int32_t
    permille(std::uint64_t numerator, std::uint64_t denominator)
    {
        if (denominator == 0)
            return 0;
        const std::uint64_t raw = numerator * 1000 / denominator;
        return static_cast<std::int32_t>(
            std::min<std::uint64_t>(raw, 1000));
    }

    AdaptiveParams _params;
    Mutation _mutation;
    std::vector<AdaptiveSlotState> _slots;
    std::uint64_t _windows = 0;
};

} // namespace dol::check

#endif // DOL_CHECK_REFERENCE_ADAPTIVE_HPP
