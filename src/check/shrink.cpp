#include "check/shrink.hpp"

#include <algorithm>

namespace dol::check
{

ShrinkResult
shrinkTrace(std::vector<TraceRecord> failing,
            const ShrinkPredicate &still_fails,
            std::size_t max_evaluations)
{
    ShrinkResult result;

    std::size_t chunk = std::max<std::size_t>(failing.size() / 2, 1);
    while (chunk >= 1) {
        bool removed_any = false;
        std::size_t start = 0;
        while (start < failing.size()) {
            if (result.evaluations >= max_evaluations) {
                result.converged = false;
                result.records = std::move(failing);
                return result;
            }
            const std::size_t end =
                std::min(start + chunk, failing.size());
            std::vector<TraceRecord> candidate;
            candidate.reserve(failing.size() - (end - start));
            candidate.insert(candidate.end(), failing.begin(),
                             failing.begin() +
                                 static_cast<std::ptrdiff_t>(start));
            candidate.insert(candidate.end(),
                             failing.begin() +
                                 static_cast<std::ptrdiff_t>(end),
                             failing.end());
            ++result.evaluations;
            if (!candidate.empty() && still_fails(candidate)) {
                // Keep the removal; retry the same offset, which now
                // holds the next chunk.
                failing = std::move(candidate);
                removed_any = true;
            } else {
                start += chunk;
            }
        }
        if (chunk == 1 && !removed_any)
            break;
        if (!removed_any)
            chunk = std::max<std::size_t>(chunk / 2, 1);
    }

    result.records = std::move(failing);
    return result;
}

} // namespace dol::check
