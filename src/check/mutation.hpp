/**
 * @file
 * Self-test mutations for the differential checker.
 *
 * Each mutation plants one deliberate, paper-relevant bug in a
 * *reference* model. Running a fuzz campaign with a mutation enabled
 * must surface a production-vs-reference diff quickly (the checker's
 * detection power is symmetric: a reference that disagrees with a
 * buggy production model for some trace disagrees equally when the
 * bug is planted on its own side). This lets CI prove the checker
 * actually catches the bug classes it claims to, without keeping a
 * deliberately broken production build around.
 */

#ifndef DOL_CHECK_MUTATION_HPP
#define DOL_CHECK_MUTATION_HPP

#include <optional>
#include <string>

namespace dol::check
{

enum class Mutation
{
    kNone = 0,
    /** Reference cache evicts the 2nd-least-recently-used way. */
    kLruVictimOffByOne,
    /** Reference coordinator never rebinds on a prefetch hit. */
    kDropRebinding,
    /** Reference T2 confirms a stream one access later. */
    kT2ConfirmThreshold,
    /** Reference coordinator rebinds to the *next* extra instead of
     *  the one whose line was hit — but only in composites with three
     *  or more extras, so catching it proves the campaign exercises
     *  rebinding beyond the classic two-extra configuration. */
    kRebindWrongExtra,
    /** Multicore self-test: the second run of a contention case
     *  silently flips the DRAM arbitration policy. The double-run
     *  byte-determinism check must notice, proving it would also
     *  catch a real nondeterministic arbitration bug. */
    kArbitrationDrift,
    /** Adaptive self-test: the reference policy's degree ramp is
     *  stuck at the maximum — every window decision reports maxDegree
     *  for every extra regardless of accuracy. The `--fuzz-adaptive`
     *  window-decision diff must notice on the first closed window,
     *  proving it would also catch a real runaway ramp. */
    kDegreeRampStuck,
};

const char *mutationName(Mutation mutation);

/** Parse a --fuzz-mutate argument; nullopt for unknown names. */
std::optional<Mutation> mutationFromName(const std::string &name);

} // namespace dol::check

#endif // DOL_CHECK_MUTATION_HPP
