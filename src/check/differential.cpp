#include "check/differential.hpp"

#include <cstdio>
#include <memory>

#include "check/reference_cache.hpp"
#include "check/reference_coordinator.hpp"
#include "check/reference_t2.hpp"
#include "common/rng.hpp"
#include "core/composite.hpp"
#include "mem/memory_image.hpp"
#include "prefetch/next_line.hpp"
#include "sim/simulator.hpp"
#include "trace/counters.hpp"

namespace dol::check
{

namespace
{

std::string
hex(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

const char *
ownerName(CompositePrefetcher::Owner owner)
{
    switch (owner) {
      case CompositePrefetcher::Owner::kNone:
        return "none";
      case CompositePrefetcher::Owner::kT2:
        return "T2";
      case CompositePrefetcher::Owner::kP1:
        return "P1";
      case CompositePrefetcher::Owner::kC1:
        return "C1";
      case CompositePrefetcher::Owner::kExtra:
        return "extra";
    }
    return "?";
}

/**
 * Check 1: the production Cache vs. the naive reference, over an op
 * stream derived deterministically from the trace. Geometry is small
 * (16 sets by default) so evictions are constant traffic.
 */
DiffResult
runCacheDifferential(const std::vector<TraceRecord> &records,
                     const CheckConfig &config)
{
    DiffResult result;
    Cache::Params cache_params;
    cache_params.name = "diff";
    cache_params.sizeBytes = config.params.cacheSizeBytes;
    cache_params.assoc = config.params.cacheAssoc;
    cache_params.mshrs = 8;
    Cache production(cache_params);
    ReferenceCache reference(config.params.cacheSizeBytes,
                             config.params.cacheAssoc,
                             config.mutation);

    const auto fail = [&](std::uint64_t index,
                          const std::string &message) {
        result.ok = false;
        result.check = "cache";
        result.index = index;
        result.message = message;
    };

    Rng ops(config.params.opSeed);
    std::uint64_t index = 0;
    for (const TraceRecord &record : records) {
        const Instr instr = record.unpack();
        if (!instr.isMem()) {
            ++index;
            continue;
        }
        const Addr line = lineAddr(instr.addr);

        if (ops.below(100) < 5) {
            const bool prod = production.invalidate(line);
            const bool ref = reference.invalidate(line);
            if (prod != ref) {
                fail(index, "invalidate(" + hex(line) +
                                "): production " +
                                (prod ? "hit" : "miss") +
                                ", reference " + (ref ? "hit" : "miss"));
                return result;
            }
            ++index;
            continue;
        }

        Cache::Line *prod_line = production.find(line);
        ReferenceCache::Line *ref_line = reference.find(line);
        if ((prod_line != nullptr) != (ref_line != nullptr)) {
            fail(index, "lookup(" + hex(line) + "): production " +
                            (prod_line ? "hit" : "miss") +
                            ", reference " +
                            (ref_line ? "hit" : "miss"));
            return result;
        }

        if (prod_line) {
            if (prod_line->dirty != ref_line->dirty ||
                prod_line->prefetched != ref_line->prefetched ||
                prod_line->used != ref_line->used ||
                prod_line->comp != ref_line->comp) {
                fail(index,
                     "metadata(" + hex(line) + ") differs: production "
                         "dirty/prefetched/used/comp=" +
                         std::to_string(prod_line->dirty) + "/" +
                         std::to_string(prod_line->prefetched) + "/" +
                         std::to_string(prod_line->used) + "/" +
                         std::to_string(prod_line->comp) +
                         " reference " +
                         std::to_string(ref_line->dirty) + "/" +
                         std::to_string(ref_line->prefetched) + "/" +
                         std::to_string(ref_line->used) + "/" +
                         std::to_string(ref_line->comp));
                return result;
            }
            production.touch(*prod_line);
            reference.touch(line);
            if (instr.isStore()) {
                prod_line->dirty = true;
                ref_line->dirty = true;
            }
            if (prod_line->prefetched && !prod_line->used) {
                prod_line->used = true;
                ref_line->used = true;
            }
        } else {
            const bool prefetched = ops.chance(0.3);
            const ComponentId comp =
                prefetched
                    ? static_cast<ComponentId>(1 + ops.below(3))
                    : kNoComponent;
            const bool dirty = instr.isStore();

            Cache::Line *filled = nullptr;
            const auto prod_victim = production.insert(line, &filled);
            filled->prefetched = prefetched;
            filled->comp = comp;
            filled->dirty = dirty;
            const auto ref_victim =
                reference.insert(line, prefetched, comp, dirty);

            if (prod_victim.has_value() != ref_victim.has_value()) {
                fail(index, "insert(" + hex(line) + "): production " +
                                (prod_victim ? "evicted "
                                             : "evicted nothing") +
                                (prod_victim
                                     ? hex(prod_victim->lineAddr)
                                     : std::string()) +
                                ", reference " +
                                (ref_victim ? "evicted " +
                                                  hex(ref_victim
                                                          ->lineAddr)
                                            : "evicted nothing"));
                return result;
            }
            if (prod_victim &&
                (prod_victim->lineAddr != ref_victim->lineAddr ||
                 prod_victim->dirty != ref_victim->dirty ||
                 prod_victim->prefetched != ref_victim->prefetched ||
                 prod_victim->used != ref_victim->used ||
                 prod_victim->comp != ref_victim->comp)) {
                fail(index,
                     "insert(" + hex(line) +
                         ") victim differs: production " +
                         hex(prod_victim->lineAddr) + " reference " +
                         hex(ref_victim->lineAddr));
                return result;
            }
        }
        ++index;
    }
    return result;
}

/** The production half of the simulator-coupled check. */
struct SimHarness
{
    SimHarness(const std::vector<TraceRecord> &records,
               const FuzzParams &params)
        : kernel(image, records)
    {
        // Replaying every (addr, value) pair reconstructs the heap the
        // generator intended: the fuzz domain guarantees one value per
        // pointer-bearing address, so P1's chases read what the trace
        // loads returned.
        for (const TraceRecord &record : records) {
            const Instr instr = record.unpack();
            if (instr.isMem())
                image.write64(instr.addr, instr.value);
        }

        CompositePrefetcher::Config cfg;
        cfg.t2 = params.t2;
        cfg.enableP1 = params.enableP1;
        cfg.enableC1 = params.enableC1;
        tpc = std::make_unique<CompositePrefetcher>(&image, cfg);
        tpc->addComponent(std::make_unique<NextLinePrefetcher>(
            params.extraDegree1));
        tpc->addComponent(std::make_unique<NextLinePrefetcher>(
            params.extraDegree2));
        if (params.numExtras >= 3) {
            tpc->addComponent(std::make_unique<NextLinePrefetcher>(
                params.extraDegree3));
        }

        SimConfig sim_config;
        sim_config.maxInstrs = records.size();
        sim = std::make_unique<Simulator>(sim_config, kernel,
                                          tpc.get());
    }

    std::string
    countersText()
    {
        CounterRegistry registry;
        sim->exportCounters(registry);
        return registry.toText();
    }

    MemoryImage image;
    RecordKernel kernel;
    std::unique_ptr<CompositePrefetcher> tpc;
    std::unique_ptr<Simulator> sim;
};

/**
 * Check 2: full pipeline vs. ReferenceT2 + ReferenceCoordinator in
 * per-access lockstep. On success @p counters_out receives the
 * end-of-run counter text for the determinism check.
 */
DiffResult
runSimDifferential(const std::vector<TraceRecord> &records,
                   const CheckConfig &config,
                   std::string *counters_out)
{
    DiffResult result;
    SimHarness harness(records, config.params);
    CompositePrefetcher &tpc = *harness.tpc;

    const ComponentId t2_id = tpc.t2()->id();
    const ComponentId c1_id = tpc.c1() ? tpc.c1()->id() : kNoComponent;
    std::vector<ComponentId> extra_ids;
    for (const auto &extra : tpc.extras())
        extra_ids.push_back(extra->id());
    const std::size_t num_extras = extra_ids.size();

    ReferenceT2 ref_t2(config.params.t2, config.mutation);
    ReferenceCoordinator ref_coord(num_extras, config.mutation);

    std::vector<PrefetchEmitter::EmitRecord> bucket;
    harness.sim->emitter().setEmitHook(
        [&](const PrefetchEmitter::EmitRecord &record) {
            bucket.push_back(record);
        });

    std::uint64_t access_index = 0;
    const auto fail = [&](const std::string &check,
                          const std::string &message) {
        if (!result.ok)
            return;
        result.ok = false;
        result.check = check;
        result.index = access_index;
        result.message = message;
    };

    harness.sim->setAccessObserver([&](const AccessInfo &access) {
        if (!result.ok) {
            bucket.clear();
            return;
        }
        const Pc key = config.params.t2.useCallSiteXor ? access.mPc
                                                       : access.pc;

        // Partition this access's emission records by component.
        std::vector<PrefetchEmitter::EmitRecord> t2_records;
        std::vector<unsigned> extra_emits(num_extras, 0);
        unsigned c1_emits = 0;
        for (const auto &record : bucket) {
            if (record.comp == t2_id) {
                t2_records.push_back(record);
                continue;
            }
            if (tpc.c1() && record.comp == c1_id) {
                ++c1_emits;
                continue;
            }
            for (std::size_t idx = 0; idx < num_extras; ++idx) {
                if (record.comp == extra_ids[idx]) {
                    ++extra_emits[idx];
                    break;
                }
            }
            // P1's emissions are environment: its chase engine is
            // driven by fill timing, which the reference does not
            // model.
        }
        bucket.clear();

        // --- Reference T2, with production's resource verdicts as
        // environment, diffing the attempted addresses positionally.
        std::size_t position = 0;
        std::string t2_error;
        ReferenceT2::Env env;
        env.emit = [&](Addr target) {
            if (position >= t2_records.size()) {
                if (t2_error.empty()) {
                    t2_error = "reference attempts a prefetch of " +
                               hex(target) + " that production "
                               "never issued (production attempted " +
                               std::to_string(t2_records.size()) +
                               ")";
                }
                // Pretend resources ran out so the reference's
                // catch-up loop terminates like production's would.
                return PrefetchOutcome::kDroppedQueue;
            }
            const auto &record = t2_records[position++];
            if (t2_error.empty() && record.addr != target) {
                t2_error = "T2 attempt #" +
                           std::to_string(position - 1) +
                           ": production " + hex(record.addr) +
                           ", reference " + hex(target);
            }
            if (t2_error.empty() && record.level != kL1) {
                t2_error = "T2 prefetch of " + hex(record.addr) +
                           " went to level " +
                           std::to_string(record.level) +
                           ", expected L1";
            }
            return record.outcome;
        };
        env.ptrProducer = [&](Pc m_pc) {
            const T2Prefetcher *t2 = harness.tpc->t2();
            const SitEntry *sit =
                static_cast<const T2Prefetcher *>(t2)->sitLookup(m_pc);
            return sit && sit->ptrProducer;
        };
        ref_t2.train(access, env);
        if (t2_error.empty() && position != t2_records.size()) {
            t2_error = "production issued " +
                       std::to_string(t2_records.size()) +
                       " T2 prefetches, reference only " +
                       std::to_string(position);
        }
        if (!t2_error.empty()) {
            fail("t2", t2_error);
            return;
        }

        const InstrState prod_state = tpc.t2()->stateOf(key);
        const InstrState ref_state = ref_t2.stateOf(key);
        if (prod_state != ref_state) {
            fail("t2",
                 "state of mPC " + hex(key) + ": production " +
                     std::to_string(static_cast<int>(prod_state)) +
                     ", reference " +
                     std::to_string(static_cast<int>(ref_state)));
            return;
        }

        // --- Reference coordinator. T2's claim comes from the
        // reference; P1/C1 pattern detection is environment.
        ReferenceCoordinator::Claims claims;
        claims.t2 = ref_t2.claims(key);
        claims.p1 = tpc.p1() && tpc.p1()->handles(access.mPc);
        claims.c1 = tpc.c1() && (tpc.c1()->isMarked(access.mPc) ||
                                 tpc.c1()->isMonitored(access.mPc));
        int hit_extra = -1;
        if (access.l1HitPrefetched) {
            for (std::size_t idx = 0; idx < num_extras; ++idx) {
                if (access.l1HitComp == extra_ids[idx]) {
                    hit_extra = static_cast<int>(idx);
                    break;
                }
            }
        }
        const int routed = ref_coord.onAccess(access, claims,
                                              hit_extra);

        const auto prod_owner = tpc.ownerOf(access.mPc);
        const auto ref_owner = ref_coord.ownerOf(access.mPc, claims);
        if (prod_owner != ref_owner) {
            fail("coordinator",
                 "owner of mPC " + hex(access.mPc) + ": production " +
                     ownerName(prod_owner) + ", reference " +
                     ownerName(ref_owner));
            return;
        }

        const int prod_bound = tpc.boundExtraOf(access.mPc);
        const int ref_bound = ref_coord.boundExtraOf(access.mPc);
        if (prod_bound != ref_bound) {
            fail("coordinator",
                 "binding of mPC " + hex(access.mPc) +
                     ": production extra " +
                     std::to_string(prod_bound) + ", reference extra " +
                     std::to_string(ref_bound));
            return;
        }

        // --- Emission attribution: only the component the reference
        // routed this access to may have trained on it.
        const bool c1_consulted =
            tpc.c1() && !claims.t2 && !claims.p1;
        if (c1_emits > 0 && !c1_consulted) {
            fail("coordinator",
                 "C1 emitted " + std::to_string(c1_emits) +
                     " prefetches on an access the coordinator never "
                     "routed to it");
            return;
        }
        for (int idx = 0; idx < static_cast<int>(num_extras); ++idx) {
            if (extra_emits[idx] > 0 && routed != idx) {
                fail("coordinator",
                     "extra " + std::to_string(idx) + " emitted " +
                         std::to_string(extra_emits[idx]) +
                         " prefetches but the coordinator routed the "
                         "access to " +
                         (routed < 0 ? std::string("no extra")
                                     : "extra " +
                                           std::to_string(routed)));
                return;
            }
        }
        ++access_index;
    });

    harness.sim->run();
    if (result.ok && counters_out)
        *counters_out = harness.countersText();
    return result;
}

} // namespace

std::string
DiffResult::summary() const
{
    if (ok)
        return "ok";
    return check + " diff at access #" + std::to_string(index) + ": " +
           message;
}

DiffResult
checkTrace(const std::vector<TraceRecord> &records,
           const CheckConfig &config)
{
    // Fuzz-domain precondition: straight-line code only. The loop-
    // timed distance formula has its own unit tests; here a control
    // instruction would silently desynchronise the reference.
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (records[i].unpack().isControl()) {
            DiffResult result;
            result.ok = false;
            result.check = "precondition";
            result.index = i;
            result.message =
                "control instruction in a fuzz trace (record " +
                std::to_string(i) + ")";
            return result;
        }
    }

    DiffResult result = runCacheDifferential(records, config);
    if (!result.ok)
        return result;

    std::string counters_first;
    result = runSimDifferential(records, config, &counters_first);
    if (!result.ok)
        return result;

    if (config.determinism) {
        std::string counters_second;
        DiffResult second =
            runSimDifferential(records, config, &counters_second);
        if (!second.ok)
            return second;
        if (counters_first != counters_second) {
            result.ok = false;
            result.check = "determinism";
            result.index = 0;
            result.message = "counter registry text differs between "
                             "two identical runs";
        }
    }
    return result;
}

DiffResult
checkCase(std::uint64_t case_seed, Mutation mutation)
{
    CheckConfig config;
    config.params = makeFuzzParams(case_seed);
    config.mutation = mutation;
    const std::vector<TraceRecord> trace =
        makeFuzzTrace(case_seed, config.params);
    return checkTrace(trace, config);
}

} // namespace dol::check
