/**
 * @file
 * Differential checks for the multicore contention subsystem.
 *
 * A multicore fuzz case is a pure function of one 64-bit seed: the
 * seed fixes the core count (2–4), each core's workload and
 * prefetcher (heterogeneous by construction), the arbitration
 * policy, the bandwidth window and the instruction budget. Each case
 * asserts two properties the rest of the repo leans on:
 *
 *  - byte determinism: two executions of the same case export
 *    byte-identical counter-registry text (the property that makes
 *    golden snapshots and --jobs-invariant sweeps possible);
 *  - attribution conservation: the per-core DRAM line counts sum
 *    exactly to the shared controller's total, and prefetch lines
 *    never exceed a core's total lines.
 *
 * The kArbitrationDrift mutation flips the arbitration policy on the
 * second execution only; the determinism check must catch it, which
 * proves the check has the power to see a real arbitration-order bug.
 */

#ifndef DOL_CHECK_MULTICORE_CHECK_HPP
#define DOL_CHECK_MULTICORE_CHECK_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "check/differential.hpp"

namespace dol::check
{

/** One multicore fuzz case; ok() == false carries the first diff. */
DiffResult checkMulticoreCase(std::uint64_t case_seed,
                              Mutation mutation = Mutation::kNone);

struct MulticoreCampaignOptions
{
    std::uint64_t cases = 50;
    std::uint64_t seed = 1;
    Mutation mutation = Mutation::kNone;
};

struct MulticoreCampaignReport
{
    std::uint64_t cases = 0;
    std::uint64_t seed = 0;
    struct Failure
    {
        std::uint64_t index = 0;
        std::uint64_t caseSeed = 0;
        DiffResult diff;
    };
    std::vector<Failure> failures;

    bool ok() const { return failures.empty(); }

    /** Deterministic human-readable summary (diffed in CI). */
    std::string summaryText() const;
};

/** Run @p options.cases multicore cases sequentially. */
MulticoreCampaignReport
runMulticoreCampaign(const MulticoreCampaignOptions &options);

/**
 * Scan cases until one fails under @p mutation (self-test helper).
 * Returns the failing case index, or UINT64_MAX when none failed
 * within @p max_cases.
 */
std::uint64_t probeMulticoreMutation(std::uint64_t campaign_seed,
                                     std::uint64_t max_cases,
                                     Mutation mutation);

} // namespace dol::check

#endif // DOL_CHECK_MULTICORE_CHECK_HPP
