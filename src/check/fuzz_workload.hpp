/**
 * @file
 * Seeded random workload generation for the differential checker.
 *
 * A fuzz case is a pure function of one 64-bit case seed: the seed
 * fixes both the component parameters under test (makeFuzzParams) and
 * the synthetic trace (makeFuzzTrace). Traces interleave the access
 * patterns the paper's components specialise in — constant strides
 * with run lengths straddling the confirmation thresholds, pointer
 * chains with coherent in-memory values, dense and sparse regions
 * around C1's density cut, prefetch-hit "zigzag" pairs that exercise
 * coordinator rebinding, temporal-correlation sequences revisited
 * cyclically, and plain noise — as straight-line code.
 *
 * Domain restrictions (what keeps the reference models simple):
 *  - no control instructions: mPC == PC, T2's loop detector stays
 *    idle, distance is always the default;
 *  - at most ~16 distinct memory PCs: far below the SIT / I-cache
 *    state-table capacities, so production never evicts;
 *  - one value per chase/pointer address: replaying a trace's
 *    (addr, value) pairs into a MemoryImage reconstructs the exact
 *    heap P1 chases, so shrunk reproducers replay bit-identically.
 */

#ifndef DOL_CHECK_FUZZ_WORKLOAD_HPP
#define DOL_CHECK_FUZZ_WORKLOAD_HPP

#include <cstdint>
#include <vector>

#include "core/t2.hpp"
#include "workloads/trace_file.hpp"

namespace dol::check
{

/** SplitMix64: the campaign's per-case seed derivation. */
std::uint64_t splitMix(std::uint64_t x);

/** Seed of case @p index within a campaign. */
std::uint64_t caseSeed(std::uint64_t campaign_seed, std::uint64_t index);

/** Everything a fuzz case randomises besides the trace itself. */
struct FuzzParams
{
    T2Prefetcher::Params t2{};
    bool enableP1 = true;
    bool enableC1 = true;
    /** Degrees of the next-line extra components. */
    unsigned extraDegree1 = 1;
    unsigned extraDegree2 = 2;
    unsigned extraDegree3 = 1;
    /** Extras behind the coordinator (2 or 3). */
    unsigned numExtras = 2;
    /** Include a temporal-correlation slot in the trace. */
    bool temporalSlot = false;
    /** Seed of the standalone cache differential's op stream. */
    std::uint64_t opSeed = 1;
    /** Geometry of the standalone cache differential (16 sets). */
    std::uint32_t cacheSizeBytes = 4096;
    std::uint32_t cacheAssoc = 4;
};

FuzzParams makeFuzzParams(std::uint64_t case_seed);

std::vector<TraceRecord> makeFuzzTrace(std::uint64_t case_seed,
                                       const FuzzParams &params);

/** A Kernel replaying an in-memory record vector (non-looping). */
class RecordKernel : public Kernel
{
  public:
    RecordKernel(MemoryImage &memory,
                 const std::vector<TraceRecord> &records)
        : Kernel("fuzz", memory), _records(&records)
    {}

    void
    reset() override
    {
        clearQueue();
        _position = 0;
    }

  protected:
    bool
    generate() override
    {
        if (_position >= _records->size())
            return false;
        push((*_records)[_position++].unpack());
        return true;
    }

  private:
    const std::vector<TraceRecord> *_records;
    std::size_t _position = 0;
};

} // namespace dol::check

#endif // DOL_CHECK_FUZZ_WORKLOAD_HPP
