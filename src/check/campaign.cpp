#include "check/campaign.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "check/shrink.hpp"
#include "runner/checkpoint.hpp"
#include "runner/thread_pool.hpp"

namespace dol::check
{

namespace
{

/** Run one case; returns the failure record, shrunk, or nullopt. */
std::optional<CaseFailure>
runCase(std::uint64_t index, const CampaignOptions &options,
        std::vector<TraceRecord> *shrunk_out)
{
    const std::uint64_t seed = caseSeed(options.seed, index);
    CheckConfig config;
    config.params = makeFuzzParams(seed);
    config.mutation = options.mutation;
    std::vector<TraceRecord> trace =
        makeFuzzTrace(seed, config.params);

    const DiffResult diff = checkTrace(trace, config);
    if (diff.ok)
        return std::nullopt;

    CaseFailure failure;
    failure.index = index;
    failure.caseSeed = seed;
    failure.diff = diff;
    failure.originalRecords = trace.size();

    std::vector<TraceRecord> minimal = trace;
    if (options.shrink) {
        const ShrinkResult shrunk = shrinkTrace(
            std::move(trace),
            [&](const std::vector<TraceRecord> &candidate) {
                return !checkTrace(candidate, config).ok;
            },
            options.maxShrinkEvaluations);
        minimal = shrunk.records;
        // Report the diff of the minimal trace, not the original: the
        // shrinker may have walked the failure to an earlier access.
        failure.diff = checkTrace(minimal, config);
    }
    failure.shrunkRecords = minimal.size();
    if (shrunk_out)
        *shrunk_out = std::move(minimal);
    return failure;
}

void
writeReproducer(const CampaignOptions &options, CaseFailure &failure,
                const std::vector<TraceRecord> &records)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options.reproDir, ec);

    const std::string stem = options.reproDir + "/repro_case" +
                             std::to_string(failure.index);
    const std::string trace_path = stem + ".trc";
    if (!writeTraceRecords(trace_path, records))
        return;
    failure.reproPath = trace_path;

    std::ofstream sidecar(stem + ".txt");
    sidecar << "dol differential fuzz reproducer\n"
            << "campaign seed:   " << options.seed << "\n"
            << "case index:      " << failure.index << "\n"
            << "case seed:       " << failure.caseSeed << "\n"
            << "mutation:        " << mutationName(options.mutation)
            << "\n"
            << "diff:            " << failure.diff.summary() << "\n"
            << "original/shrunk: " << failure.originalRecords << "/"
            << failure.shrunkRecords << " records\n"
            << "replay:          dolsim --fuzz-replay " << trace_path
            << " --fuzz-case-seed " << failure.caseSeed << "\n";
}

} // namespace

std::string
CampaignReport::summaryText() const
{
    std::string text = "fuzz campaign: " + std::to_string(cases) +
                       " cases, seed " + std::to_string(seed) + ", " +
                       std::to_string(failures.size()) + " failure" +
                       (failures.size() == 1 ? "" : "s") + "\n";
    for (const CaseFailure &failure : failures) {
        text += "  case " + std::to_string(failure.index) + " (seed " +
                std::to_string(failure.caseSeed) + "): " +
                failure.diff.summary() + " [" +
                std::to_string(failure.originalRecords) + " -> " +
                std::to_string(failure.shrunkRecords) + " records";
        if (!failure.reproPath.empty())
            text += ", " + failure.reproPath;
        text += "]\n";
    }
    return text;
}

namespace
{

/** Journal identity of a campaign: seed + mutation (cases are in the
 *  plan's itemCount). */
std::uint64_t
campaignHash(const CampaignOptions &options)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const auto mixByte = [&hash](unsigned char byte) {
        hash ^= byte;
        hash *= 0x100000001b3ull;
    };
    for (unsigned shift = 0; shift < 64; shift += 8)
        mixByte(static_cast<unsigned char>(options.seed >> shift));
    mixByte(static_cast<unsigned char>(options.mutation));
    return hash;
}

} // namespace

CampaignReport
runCampaign(const CampaignOptions &options)
{
    CampaignReport report;
    report.cases = options.cases;
    report.seed = options.seed;

    std::atomic<bool> private_stop{false};
    std::atomic<bool> &stop =
        options.stopFlag ? *options.stopFlag : private_stop;

    runner::JournalPlan plan;
    plan.itemCount = options.cases;
    plan.gridHash = campaignHash(options);

    std::vector<char> resumed(options.cases, 0);
    runner::CheckpointJournal journal;
    if (!options.checkpointPath.empty()) {
        std::string error;
        bool append = false;
        if (options.resume) {
            const auto loaded =
                runner::CheckpointJournal::load(options.checkpointPath);
            if (loaded.fileExists) {
                if (!loaded.valid)
                    throw std::runtime_error(
                        "checkpoint " + options.checkpointPath + ": " +
                        loaded.error);
                if (!loaded.plan || !(*loaded.plan == plan))
                    throw std::runtime_error(
                        "checkpoint " + options.checkpointPath +
                        " was written for a different campaign (seed, "
                        "mutation, or case count mismatch)");
                for (const std::uint64_t index : loaded.cases) {
                    if (index < options.cases)
                        resumed[index] = 1;
                }
                if (!journal.openAppend(options.checkpointPath,
                                        loaded.goodBytes, &error))
                    throw std::runtime_error(
                        "checkpoint " + options.checkpointPath + ": " +
                        error);
                append = true;
            }
        }
        if (!append &&
            !journal.create(options.checkpointPath, plan, &error))
            throw std::runtime_error("checkpoint " +
                                     options.checkpointPath + ": " +
                                     error);
    }

    // One pre-sized slot per case: workers never contend and the
    // report order is independent of scheduling.
    std::vector<std::optional<CaseFailure>> slots(options.cases);
    std::vector<char> ran(options.cases, 0);
    std::atomic<std::uint64_t> completed{0};
    {
        const unsigned jobs = options.jobs ? options.jobs
                                           : runner::hardwareJobs();
        runner::ThreadPool pool(jobs);
        for (std::uint64_t i = 0; i < options.cases; ++i) {
            if (resumed[i]) {
                ++report.casesResumed;
                continue;
            }
            pool.submit([i, &options, &slots, &ran, &journal, &stop,
                         &completed] {
                if (stop.load(std::memory_order_relaxed))
                    return; // drained: re-runs on resume
                std::vector<TraceRecord> shrunk;
                auto failure = runCase(i, options, &shrunk);
                if (failure) {
                    writeReproducer(options, *failure, shrunk);
                    slots[i] = std::move(*failure);
                } else if (journal.isOpen()) {
                    // Only passes are journaled: failures re-run on
                    // resume so diffs and reproducers regenerate.
                    journal.appendCaseDone(i);
                }
                ran[i] = 1;
                const std::uint64_t done =
                    completed.fetch_add(1, std::memory_order_relaxed) +
                    1;
                if (options.stopAfterCases &&
                    done >= options.stopAfterCases)
                    stop.store(true, std::memory_order_relaxed);
            });
        }
        pool.wait();
    }

    report.casesRun = completed.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < options.cases; ++i) {
        if (!resumed[i] && !ran[i])
            report.interrupted = true;
        if (slots[i])
            report.failures.push_back(std::move(*slots[i]));
    }
    return report;
}

MutationProbe
probeMutation(std::uint64_t campaign_seed, std::uint64_t max_cases,
              Mutation mutation, std::size_t max_shrink_evaluations)
{
    MutationProbe probe;
    CampaignOptions options;
    options.seed = campaign_seed;
    options.mutation = mutation;
    options.maxShrinkEvaluations = max_shrink_evaluations;
    for (std::uint64_t i = 0; i < max_cases; ++i) {
        auto failure = runCase(i, options, &probe.shrunk);
        if (failure) {
            probe.found = true;
            probe.failure = std::move(*failure);
            return probe;
        }
    }
    return probe;
}

} // namespace dol::check
