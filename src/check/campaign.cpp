#include "check/campaign.hpp"

#include <filesystem>
#include <fstream>
#include <optional>

#include "check/shrink.hpp"
#include "runner/thread_pool.hpp"

namespace dol::check
{

namespace
{

/** Run one case; returns the failure record, shrunk, or nullopt. */
std::optional<CaseFailure>
runCase(std::uint64_t index, const CampaignOptions &options,
        std::vector<TraceRecord> *shrunk_out)
{
    const std::uint64_t seed = caseSeed(options.seed, index);
    CheckConfig config;
    config.params = makeFuzzParams(seed);
    config.mutation = options.mutation;
    std::vector<TraceRecord> trace =
        makeFuzzTrace(seed, config.params);

    const DiffResult diff = checkTrace(trace, config);
    if (diff.ok)
        return std::nullopt;

    CaseFailure failure;
    failure.index = index;
    failure.caseSeed = seed;
    failure.diff = diff;
    failure.originalRecords = trace.size();

    std::vector<TraceRecord> minimal = trace;
    if (options.shrink) {
        const ShrinkResult shrunk = shrinkTrace(
            std::move(trace),
            [&](const std::vector<TraceRecord> &candidate) {
                return !checkTrace(candidate, config).ok;
            },
            options.maxShrinkEvaluations);
        minimal = shrunk.records;
        // Report the diff of the minimal trace, not the original: the
        // shrinker may have walked the failure to an earlier access.
        failure.diff = checkTrace(minimal, config);
    }
    failure.shrunkRecords = minimal.size();
    if (shrunk_out)
        *shrunk_out = std::move(minimal);
    return failure;
}

void
writeReproducer(const CampaignOptions &options, CaseFailure &failure,
                const std::vector<TraceRecord> &records)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options.reproDir, ec);

    const std::string stem = options.reproDir + "/repro_case" +
                             std::to_string(failure.index);
    const std::string trace_path = stem + ".trc";
    if (!writeTraceRecords(trace_path, records))
        return;
    failure.reproPath = trace_path;

    std::ofstream sidecar(stem + ".txt");
    sidecar << "dol differential fuzz reproducer\n"
            << "campaign seed:   " << options.seed << "\n"
            << "case index:      " << failure.index << "\n"
            << "case seed:       " << failure.caseSeed << "\n"
            << "mutation:        " << mutationName(options.mutation)
            << "\n"
            << "diff:            " << failure.diff.summary() << "\n"
            << "original/shrunk: " << failure.originalRecords << "/"
            << failure.shrunkRecords << " records\n"
            << "replay:          dolsim --fuzz-replay " << trace_path
            << " --fuzz-case-seed " << failure.caseSeed << "\n";
}

} // namespace

std::string
CampaignReport::summaryText() const
{
    std::string text = "fuzz campaign: " + std::to_string(cases) +
                       " cases, seed " + std::to_string(seed) + ", " +
                       std::to_string(failures.size()) + " failure" +
                       (failures.size() == 1 ? "" : "s") + "\n";
    for (const CaseFailure &failure : failures) {
        text += "  case " + std::to_string(failure.index) + " (seed " +
                std::to_string(failure.caseSeed) + "): " +
                failure.diff.summary() + " [" +
                std::to_string(failure.originalRecords) + " -> " +
                std::to_string(failure.shrunkRecords) + " records";
        if (!failure.reproPath.empty())
            text += ", " + failure.reproPath;
        text += "]\n";
    }
    return text;
}

CampaignReport
runCampaign(const CampaignOptions &options)
{
    CampaignReport report;
    report.cases = options.cases;
    report.seed = options.seed;

    // One pre-sized slot per case: workers never contend and the
    // report order is independent of scheduling.
    std::vector<std::optional<CaseFailure>> slots(options.cases);
    {
        const unsigned jobs = options.jobs ? options.jobs
                                           : runner::hardwareJobs();
        runner::ThreadPool pool(jobs);
        for (std::uint64_t i = 0; i < options.cases; ++i) {
            pool.submit([i, &options, &slots] {
                std::vector<TraceRecord> shrunk;
                auto failure = runCase(i, options, &shrunk);
                if (failure) {
                    writeReproducer(options, *failure, shrunk);
                    slots[i] = std::move(*failure);
                }
            });
        }
        pool.wait();
    }

    for (auto &slot : slots) {
        if (slot)
            report.failures.push_back(std::move(*slot));
    }
    return report;
}

MutationProbe
probeMutation(std::uint64_t campaign_seed, std::uint64_t max_cases,
              Mutation mutation, std::size_t max_shrink_evaluations)
{
    MutationProbe probe;
    CampaignOptions options;
    options.seed = campaign_seed;
    options.mutation = mutation;
    options.maxShrinkEvaluations = max_shrink_evaluations;
    for (std::uint64_t i = 0; i < max_cases; ++i) {
        auto failure = runCase(i, options, &probe.shrunk);
        if (failure) {
            probe.found = true;
            probe.failure = std::move(*failure);
            return probe;
        }
    }
    return probe;
}

} // namespace dol::check
