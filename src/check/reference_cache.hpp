/**
 * @file
 * Naive reference model of the set-associative LRU cache.
 *
 * The production Cache (src/mem/cache.hpp) packs lines into a flat
 * way-array per set and tracks recency with stamped counters. The
 * reference keeps one unordered list of valid lines and answers every
 * question by scanning it: membership is a full scan, the victim of an
 * insertion is the matching-set line with the smallest sequence
 * number. Slow and obviously correct — the differential harness
 * (differential.cpp) drives both models with the same operation
 * stream and diffs every observable.
 */

#ifndef DOL_CHECK_REFERENCE_CACHE_HPP
#define DOL_CHECK_REFERENCE_CACHE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "check/mutation.hpp"
#include "mem/cache.hpp"

namespace dol::check
{

class ReferenceCache
{
  public:
    struct Line
    {
        Addr lineAddr = kNoAddr;
        bool dirty = false;
        bool prefetched = false;
        bool used = false;
        ComponentId comp = kNoComponent;
        /** Global recency sequence; larger = more recently touched. */
        std::uint64_t seq = 0;
    };

    ReferenceCache(std::uint32_t size_bytes, std::uint32_t assoc,
                   Mutation mutation = Mutation::kNone);

    const Line *find(Addr line_addr) const;
    Line *find(Addr line_addr);

    /** Promote to most-recently-used. No-op when absent. */
    void touch(Addr line_addr);

    /**
     * Insert a line that is not currently present, evicting the
     * least-recently-used line of the same set when the set is full.
     */
    std::optional<Cache::Victim> insert(Addr line_addr, bool prefetched,
                                        ComponentId comp, bool dirty);

    /** Remove a line if present. @return true when one was removed. */
    bool invalidate(Addr line_addr);

    std::uint32_t setOf(Addr line_addr) const;
    std::uint32_t numSets() const { return _numSets; }
    std::uint32_t assoc() const { return _assoc; }

  private:
    std::vector<Line> _lines; ///< every valid line, in no order
    std::uint64_t _seq = 0;
    std::uint32_t _numSets;
    std::uint32_t _assoc;
    Mutation _mutation;
};

} // namespace dol::check

#endif // DOL_CHECK_REFERENCE_CACHE_HPP
