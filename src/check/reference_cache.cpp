#include "check/reference_cache.hpp"

#include <algorithm>

namespace dol::check
{

ReferenceCache::ReferenceCache(std::uint32_t size_bytes,
                               std::uint32_t assoc, Mutation mutation)
    : _numSets(size_bytes / (kLineBytes * assoc)), _assoc(assoc),
      _mutation(mutation)
{}

std::uint32_t
ReferenceCache::setOf(Addr line_addr) const
{
    return static_cast<std::uint32_t>(lineNum(line_addr) &
                                      (_numSets - 1));
}

const ReferenceCache::Line *
ReferenceCache::find(Addr line_addr) const
{
    for (const Line &line : _lines) {
        if (line.lineAddr == line_addr)
            return &line;
    }
    return nullptr;
}

ReferenceCache::Line *
ReferenceCache::find(Addr line_addr)
{
    for (Line &line : _lines) {
        if (line.lineAddr == line_addr)
            return &line;
    }
    return nullptr;
}

void
ReferenceCache::touch(Addr line_addr)
{
    if (Line *line = find(line_addr))
        line->seq = ++_seq;
}

std::optional<Cache::Victim>
ReferenceCache::insert(Addr line_addr, bool prefetched, ComponentId comp,
                       bool dirty)
{
    const std::uint32_t set = setOf(line_addr);
    std::vector<std::size_t> resident;
    for (std::size_t i = 0; i < _lines.size(); ++i) {
        if (setOf(_lines[i].lineAddr) == set)
            resident.push_back(i);
    }

    std::optional<Cache::Victim> victim;
    if (resident.size() >= _assoc) {
        // LRU-order the set's resident lines by recency sequence.
        std::sort(resident.begin(), resident.end(),
                  [&](std::size_t a, std::size_t b) {
                      return _lines[a].seq < _lines[b].seq;
                  });
        std::size_t pick = resident.front();
        if (_mutation == Mutation::kLruVictimOffByOne &&
            resident.size() > 1) {
            pick = resident[1];
        }
        const Line &evicted = _lines[pick];
        victim = Cache::Victim{evicted.lineAddr, evicted.dirty,
                               evicted.prefetched, evicted.used,
                               evicted.comp};
        _lines.erase(_lines.begin() +
                     static_cast<std::ptrdiff_t>(pick));
    }

    Line line;
    line.lineAddr = line_addr;
    line.prefetched = prefetched;
    line.comp = comp;
    line.dirty = dirty;
    line.seq = ++_seq;
    _lines.push_back(line);
    return victim;
}

bool
ReferenceCache::invalidate(Addr line_addr)
{
    for (std::size_t i = 0; i < _lines.size(); ++i) {
        if (_lines[i].lineAddr == line_addr) {
            _lines.erase(_lines.begin() +
                         static_cast<std::ptrdiff_t>(i));
            return true;
        }
    }
    return false;
}

} // namespace dol::check
