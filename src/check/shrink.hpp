/**
 * @file
 * Delta-debugging trace shrinker (ddmin-style).
 *
 * Given a failing trace and a deterministic "does it still fail?"
 * predicate, repeatedly try removing contiguous chunks — halving the
 * chunk size from len/2 down to one record — keeping any removal that
 * preserves the failure, until a fixed point. Fuzz params are held
 * constant across evaluations (they derive from the case seed, not
 * from the trace), so the minimal reproducer replays with the exact
 * component configuration that failed.
 */

#ifndef DOL_CHECK_SHRINK_HPP
#define DOL_CHECK_SHRINK_HPP

#include <functional>
#include <vector>

#include "workloads/trace_file.hpp"

namespace dol::check
{

/** @return true when the candidate trace still fails. */
using ShrinkPredicate =
    std::function<bool(const std::vector<TraceRecord> &)>;

struct ShrinkResult
{
    std::vector<TraceRecord> records;
    /** Predicate evaluations spent. */
    std::size_t evaluations = 0;
    /** False when the evaluation budget ran out mid-pass. */
    bool converged = true;
};

/**
 * Minimise @p failing against @p still_fails.
 *
 * @p max_evaluations bounds the work; the best shrink found so far is
 * returned even when the budget runs out.
 */
ShrinkResult shrinkTrace(std::vector<TraceRecord> failing,
                         const ShrinkPredicate &still_fails,
                         std::size_t max_evaluations = 2000);

} // namespace dol::check

#endif // DOL_CHECK_SHRINK_HPP
