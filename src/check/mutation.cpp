#include "check/mutation.hpp"

namespace dol::check
{

const char *
mutationName(Mutation mutation)
{
    switch (mutation) {
      case Mutation::kNone:
        return "none";
      case Mutation::kLruVictimOffByOne:
        return "lru";
      case Mutation::kDropRebinding:
        return "rebind";
      case Mutation::kT2ConfirmThreshold:
        return "t2confirm";
      case Mutation::kRebindWrongExtra:
        return "rebind3";
      case Mutation::kArbitrationDrift:
        return "arbdrift";
      case Mutation::kDegreeRampStuck:
        return "degstick";
    }
    return "none";
}

std::optional<Mutation>
mutationFromName(const std::string &name)
{
    if (name.empty() || name == "none")
        return Mutation::kNone;
    if (name == "lru")
        return Mutation::kLruVictimOffByOne;
    if (name == "rebind")
        return Mutation::kDropRebinding;
    if (name == "t2confirm")
        return Mutation::kT2ConfirmThreshold;
    if (name == "rebind3")
        return Mutation::kRebindWrongExtra;
    if (name == "arbdrift")
        return Mutation::kArbitrationDrift;
    if (name == "degstick")
        return Mutation::kDegreeRampStuck;
    return std::nullopt;
}

} // namespace dol::check
