#include "check/multicore_check.hpp"

#include <numeric>

#include "check/fuzz_workload.hpp"
#include "sim/multicore.hpp"
#include "trace/counters.hpp"

namespace dol::check
{

namespace
{

/** Small pools; every combination stays a fast case. */
const char *const kWorkloadPool[] = {
    "libquantum.syn", "mcf.syn",        "omnetpp.syn", "milc.syn",
    "tempstream.syn", "shuflist.syn",   "ep.syn",
};
const char *const kPrefetcherPool[] = {
    "TPC", "SPP", "PChase", "Triangel", "TPC+SPP",
    "TPC+SPP+Triangel+PChase", "",
};

struct CaseSetup
{
    SimConfig config;
    std::vector<CoreSpec> specs;
};

CaseSetup
makeCase(std::uint64_t case_seed)
{
    CaseSetup setup;
    std::uint64_t state = case_seed;
    auto draw = [&state](std::uint64_t bound) {
        state = splitMix(state);
        return state % bound;
    };

    // 2 or 4 cores: the shared L3 scales linearly with the core
    // count, so odd counts would break its power-of-two set geometry.
    const unsigned num_cores = 2 + 2 * static_cast<unsigned>(draw(2));
    for (unsigned i = 0; i < num_cores; ++i) {
        CoreSpec spec;
        spec.workload =
            kWorkloadPool[draw(std::size(kWorkloadPool))];
        spec.prefetcher =
            kPrefetcherPool[draw(std::size(kPrefetcherPool))];
        // Uneven budgets exercise the early-finisher path.
        spec.maxInstrs = 3000 + draw(4) * 1500;
        setup.specs.push_back(std::move(spec));
    }

    setup.config.maxInstrs = 6000;
    setup.config.mem.dram.rngSeed = case_seed;
    const std::uint64_t arb = draw(3);
    setup.config.mem.dram.arbitration =
        arb == 0   ? ArbitrationPolicy::kDemandFirst
        : arb == 1 ? ArbitrationPolicy::kFifo
                   : ArbitrationPolicy::kCoreRoundRobin;
    if (draw(2)) {
        setup.config.mem.dram.linesPerWindow = 16 + draw(49);
        setup.config.mem.dram.windowCycles = 1500 + draw(1500);
    }
    // Tight shared-L3 MSHRs surface the stall-counter paths.
    if (draw(2))
        setup.config.mem.l3.mshrs = 8;
    return setup;
}

struct CaseRun
{
    MulticoreResult result;
    std::string counterText;
};

CaseRun
runOnce(const CaseSetup &setup, const SimConfig &config)
{
    MulticoreSimulator sim(config, setup.specs);
    CaseRun run;
    run.result = sim.run();
    CounterRegistry registry;
    sim.exportCounters(registry);
    run.counterText = registry.toText();
    return run;
}

/** First line where two counter texts diverge, for the diff message. */
std::string
firstDivergence(const std::string &a, const std::string &b)
{
    std::size_t line = 1;
    std::size_t i = 0;
    const std::size_t n = std::min(a.size(), b.size());
    while (i < n && a[i] == b[i]) {
        if (a[i] == '\n')
            ++line;
        ++i;
    }
    return "first divergence at counter line " + std::to_string(line);
}

} // namespace

DiffResult
checkMulticoreCase(std::uint64_t case_seed, Mutation mutation)
{
    DiffResult diff;
    const CaseSetup setup = makeCase(case_seed);

    const CaseRun first = runOnce(setup, setup.config);

    SimConfig second_config = setup.config;
    if (mutation == Mutation::kArbitrationDrift) {
        // The planted bug: run two silently arbitrates differently.
        second_config.mem.dram.arbitration =
            setup.config.mem.dram.arbitration ==
                    ArbitrationPolicy::kFifo
                ? ArbitrationPolicy::kDemandFirst
                : ArbitrationPolicy::kFifo;
    }
    const CaseRun second = runOnce(setup, second_config);

    if (first.counterText != second.counterText) {
        diff.ok = false;
        diff.check = "multicore-determinism";
        diff.message =
            "double-run counter registries differ (" +
            firstDivergence(first.counterText, second.counterText) +
            ")";
        return diff;
    }

    const MulticoreResult &result = first.result;
    const std::uint64_t attributed =
        std::accumulate(result.coreDramLines.begin(),
                        result.coreDramLines.end(), std::uint64_t{0});
    if (attributed != result.dramLines) {
        diff.ok = false;
        diff.check = "multicore-attribution";
        diff.message = "per-core DRAM lines sum to " +
                       std::to_string(attributed) + ", controller saw " +
                       std::to_string(result.dramLines);
        return diff;
    }
    for (std::size_t i = 0; i < result.coreDramLines.size(); ++i) {
        if (result.corePrefetchLines[i] > result.coreDramLines[i]) {
            diff.ok = false;
            diff.check = "multicore-attribution";
            diff.index = i;
            diff.message =
                "core " + std::to_string(i) + " prefetch lines (" +
                std::to_string(result.corePrefetchLines[i]) +
                ") exceed its total lines (" +
                std::to_string(result.coreDramLines[i]) + ")";
            return diff;
        }
    }
    return diff;
}

MulticoreCampaignReport
runMulticoreCampaign(const MulticoreCampaignOptions &options)
{
    MulticoreCampaignReport report;
    report.cases = options.cases;
    report.seed = options.seed;
    for (std::uint64_t i = 0; i < options.cases; ++i) {
        const std::uint64_t seed = caseSeed(options.seed, i);
        DiffResult diff = checkMulticoreCase(seed, options.mutation);
        if (!diff.ok)
            report.failures.push_back({i, seed, std::move(diff)});
    }
    return report;
}

std::string
MulticoreCampaignReport::summaryText() const
{
    std::string text = "multicore fuzz: " + std::to_string(cases) +
                       " cases, seed " + std::to_string(seed) + ", " +
                       std::to_string(failures.size()) + " failure" +
                       (failures.size() == 1 ? "" : "s") + "\n";
    for (const Failure &failure : failures) {
        text += "  case " + std::to_string(failure.index) + " (seed " +
                std::to_string(failure.caseSeed) + "): " +
                failure.diff.summary() + "\n";
    }
    return text;
}

std::uint64_t
probeMulticoreMutation(std::uint64_t campaign_seed,
                       std::uint64_t max_cases, Mutation mutation)
{
    for (std::uint64_t i = 0; i < max_cases; ++i) {
        const DiffResult diff =
            checkMulticoreCase(caseSeed(campaign_seed, i), mutation);
        if (!diff.ok)
            return i;
    }
    return UINT64_MAX;
}

} // namespace dol::check
