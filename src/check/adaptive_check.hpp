/**
 * @file
 * Differential checks for the adaptive coordinator (`--fuzz-adaptive`).
 *
 * An adaptive fuzz case is a pure function of one 64-bit seed: the
 * seed fixes the composite configuration and trace (the same
 * makeFuzzParams/makeFuzzTrace generators as the main campaign) plus a
 * small-window AdaptiveParams draw, so decision windows close many
 * times even on short fuzz traces. Each case asserts four properties:
 *
 *  1. demand-stream identity: the hardwired and adaptive coordinators
 *     run the identical trace and must observe the identical demand
 *     access sequence (pc, mPc, addr, kind, value). Adaptation is
 *     observer-side only — it may change which prefetches issue,
 *     never what the program does. Hit bits and timing legitimately
 *     differ (different prefetches land in the caches) and are
 *     excluded from the comparison;
 *  2. window-decision lockstep: every AdaptiveWindowRecord the
 *     production coordinator logs is replayed through the naive
 *     ReferenceAdaptive policy and diffed field by field;
 *  3. trace round-trip: the case's instructions survive a ChampSim
 *     encode -> decode cycle structurally intact (the ingest frontend
 *     is exercised under fuzz, not just on committed fixtures);
 *  4. byte determinism: the adaptive run repeats from scratch and the
 *     full counter registry — `adapt.` scope included — must match
 *     byte for byte.
 *
 * The kDegreeRampStuck mutation pins the reference's extras at
 * maxDegree; check 2 must catch it on the first closed window.
 */

#ifndef DOL_CHECK_ADAPTIVE_CHECK_HPP
#define DOL_CHECK_ADAPTIVE_CHECK_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "core/adaptive.hpp"

namespace dol::check
{

/** Small-window adaptive parameter draw for case @p case_seed. */
AdaptiveParams makeAdaptiveParams(std::uint64_t case_seed);

/** Run every adaptive check over @p records with fixed parameters
 *  (the shrinker holds params constant while minimising the trace). */
DiffResult checkAdaptiveTrace(const std::vector<TraceRecord> &records,
                              const FuzzParams &params,
                              const AdaptiveParams &adapt,
                              Mutation mutation = Mutation::kNone);

/** Generate and check one adaptive fuzz case. */
DiffResult checkAdaptiveCase(std::uint64_t case_seed,
                             Mutation mutation = Mutation::kNone);

struct AdaptiveCampaignOptions
{
    std::uint64_t cases = 500;
    std::uint64_t seed = 1;
    Mutation mutation = Mutation::kNone;
};

struct AdaptiveCampaignReport
{
    std::uint64_t cases = 0;
    std::uint64_t seed = 0;
    struct Failure
    {
        std::uint64_t index = 0;
        std::uint64_t caseSeed = 0;
        DiffResult diff;
    };
    std::vector<Failure> failures;

    bool ok() const { return failures.empty(); }

    /** Deterministic human-readable summary (diffed in CI). */
    std::string summaryText() const;
};

/** Run @p options.cases adaptive cases sequentially. */
AdaptiveCampaignReport
runAdaptiveCampaign(const AdaptiveCampaignOptions &options);

/**
 * Scan cases until one fails under @p mutation, then shrink the
 * failing trace with the case's parameters held fixed (self-test
 * helper; no reproducer is written).
 */
struct AdaptiveProbe
{
    bool found = false;
    std::uint64_t caseIndex = 0;
    std::uint64_t caseSeed = 0;
    DiffResult diff;
    std::size_t originalRecords = 0;
    std::size_t shrunkRecords = 0;
    std::vector<TraceRecord> shrunk;
};

AdaptiveProbe
probeAdaptiveMutation(std::uint64_t campaign_seed,
                      std::uint64_t max_cases, Mutation mutation,
                      std::size_t max_shrink_evaluations = 2000);

} // namespace dol::check

#endif // DOL_CHECK_ADAPTIVE_CHECK_HPP
