#include "check/adaptive_check.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "check/reference_adaptive.hpp"
#include "check/shrink.hpp"
#include "core/composite.hpp"
#include "mem/memory_image.hpp"
#include "prefetch/next_line.hpp"
#include "sim/simulator.hpp"
#include "trace/counters.hpp"
#include "workloads/trace_ingest.hpp"

namespace dol::check
{

namespace
{

std::string
hex(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** First differing line of two counter-registry texts. */
std::string
firstDivergence(const std::string &a, const std::string &b)
{
    std::istringstream sa(a);
    std::istringstream sb(b);
    std::string la;
    std::string lb;
    while (true) {
        const bool ga = static_cast<bool>(std::getline(sa, la));
        const bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga && !gb)
            return "texts equal";
        if (ga != gb)
            return "line counts differ";
        if (la != lb)
            return "first '" + la + "' second '" + lb + "'";
    }
}

/**
 * One full simulator run over the fuzz trace, hardwired or adaptive.
 * Mirrors the main differential harness: the MemoryImage is rebuilt
 * from the trace's (addr, value) pairs so P1's chases read what the
 * trace loads returned, and the composite is configured straight from
 * the case's FuzzParams.
 */
struct AdaptiveHarness
{
    AdaptiveHarness(const std::vector<TraceRecord> &records,
                    const FuzzParams &params, bool adaptive,
                    const AdaptiveParams &adapt)
        : kernel(image, records)
    {
        for (const TraceRecord &record : records) {
            const Instr instr = record.unpack();
            if (instr.isMem())
                image.write64(instr.addr, instr.value);
        }

        CompositePrefetcher::Config cfg;
        cfg.t2 = params.t2;
        cfg.enableP1 = params.enableP1;
        cfg.enableC1 = params.enableC1;
        cfg.adaptive = adaptive;
        cfg.adapt = adapt;
        tpc = std::make_unique<CompositePrefetcher>(&image, cfg);
        tpc->addComponent(std::make_unique<NextLinePrefetcher>(
            params.extraDegree1));
        tpc->addComponent(std::make_unique<NextLinePrefetcher>(
            params.extraDegree2));
        if (params.numExtras >= 3) {
            tpc->addComponent(std::make_unique<NextLinePrefetcher>(
                params.extraDegree3));
        }

        SimConfig sim_config;
        sim_config.maxInstrs = records.size();
        sim = std::make_unique<Simulator>(sim_config, kernel,
                                          tpc.get());
        if (adaptive) {
            MemorySystem &mem = sim->mem();
            tpc->setPressureProbe([&mem] {
                return mem.shared().dram().stats().windowDeferrals;
            });
        }
    }

    std::string
    countersText()
    {
        CounterRegistry registry;
        sim->exportCounters(registry);
        return registry.toText();
    }

    MemoryImage image;
    RecordKernel kernel;
    std::unique_ptr<CompositePrefetcher> tpc;
    std::unique_ptr<Simulator> sim;
};

/** The demand-stream fields adaptation must never perturb. Timing and
 *  hit bits legitimately differ (different prefetches land in the
 *  caches); what the program executes may not. */
struct DemandRecord
{
    Pc pc = 0;
    Pc mPc = 0;
    Addr addr = 0;
    bool isLoad = true;
    std::uint64_t value = 0;

    bool
    operator==(const DemandRecord &other) const
    {
        return pc == other.pc && mPc == other.mPc &&
               addr == other.addr && isLoad == other.isLoad &&
               value == other.value;
    }
};

std::vector<DemandRecord>
runDemandStream(const std::vector<TraceRecord> &records,
                const FuzzParams &params, bool adaptive,
                const AdaptiveParams &adapt,
                std::vector<AdaptiveWindowRecord> *log,
                std::string *counters_out)
{
    AdaptiveHarness harness(records, params, adaptive, adapt);
    if (log)
        harness.tpc->setAdaptiveDecisionLog(log);
    std::vector<DemandRecord> stream;
    harness.sim->setAccessObserver([&](const AccessInfo &access) {
        stream.push_back({access.pc, access.mPc, access.addr,
                          access.isLoad, access.value});
    });
    harness.sim->run();
    if (counters_out)
        *counters_out = harness.countersText();
    return stream;
}

/** Map a fuzz Instr onto one ChampSim record (round-trip check). Reg
 *  ids fold into ChampSim's 1..63 operand space (0 = no operand). */
ChampSimInstr
toChampSim(const Instr &instr, Pc next_ip)
{
    ChampSimInstr out;
    out.ip = instr.pc;
    const auto reg = [](RegId r) -> std::uint8_t {
        return r == kNoReg ? 0
                           : static_cast<std::uint8_t>(
                                 (r % (kNumRegs - 1)) + 1);
    };
    if (instr.isLoad()) {
        out.srcMem[0] = instr.addr;
        out.destRegs[0] = reg(instr.dst);
        out.srcRegs[0] = reg(instr.src1);
    } else if (instr.isStore()) {
        out.destMem[0] = instr.addr;
        out.srcRegs[0] = reg(instr.src1);
        out.srcRegs[1] = reg(instr.src2);
    } else if (instr.isControl()) {
        out.isBranch = true;
        out.branchTaken = instr.taken;
        (void)next_ip;
    } else {
        out.destRegs[0] = reg(instr.dst);
        out.srcRegs[0] = reg(instr.src1);
        out.srcRegs[1] = reg(instr.src2);
    }
    return out;
}

bool
sameChampSim(const ChampSimInstr &a, const ChampSimInstr &b)
{
    std::uint8_t ba[ChampSimInstr::kBytes];
    std::uint8_t bb[ChampSimInstr::kBytes];
    a.pack(ba);
    b.pack(bb);
    return std::equal(ba, ba + ChampSimInstr::kBytes, bb);
}

std::string
describeSlotDiff(const AdaptiveSlotState &prod,
                 const AdaptiveSlotState &ref)
{
    std::string text;
    const auto field = [&](const char *name, std::int64_t p,
                           std::int64_t r) {
        if (p == r)
            return;
        if (!text.empty())
            text += ", ";
        text += std::string(name) + " production " + std::to_string(p) +
                " reference " + std::to_string(r);
    };
    field("degree", prod.degree, ref.degree);
    field("ewmaAcc", prod.ewmaAcc, ref.ewmaAcc);
    field("ewmaCov", prod.ewmaCov, ref.ewmaCov);
    field("ewmaValid", prod.ewmaValid, ref.ewmaValid);
    field("belowStreak", prod.belowStreak, ref.belowStreak);
    field("demoted", prod.demoted, ref.demoted);
    field("probationLeft", prod.probationLeft, ref.probationLeft);
    return text;
}

} // namespace

AdaptiveParams
makeAdaptiveParams(std::uint64_t case_seed)
{
    std::uint64_t state = splitMix(case_seed ^ 0xada9'7c0de5eedull);
    const auto draw = [&state](std::uint64_t bound) {
        state = splitMix(state);
        return state % bound;
    };
    AdaptiveParams params;
    // Small windows so short fuzz traces close many of them; every
    // other knob jitters around the production defaults so threshold
    // comparisons get exercised from both sides.
    params.windowAccesses = 32 + 16 * draw(3);
    params.ewmaShift = 1 + static_cast<unsigned>(draw(2));
    params.rampHiPermille = 200 + 100 * static_cast<unsigned>(draw(3));
    params.rampLoPermille = 40 + 20 * static_cast<unsigned>(draw(2));
    params.demoteFloorPermille =
        30 + 15 * static_cast<unsigned>(draw(3));
    params.demoteWindows = 2 + static_cast<unsigned>(draw(3));
    params.probationWindows = 4 + 4 * static_cast<unsigned>(draw(2));
    params.startDegree = 1;
    params.maxDegree = 8u << draw(3);
    params.minWindowIssued = 2 + 2 * draw(3);
    return params;
}

DiffResult
checkAdaptiveTrace(const std::vector<TraceRecord> &records,
                   const FuzzParams &params,
                   const AdaptiveParams &adapt, Mutation mutation)
{
    DiffResult result;
    if (records.empty()) {
        result.ok = false;
        result.check = "precondition";
        result.message = "empty trace";
        return result;
    }

    // Check 1 + 2 setup: one hardwired run, one adaptive run with the
    // window-decision log armed.
    const std::vector<DemandRecord> hardwired = runDemandStream(
        records, params, false, adapt, nullptr, nullptr);
    std::vector<AdaptiveWindowRecord> log;
    std::string first_counters;
    const std::vector<DemandRecord> adaptive = runDemandStream(
        records, params, true, adapt, &log, &first_counters);

    // Check 1: demand-stream identity.
    if (hardwired.size() != adaptive.size()) {
        result.ok = false;
        result.check = "adaptive-demand";
        result.message =
            "hardwired saw " + std::to_string(hardwired.size()) +
            " demand accesses, adaptive " +
            std::to_string(adaptive.size());
        return result;
    }
    for (std::size_t i = 0; i < hardwired.size(); ++i) {
        if (hardwired[i] == adaptive[i])
            continue;
        result.ok = false;
        result.check = "adaptive-demand";
        result.index = i;
        result.message =
            "hardwired pc " + hex(hardwired[i].pc) + " addr " +
            hex(hardwired[i].addr) + ", adaptive pc " +
            hex(adaptive[i].pc) + " addr " + hex(adaptive[i].addr);
        return result;
    }

    // Check 2: window-decision lockstep against the naive reference.
    const std::size_t num_extras = params.numExtras >= 3 ? 3 : 2;
    ReferenceAdaptive reference(adapt, num_extras, mutation);
    for (std::size_t window = 0; window < log.size(); ++window) {
        const AdaptiveWindowRecord &record = log[window];
        const std::vector<AdaptiveSlotState> expected =
            reference.endWindow(record.inputs, record.pressureDelta);
        if (record.outputs.size() != expected.size()) {
            result.ok = false;
            result.check = "adaptive-policy";
            result.index = window;
            result.message =
                "window logged " +
                std::to_string(record.outputs.size()) +
                " slots, reference has " +
                std::to_string(expected.size());
            return result;
        }
        for (std::size_t slot = 0; slot < expected.size(); ++slot) {
            const std::string diff = describeSlotDiff(
                record.outputs[slot], expected[slot]);
            if (diff.empty())
                continue;
            result.ok = false;
            result.check = "adaptive-policy";
            result.index = window;
            result.message = "window " + std::to_string(window) +
                             " slot " + std::to_string(slot) + ": " +
                             diff;
            return result;
        }
    }

    // Check 3: ChampSim round-trip. Every fuzz instruction maps onto
    // one record, survives pack -> unpack bit-exactly, and the decoded
    // stream expands deterministically.
    std::vector<ChampSimInstr> encoded;
    encoded.reserve(records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        const Instr instr = records[i].unpack();
        const Pc next_ip =
            records[(i + 1) % records.size()].unpack().pc;
        encoded.push_back(toChampSim(instr, next_ip));
    }
    for (std::size_t i = 0; i < encoded.size(); ++i) {
        std::uint8_t bytes[ChampSimInstr::kBytes];
        encoded[i].pack(bytes);
        const ChampSimInstr decoded = ChampSimInstr::unpack(bytes);
        if (!sameChampSim(encoded[i], decoded)) {
            result.ok = false;
            result.check = "trace-roundtrip";
            result.index = i;
            result.message = "record " + std::to_string(i) + " (ip " +
                             hex(encoded[i].ip) +
                             ") changed across pack/unpack";
            return result;
        }
    }
    {
        MemoryImage image_a;
        MemoryImage image_b;
        TraceIngestStats stats_a;
        TraceIngestStats stats_b;
        const std::vector<Instr> expand_a =
            expandChampSimTrace(encoded, image_a, &stats_a);
        const std::vector<Instr> expand_b =
            expandChampSimTrace(encoded, image_b, &stats_b);
        bool same = expand_a.size() == expand_b.size() &&
                    stats_a.loads == stats_b.loads &&
                    stats_a.stores == stats_b.stores;
        for (std::size_t i = 0; same && i < expand_a.size(); ++i) {
            same = expand_a[i].pc == expand_b[i].pc &&
                   expand_a[i].addr == expand_b[i].addr &&
                   expand_a[i].value == expand_b[i].value &&
                   expand_a[i].op == expand_b[i].op;
        }
        if (!same) {
            result.ok = false;
            result.check = "trace-roundtrip";
            result.message =
                "expandChampSimTrace is not deterministic (" +
                std::to_string(expand_a.size()) + " vs " +
                std::to_string(expand_b.size()) + " instrs)";
            return result;
        }
    }

    // Check 4: double-run byte determinism of the adaptive counters.
    std::string second_counters;
    (void)runDemandStream(records, params, true, adapt, nullptr,
                          &second_counters);
    if (first_counters != second_counters) {
        result.ok = false;
        result.check = "adaptive-determinism";
        result.message =
            "double-run counter registries differ (" +
            firstDivergence(first_counters, second_counters) + ")";
        return result;
    }

    return result;
}

DiffResult
checkAdaptiveCase(std::uint64_t case_seed, Mutation mutation)
{
    const FuzzParams params = makeFuzzParams(case_seed);
    const std::vector<TraceRecord> records =
        makeFuzzTrace(case_seed, params);
    const AdaptiveParams adapt = makeAdaptiveParams(case_seed);
    return checkAdaptiveTrace(records, params, adapt, mutation);
}

AdaptiveCampaignReport
runAdaptiveCampaign(const AdaptiveCampaignOptions &options)
{
    AdaptiveCampaignReport report;
    report.cases = options.cases;
    report.seed = options.seed;
    for (std::uint64_t i = 0; i < options.cases; ++i) {
        const std::uint64_t seed = caseSeed(options.seed, i);
        DiffResult diff = checkAdaptiveCase(seed, options.mutation);
        if (!diff.ok)
            report.failures.push_back({i, seed, std::move(diff)});
    }
    return report;
}

std::string
AdaptiveCampaignReport::summaryText() const
{
    std::string text = "adaptive fuzz: " + std::to_string(cases) +
                       " cases, seed " + std::to_string(seed) + ", " +
                       std::to_string(failures.size()) + " failure" +
                       (failures.size() == 1 ? "" : "s") + "\n";
    for (const Failure &failure : failures) {
        text += "  case " + std::to_string(failure.index) + " (seed " +
                std::to_string(failure.caseSeed) + "): " +
                failure.diff.summary() + "\n";
    }
    return text;
}

AdaptiveProbe
probeAdaptiveMutation(std::uint64_t campaign_seed,
                      std::uint64_t max_cases, Mutation mutation,
                      std::size_t max_shrink_evaluations)
{
    AdaptiveProbe probe;
    for (std::uint64_t i = 0; i < max_cases; ++i) {
        const std::uint64_t seed = caseSeed(campaign_seed, i);
        const FuzzParams params = makeFuzzParams(seed);
        const AdaptiveParams adapt = makeAdaptiveParams(seed);
        const std::vector<TraceRecord> records =
            makeFuzzTrace(seed, params);
        DiffResult diff =
            checkAdaptiveTrace(records, params, adapt, mutation);
        if (diff.ok)
            continue;

        probe.found = true;
        probe.caseIndex = i;
        probe.caseSeed = seed;
        probe.diff = std::move(diff);
        probe.originalRecords = records.size();

        // Params stay fixed while the trace shrinks, matching the
        // main campaign's contract: the reproducer replays with the
        // exact configuration that failed. The predicate pins the
        // check name so the shrinker can never "succeed" by reducing
        // to a trace that merely trips the empty-trace precondition.
        const std::string check = probe.diff.check;
        const ShrinkResult shrunk = shrinkTrace(
            records,
            [&](const std::vector<TraceRecord> &candidate) {
                const DiffResult d = checkAdaptiveTrace(
                    candidate, params, adapt, mutation);
                return !d.ok && d.check == check;
            },
            max_shrink_evaluations);
        probe.shrunk = shrunk.records;
        probe.shrunkRecords = shrunk.records.size();
        return probe;
    }
    return probe;
}

} // namespace dol::check
