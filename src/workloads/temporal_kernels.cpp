#include "workloads/temporal_kernels.hpp"

#include <numeric>

namespace dol
{

namespace
{

constexpr Addr kArenaStride = 1ull << 32;

Addr
arenaBase(std::uint64_t seed, unsigned which)
{
    return ((seed % 64) + 65) * kArenaStride +
           static_cast<Addr>(which) * (1ull << 28);
}

/** Seeded Fisher-Yates permutation of 0..n-1. */
std::vector<std::uint64_t>
permutation(std::uint64_t n, Rng &rng)
{
    std::vector<std::uint64_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (std::uint64_t i = n; i > 1; --i)
        std::swap(perm[i - 1], perm[rng.below(i)]);
    return perm;
}

} // namespace

// --- TemporalStreamKernel --------------------------------------------

TemporalStreamKernel::TemporalStreamKernel(MemoryImage &memory,
                                           const Params &params)
    : Kernel("tempstream", memory), _params(params), _rng(params.seed),
      _dataBase(arenaBase(params.seed, 7)),
      _pcBase(0x4a0000 + (params.seed % 97) * 0x1000)
{
    Rng build_rng(params.seed * 6151 + 3);
    for (unsigned s = 0; s < _params.streams; ++s) {
        _orders.push_back(permutation(_params.elements, build_rng));
        // Payload values: unrelated to any address, so value-chasing
        // prefetchers find nothing to follow.
        for (std::uint64_t i = 0; i < _params.elements; ++i)
            memory.write64(elementAddr(s, i), i * 2654435761ull + s);
    }
}

Addr
TemporalStreamKernel::elementAddr(unsigned stream,
                                  std::uint64_t index) const
{
    return _dataBase + stream * (1ull << 26) +
           _orders[stream][index % _params.elements] *
               _params.elementBytes;
}

void
TemporalStreamKernel::reset()
{
    clearQueue();
    _pos = 0;
    _rng = Rng(_params.seed);
}

bool
TemporalStreamKernel::generate()
{
    const Pc loop_start = _pcBase;
    Pc pc = loop_start;

    // One element from every stream per iteration: the streams stay
    // interleaved in program order, each behind its own load PC.
    for (unsigned s = 0; s < _params.streams; ++s) {
        const Addr element = elementAddr(s, _pos);
        const std::uint64_t value = memory().read64(element);

        // The temporally correlated load: scattered address, stable PC.
        push(makeLoad(pc, element, value, 10, 2));
        pc += 4;
        // A second field on the same element (spatially trivial).
        push(makeLoad(pc, element + 8, 0, 12, 10));
        pc += 4;

        for (unsigned a = 0; a < _params.aluPerIter; ++a) {
            const auto acc = static_cast<RegId>(4 + a % 3);
            push(makeAlu(pc, acc, acc, 12));
            pc += 4;
        }
    }

    push(makeAlu(pc, 2, 2));
    pc += 4;
    push(makeBranch(pc, loop_start, true, _rng.chance(0.0005)));

    ++_pos;
    return true;
}

// --- ShuffledListKernel ----------------------------------------------

ShuffledListKernel::ShuffledListKernel(MemoryImage &memory,
                                       const Params &params)
    : Kernel("shuflist", memory), _params(params),
      _shuffleRng(params.seed * 31 + 5),
      _poolBase(arenaBase(params.seed, 8)),
      _pcBase(0x4b0000 + (params.seed % 97) * 0x1000)
{
    Rng build_rng(params.seed * 104729 + 11);
    for (unsigned c = 0; c < _params.chains; ++c) {
        _orders.push_back(permutation(_params.nodes, build_rng));
        _initialOrders.push_back(_orders.back());
        relink(c);
        _heads.push_back(_poolBase + c * (1ull << 26) +
                         _orders[c][0] * _params.nodeBytes);
        _currents.push_back(_heads.back());
    }
}

void
ShuffledListKernel::relink(unsigned chain)
{
    // Rewrite the chain's full cycle: node(order[i]) -> node(order[i+1]).
    const Addr base = _poolBase + chain * (1ull << 26);
    const auto &order = _orders[chain];
    for (std::uint64_t i = 0; i < _params.nodes; ++i) {
        const Addr node = base + order[i] * _params.nodeBytes;
        const Addr next =
            base + order[(i + 1) % _params.nodes] * _params.nodeBytes;
        memory().write64(node, next);
    }
}

void
ShuffledListKernel::shuffle()
{
    // Swap a few positions (never the head) in every chain, keeping
    // each a single cycle through all of its nodes.
    for (unsigned c = 0; c < _params.chains; ++c) {
        for (unsigned s = 0; s < _params.swapsPerShuffle; ++s) {
            const std::uint64_t a =
                _shuffleRng.range(1, _params.nodes - 1);
            const std::uint64_t b =
                _shuffleRng.range(1, _params.nodes - 1);
            std::swap(_orders[c][a], _orders[c][b]);
        }
        relink(c);
    }
}

void
ShuffledListKernel::reset()
{
    clearQueue();
    for (unsigned c = 0; c < _params.chains; ++c) {
        _orders[c] = _initialOrders[c];
        relink(c);
        _currents[c] = _heads[c];
    }
    _steps = 0;
    _traversals = 0;
    _shuffleRng = Rng(_params.seed * 31 + 5);
}

bool
ShuffledListKernel::generate()
{
    const Pc loop_start = _pcBase;
    Pc pc = loop_start;

    // Advance every chain by one hop per iteration (lockstep). Each
    // chain owns a register, so its loads stay self-referencing.
    for (unsigned c = 0; c < _params.chains; ++c) {
        const auto link_reg = static_cast<RegId>(10 + c);
        const Addr current = _currents[c];
        const std::uint64_t next = memory().read64(current);

        // p = p->next: address == previous returned value (link at
        // offset 0), the self-referencing chain signature.
        push(makeLoad(pc, current, next, link_reg, link_reg));
        pc += 4;

        for (unsigned f = 0; f < _params.payloadLoads; ++f) {
            push(makeLoad(pc, current + 8 * (f + 1), 0,
                          static_cast<RegId>(20 + 4 * c + f),
                          link_reg));
            pc += 4;
        }

        for (unsigned a = 0; a < _params.aluPerIter; ++a) {
            const auto acc = static_cast<RegId>(4 + a % 3);
            push(makeAlu(pc, acc, acc, link_reg));
            pc += 4;
        }

        _currents[c] = next;
    }

    push(makeBranch(pc, loop_start, true, false));

    ++_steps;
    if (_steps % _params.nodes == 0) {
        // Back at every head: a traversal completed.
        ++_traversals;
        if (_traversals % _params.traversalsPerShuffle == 0)
            shuffle();
    }
    return true;
}

// --- HistoryKernel ---------------------------------------------------

HistoryKernel::HistoryKernel(MemoryImage &memory, const Params &params)
    : Kernel("histwalk", memory), _params(params),
      _tableBase(arenaBase(params.seed, 9)),
      _dataBase(arenaBase(params.seed, 10)),
      _index(params.seed % params.elements),
      _prevIndex((params.seed / 3) % params.elements),
      _pcBase(0x4c0000 + (params.seed % 97) * 0x1000)
{
    Rng build_rng(params.seed * 2087 + 19);
    const auto perm = permutation(_params.elements, build_rng);
    for (std::uint64_t i = 0; i < _params.elements; ++i)
        memory.write64(_tableBase + i * 8, perm[i]);
}

std::uint64_t
HistoryKernel::nextIndex() const
{
    const std::uint64_t slot =
        (31 * _index + 17 * _prevIndex + 7) % _params.elements;
    return memory().read64(_tableBase + slot * 8);
}

void
HistoryKernel::reset()
{
    clearQueue();
    _index = _params.seed % _params.elements;
    _prevIndex = (_params.seed / 3) % _params.elements;
}

bool
HistoryKernel::generate()
{
    const Pc loop_start = _pcBase;
    Pc pc = loop_start;

    const std::uint64_t slot =
        (31 * _index + 17 * _prevIndex + 7) % _params.elements;
    const std::uint64_t next = memory().read64(_tableBase + slot * 8);

    // The index lookup: irregular table slot, stable PC.
    push(makeLoad(pc, _tableBase + slot * 8, next, 10, 4));
    pc += 4;
    // The data access driven by the current index.
    push(makeLoad(pc, _dataBase + _index * _params.elementBytes, 0, 12,
                  10));
    pc += 4;

    for (unsigned a = 0; a < _params.aluPerIter; ++a) {
        const auto acc = static_cast<RegId>(4 + a % 3);
        push(makeAlu(pc, acc, acc, 12));
        pc += 4;
    }

    push(makeAlu(pc, 4, 4, 10));
    pc += 4;
    push(makeBranch(pc, loop_start, true, false));

    _prevIndex = _index;
    _index = next;
    return true;
}

} // namespace dol
