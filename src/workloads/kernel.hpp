/**
 * @file
 * Workload kernels: deterministic trace generators that stand in for
 * the paper's SPEC 2006 / CRONO / STARBENCH / NPB workloads
 * (DESIGN.md section 2 documents the substitution).
 *
 * A kernel builds its data structures in a MemoryImage at construction
 * and then emits a dynamic instruction stream: loads/stores with
 * stable PCs and meaningful register dependences, loop back-branches,
 * and calls/returns — everything T2's loop hardware, P1's taint unit,
 * and C1's region monitor observe in real hardware. Streams are pure
 * functions of the seed, so a reset() replays the identical trace
 * (required by the offline stratifier).
 */

#ifndef DOL_WORKLOADS_KERNEL_HPP
#define DOL_WORKLOADS_KERNEL_HPP

#include <memory>
#include <string>

#include "common/ring_buffer.hpp"
#include "cpu/instr.hpp"
#include "mem/memory_image.hpp"

namespace dol
{

class Kernel
{
  public:
    explicit Kernel(std::string name, MemoryImage &memory)
        : _name(std::move(name)), _memory(&memory)
    {}

    virtual ~Kernel() = default;

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /**
     * Produce the next retired instruction.
     * @return false when the kernel has (rarely) nothing more to run.
     */
    bool
    next(Instr &out)
    {
        while (_queue.empty()) {
            if (!generate())
                return false;
        }
        out = _queue.front();
        _queue.pop_front();
        return true;
    }

    /**
     * Drain up to @p max already-generated instructions into @p out
     * (the batched decode of PR 9).
     *
     * Ordering contract: generate() runs only when the queue is
     * empty — exactly when the legacy next() loop would have run it.
     * This matters because kernels mutate the MemoryImage *during*
     * generation (shuflist relinks nodes as it walks), and P1/PChase
     * read image values at fill time: generating ahead of execution
     * would change the values in flight and break trace goldens.
     *
     * @return instructions written; 0 means the kernel is exhausted.
     */
    std::size_t
    nextBatch(Instr *out, std::size_t max)
    {
        while (_queue.empty()) {
            if (!generate())
                return 0;
        }
        return _queue.popBulk(out, max);
    }

    /** Restart the trace from the beginning, deterministically. */
    virtual void reset() = 0;

    const std::string &name() const { return _name; }
    MemoryImage &memory() { return *_memory; }
    const MemoryImage &memory() const { return *_memory; }

  protected:
    /** Emit one unit of work (an iteration) into the queue. */
    virtual bool generate() = 0;

    void push(const Instr &instr) { _queue.push_back(instr); }

    void clearQueue() { _queue.clear(); }

  private:
    std::string _name;
    MemoryImage *_memory;
    RingBuffer<Instr> _queue;
};

} // namespace dol

#endif // DOL_WORKLOADS_KERNEL_HPP
