/**
 * @file
 * Pointer-pattern kernels: the two access shapes P1 targets (paper
 * Figure 5) — arrays of pointers and linked-list chains — built as
 * real data structures in the memory image so loads return coherent
 * pointer values.
 */

#ifndef DOL_WORKLOADS_POINTER_KERNELS_HPP
#define DOL_WORKLOADS_POINTER_KERNELS_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workloads/kernel.hpp"

namespace dol
{

/**
 * for (i...) { obj = arr[i]; use(obj->field); }  — the paper's
 * Figure 5-a. The pointer array is strided (T2 covers it); the object
 * bodies are scattered across the heap (only P1 covers them).
 */
class PointerArrayKernel : public Kernel
{
  public:
    struct Params
    {
        std::uint64_t entries = 1u << 16;
        std::uint64_t objectBytes = 256;
        std::uint64_t fieldOffset = 16;
        unsigned aluPerIter = 8;
        /** Extra dependent field loads per object. */
        unsigned extraFields = 1;
        std::uint64_t seed = 1;
    };

    PointerArrayKernel(MemoryImage &memory, const Params &params);

    void reset() override;

  protected:
    bool generate() override;

  private:
    Params _params;
    Rng _rng;
    Addr _arrayBase;
    Addr _heapBase;
    std::uint64_t _pos = 0;
    Pc _pcBase;
};

/**
 * while (p) p = p->next;  — the paper's Figure 5-b. Node placement
 * is a seeded permutation, so only value-chasing (not any address
 * pattern) predicts the traversal.
 */
class ListChaseKernel : public Kernel
{
  public:
    struct Params
    {
        std::uint64_t nodes = 1u << 15;
        std::uint64_t nodeBytes = 128;
        std::uint64_t nextOffset = 0; ///< link field offset in node
        unsigned aluPerIter = 6;
        /** Payload loads per node (dependent, same line). */
        unsigned payloadLoads = 1;
        std::uint64_t seed = 1;
    };

    ListChaseKernel(MemoryImage &memory, const Params &params);

    void reset() override;

    Addr headNode() const { return _head; }

  protected:
    bool generate() override;

  private:
    Params _params;
    Addr _poolBase;
    Addr _head;
    Addr _current;
    Pc _pcBase;
};

} // namespace dol

#endif // DOL_WORKLOADS_POINTER_KERNELS_HPP
