#include "workloads/irregular_kernels.hpp"

#include <algorithm>

namespace dol
{

namespace
{

constexpr Addr kArenaStride = 1ull << 32;

Addr
arenaBase(std::uint64_t seed, unsigned which)
{
    return ((seed % 64) + 129) * kArenaStride +
           static_cast<Addr>(which) * (1ull << 28);
}

} // namespace

// --- RegionKernel ---------------------------------------------------

RegionKernel::RegionKernel(MemoryImage &memory, const Params &params)
    : Kernel("region", memory), _params(params), _rng(params.seed),
      _base(arenaBase(params.seed, 0)),
      _pcBase(0x450000 + (params.seed % 97) * 0x1000)
{}

void
RegionKernel::reset()
{
    clearQueue();
    _visit = 0;
    _rng = Rng(_params.seed);
}

bool
RegionKernel::generate()
{
    const Pc loop_start = _pcBase;
    Pc pc = loop_start;

    const std::uint64_t region =
        _params.randomRegionOrder ? _rng.below(_params.regions)
                                  : _visit % _params.regions;
    const Addr region_base = _base + region * kRegionBytes;

    // Touch a scrambled subset of the region's lines through one
    // static load, with several accesses (and compute) per line.
    std::uint16_t touched = 0;
    for (unsigned i = 0; i < _params.linesPerVisit; ++i) {
        unsigned line = static_cast<unsigned>(
            _rng.below(kRegionLineCount));
        // Avoid double-touches so density is controlled precisely.
        while ((touched >> line) & 1)
            line = (line + 1) % kRegionLineCount;
        touched |= static_cast<std::uint16_t>(1u << line);

        for (unsigned l = 0; l < _params.loadsPerLine; ++l) {
            push(makeLoad(pc,
                          region_base + (static_cast<Addr>(line)
                                         << kLineBits) +
                              _rng.below(8) * 8,
                          0, 10, 1));
            for (unsigned a = 0; a < _params.aluPerLoad; ++a) {
                const auto acc = static_cast<RegId>(4 + a % 3);
                push(makeAlu(pc + 4, acc, acc, 10));
            }
            // Inner-loop branch: same backward branch per visit.
            push(makeBranch(pc + 8, loop_start, true, false));
        }
    }

    push(makeAlu(pc + 12, 1, 1));
    push(makeBranch(pc + 16, loop_start - 8, _visit % 2 == 0, false));

    ++_visit;
    return true;
}

// --- RandomKernel ----------------------------------------------------

RandomKernel::RandomKernel(MemoryImage &memory, const Params &params)
    : Kernel("random", memory), _params(params), _rng(params.seed),
      _base(arenaBase(params.seed, 1)),
      _pcBase(0x460000 + (params.seed % 97) * 0x1000)
{}

void
RandomKernel::reset()
{
    clearQueue();
    _rng = Rng(_params.seed);
}

bool
RandomKernel::generate()
{
    const Pc loop_start = _pcBase;
    Pc pc = loop_start;

    for (unsigned l = 0; l < _params.loadsPerIter; ++l) {
        const Addr addr =
            _base + lineAddr(_rng.below(_params.footprintBytes));
        push(makeLoad(pc, addr, 0, static_cast<RegId>(10 + l), 1));
        pc += 4;
    }
    for (unsigned a = 0; a < _params.aluPerIter; ++a) {
        const auto acc = static_cast<RegId>(4 + a % 3);
        push(makeAlu(pc, acc, acc, 10));
        pc += 4;
    }
    push(makeAlu(pc, 1, 1));
    pc += 4;
    push(makeBranch(pc, loop_start, true, _rng.chance(0.002)));
    return true;
}

// --- BucketKernel ------------------------------------------------------

BucketKernel::BucketKernel(MemoryImage &memory, const Params &params)
    : Kernel("bucket", memory), _params(params), _rng(params.seed),
      _inputBase(arenaBase(params.seed, 2)),
      _bucketBase(arenaBase(params.seed, 3)),
      _pcBase(0x470000 + (params.seed % 97) * 0x1000)
{
    // The input array holds the bucket index each element maps to.
    Rng build_rng(params.seed * 31 + 5);
    const std::uint64_t elems = _params.inputBytes / 8;
    for (std::uint64_t i = 0; i < elems; ++i)
        memory.write64(_inputBase + i * 8,
                       build_rng.below(_params.buckets));
}

void
BucketKernel::reset()
{
    clearQueue();
    _pos = 0;
    _rng = Rng(_params.seed);
}

bool
BucketKernel::generate()
{
    const Pc loop_start = _pcBase;
    Pc pc = loop_start;
    const std::uint64_t elems = _params.inputBytes / 8;

    const Addr slot = _inputBase + (_pos % elems) * 8;
    const std::uint64_t bucket = memory().read64(slot);

    // Strided key load, then a random-indexed count update.
    push(makeLoad(pc, slot, bucket, 10, 1));
    pc += 4;
    push(makeAlu(pc, 11, 10)); // scale index
    pc += 4;
    const Addr bucket_addr = _bucketBase + bucket * 8;
    push(makeLoad(pc, bucket_addr, 0, 12, 11));
    pc += 4;
    push(makeAlu(pc, 12, 12));
    pc += 4;
    push(makeStore(pc, bucket_addr, 0, 12, 11));
    pc += 4;
    for (unsigned a = 0; a < _params.aluPerIter; ++a) {
        const auto acc = static_cast<RegId>(4 + a % 3);
        push(makeAlu(pc, acc, acc, 12));
        pc += 4;
    }
    push(makeBranch(pc, loop_start, true, false));

    ++_pos;
    return true;
}

// --- CsrGraphKernel ----------------------------------------------------

CsrGraphKernel::CsrGraphKernel(MemoryImage &memory, const Params &params)
    : Kernel("csr", memory), _params(params), _rng(params.seed),
      _rowBase(arenaBase(params.seed, 4)),
      _colBase(arenaBase(params.seed, 5)),
      _xBase(arenaBase(params.seed, 6)),
      _pcBase(0x480000 + (params.seed % 97) * 0x1000)
{
    // Build the CSR structure: random degrees, random neighbours.
    Rng build_rng(params.seed * 6151 + 3);
    _rowPtr.resize(_params.vertices + 1, 0);
    std::uint32_t edges = 0;
    for (std::uint64_t v = 0; v < _params.vertices; ++v) {
        _rowPtr[v] = edges;
        const unsigned degree = static_cast<unsigned>(
            build_rng.below(2 * _params.avgDegree + 1));
        edges += std::min(degree, _params.maxDegree);
    }
    _rowPtr[_params.vertices] = edges;
    for (std::uint32_t e = 0; e < edges; ++e) {
        memory.write64(_colBase + static_cast<Addr>(e) * 8,
                       build_rng.below(_params.vertices));
    }
    for (std::uint64_t v = 0; v <= _params.vertices; ++v)
        memory.write64(_rowBase + v * 8, _rowPtr[v]);
}

void
CsrGraphKernel::reset()
{
    clearQueue();
    _vertex = 0;
    _rng = Rng(_params.seed);
}

bool
CsrGraphKernel::generate()
{
    const Pc outer = _pcBase;
    const Pc inner = _pcBase + 0x40;
    Pc pc = outer;

    const std::uint64_t v = _vertex % _params.vertices;
    const std::uint32_t begin = _rowPtr[v];
    const std::uint32_t end = _rowPtr[v + 1];

    // Row-pointer loads (streams).
    push(makeLoad(pc, _rowBase + v * 8, begin, 10, 1));
    pc += 4;
    push(makeLoad(pc, _rowBase + (v + 1) * 8, end, 11, 1));
    pc += 4;

    for (std::uint32_t e = begin; e < end; ++e) {
        Pc ipc = inner;
        const Addr col_addr = _colBase + static_cast<Addr>(e) * 8;
        const std::uint64_t col = memory().read64(col_addr);
        // Column stream.
        push(makeLoad(ipc, col_addr, col, 12, 10));
        ipc += 4;
        // Indirect gather x[col[e]] (irregular).
        push(makeAlu(ipc, 13, 12));
        ipc += 4;
        push(makeLoad(ipc, _xBase + col * 8, 0, 14, 13));
        ipc += 4;
        for (unsigned a = 0; a < _params.aluPerEdge; ++a) {
            const auto acc = static_cast<RegId>(4 + a % 3);
            push(makeAlu(ipc, acc, acc, 14));
            ipc += 4;
        }
        // Inner loop branch (taken while edges remain).
        push(makeBranch(ipc, inner, e + 1 < end, false));
    }

    push(makeAlu(pc, 1, 1));
    pc += 4;
    push(makeBranch(pc, outer, true, false));

    ++_vertex;
    return true;
}

} // namespace dol
