#include "workloads/suite.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "workloads/irregular_kernels.hpp"
#include "workloads/mixed_kernels.hpp"
#include "workloads/pointer_kernels.hpp"
#include "workloads/stream_kernels.hpp"
#include "workloads/temporal_kernels.hpp"
#include "workloads/trace_ingest.hpp"

namespace dol
{

namespace
{

using Factory = std::function<std::unique_ptr<Kernel>(MemoryImage &)>;

Factory
stream(StreamKernel::Params p)
{
    return [p](MemoryImage &mem) {
        return std::make_unique<StreamKernel>(mem, p);
    };
}

Factory
stencil(StencilKernel::Params p)
{
    return [p](MemoryImage &mem) {
        return std::make_unique<StencilKernel>(mem, p);
    };
}

Factory
ptrArray(PointerArrayKernel::Params p)
{
    return [p](MemoryImage &mem) {
        return std::make_unique<PointerArrayKernel>(mem, p);
    };
}

Factory
listChase(ListChaseKernel::Params p)
{
    return [p](MemoryImage &mem) {
        return std::make_unique<ListChaseKernel>(mem, p);
    };
}

Factory
region(RegionKernel::Params p)
{
    return [p](MemoryImage &mem) {
        return std::make_unique<RegionKernel>(mem, p);
    };
}

Factory
randomK(RandomKernel::Params p)
{
    return [p](MemoryImage &mem) {
        return std::make_unique<RandomKernel>(mem, p);
    };
}

Factory
bucket(BucketKernel::Params p)
{
    return [p](MemoryImage &mem) {
        return std::make_unique<BucketKernel>(mem, p);
    };
}

Factory
csr(CsrGraphKernel::Params p)
{
    return [p](MemoryImage &mem) {
        return std::make_unique<CsrGraphKernel>(mem, p);
    };
}

Factory
alu(AluKernel::Params p)
{
    return [p](MemoryImage &mem) {
        return std::make_unique<AluKernel>(mem, p);
    };
}

Factory
tempStream(TemporalStreamKernel::Params p)
{
    return [p](MemoryImage &mem) {
        return std::make_unique<TemporalStreamKernel>(mem, p);
    };
}

Factory
shufList(ShuffledListKernel::Params p)
{
    return [p](MemoryImage &mem) {
        return std::make_unique<ShuffledListKernel>(mem, p);
    };
}

Factory
histWalk(HistoryKernel::Params p)
{
    return [p](MemoryImage &mem) {
        return std::make_unique<HistoryKernel>(mem, p);
    };
}

/** Phase-multiplex several factories under one name. */
Factory
phased(std::string name, std::vector<Factory> parts,
       std::uint64_t instrs_per_phase = 20000,
       std::vector<std::uint64_t> lengths = {})
{
    return [name = std::move(name), parts = std::move(parts),
            instrs_per_phase, lengths = std::move(lengths)](
               MemoryImage &mem) {
        auto kernel = std::make_unique<PhasedKernel>(name, mem,
                                                     instrs_per_phase);
        for (std::size_t i = 0; i < parts.size(); ++i) {
            kernel->addPhase(parts[i](mem),
                             i < lengths.size() ? lengths[i] : 0);
        }
        return kernel;
    };
}

std::vector<WorkloadSpec>
buildSpeclike()
{
    std::vector<WorkloadSpec> out;
    auto add = [&out](std::string name, Factory f) {
        out.push_back({std::move(name), "spec", std::move(f)});
    };

    // Compute-bound, low MPKI.
    add("perlbench.syn", alu({.workingSetBytes = 48 << 10,
                              .aluPerIter = 14, .seed = 11}));
    add("gamess.syn", alu({.workingSetBytes = 24 << 10,
                           .aluPerIter = 18, .aluLatency = 3,
                           .seed = 12}));
    add("sjeng.syn",
        phased("sjeng.syn",
               {alu({.workingSetBytes = 64 << 10, .aluPerIter = 10,
                     .seed = 13}),
                randomK({.footprintBytes = 1 << 20, .aluPerIter = 18,
                         .seed = 13})}));
    add("gobmk.syn",
        phased("gobmk.syn",
               {alu({.workingSetBytes = 96 << 10, .aluPerIter = 9,
                     .seed = 14}),
                randomK({.footprintBytes = 2 << 20, .aluPerIter = 20,
                         .seed = 14})}));

    // Stream-dominated.
    add("libquantum.syn", stream({.streams = 1, .strideBytes = 16,
                                  .footprintBytes = 32ull << 20,
                                  .aluPerIter = 6, .storeStream = true,
                                  .seed = 15}));
    add("milc.syn", stream({.streams = 3, .strideBytes = 16,
                            .footprintBytes = 24ull << 20,
                            .aluPerIter = 18, .seed = 16}));
    add("leslie3d.syn", stream({.streams = 4, .strideBytes = 8,
                                .footprintBytes = 24ull << 20,
                                .aluPerIter = 10, .storeStream = true,
                                .seed = 17}));
    add("hmmer.syn", stream({.streams = 2, .strideBytes = 32,
                             .footprintBytes = 1ull << 20,
                             .aluPerIter = 10, .unroll = 2,
                             .seed = 18}));

    // Stencils.
    add("lbm.syn", stencil({.rows = 1024, .cols = 4096,
                            .aluPerIter = 8, .seed = 19}));
    add("zeusmp.syn", stencil({.rows = 512, .cols = 2048,
                               .aluPerIter = 10, .seed = 20}));
    add("bwaves.syn", stencil({.rows = 2048, .cols = 2048,
                               .aluPerIter = 8, .seed = 21}));
    add("cactusADM.syn",
        phased("cactusADM.syn",
               {stencil({.rows = 512, .cols = 1024, .aluPerIter = 12,
                         .seed = 22}),
                stream({.streams = 2, .strideBytes = 16,
                        .footprintBytes = 8ull << 20, .aluPerIter = 12,
                        .seed = 22})}));
    add("GemsFDTD.syn", stencil({.rows = 2048, .cols = 4096,
                                 .aluPerIter = 8, .seed = 23}));

    // Pointer-heavy.
    add("mcf.syn",
        phased("mcf.syn",
               {ptrArray({.entries = 1 << 16, .objectBytes = 256,
                          .fieldOffset = 24, .aluPerIter = 24,
                          .seed = 24}),
                listChase({.nodes = 1 << 13, .nodeBytes = 128,
                           .aluPerIter = 8, .seed = 24})},
               20000, {40000, 8000}));
    add("omnetpp.syn",
        phased("omnetpp.syn",
               {listChase({.nodes = 1 << 14, .nodeBytes = 192,
                           .aluPerIter = 8, .seed = 25}),
                randomK({.footprintBytes = 8ull << 20, .aluPerIter = 16,
                         .seed = 25})},
               20000, {6000, 30000}));
    add("astar.syn",
        phased("astar.syn",
               {ptrArray({.entries = 1 << 16, .objectBytes = 128,
                          .fieldOffset = 8, .aluPerIter = 24,
                          .seed = 26}),
                randomK({.footprintBytes = 4ull << 20, .aluPerIter = 16,
                         .seed = 26})},
               20000, {30000, 15000}));
    add("xalancbmk.syn",
        phased("xalancbmk.syn",
               {listChase({.nodes = 1 << 13, .nodeBytes = 256,
                           .aluPerIter = 8, .seed = 27}),
                region({.regions = 1 << 12, .linesPerVisit = 10,
                        .seed = 27})},
               20000, {6000, 30000}));

    // Dense-region / mixed irregular.
    add("bzip2.syn",
        phased("bzip2.syn",
               {stream({.streams = 1, .strideBytes = 8,
                        .footprintBytes = 4ull << 20, .aluPerIter = 6,
                        .seed = 28}),
                region({.regions = 1 << 12, .linesPerVisit = 11,
                        .seed = 28})}));
    add("gcc.syn",
        phased("gcc.syn",
               {randomK({.footprintBytes = 6ull << 20, .aluPerIter = 16,
                         .seed = 29}),
                region({.regions = 1 << 13, .linesPerVisit = 9,
                        .randomRegionOrder = true, .seed = 29}),
                alu({.workingSetBytes = 64 << 10, .aluPerIter = 8,
                     .seed = 29})}));
    add("h264ref.syn",
        phased("h264ref.syn",
               {region({.regions = 1 << 11, .linesPerVisit = 13,
                        .seed = 30}),
                stream({.streams = 2, .strideBytes = 16,
                        .footprintBytes = 2ull << 20, .aluPerIter = 10,
                        .seed = 30})}));
    add("soplex.syn", csr({.vertices = 1 << 15, .avgDegree = 10,
                           .aluPerEdge = 6, .seed = 31}));

    if (out.size() != 21)
        panic("speclike suite must have 21 workloads");
    return out;
}

std::vector<WorkloadSpec>
buildCrono()
{
    std::vector<WorkloadSpec> out;
    auto add = [&out](std::string name, Factory f) {
        out.push_back({std::move(name), "crono", std::move(f)});
    };
    add("bfs.syn", csr({.vertices = 1 << 16, .avgDegree = 6,
                        .aluPerEdge = 5, .seed = 41}));
    add("sssp.syn", csr({.vertices = 1 << 15, .avgDegree = 10,
                         .aluPerEdge = 7, .seed = 42}));
    add("pagerank.syn",
        phased("pagerank.syn",
               {csr({.vertices = 1 << 15, .avgDegree = 12,
                     .aluPerEdge = 6, .seed = 43}),
                stream({.streams = 2, .strideBytes = 8,
                        .footprintBytes = 4ull << 20, .aluPerIter = 6,
                        .seed = 43})}));
    add("connected-comp.syn",
        phased("connected-comp.syn",
               {csr({.vertices = 1 << 16, .avgDegree = 4,
                     .aluPerEdge = 5, .seed = 44}),
                randomK({.footprintBytes = 8ull << 20, .aluPerIter = 14,
                         .seed = 44})}));
    return out;
}

std::vector<WorkloadSpec>
buildStarbench()
{
    std::vector<WorkloadSpec> out;
    auto add = [&out](std::string name, Factory f) {
        out.push_back({std::move(name), "starbench", std::move(f)});
    };
    add("md5.syn", stream({.streams = 1, .strideBytes = 64,
                           .footprintBytes = 512ull << 10,
                           .aluPerIter = 20, .seed = 51}));
    add("rgbyuv.syn", stream({.streams = 3, .strideBytes = 16,
                              .footprintBytes = 16ull << 20,
                              .aluPerIter = 12, .storeStream = true,
                              .seed = 52}));
    add("rotate.syn", stream({.streams = 1, .strideBytes = 4096,
                              .footprintBytes = 16ull << 20,
                              .aluPerIter = 12, .seed = 53}));
    add("kmeans.syn",
        phased("kmeans.syn",
               {stream({.streams = 2, .strideBytes = 8,
                        .footprintBytes = 8ull << 20, .aluPerIter = 8,
                        .seed = 54}),
                bucket({.inputBytes = 4ull << 20, .buckets = 1 << 10,
                        .seed = 54})}));
    add("streamcluster.syn",
        phased("streamcluster.syn",
               {stream({.streams = 1, .strideBytes = 16,
                        .footprintBytes = 12ull << 20, .aluPerIter = 8,
                        .seed = 55}),
                randomK({.footprintBytes = 2ull << 20, .aluPerIter = 14,
                         .seed = 55})}));
    return out;
}

std::vector<WorkloadSpec>
buildNpb()
{
    std::vector<WorkloadSpec> out;
    auto add = [&out](std::string name, Factory f) {
        out.push_back({std::move(name), "npb", std::move(f)});
    };
    add("cg.syn", csr({.vertices = 1 << 14, .avgDegree = 16,
                       .aluPerEdge = 6, .seed = 61}));
    add("mg.syn",
        phased("mg.syn",
               {stencil({.rows = 256, .cols = 1024, .aluPerIter = 10,
                         .seed = 62}),
                stream({.streams = 2, .strideBytes = 512,
                        .footprintBytes = 16ull << 20, .aluPerIter = 16,
                        .seed = 62})}));
    add("ft.syn", stream({.streams = 1, .strideBytes = 1024,
                          .footprintBytes = 32ull << 20,
                          .aluPerIter = 16, .seed = 63}));
    add("is.syn", bucket({.inputBytes = 16ull << 20,
                          .buckets = 1 << 18, .seed = 64}));
    add("bt.syn", stencil({.rows = 512, .cols = 512, .aluPerIter = 12,
                           .seed = 65}));
    add("lu.syn", stencil({.rows = 1024, .cols = 1024,
                           .aluPerIter = 10, .seed = 66}));
    add("ep.syn", alu({.workingSetBytes = 16 << 10, .aluPerIter = 16,
                       .aluLatency = 3, .seed = 67}));
    return out;
}

std::vector<WorkloadSpec>
buildTemporal()
{
    std::vector<WorkloadSpec> out;
    auto add = [&out](std::string name, Factory f) {
        out.push_back({std::move(name), "temporal", std::move(f)});
    };
    // Working sets sized so the recurring pair set per extra fits a
    // 4k-entry temporal history table (2k pairs/stream) while still
    // blowing out the L1/L2: temporal metadata can win, address
    // patterns cannot.
    add("tempstream.syn", tempStream({.elements = 1 << 11,
                                      .aluPerIter = 4, .seed = 71}));
    add("shuflist.syn", shufList({.nodes = 1 << 11, .nodeBytes = 128,
                                  .traversalsPerShuffle = 4,
                                  .swapsPerShuffle = 64,
                                  .aluPerIter = 4, .seed = 72}));
    add("histwalk.syn", histWalk({.elements = 1 << 11,
                                  .aluPerIter = 6, .seed = 73}));
    add("markovmix.syn",
        phased("markovmix.syn",
               {tempStream({.elements = 1 << 11, .aluPerIter = 6,
                            .seed = 74}),
                shufList({.nodes = 1 << 11, .traversalsPerShuffle = 8,
                          .swapsPerShuffle = 32, .aluPerIter = 6,
                          .seed = 74})}));
    return out;
}

} // namespace

const std::vector<WorkloadSpec> &
speclikeSuite()
{
    static const auto suite = buildSpeclike();
    return suite;
}

const std::vector<WorkloadSpec> &
cronoSuite()
{
    static const auto suite = buildCrono();
    return suite;
}

const std::vector<WorkloadSpec> &
starbenchSuite()
{
    static const auto suite = buildStarbench();
    return suite;
}

const std::vector<WorkloadSpec> &
npbSuite()
{
    static const auto suite = buildNpb();
    return suite;
}

const std::vector<WorkloadSpec> &
temporalSuite()
{
    static const auto suite = buildTemporal();
    return suite;
}

const std::vector<WorkloadSpec> &
allWorkloads()
{
    static const auto all = [] {
        std::vector<WorkloadSpec> out = speclikeSuite();
        for (const auto &suite :
             {cronoSuite(), starbenchSuite(), npbSuite(),
              temporalSuite()}) {
            out.insert(out.end(), suite.begin(), suite.end());
        }
        return out;
    }();
    return all;
}

const std::vector<WorkloadSpec> &
traceSuite()
{
    static const auto suite = [] {
        std::vector<WorkloadSpec> out;
        const char *env = std::getenv("DOL_TRACE_DIR");
        const std::string dir = env ? env : "tests/traces";

        std::error_code ec;
        std::vector<std::string> paths;
        for (const auto &entry :
             std::filesystem::directory_iterator(dir, ec)) {
            if (!entry.is_regular_file(ec))
                continue;
            const std::string path = entry.path().string();
            const auto has_suffix = [&path](const char *suffix) {
                const std::size_t len = std::string(suffix).size();
                return path.size() > len &&
                       path.compare(path.size() - len, len, suffix) == 0;
            };
            if (has_suffix(".champsim") || has_suffix(".champsim.xz"))
                paths.push_back(path);
        }
        std::sort(paths.begin(), paths.end());

        for (const std::string &path : paths) {
            out.push_back(
                {"trace:" + champSimTraceStem(path), "trace",
                 [path](MemoryImage &mem) {
                     return std::make_unique<TraceIngestKernel>(mem,
                                                                path);
                 }});
        }
        return out;
    }();
    return suite;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    for (const WorkloadSpec &spec : allWorkloads()) {
        if (spec.name == name)
            return spec;
    }
    for (const WorkloadSpec &spec : traceSuite()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown workload: " + name);
}

std::vector<std::vector<WorkloadSpec>>
makeMixes(unsigned count, std::uint64_t seed)
{
    const auto &pool = allWorkloads();
    Rng rng(seed);
    std::vector<std::vector<WorkloadSpec>> mixes;
    for (unsigned m = 0; m < count; ++m) {
        std::vector<WorkloadSpec> mix;
        for (unsigned c = 0; c < 4; ++c)
            mix.push_back(pool[rng.below(pool.size())]);
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

const std::vector<WorkloadSpec> &
quickSuite()
{
    static const auto suite = [] {
        std::vector<WorkloadSpec> out;
        for (const char *name :
             {"libquantum.syn", "mcf.syn", "gcc.syn", "lbm.syn",
              "omnetpp.syn", "soplex.syn"}) {
            out.push_back(findWorkload(name));
        }
        return out;
    }();
    return suite;
}

} // namespace dol
