/**
 * @file
 * Composition kernels: a compute-bound filler and a phase multiplexer
 * that interleaves sub-kernels to imitate applications whose behaviour
 * mixes several access patterns (mcf = pointers + streams, gcc =
 * irregular + dense regions, ...).
 */

#ifndef DOL_WORKLOADS_MIXED_KERNELS_HPP
#define DOL_WORKLOADS_MIXED_KERNELS_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "workloads/kernel.hpp"

namespace dol
{

/**
 * Cache-resident compute loop: a small working set with heavy ALU
 * activity (perlbench / gamess / sjeng stand-in; low MPKI).
 */
class AluKernel : public Kernel
{
  public:
    struct Params
    {
        std::uint64_t workingSetBytes = 32 * 1024;
        unsigned aluPerIter = 12;
        unsigned aluLatency = 2;
        std::uint64_t seed = 1;
    };

    AluKernel(MemoryImage &memory, const Params &params);

    void reset() override;

  protected:
    bool generate() override;

  private:
    Params _params;
    Rng _rng;
    Addr _base;
    Pc _pcBase;
};

/**
 * Runs its sub-kernels in round-robin phases of a fixed instruction
 * count each.
 */
class PhasedKernel : public Kernel
{
  public:
    PhasedKernel(std::string name, MemoryImage &memory,
                 std::uint64_t instrs_per_phase = 20000)
        : Kernel(std::move(name), memory),
          _instrsPerPhase(instrs_per_phase)
    {}

    /**
     * @param instrs phase length; 0 uses the kernel-wide default.
     */
    void
    addPhase(std::unique_ptr<Kernel> kernel, std::uint64_t instrs = 0)
    {
        _phases.push_back(std::move(kernel));
        _phaseLengths.push_back(instrs ? instrs : _instrsPerPhase);
    }

    void reset() override;

  protected:
    bool generate() override;

  private:
    std::uint64_t _instrsPerPhase;
    std::vector<std::unique_ptr<Kernel>> _phases;
    std::vector<std::uint64_t> _phaseLengths;
    std::size_t _current = 0;
    std::uint64_t _phaseCount = 0;
};

} // namespace dol

#endif // DOL_WORKLOADS_MIXED_KERNELS_HPP
