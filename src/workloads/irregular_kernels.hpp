/**
 * @file
 * Irregular and spatially dense kernels: C1's dense-region pattern,
 * uniform-random accesses, bucket scatter (NPB IS stand-in), and a
 * CSR sparse traversal (CRONO / soplex / NPB CG stand-in).
 */

#ifndef DOL_WORKLOADS_IRREGULAR_KERNELS_HPP
#define DOL_WORKLOADS_IRREGULAR_KERNELS_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workloads/kernel.hpp"

namespace dol
{

/**
 * Visits 1 KB regions and touches most lines of each in a scrambled
 * order through a single static load — non-strided but spatially
 * dense, exactly C1's target (paper section IV-C).
 */
class RegionKernel : public Kernel
{
  public:
    struct Params
    {
        std::uint64_t regions = 1u << 13; ///< 8 MB footprint
        unsigned linesPerVisit = 12;      ///< > dense threshold of 6
        bool randomRegionOrder = false;
        /** Accesses to each touched line (spatial+temporal reuse). */
        unsigned loadsPerLine = 3;
        unsigned aluPerLoad = 5;
        std::uint64_t seed = 1;
    };

    RegionKernel(MemoryImage &memory, const Params &params);

    void reset() override;

  protected:
    bool generate() override;

  private:
    Params _params;
    Rng _rng;
    Addr _base;
    std::uint64_t _visit = 0;
    Pc _pcBase;
};

/** Uniform-random line accesses over a large footprint (pure HHF). */
class RandomKernel : public Kernel
{
  public:
    struct Params
    {
        std::uint64_t footprintBytes = 16ull << 20;
        unsigned aluPerIter = 12;
        unsigned loadsPerIter = 1;
        std::uint64_t seed = 1;
    };

    RandomKernel(MemoryImage &memory, const Params &params);

    void reset() override;

  protected:
    bool generate() override;

  private:
    Params _params;
    Rng _rng;
    Addr _base;
    Pc _pcBase;
};

/**
 * Bucket scatter: a strided input stream drives random-indexed
 * read-modify-write stores (NPB IS histogramming stand-in).
 */
class BucketKernel : public Kernel
{
  public:
    struct Params
    {
        std::uint64_t inputBytes = 8ull << 20;
        std::uint64_t buckets = 1u << 16;
        unsigned aluPerIter = 6;
        std::uint64_t seed = 1;
    };

    BucketKernel(MemoryImage &memory, const Params &params);

    void reset() override;

  protected:
    bool generate() override;

  private:
    Params _params;
    Rng _rng;
    Addr _inputBase;
    Addr _bucketBase;
    std::uint64_t _pos = 0;
    Pc _pcBase;
};

/**
 * CSR sparse traversal: sequential row pointers and column indices
 * (streams) plus an indirect gather x[col[e]] (irregular), with a
 * data-dependent inner-loop trip count — the shape of BFS, PageRank,
 * SpMV, and soplex.
 */
class CsrGraphKernel : public Kernel
{
  public:
    struct Params
    {
        std::uint64_t vertices = 1u << 15;
        unsigned avgDegree = 8;
        unsigned maxDegree = 32;
        unsigned aluPerEdge = 4;
        std::uint64_t seed = 1;
    };

    CsrGraphKernel(MemoryImage &memory, const Params &params);

    void reset() override;

  protected:
    bool generate() override;

  private:
    Params _params;
    Rng _rng;
    Addr _rowBase;
    Addr _colBase;
    Addr _xBase;
    std::vector<std::uint32_t> _rowPtr;
    std::uint64_t _vertex = 0;
    Pc _pcBase;
};

} // namespace dol

#endif // DOL_WORKLOADS_IRREGULAR_KERNELS_HPP
