#include "workloads/pointer_kernels.hpp"

#include <numeric>

namespace dol
{

namespace
{

constexpr Addr kArenaStride = 1ull << 32;

Addr
arenaBase(std::uint64_t seed, unsigned which)
{
    return ((seed % 64) + 65) * kArenaStride +
           static_cast<Addr>(which) * (1ull << 28);
}

/** Seeded Fisher-Yates permutation of 0..n-1. */
std::vector<std::uint64_t>
permutation(std::uint64_t n, Rng &rng)
{
    std::vector<std::uint64_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (std::uint64_t i = n; i > 1; --i)
        std::swap(perm[i - 1], perm[rng.below(i)]);
    return perm;
}

} // namespace

// --- PointerArrayKernel ---------------------------------------------

PointerArrayKernel::PointerArrayKernel(MemoryImage &memory,
                                       const Params &params)
    : Kernel("ptrarray", memory), _params(params), _rng(params.seed),
      _arrayBase(arenaBase(params.seed, 0)),
      _heapBase(arenaBase(params.seed, 1)),
      _pcBase(0x430000 + (params.seed % 97) * 0x1000)
{
    // Populate the pointer array: arr[i] -> a scattered heap object.
    Rng build_rng(params.seed * 7919 + 13);
    auto perm = permutation(_params.entries, build_rng);
    for (std::uint64_t i = 0; i < _params.entries; ++i) {
        const Addr object =
            _heapBase + perm[i] * _params.objectBytes;
        memory.write64(_arrayBase + i * 8, object);
    }
}

void
PointerArrayKernel::reset()
{
    clearQueue();
    _pos = 0;
    _rng = Rng(_params.seed);
}

bool
PointerArrayKernel::generate()
{
    const Pc loop_start = _pcBase;
    Pc pc = loop_start;

    const Addr slot = _arrayBase + (_pos % _params.entries) * 8;
    const std::uint64_t object = memory().read64(slot);

    // Producer: the strided pointer load (r10 <- arr[i]).
    push(makeLoad(pc, slot, object, 10, 1));
    pc += 4;
    // Address computation: r11 = r10 + fieldOffset (taints r11).
    push(makeAlu(pc, 11, 10));
    pc += 4;
    // Dependent: obj->field.
    push(makeLoad(pc, object + _params.fieldOffset, 0, 12, 11));
    pc += 4;
    for (unsigned f = 0; f < _params.extraFields; ++f) {
        push(makeLoad(pc, object + _params.fieldOffset + 8 * (f + 1),
                      0, static_cast<RegId>(13 + f), 11));
        pc += 4;
    }

    for (unsigned a = 0; a < _params.aluPerIter; ++a) {
        const auto acc = static_cast<RegId>(4 + a % 3);
        push(makeAlu(pc, acc, acc, 12));
        pc += 4;
    }

    push(makeAlu(pc, 1, 1));
    pc += 4;
    push(makeBranch(pc, loop_start, true, _rng.chance(0.0005)));

    ++_pos;
    return true;
}

// --- ListChaseKernel -------------------------------------------------

ListChaseKernel::ListChaseKernel(MemoryImage &memory,
                                 const Params &params)
    : Kernel("listchase", memory), _params(params),
      _poolBase(arenaBase(params.seed, 2)),
      _pcBase(0x440000 + (params.seed % 97) * 0x1000)
{
    // Build a circular singly linked list over a seeded permutation of
    // the node pool, so consecutive nodes are not spatially related.
    Rng build_rng(params.seed * 104729 + 7);
    auto perm = permutation(_params.nodes, build_rng);
    for (std::uint64_t i = 0; i < _params.nodes; ++i) {
        const Addr node = _poolBase + perm[i] * _params.nodeBytes;
        const Addr next =
            _poolBase + perm[(i + 1) % _params.nodes] * _params.nodeBytes;
        memory.write64(node + _params.nextOffset, next);
    }
    _head = _poolBase + perm[0] * _params.nodeBytes;
    _current = _head;
}

void
ListChaseKernel::reset()
{
    clearQueue();
    _current = _head;
}

bool
ListChaseKernel::generate()
{
    const Pc loop_start = _pcBase;
    Pc pc = loop_start;

    const Addr link_addr = _current + _params.nextOffset;
    const std::uint64_t next = memory().read64(link_addr);

    // p = p->next: the chain load. Its address depends on its own
    // previous value through r10.
    push(makeLoad(pc, link_addr, next, 10, 10));
    pc += 4;

    for (unsigned f = 0; f < _params.payloadLoads; ++f) {
        // Payload loads in the same node (dependent on r10).
        push(makeLoad(pc, _current + 8 * (f + 1), 0,
                      static_cast<RegId>(12 + f), 10));
        pc += 4;
    }

    for (unsigned a = 0; a < _params.aluPerIter; ++a) {
        const auto acc = static_cast<RegId>(4 + a % 3);
        push(makeAlu(pc, acc, acc, 12));
        pc += 4;
    }

    push(makeBranch(pc, loop_start, true, false));

    _current = next;
    return true;
}

} // namespace dol
