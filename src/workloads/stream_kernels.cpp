#include "workloads/stream_kernels.hpp"

#include <cstdlib>

namespace dol
{

namespace
{
/** Disjoint virtual-address arenas for kernel data structures. */
constexpr Addr kArenaStride = 1ull << 32;

Addr
arenaBase(std::uint64_t seed, unsigned which)
{
    // Seed-dependent arena placement keeps workloads from aliasing in
    // the caches across kernels of a phased mix.
    return ((seed % 64) + 1) * kArenaStride +
           static_cast<Addr>(which) * (1ull << 28);
}

} // namespace

// --- StreamKernel --------------------------------------------------

StreamKernel::StreamKernel(MemoryImage &memory, const Params &params)
    : Kernel("stream", memory), _params(params), _rng(params.seed),
      _pcBase(0x400000 + (params.seed % 97) * 0x1000)
{
    _elems = _params.footprintBytes /
             static_cast<std::uint64_t>(std::llabs(_params.strideBytes));
    if (_elems == 0)
        _elems = 1;
    for (unsigned s = 0; s < _params.streams; ++s)
        _bases.push_back(arenaBase(params.seed, s));
    _storeBase = arenaBase(params.seed, _params.streams);
}

void
StreamKernel::reset()
{
    clearQueue();
    _pos = 0;
    _rng = Rng(_params.seed);
}

bool
StreamKernel::generate()
{
    const Pc loop_start = _pcBase;
    Pc pc = loop_start;

    for (unsigned u = 0; u < _params.unroll; ++u) {
        const std::uint64_t index = (_pos + u) % _elems;
        const std::int64_t offset =
            static_cast<std::int64_t>(index) * _params.strideBytes;
        for (unsigned s = 0; s < _params.streams; ++s) {
            const Addr addr = static_cast<Addr>(
                static_cast<std::int64_t>(_bases[s]) + offset);
            push(makeLoad(pc, addr, 0,
                          static_cast<RegId>(10 + s), /*base=*/1));
            pc += 4;
        }
        if (_params.storeStream) {
            const Addr addr = static_cast<Addr>(
                static_cast<std::int64_t>(_storeBase) + offset);
            push(makeStore(pc, addr, 0, /*data=*/10, /*base=*/1));
            pc += 4;
        }
    }

    for (unsigned a = 0; a < _params.aluPerIter; ++a) {
        // Three parallel accumulator chains: compute does not choke
        // the core's ILP, so memory latency is the bottleneck.
        const auto acc = static_cast<RegId>(4 + a % 3);
        push(makeAlu(pc, acc, acc,
                     static_cast<RegId>(10 + a % _params.streams)));
        pc += 4;
    }

    // Induction update and loop branch.
    push(makeAlu(pc, /*dst=*/1, /*s1=*/1));
    pc += 4;
    push(makeBranch(pc, loop_start, true,
                    _rng.chance(_params.mispredictRate)));

    _pos = (_pos + _params.unroll) % _elems;
    return true;
}

// --- StencilKernel -------------------------------------------------

StencilKernel::StencilKernel(MemoryImage &memory, const Params &params)
    : Kernel("stencil", memory), _params(params),
      _srcBase(arenaBase(params.seed, 0)),
      _dstBase(arenaBase(params.seed, 1)),
      _pcBase(0x410000 + (params.seed % 97) * 0x1000)
{}

void
StencilKernel::reset()
{
    clearQueue();
    _row = 1;
    _col = 1;
}

bool
StencilKernel::generate()
{
    const Pc loop_start = _pcBase;
    Pc pc = loop_start;
    const std::uint64_t row_bytes = _params.cols * 8ull;

    const Addr center =
        _srcBase + _row * row_bytes + _col * 8ull;

    // North, south, west, east loads: four distinct static loads, each
    // a canonical 8-byte stride stream as the column advances.
    push(makeLoad(pc, center - row_bytes, 0, 10, 1)); pc += 4;
    push(makeLoad(pc, center + row_bytes, 0, 11, 1)); pc += 4;
    push(makeLoad(pc, center - 8, 0, 12, 1)); pc += 4;
    push(makeLoad(pc, center + 8, 0, 13, 1)); pc += 4;

    for (unsigned a = 0; a < _params.aluPerIter; ++a) {
        push(makeAlu(pc, 4, 4, static_cast<RegId>(10 + a % 4),
                     a % 2 ? 3 : 1));
        pc += 4;
    }

    push(makeStore(pc, _dstBase + _row * row_bytes + _col * 8ull, 0,
                   4, 1));
    pc += 4;

    // Column loop branch; a row transition adds the outer branch.
    ++_col;
    const bool row_done = _col >= _params.cols - 1;
    push(makeBranch(pc, loop_start, !row_done, row_done));
    pc += 4;
    if (row_done) {
        _col = 1;
        ++_row;
        if (_row >= _params.rows - 1)
            _row = 1;
        push(makeAlu(pc, 1, 1));
        pc += 4;
        push(makeBranch(pc, loop_start - 8, true, false));
    }
    return true;
}

// --- CallStreamKernel ----------------------------------------------

CallStreamKernel::CallStreamKernel(MemoryImage &memory,
                                   const Params &params)
    : Kernel("callstream", memory), _params(params),
      _baseA(arenaBase(params.seed, 0)),
      _baseB(arenaBase(params.seed, 1)),
      _pcBase(0x420000 + (params.seed % 97) * 0x1000)
{}

void
CallStreamKernel::reset()
{
    clearQueue();
    _pos = 0;
}

bool
CallStreamKernel::generate()
{
    const Pc loop_start = _pcBase;
    const Pc site_a = _pcBase + 0x10;
    const Pc site_b = _pcBase + 0x30;
    const Pc helper = _pcBase + 0x100;

    const std::uint64_t elems_a =
        _params.footprintBytes /
        static_cast<std::uint64_t>(_params.strideA);
    const std::uint64_t elems_b =
        _params.footprintBytes /
        static_cast<std::uint64_t>(_params.strideB);

    // Call site A: helper walks stream A.
    push(makeCall(site_a, helper));
    push(makeLoad(helper,
                  static_cast<Addr>(
                      static_cast<std::int64_t>(_baseA) +
                      static_cast<std::int64_t>(_pos % elems_a) *
                          _params.strideA),
                  0, 10, 1));
    push(makeAlu(helper + 4, 11, 10));
    push(makeReturn(helper + 8, site_a + 4));

    // Call site B: the same helper load walks stream B.
    push(makeCall(site_b, helper));
    push(makeLoad(helper,
                  static_cast<Addr>(
                      static_cast<std::int64_t>(_baseB) +
                      static_cast<std::int64_t>(_pos % elems_b) *
                          _params.strideB),
                  0, 10, 1));
    push(makeAlu(helper + 4, 12, 10));
    push(makeReturn(helper + 8, site_b + 4));

    push(makeAlu(loop_start + 0x50, 1, 1));
    push(makeBranch(loop_start + 0x54, loop_start, true, false));

    ++_pos;
    return true;
}

} // namespace dol
