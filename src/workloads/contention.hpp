/**
 * @file
 * Named multi-core contention scenarios (paper section V-A).
 *
 * A CoreSpec binds one core to a workload, a prefetcher registry name
 * and an optional private instruction budget, so a mix can pit an
 * aggressive streaming prefetcher against a pointer-chaser on the
 * same shared L3 and DRAM channel. The mix library names the
 * recurring experiment shapes — a streamer starving a pointer chase,
 * four temporal co-runners fighting for bandwidth, a prefetch storm
 * next to a quiet ALU core — so sweeps, tests and benches reference
 * one canonical definition.
 */

#ifndef DOL_WORKLOADS_CONTENTION_HPP
#define DOL_WORKLOADS_CONTENTION_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace dol
{

/** One core's configuration inside a heterogeneous mix. */
struct CoreSpec
{
    /** Workload registry name (findWorkload). */
    std::string workload;
    /** Prefetcher registry name; empty disables prefetching. */
    std::string prefetcher;
    /** Private instruction budget; 0 = the SimConfig budget. */
    std::uint64_t maxInstrs = 0;
};

/** A named contention scenario: one CoreSpec per core. */
struct ContentionMix
{
    std::string name;
    std::string description;
    std::vector<CoreSpec> cores;
};

/** The canonical contention scenarios, in stable order. */
const std::vector<ContentionMix> &contentionMixes();

/** Find a mix by name (fatal on unknown, listing valid names). */
const ContentionMix &findContentionMix(const std::string &name);

/** "core0|core1|..." label of the per-core prefetcher names. */
std::string mixPrefetcherLabel(const ContentionMix &mix);

} // namespace dol

#endif // DOL_WORKLOADS_CONTENTION_HPP
