/**
 * @file
 * Temporal-correlation kernels: access sequences whose only
 * exploitable structure is *recurrence* — the same irregular order
 * seen before — rather than strides, regions, or pointer values.
 * They are the workloads a Markov/temporal prefetcher (Triangel) wins
 * on and every address-pattern prefetcher loses on:
 *
 *  - TemporalStreamKernel: a fixed seeded-random line sequence
 *    traversed repeatedly (repeated traversal orders);
 *  - ShuffledListKernel: a linked list re-traversed many times, with
 *    a small fraction of links reshuffled between traversals (stable
 *    temporal pairs plus controlled churn, and a value chain for the
 *    pointer-chase engine);
 *  - HistoryKernel: a second-order recurrence over an index table, so
 *    the next address depends on the *history* of visited indices.
 */

#ifndef DOL_WORKLOADS_TEMPORAL_KERNELS_HPP
#define DOL_WORKLOADS_TEMPORAL_KERNELS_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workloads/kernel.hpp"

namespace dol
{

/**
 * for (;;) for (i...) use(data[seq[i]]);  — the sequence is a seeded
 * random scatter, so only the repetition of the order itself is
 * predictable. Several independent streams (distinct PCs, distinct
 * arenas, distinct orders) run interleaved, so the coordinator's
 * round-robin binding spreads them across the extra components.
 */
class TemporalStreamKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned streams = 3;
        std::uint64_t elements = 1u << 11; ///< per stream
        std::uint64_t elementBytes = 256;
        unsigned aluPerIter = 4;
        std::uint64_t seed = 1;
    };

    TemporalStreamKernel(MemoryImage &memory, const Params &params);

    void reset() override;

    /** Address of @p stream's sequence position @p index (test hook). */
    Addr elementAddr(unsigned stream, std::uint64_t index) const;

  protected:
    bool generate() override;

  private:
    Params _params;
    Rng _rng;
    Addr _dataBase;
    std::vector<std::vector<std::uint64_t>> _orders; ///< per stream
    std::uint64_t _pos = 0;
    Pc _pcBase;
};

/**
 * while (p) p = p->next;  — re-traversed many times; every few
 * traversals a handful of links are swapped, so temporal metadata is
 * mostly reusable but must tolerate churn. Link loads form a value
 * chain (addr == previous value), feeding the pointer-chase engine.
 * Several independent chains (distinct PCs, pools, permutations)
 * advance in lockstep so the coordinator spreads them across extras.
 */
class ShuffledListKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned chains = 3;
        std::uint64_t nodes = 1u << 11; ///< per chain
        std::uint64_t nodeBytes = 128;
        /** Full traversals between reshuffles. */
        unsigned traversalsPerShuffle = 4;
        /** Order positions swapped per reshuffle (per chain). */
        unsigned swapsPerShuffle = 64;
        unsigned aluPerIter = 4;
        unsigned payloadLoads = 1;
        std::uint64_t seed = 1;
    };

    ShuffledListKernel(MemoryImage &memory, const Params &params);

    void reset() override;

    Addr headNode(unsigned chain = 0) const { return _heads[chain]; }
    std::uint64_t traversalCount() const { return _traversals; }

  protected:
    bool generate() override;

  private:
    void relink(unsigned chain);
    void shuffle();

    Params _params;
    Rng _shuffleRng;
    Addr _poolBase;
    std::vector<Addr> _heads;
    std::vector<Addr> _currents;
    std::vector<std::vector<std::uint64_t>> _orders;
    std::vector<std::vector<std::uint64_t>> _initialOrders;
    std::uint64_t _steps = 0;
    std::uint64_t _traversals = 0;
    Pc _pcBase;
};

/**
 * idx = table[(31*idx + 17*prev + 7) % N]  — the visited-address
 * sequence is a pure function of the last two indices, settling into
 * a long cycle whose pairs recur exactly; nothing about the addresses
 * themselves predicts the successor.
 */
class HistoryKernel : public Kernel
{
  public:
    struct Params
    {
        std::uint64_t elements = 1u << 11;
        std::uint64_t elementBytes = 256;
        unsigned aluPerIter = 6;
        std::uint64_t seed = 1;
    };

    HistoryKernel(MemoryImage &memory, const Params &params);

    void reset() override;

  protected:
    bool generate() override;

  private:
    std::uint64_t nextIndex() const;

    Params _params;
    Addr _tableBase;
    Addr _dataBase;
    std::uint64_t _index;
    std::uint64_t _prevIndex;
    Pc _pcBase;
};

} // namespace dol

#endif // DOL_WORKLOADS_TEMPORAL_KERNELS_HPP
