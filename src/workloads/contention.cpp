#include "workloads/contention.hpp"

#include "common/log.hpp"

namespace dol
{

const std::vector<ContentionMix> &
contentionMixes()
{
    static const std::vector<ContentionMix> mixes = {
        {"stream_starves_pchase",
         "aggressive streamer floods the channel a pointer chase "
         "depends on",
         {{"libquantum.syn", "TPC+SPP"},
          {"omnetpp.syn", "PChase"}}},
        {"temporal_quad",
         "four temporal workloads with enlarged composites compete "
         "for bandwidth",
         {{"tempstream.syn", "TPC+SPP+Triangel+PChase"},
          {"shuflist.syn", "TPC+SPP+Triangel+PChase"},
          {"histwalk.syn", "TPC+SPP+Triangel+PChase"},
          {"markovmix.syn", "TPC+SPP+Triangel+PChase"}}},
        {"prefetch_storm_vs_quiet",
         "a four-extra composite storms DRAM next to a quiet ALU core",
         {{"milc.syn", "TPC+SPP+Triangel+PChase"},
          {"ep.syn", "SPP"}}},
        {"hetero_quad",
         "four cores, four distinct prefetchers, four access patterns",
         {{"libquantum.syn", "TPC"},
          {"mcf.syn", "SPP"},
          {"omnetpp.syn", "PChase"},
          {"tempstream.syn", "Triangel"}}},
    };
    return mixes;
}

const ContentionMix &
findContentionMix(const std::string &name)
{
    for (const ContentionMix &mix : contentionMixes()) {
        if (mix.name == name)
            return mix;
    }
    std::string known;
    for (const ContentionMix &mix : contentionMixes()) {
        if (!known.empty())
            known += ", ";
        known += mix.name;
    }
    fatal("unknown contention mix '" + name + "' (known: " + known +
          ")");
}

std::string
mixPrefetcherLabel(const ContentionMix &mix)
{
    std::string label;
    for (const CoreSpec &core : mix.cores) {
        if (!label.empty())
            label += '|';
        label += core.prefetcher.empty() ? "none" : core.prefetcher;
    }
    return label;
}

} // namespace dol
