/**
 * @file
 * Strided-stream kernels: canonical streams (T2's home turf), 2D
 * stencils, and a call-site-disambiguation stressor for T2's mPC.
 */

#ifndef DOL_WORKLOADS_STREAM_KERNELS_HPP
#define DOL_WORKLOADS_STREAM_KERNELS_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "workloads/kernel.hpp"

namespace dol
{

/**
 * N independent strided streams walked inside one inner loop, with
 * configurable compute density and an optional output (store) stream.
 * Imitates streaming kernels such as libquantum / milc / leslie3d.
 */
class StreamKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned streams = 2;
        std::int64_t strideBytes = 64;
        std::uint64_t footprintBytes = 8ull << 20;
        unsigned aluPerIter = 2;
        bool storeStream = false;
        unsigned unroll = 1;
        double mispredictRate = 0.0005;
        std::uint64_t seed = 1;
    };

    StreamKernel(MemoryImage &memory, const Params &params);

    void reset() override;

  protected:
    bool generate() override;

  private:
    Params _params;
    Rng _rng;
    std::vector<Addr> _bases;
    Addr _storeBase = 0;
    std::uint64_t _pos = 0;
    std::uint64_t _elems = 0;
    Pc _pcBase;
};

/**
 * Five-point 2D stencil sweep (lbm / zeusmp / bwaves stand-in): four
 * input streams at fixed offsets plus an output store stream; the
 * row-boundary transitions briefly break every stride.
 */
class StencilKernel : public Kernel
{
  public:
    struct Params
    {
        unsigned rows = 512;
        unsigned cols = 2048;     ///< 8-byte elements per row
        unsigned aluPerIter = 4;
        std::uint64_t seed = 1;
    };

    StencilKernel(MemoryImage &memory, const Params &params);

    void reset() override;

  protected:
    bool generate() override;

  private:
    Params _params;
    Addr _srcBase;
    Addr _dstBase;
    unsigned _row = 1;
    unsigned _col = 1;
    Pc _pcBase;
};

/**
 * Two strided streams accessed through the *same static load* in a
 * helper function called from two different sites — only the RAS-xor
 * mPC can tell the streams apart (paper IV-A.2). Used by the T2
 * design-choice ablation.
 */
class CallStreamKernel : public Kernel
{
  public:
    struct Params
    {
        std::int64_t strideA = 64;
        std::int64_t strideB = 192;
        std::uint64_t footprintBytes = 4ull << 20;
        std::uint64_t seed = 1;
    };

    CallStreamKernel(MemoryImage &memory, const Params &params);

    void reset() override;

  protected:
    bool generate() override;

  private:
    Params _params;
    Addr _baseA;
    Addr _baseB;
    std::uint64_t _pos = 0;
    Pc _pcBase;
};

} // namespace dol

#endif // DOL_WORKLOADS_STREAM_KERNELS_HPP
