/**
 * @file
 * Binary trace record/replay.
 *
 * Any kernel's instruction stream can be recorded to a compact binary
 * file and replayed later as a Kernel — useful for sharing workloads,
 * pinning down regressions, and feeding externally captured traces
 * into the simulator (the record layout carries everything the paper's
 * mechanisms need: PCs, registers, values, and branch structure).
 */

#ifndef DOL_WORKLOADS_TRACE_FILE_HPP
#define DOL_WORKLOADS_TRACE_FILE_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "workloads/kernel.hpp"

namespace dol
{

/** On-disk record: a fixed-width packing of Instr. */
struct TraceRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint64_t value;
    std::uint64_t target;
    std::uint8_t op;
    std::uint8_t flags; ///< bit0 taken, bit1 mispredicted
    std::uint8_t dst;
    std::uint8_t src1;
    std::uint8_t src2;
    std::uint8_t size;
    std::uint8_t latency;
    std::uint8_t pad;

    static TraceRecord pack(const Instr &instr);
    Instr unpack() const;
};

static_assert(sizeof(TraceRecord) == 40, "stable on-disk layout");

/** Magic + version header guarding against format drift. */
struct TraceHeader
{
    char magic[8] = {'D', 'O', 'L', 'T', 'R', 'C', '0', '1'};
    std::uint64_t instructionCount = 0;
};

/**
 * Record the first @p max_instrs instructions of @p kernel to
 * @p path. The kernel is reset first and left reset afterwards.
 *
 * @return the number of instructions written.
 */
std::uint64_t recordTrace(Kernel &kernel, const std::string &path,
                          std::uint64_t max_instrs);

/**
 * Write @p records to @p path in the DOLTRC01 trace format (the
 * shrinker's reproducer output). @return false on I/O error.
 */
bool writeTraceRecords(const std::string &path,
                       const std::vector<TraceRecord> &records);

/**
 * Read every record of a DOLTRC01 trace file.
 * @return false (with @p error set) on I/O or format problems.
 */
bool readTraceRecords(const std::string &path,
                      std::vector<TraceRecord> &out,
                      std::string *error = nullptr);

/** A Kernel that replays a recorded trace (looping at the end). */
class TraceKernel : public Kernel
{
  public:
    /**
     * @param loop replay from the start when the trace runs out
     *             (keeps instruction budgets independent of trace
     *             length)
     */
    TraceKernel(MemoryImage &memory, const std::string &path,
                bool loop = true);

    void reset() override;

    std::uint64_t traceLength() const { return _records.size(); }

  protected:
    bool generate() override;

  private:
    std::vector<TraceRecord> _records;
    std::size_t _position = 0;
    bool _loop;
};

} // namespace dol

#endif // DOL_WORKLOADS_TRACE_FILE_HPP
