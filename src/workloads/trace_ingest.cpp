#include "workloads/trace_ingest.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>

#include "common/log.hpp"

namespace dol
{

namespace
{

/** Absurd-size guard: 4M records (256 MiB) is far beyond any fixture
 *  and catches garbage files whose size merely happens to be a
 *  multiple of the record size. */
constexpr std::uint64_t kMaxRecords = 1u << 22;

std::uint64_t
rd64le(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
wr64le(std::uint8_t *p, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/** splitmix64 finalizer: the deterministic value model's hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

/** Single-quote @p path for the shell (xz pipe). */
std::string
shellQuote(const std::string &path)
{
    std::string quoted = "'";
    for (const char c : path) {
        if (c == '\'')
            quoted += "'\\''";
        else
            quoted += c;
    }
    quoted += "'";
    return quoted;
}

bool
readRawBytes(const std::string &path, std::vector<std::uint8_t> &bytes,
             std::string *error)
{
    const bool compressed =
        path.size() > 3 && path.compare(path.size() - 3, 3, ".xz") == 0;
    if (!compressed) {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            return fail(error, "cannot open trace: " + path);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
        return true;
    }

    const std::string command = "xz -dc " + shellQuote(path);
    FILE *pipe = ::popen(command.c_str(), "r");
    if (!pipe)
        return fail(error, "cannot spawn xz for: " + path);
    std::uint8_t chunk[1 << 16];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof chunk, pipe)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + got);
    const int status = ::pclose(pipe);
    if (status != 0)
        return fail(error, "xz decode failed for: " + path);
    return true;
}

/** ChampSim register slot -> simulated RegId. 0 is "no operand". */
RegId
mapReg(std::uint8_t reg, TraceIngestStats *stats)
{
    if (reg == 0)
        return kNoReg;
    if (reg >= kNumRegs) {
        if (stats)
            ++stats->clampedRegs;
        return static_cast<RegId>(reg % kNumRegs);
    }
    return static_cast<RegId>(reg);
}

} // namespace

void
ChampSimInstr::pack(std::uint8_t out[kBytes]) const
{
    std::memset(out, 0, kBytes);
    wr64le(out, ip);
    out[8] = isBranch;
    out[9] = branchTaken;
    std::memcpy(out + 10, destRegs, kNumDestRegs);
    std::memcpy(out + 12, srcRegs, kNumSrcRegs);
    for (unsigned i = 0; i < kNumDestMem; ++i)
        wr64le(out + 16 + 8 * i, destMem[i]);
    for (unsigned i = 0; i < kNumSrcMem; ++i)
        wr64le(out + 32 + 8 * i, srcMem[i]);
}

ChampSimInstr
ChampSimInstr::unpack(const std::uint8_t in[kBytes])
{
    ChampSimInstr record;
    record.ip = rd64le(in);
    record.isBranch = in[8];
    record.branchTaken = in[9];
    std::memcpy(record.destRegs, in + 10, kNumDestRegs);
    std::memcpy(record.srcRegs, in + 12, kNumSrcRegs);
    for (unsigned i = 0; i < kNumDestMem; ++i)
        record.destMem[i] = rd64le(in + 16 + 8 * i);
    for (unsigned i = 0; i < kNumSrcMem; ++i)
        record.srcMem[i] = rd64le(in + 32 + 8 * i);
    return record;
}

bool
readChampSimTrace(const std::string &path,
                  std::vector<ChampSimInstr> &out, std::string *error)
{
    std::vector<std::uint8_t> bytes;
    if (!readRawBytes(path, bytes, error))
        return false;

    if (bytes.empty())
        return fail(error, "empty trace: " + path);
    if (bytes.size() % ChampSimInstr::kBytes != 0) {
        return fail(error,
                    "truncated trace (" + std::to_string(bytes.size()) +
                        " bytes is not a multiple of " +
                        std::to_string(ChampSimInstr::kBytes) +
                        "): " + path);
    }
    const std::uint64_t count = bytes.size() / ChampSimInstr::kBytes;
    if (count > kMaxRecords) {
        return fail(error,
                    "trace too large (" + std::to_string(count) +
                        " records): " + path);
    }

    out.clear();
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const ChampSimInstr record = ChampSimInstr::unpack(
            bytes.data() + i * ChampSimInstr::kBytes);
        // Flag bytes are strictly 0/1 in well-formed traces; anything
        // else means we are not looking at a ChampSim trace at all.
        if (record.isBranch > 1 || record.branchTaken > 1) {
            return fail(error,
                        "garbage flags at record " + std::to_string(i) +
                            " (is_branch=" +
                            std::to_string(record.isBranch) +
                            " taken=" +
                            std::to_string(record.branchTaken) +
                            "): " + path);
        }
        out.push_back(record);
    }
    return true;
}

bool
writeChampSimTrace(const std::string &path,
                   const std::vector<ChampSimInstr> &records,
                   std::string *error)
{
    std::ofstream outfile(path, std::ios::binary | std::ios::trunc);
    if (!outfile)
        return fail(error, "cannot open for write: " + path);
    std::uint8_t buffer[ChampSimInstr::kBytes];
    for (const ChampSimInstr &record : records) {
        record.pack(buffer);
        outfile.write(reinterpret_cast<const char *>(buffer),
                      sizeof buffer);
    }
    outfile.flush();
    if (!outfile)
        return fail(error, "short write: " + path);
    return true;
}

std::vector<Instr>
expandChampSimTrace(const std::vector<ChampSimInstr> &records,
                    MemoryImage &image, TraceIngestStats *stats)
{
    TraceIngestStats local;
    std::vector<Instr> instrs;
    instrs.reserve(records.size() * 2);

    // The deterministic heap model: current value per 8-byte slot,
    // plus the first value each slot ever held (baked into the image
    // below so fill-time pointer reads match trace load values).
    std::unordered_map<Addr, std::uint64_t> heap;
    std::unordered_map<Addr, std::uint64_t> first_touch;

    const auto read_heap = [&](Addr addr) {
        auto [it, inserted] = heap.try_emplace(addr, 0);
        if (inserted) {
            it->second = mix64(addr);
            first_touch.emplace(addr, it->second);
        }
        return it->second;
    };
    const auto write_heap = [&](Addr addr, std::uint64_t value) {
        const auto [it, inserted] = heap.insert_or_assign(addr, value);
        (void)it;
        if (inserted)
            first_touch.emplace(addr, value);
    };

    for (std::size_t i = 0; i < records.size(); ++i) {
        const ChampSimInstr &record = records[i];
        ++local.records;

        RegId dst = kNoReg;
        for (const std::uint8_t reg : record.destRegs) {
            if ((dst = mapReg(reg, &local)) != kNoReg)
                break;
        }
        RegId base = kNoReg;
        RegId data = kNoReg;
        for (const std::uint8_t reg : record.srcRegs) {
            const RegId mapped = mapReg(reg, &local);
            if (mapped == kNoReg)
                continue;
            if (base == kNoReg)
                base = mapped;
            else if (data == kNoReg)
                data = mapped;
        }

        bool emitted_mem = false;
        for (const std::uint64_t addr : record.srcMem) {
            if (addr == 0)
                continue;
            instrs.push_back(
                makeLoad(record.ip, addr, read_heap(addr), dst, base));
            ++local.loads;
            emitted_mem = true;
        }
        for (const std::uint64_t addr : record.destMem) {
            if (addr == 0)
                continue;
            const std::uint64_t value =
                mix64(record.ip ^ mix64(addr ^ i));
            write_heap(addr, value);
            instrs.push_back(
                makeStore(record.ip, addr, value, data, base));
            ++local.stores;
            emitted_mem = true;
        }

        if (record.isBranch) {
            // ChampSim records carry no target; the next record's ip
            // is where the front end actually went. The final branch
            // closes the loop back to record zero, matching the
            // kernel's replay wrap-around.
            const Pc target = i + 1 < records.size()
                                  ? records[i + 1].ip
                                  : records.front().ip;
            instrs.push_back(makeBranch(record.ip, target,
                                        record.branchTaken != 0));
            ++local.branches;
        } else if (!emitted_mem) {
            instrs.push_back(makeAlu(record.ip, dst, base, data));
            ++local.alus;
        }
    }

    for (const auto &[addr, value] : first_touch)
        image.write64(addr, value);

    local.instrs = instrs.size();
    if (stats)
        *stats = local;
    return instrs;
}

TraceIngestKernel::TraceIngestKernel(MemoryImage &memory,
                                     const std::string &path, bool loop)
    : Kernel("trace:" + champSimTraceStem(path), memory), _loop(loop)
{
    std::vector<ChampSimInstr> records;
    std::string error;
    if (!readChampSimTrace(path, records, &error))
        fatal(error);
    _instrs = expandChampSimTrace(records, memory, &_stats);
}

TraceIngestKernel::TraceIngestKernel(
    MemoryImage &memory, const std::vector<ChampSimInstr> &records,
    bool loop, std::string name)
    : Kernel(std::move(name), memory), _loop(loop)
{
    _instrs = expandChampSimTrace(records, memory, &_stats);
}

void
TraceIngestKernel::reset()
{
    _position = 0;
    clearQueue();
}

bool
TraceIngestKernel::generate()
{
    if (_instrs.empty())
        return false;
    if (_position >= _instrs.size()) {
        if (!_loop)
            return false;
        _position = 0;
    }
    // One batch per generate() call keeps queue occupancy bounded
    // while amortising the virtual-call overhead (PR 9's batch loop).
    const std::size_t batch =
        std::min<std::size_t>(64, _instrs.size() - _position);
    for (std::size_t i = 0; i < batch; ++i)
        push(_instrs[_position + i]);
    _position += batch;
    return true;
}

std::string
champSimTraceStem(const std::string &filename)
{
    std::string stem = filename;
    const std::size_t slash = stem.find_last_of('/');
    if (slash != std::string::npos)
        stem = stem.substr(slash + 1);
    const auto strip = [&stem](const char *suffix) {
        const std::size_t len = std::strlen(suffix);
        if (stem.size() > len &&
            stem.compare(stem.size() - len, len, suffix) == 0) {
            stem.resize(stem.size() - len);
        }
    };
    strip(".xz");
    strip(".champsim");
    return stem;
}

} // namespace dol
