#include "workloads/trace_file.hpp"

#include <cstring>

#include "common/log.hpp"

namespace dol
{

TraceRecord
TraceRecord::pack(const Instr &instr)
{
    TraceRecord record{};
    record.pc = instr.pc;
    record.addr = instr.addr;
    record.value = instr.value;
    record.target = instr.target;
    record.op = static_cast<std::uint8_t>(instr.op);
    record.flags = static_cast<std::uint8_t>(
        (instr.taken ? 1 : 0) | (instr.mispredicted ? 2 : 0));
    record.dst = instr.dst;
    record.src1 = instr.src1;
    record.src2 = instr.src2;
    record.size = instr.size;
    record.latency = instr.latency;
    return record;
}

Instr
TraceRecord::unpack() const
{
    Instr instr;
    instr.pc = pc;
    instr.addr = addr;
    instr.value = value;
    instr.target = target;
    instr.op = static_cast<Op>(op);
    instr.taken = flags & 1;
    instr.mispredicted = flags & 2;
    instr.dst = dst;
    instr.src1 = src1;
    instr.src2 = src2;
    instr.size = size;
    instr.latency = latency;
    return instr;
}

std::uint64_t
recordTrace(Kernel &kernel, const std::string &path,
            std::uint64_t max_instrs)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot open trace file for writing: " + path);

    kernel.reset();
    TraceHeader header;
    // Header rewritten at the end once the count is known.
    std::fwrite(&header, sizeof header, 1, file);

    Instr instr;
    std::uint64_t written = 0;
    while (written < max_instrs && kernel.next(instr)) {
        const TraceRecord record = TraceRecord::pack(instr);
        if (std::fwrite(&record, sizeof record, 1, file) != 1) {
            std::fclose(file);
            fatal("short write recording trace: " + path);
        }
        ++written;
    }

    header.instructionCount = written;
    std::fseek(file, 0, SEEK_SET);
    std::fwrite(&header, sizeof header, 1, file);
    std::fclose(file);
    kernel.reset();
    return written;
}

bool
writeTraceRecords(const std::string &path,
                  const std::vector<TraceRecord> &records)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return false;
    TraceHeader header;
    header.instructionCount = records.size();
    bool ok = std::fwrite(&header, sizeof header, 1, file) == 1;
    if (ok && !records.empty()) {
        ok = std::fwrite(records.data(), sizeof(TraceRecord),
                         records.size(), file) == records.size();
    }
    return std::fclose(file) == 0 && ok;
}

bool
readTraceRecords(const std::string &path, std::vector<TraceRecord> &out,
                 std::string *error)
{
    out.clear();
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        if (error)
            *error = "cannot open trace file: " + path;
        return false;
    }
    TraceHeader header;
    const TraceHeader expected;
    if (std::fread(&header, sizeof header, 1, file) != 1 ||
        std::memcmp(header.magic, expected.magic,
                    sizeof header.magic) != 0) {
        std::fclose(file);
        if (error)
            *error = "not a dol trace file: " + path;
        return false;
    }
    out.resize(header.instructionCount);
    const std::size_t read = std::fread(out.data(), sizeof(TraceRecord),
                                        out.size(), file);
    std::fclose(file);
    if (read != out.size()) {
        if (error)
            *error = "truncated trace file: " + path;
        out.clear();
        return false;
    }
    return true;
}

TraceKernel::TraceKernel(MemoryImage &memory, const std::string &path,
                         bool loop)
    : Kernel("trace:" + path, memory), _loop(loop)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file: " + path);

    TraceHeader header;
    const TraceHeader expected;
    if (std::fread(&header, sizeof header, 1, file) != 1 ||
        std::memcmp(header.magic, expected.magic,
                    sizeof header.magic) != 0) {
        std::fclose(file);
        fatal("not a dol trace file: " + path);
    }

    _records.resize(header.instructionCount);
    const std::size_t read = std::fread(
        _records.data(), sizeof(TraceRecord), _records.size(), file);
    std::fclose(file);
    if (read != _records.size())
        fatal("truncated trace file: " + path);
}

void
TraceKernel::reset()
{
    clearQueue();
    _position = 0;
}

bool
TraceKernel::generate()
{
    if (_position >= _records.size()) {
        if (!_loop || _records.empty())
            return false;
        _position = 0;
    }
    push(_records[_position++].unpack());
    return true;
}

} // namespace dol
