#include "workloads/mixed_kernels.hpp"

#include "common/log.hpp"

namespace dol
{

AluKernel::AluKernel(MemoryImage &memory, const Params &params)
    : Kernel("alu", memory), _params(params), _rng(params.seed),
      _base((((params.seed % 64) + 193) << 32)),
      _pcBase(0x490000 + (params.seed % 97) * 0x1000)
{}

void
AluKernel::reset()
{
    clearQueue();
    _rng = Rng(_params.seed);
}

bool
AluKernel::generate()
{
    const Pc loop_start = _pcBase;
    Pc pc = loop_start;

    // One hot load (cache-resident working set) and lots of compute.
    const Addr addr =
        _base + lineAddr(_rng.below(_params.workingSetBytes));
    push(makeLoad(pc, addr, 0, 10, 1));
    pc += 4;
    for (unsigned a = 0; a < _params.aluPerIter; ++a) {
        push(makeAlu(pc, static_cast<RegId>(4 + a % 4),
                     static_cast<RegId>(4 + (a + 1) % 4), 10,
                     static_cast<std::uint8_t>(_params.aluLatency)));
        pc += 4;
    }
    push(makeAlu(pc, 1, 1));
    pc += 4;
    push(makeBranch(pc, loop_start, true, _rng.chance(0.003)));
    return true;
}

void
PhasedKernel::reset()
{
    clearQueue();
    for (auto &phase : _phases)
        phase->reset();
    _current = 0;
    _phaseCount = 0;
}

bool
PhasedKernel::generate()
{
    if (_phases.empty())
        panic("PhasedKernel without phases");

    Instr instr;
    // Skip exhausted phases (rare: most kernels are infinite).
    for (std::size_t tries = 0; tries <= _phases.size(); ++tries) {
        if (_phases[_current]->next(instr)) {
            push(instr);
            if (++_phaseCount >= _phaseLengths[_current]) {
                _phaseCount = 0;
                _current = (_current + 1) % _phases.size();
            }
            return true;
        }
        _current = (_current + 1) % _phases.size();
        _phaseCount = 0;
    }
    return false;
}

} // namespace dol
