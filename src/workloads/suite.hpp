/**
 * @file
 * Workload suites: named kernel configurations standing in for the
 * paper's four benchmark collections (SPEC CPU2006, CRONO graph suite,
 * STARBENCH embedded suite, NPB scientific suite) plus the 4-thread
 * multiprogrammed mixes of section V-A. Each ".syn" workload imitates
 * the dominant access-pattern mix of the program it is named after;
 * DESIGN.md section 2 records the substitution rationale.
 */

#ifndef DOL_WORKLOADS_SUITE_HPP
#define DOL_WORKLOADS_SUITE_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workloads/kernel.hpp"

namespace dol
{

struct WorkloadSpec
{
    std::string name;
    std::string suite;
    std::function<std::unique_ptr<Kernel>(MemoryImage &)> factory;
};

/** The 21 SPEC-like single-core workloads (Figure 8's x-axis). */
const std::vector<WorkloadSpec> &speclikeSuite();

/** Graph workloads (CRONO stand-in). */
const std::vector<WorkloadSpec> &cronoSuite();

/** Embedded/streaming workloads (STARBENCH stand-in). */
const std::vector<WorkloadSpec> &starbenchSuite();

/** Scientific workloads (NPB stand-in). */
const std::vector<WorkloadSpec> &npbSuite();

/**
 * Temporal-correlation workloads: repeated irregular traversal
 * orders, shuffled-list re-traversals, and history-dependent
 * sequences — the patterns the temporal/pointer-chase extras target.
 */
const std::vector<WorkloadSpec> &temporalSuite();

/** Every single-core workload, all suites concatenated. */
const std::vector<WorkloadSpec> &allWorkloads();

/**
 * ChampSim trace workloads (`--suite trace`): one `trace:<stem>` spec
 * per `*.champsim` / `*.champsim.xz` file in $DOL_TRACE_DIR (default
 * `tests/traces`), sorted by filename. Empty when the directory does
 * not exist. Deliberately NOT folded into allWorkloads(): the set
 * depends on the working directory, and `--suite all` / makeMixes()
 * must stay byte-deterministic regardless of where dolsim runs.
 */
const std::vector<WorkloadSpec> &traceSuite();

/** Find a workload by name, searching the synthetic suites then the
 *  trace suite (fatal on unknown). */
const WorkloadSpec &findWorkload(const std::string &name);

/**
 * Seeded random 4-workload mixes drawn from all suites (the paper's
 * 4-core multiprogrammed experiments).
 */
std::vector<std::vector<WorkloadSpec>>
makeMixes(unsigned count, std::uint64_t seed = 42);

/** A reduced workload list for smoke tests and quick runs. */
const std::vector<WorkloadSpec> &quickSuite();

} // namespace dol

#endif // DOL_WORKLOADS_SUITE_HPP
