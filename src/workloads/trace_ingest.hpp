/**
 * @file
 * ChampSim-format trace ingestion: a frontend that replays real
 * program traces through the Kernel interface, so every prefetcher —
 * and especially the adaptive coordinator — can be evaluated on
 * recorded access streams instead of only synthetic generators.
 *
 * The on-disk format is ChampSim's fixed 64-byte little-endian
 * instruction record (no header):
 *
 *   u64 ip; u8 is_branch; u8 branch_taken;
 *   u8 destination_registers[2]; u8 source_registers[4];
 *   u64 destination_memory[2];   u64 source_memory[4];
 *
 * `.xz`-compressed traces (the format ChampSim traces ship in) are
 * decoded through the system `xz` binary; plain files are read
 * directly. Register id 0 means "no operand" (ChampSim's empty slot);
 * ids at or above the simulated ISA's 64 registers are folded down
 * modulo kNumRegs and counted.
 *
 * Each record expands deterministically into the simulator's Instr
 * stream: one kLoad per source memory operand, one kStore per
 * destination memory operand, a kBranch (targeting the next record's
 * ip) for branch records, and a kAlu for records with neither. Load
 * values come from a deterministic heap model — first touch of an
 * address defines its value by a fixed hash, stores overwrite it —
 * and the first-touch values are baked into the MemoryImage at
 * construction so P1/PChase pointer dereferences observe the same
 * bytes the trace loads return. The whole stream is decoded once at
 * construction; reset() rewinds to record zero, giving the same
 * deterministic-replay semantics the temporal kernels have.
 */

#ifndef DOL_WORKLOADS_TRACE_INGEST_HPP
#define DOL_WORKLOADS_TRACE_INGEST_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/kernel.hpp"

namespace dol
{

/** One decoded ChampSim instruction record. */
struct ChampSimInstr
{
    static constexpr std::size_t kBytes = 64;
    static constexpr unsigned kNumDestRegs = 2;
    static constexpr unsigned kNumSrcRegs = 4;
    static constexpr unsigned kNumDestMem = 2;
    static constexpr unsigned kNumSrcMem = 4;

    std::uint64_t ip = 0;
    std::uint8_t isBranch = 0;
    std::uint8_t branchTaken = 0;
    std::uint8_t destRegs[kNumDestRegs]{};
    std::uint8_t srcRegs[kNumSrcRegs]{};
    std::uint64_t destMem[kNumDestMem]{};
    std::uint64_t srcMem[kNumSrcMem]{};

    void pack(std::uint8_t out[kBytes]) const;
    static ChampSimInstr unpack(const std::uint8_t in[kBytes]);
};

/**
 * Read a ChampSim trace (plain or `.xz` by file suffix).
 *
 * Rejects, with a message in @p error: unreadable files, failed xz
 * decodes, byte counts that are not a multiple of the record size
 * (truncation), empty traces, flag bytes outside {0,1} (garbage), and
 * absurd record counts.
 */
bool readChampSimTrace(const std::string &path,
                       std::vector<ChampSimInstr> &out,
                       std::string *error = nullptr);

/** Write records in the same format (fixture generation, round-trip
 *  tests). Plain output only — never compresses. */
bool writeChampSimTrace(const std::string &path,
                        const std::vector<ChampSimInstr> &records,
                        std::string *error = nullptr);

/** Expansion statistics (tests and `--trace-in` reporting). */
struct TraceIngestStats
{
    std::uint64_t records = 0;
    std::uint64_t instrs = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t alus = 0;
    /** Register ids >= kNumRegs folded down modulo the ISA width. */
    std::uint64_t clampedRegs = 0;
};

/**
 * Expand ChampSim records into the simulator's Instr stream and bake
 * each address's first-touch value into @p image (see file comment
 * for the value model).
 */
std::vector<Instr>
expandChampSimTrace(const std::vector<ChampSimInstr> &records,
                    MemoryImage &image,
                    TraceIngestStats *stats = nullptr);

/**
 * Kernel that replays a decoded ChampSim trace. Loops by default (the
 * simulator's instruction budget bounds the run); with looping off the
 * kernel exhausts after one pass.
 */
class TraceIngestKernel : public Kernel
{
  public:
    /** Decode @p path (fatal on a malformed trace). */
    TraceIngestKernel(MemoryImage &memory, const std::string &path,
                      bool loop = true);

    /** From pre-decoded records (tests). */
    TraceIngestKernel(MemoryImage &memory,
                      const std::vector<ChampSimInstr> &records,
                      bool loop = true, std::string name = "ctrace");

    void reset() override;

    const TraceIngestStats &stats() const { return _stats; }
    std::size_t instrCount() const { return _instrs.size(); }

  protected:
    bool generate() override;

  private:
    std::vector<Instr> _instrs;
    std::size_t _position = 0;
    bool _loop;
    TraceIngestStats _stats;
};

/** Strip ".champsim" / ".champsim.xz" / ".xz" from a filename. */
std::string champSimTraceStem(const std::string &filename);

} // namespace dol

#endif // DOL_WORKLOADS_TRACE_INGEST_HPP
