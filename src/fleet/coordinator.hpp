/**
 * @file
 * Fleet coordinator: leases cell ranges of one sweep to worker
 * processes, survives their deaths, and merges their journals.
 *
 * Lease lifecycle (everything durable in the DOLLEAS1 ledger):
 *
 *     partition ──► kGrant ──► worker runs range ──► kComplete
 *                     │
 *                     │ worker exits early / stalls past TTL
 *                     ▼
 *                  kExpire ──► kGrant (remaining cells, generation+1,
 *                              parentLease = expired lease) — exactly
 *                              once per expiry
 *
 * The coordinator never trusts a worker's exit status alone: a lease
 * is complete only when its journal actually covers every cell of
 * the range (kJobDone or kCellFailed records). Liveness is judged by
 * journal growth — each fsync'd record is a heartbeat — so a hung
 * worker with a live pid still expires after its TTL.
 *
 * Worker processes are started through a caller-supplied spawn
 * callback, so `dolsim --fleet` forks+execs real `--fleet-worker`
 * processes while the tests fork in-process children (and kill them
 * mid-range) without exec.
 *
 * A coordinator that is itself killed can be re-run: it replays the
 * ledger, expires whatever was outstanding, counts journaled cells
 * as covered, and re-grants only the gaps.
 */

#ifndef DOL_FLEET_COORDINATOR_HPP
#define DOL_FLEET_COORDINATOR_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include <sys/types.h>

#include "fleet/ledger.hpp"
#include "fleet/merge.hpp"
#include "runner/checkpoint.hpp"
#include "runner/result_store.hpp"

namespace dol::fleet
{

struct FleetOptions
{
    /** Ledger + per-lease journals live here (created if missing). */
    std::string leaseDir;
    /** Concurrent worker processes. */
    unsigned workers = 2;
    /** Target lease count; 0 = workers * 2 (small ranges so a death
     *  costs little re-work). */
    unsigned leases = 0;
    /** A worker whose journal stops growing for this long is
     *  presumed dead: SIGKILLed, expired, re-granted. */
    std::uint64_t leaseTtlMs = 30000;
    /** Give up on a range after this many re-grants (a cell that
     *  kills every worker would otherwise lease forever). */
    unsigned maxGenerations = 8;
    /** Merged dol-sweep-v1 document path; empty = skip the merge. */
    std::string outputPath;
    /** Narrate grants/expiries to stderr. */
    bool verbose = false;
    /** Graceful shutdown (e.g. &runner::signalStopFlag()): once
     *  raised, active workers are killed, nothing is re-granted, and
     *  run() returns with interrupted set. nullptr = never. */
    std::atomic<bool> *stopFlag = nullptr;
};

struct FleetReport
{
    bool ok = false;
    /** A stop request drained the fleet; the ledger and journals
     *  remain, and a re-run resumes from them. */
    bool interrupted = false;
    std::string error;
    unsigned leasesGranted = 0;
    unsigned leasesCompleted = 0;
    unsigned leasesExpired = 0;
    unsigned workersSpawned = 0;
    /** Workers the coordinator had to SIGKILL (TTL expiry). */
    unsigned workersKilled = 0;
    /** Set when outputPath was given and coverage completed. */
    MergeStats merge;
};

/**
 * Start one worker process for @p grant; return its pid, or -1 on
 * failure (which aborts the fleet). The callee decides how to start
 * it (fork+exec dolsim, or fork a test child).
 */
using SpawnWorker = std::function<pid_t(const LeaseGrant &grant)>;

class FleetCoordinator
{
  public:
    FleetCoordinator(runner::JournalPlan plan, FleetOptions options,
                     SpawnWorker spawn);

    /**
     * Drive the fleet until every cell of the plan is covered, then
     * merge (when outputPath is set). @p meta supplies the merged
     * document's header fields; elapsedSeconds and jobs are filled
     * by the coordinator. Blocks; never throws.
     */
    FleetReport run(runner::SweepMeta meta);

  private:
    runner::JournalPlan _plan;
    FleetOptions _options;
    SpawnWorker _spawn;
};

} // namespace dol::fleet

#endif // DOL_FLEET_COORDINATOR_HPP
