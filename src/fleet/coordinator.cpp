#include "fleet/coordinator.hpp"

#include "runner/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>

namespace dol::fleet
{

using runner::CheckpointReader;
using runner::FramedReader;
using runner::JournalPlan;
using runner::JournalRecord;

namespace
{

using Clock = std::chrono::steady_clock;

/** Mark every journaled cell (done or failed) of @p path covered. */
void
scanCoverage(const std::string &path, std::vector<bool> &covered,
             std::uint64_t &covered_count)
{
    CheckpointReader reader;
    if (!reader.open(path))
        return;
    FramedReader::Record rec;
    while (reader.next(rec)) {
        const auto type = static_cast<JournalRecord>(rec.type);
        if (type != JournalRecord::kJobDone &&
            type != JournalRecord::kCellFailed)
            continue;
        std::uint64_t cell = 0;
        if (!runner::decodeJobIndex(rec.payload, cell))
            continue;
        if (cell < covered.size() && !covered[cell]) {
            covered[cell] = true;
            ++covered_count;
        }
    }
}

std::uint64_t
fileBytes(const std::string &path)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

/** A granted-but-not-yet-spawned or re-granted range. */
struct PendingLease
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::uint64_t generation = 0;
    std::uint64_t parentLease = kNoParentLease;
};

struct ActiveWorker
{
    pid_t pid = -1;
    LeaseGrant grant;
    std::uint64_t journalBytes = 0;
    Clock::time_point lastProgress;
};

} // namespace

FleetCoordinator::FleetCoordinator(JournalPlan plan,
                                   FleetOptions options,
                                   SpawnWorker spawn)
    : _plan(plan), _options(std::move(options)),
      _spawn(std::move(spawn))
{}

FleetReport
FleetCoordinator::run(runner::SweepMeta meta)
{
    FleetReport report;
    const auto started = Clock::now();
    const auto say = [&](const std::string &line) {
        if (_options.verbose)
            std::fprintf(stderr, "[fleet] %s\n", line.c_str());
    };
    const auto failFleet = [&](const std::string &why) {
        report.ok = false;
        report.error = why;
        return report;
    };

    if (_plan.itemCount == 0)
        return failFleet("fleet sweep has no cells");
    if (_options.workers == 0)
        return failFleet("fleet needs at least one worker");

    std::error_code ec;
    std::filesystem::create_directories(_options.leaseDir, ec);
    if (ec)
        return failFleet("cannot create lease dir " +
                         _options.leaseDir + ": " + ec.message());

    std::vector<bool> covered(_plan.itemCount, false);
    std::uint64_t coveredCount = 0;
    std::deque<PendingLease> pending;
    std::vector<LeaseGrant> granted; // every grant, lease-id order
    std::uint64_t nextLeaseId = 1;

    // Fresh ledger, or replay one a killed coordinator left behind:
    // expire whatever was outstanding, count journaled cells as
    // covered, and queue only the gaps.
    LeaseLedger ledger;
    const std::string ledger_path = ledgerPath(_options.leaseDir);
    const LeaseLedger::Load prior = LeaseLedger::load(ledger_path);
    if (prior.fileExists) {
        if (!prior.valid)
            return failFleet(prior.error);
        if (!prior.consistent)
            return failFleet("lease ledger is inconsistent: " +
                             prior.inconsistency);
        if (!prior.plan || !(*prior.plan == _plan))
            return failFleet(
                "lease ledger was written for a different sweep");
        std::string error;
        if (!ledger.openAppend(ledger_path, prior.goodBytes, &error))
            return failFleet(error);
        granted = prior.grants;
        for (const LeaseGrant &grant : granted) {
            nextLeaseId = std::max(nextLeaseId, grant.leaseId + 1);
            scanCoverage(
                leaseJournalPath(_options.leaseDir, grant.leaseId),
                covered, coveredCount);
        }
        for (const LeaseGrant &grant : granted) {
            const bool settled =
                std::count(prior.completed.begin(),
                           prior.completed.end(), grant.leaseId) ||
                std::count(prior.expired.begin(), prior.expired.end(),
                           grant.leaseId);
            if (!settled) {
                ledger.appendExpire(grant.leaseId);
                ++report.leasesExpired;
                say("resume: expired outstanding lease " +
                    std::to_string(grant.leaseId));
            }
        }
        // Maximal uncovered runs become fresh leases. Generation 1:
        // never fault-injected again, like any other re-grant.
        for (std::uint64_t cell = 0; cell < covered.size();) {
            if (covered[cell]) {
                ++cell;
                continue;
            }
            std::uint64_t end = cell;
            while (end < covered.size() && !covered[end])
                ++end;
            pending.push_back(PendingLease{cell, end, 1});
            cell = end;
        }
        say("resume: " + std::to_string(coveredCount) + "/" +
            std::to_string(_plan.itemCount) + " cells covered, " +
            std::to_string(pending.size()) + " gap lease(s)");
    } else {
        std::string error;
        if (!ledger.create(ledger_path, _plan, &error))
            return failFleet(error);
        const unsigned target = _options.leases
                                    ? _options.leases
                                    : _options.workers * 2;
        for (const auto &[begin, end] :
             runner::partitionRange(_plan.itemCount, target))
            pending.push_back(PendingLease{begin, end, 0});
    }

    std::vector<ActiveWorker> active;
    const auto killEverything = [&] {
        for (ActiveWorker &worker : active) {
            kill(worker.pid, SIGKILL);
            int status = 0;
            waitpid(worker.pid, &status, 0);
        }
        active.clear();
    };

    // Expire a dead lease and queue its uncovered remainder — the
    // exactly-one successor the ledger consistency check enforces.
    std::string fatal;
    const auto expireAndRegrant = [&](const LeaseGrant &grant) {
        ledger.appendExpire(grant.leaseId);
        ++report.leasesExpired;
        std::uint64_t first = grant.begin;
        while (first < grant.end && covered[first])
            ++first;
        if (first >= grant.end)
            return; // died after covering everything; nothing to do
        if (grant.generation + 1 > _options.maxGenerations) {
            fatal = "cells [" + std::to_string(first) + ", " +
                    std::to_string(grant.end) + ") exhausted " +
                    std::to_string(_options.maxGenerations) +
                    " lease generations";
            return;
        }
        say("expire lease " + std::to_string(grant.leaseId) +
            ", re-granting [" + std::to_string(first) + ", " +
            std::to_string(grant.end) + ")");
        pending.push_front(PendingLease{first, grant.end,
                                        grant.generation + 1,
                                        grant.leaseId});
    };

    // One worker accounted for: update coverage from its journal,
    // then settle its lease as complete or expired+re-granted.
    const auto settle = [&](const ActiveWorker &worker) {
        const std::string journal = leaseJournalPath(
            _options.leaseDir, worker.grant.leaseId);
        scanCoverage(journal, covered, coveredCount);
        bool complete = true;
        for (std::uint64_t cell = worker.grant.begin;
             cell < worker.grant.end && complete; ++cell)
            complete = covered[cell];
        if (complete) {
            ledger.appendComplete(worker.grant.leaseId);
            ++report.leasesCompleted;
            say("lease " + std::to_string(worker.grant.leaseId) +
                " complete (" + std::to_string(coveredCount) + "/" +
                std::to_string(_plan.itemCount) + " cells)");
        } else {
            expireAndRegrant(worker.grant);
        }
    };

    bool interrupted = false;
    while (fatal.empty()) {
        if (_options.stopFlag &&
            _options.stopFlag->load(std::memory_order_relaxed)) {
            interrupted = true;
            break;
        }
        while (active.size() < _options.workers && !pending.empty()) {
            const PendingLease next = pending.front();
            pending.pop_front();
            LeaseGrant grant;
            grant.leaseId = nextLeaseId++;
            grant.begin = next.begin;
            grant.end = next.end;
            grant.generation = next.generation;
            grant.parentLease = next.parentLease;
            grant.ttlMs = _options.leaseTtlMs;
            ledger.appendGrant(grant);
            granted.push_back(grant);
            ++report.leasesGranted;
            const pid_t pid = _spawn(grant);
            if (pid < 0) {
                fatal = "cannot spawn worker for lease " +
                        std::to_string(grant.leaseId);
                // The grant stays expired-on-resume; abort the run.
                ledger.appendExpire(grant.leaseId);
                ++report.leasesExpired;
                break;
            }
            ++report.workersSpawned;
            say("granted lease " + std::to_string(grant.leaseId) +
                " [" + std::to_string(grant.begin) + ", " +
                std::to_string(grant.end) + ") gen " +
                std::to_string(grant.generation) + " to pid " +
                std::to_string(pid));
            ActiveWorker worker;
            worker.pid = pid;
            worker.grant = grant;
            worker.journalBytes = 0;
            worker.lastProgress = Clock::now();
            active.push_back(std::move(worker));
        }
        if (!fatal.empty())
            break;
        if (active.empty()) {
            if (coveredCount == _plan.itemCount)
                break;
            fatal = "no workers active but " +
                    std::to_string(_plan.itemCount - coveredCount) +
                    " cells uncovered";
            break;
        }

        for (std::size_t i = 0; i < active.size();) {
            ActiveWorker &worker = active[i];
            int status = 0;
            const pid_t r = waitpid(worker.pid, &status, WNOHANG);
            if (r == worker.pid) {
                settle(worker);
                active.erase(active.begin() + i);
                continue;
            }
            // Liveness: every journaled record is an fsync'd
            // heartbeat. A pid that is alive but whose journal has
            // not grown within the TTL is hung — reclaim it.
            const std::uint64_t bytes = fileBytes(leaseJournalPath(
                _options.leaseDir, worker.grant.leaseId));
            const auto now = Clock::now();
            if (bytes > worker.journalBytes) {
                worker.journalBytes = bytes;
                worker.lastProgress = now;
            } else if (std::chrono::duration<double, std::milli>(
                           now - worker.lastProgress)
                           .count() >
                       static_cast<double>(worker.grant.ttlMs)) {
                say("lease " + std::to_string(worker.grant.leaseId) +
                    " stalled past its TTL; killing pid " +
                    std::to_string(worker.pid));
                kill(worker.pid, SIGKILL);
                waitpid(worker.pid, &status, 0);
                ++report.workersKilled;
                settle(worker);
                active.erase(active.begin() + i);
                continue;
            }
            ++i;
        }
        if (!fatal.empty())
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (interrupted) {
        killEverything();
        ledger.close();
        report.interrupted = true;
        return failFleet("fleet interrupted by stop request (the "
                         "ledger and journals remain; re-run to "
                         "resume)");
    }
    if (!fatal.empty()) {
        killEverything();
        ledger.close();
        return failFleet(fatal);
    }
    ledger.close();

    report.ok = true;
    if (_options.outputPath.empty())
        return report;

    // Merge every lease that produced a journal, in lease-id order
    // (= first-committed priority).
    MergeOptions merge;
    merge.plan = _plan;
    meta.jobs = _options.workers;
    meta.elapsedSeconds =
        std::chrono::duration<double>(Clock::now() - started).count();
    merge.meta = std::move(meta);
    for (const LeaseGrant &grant : granted) {
        const std::string journal =
            leaseJournalPath(_options.leaseDir, grant.leaseId);
        if (std::filesystem::exists(journal))
            merge.inputs.push_back(MergeInput{grant.leaseId, journal});
    }
    report.merge = mergeJournalsToFile(merge, _options.outputPath);
    if (!report.merge.ok)
        return failFleet("merge failed: " + report.merge.error);
    say("merged " + std::to_string(report.merge.mergedCells) +
        " cells into " + _options.outputPath);
    return report;
}

} // namespace dol::fleet
