#include "fleet/merge.hpp"

#include <cstdio>
#include <memory>

#include "runner/json_writer.hpp"

namespace dol::fleet
{

using runner::CheckpointReader;
using runner::FramedReader;
using runner::JournalCellFailed;
using runner::JournalJobDone;
using runner::JournalRecord;
using runner::JsonWriter;

namespace
{

constexpr std::size_t kNoInput = SIZE_MAX;

/** Pass-1 index entry: where a cell's winning record lives. */
struct Winner
{
    std::size_t input = kNoInput;
    std::uint64_t offset = 0;
    bool failed = false;
};

MergeStats
fail(MergeStats stats, std::string error)
{
    stats.ok = false;
    stats.error = std::move(error);
    return stats;
}

} // namespace

MergeStats
mergeJournals(const MergeOptions &options, const MergeSink &sink)
{
    MergeStats stats;

    // Pass 1: index every journal, keeping only winners' offsets.
    std::vector<std::unique_ptr<CheckpointReader>> readers;
    std::vector<Winner> winners(options.plan.itemCount);
    for (std::size_t input = 0; input < options.inputs.size();
         ++input) {
        const MergeInput &in = options.inputs[input];
        auto reader = std::make_unique<CheckpointReader>();
        if (!reader->open(in.journalPath)) {
            return fail(std::move(stats),
                        reader->fileExists()
                            ? in.journalPath +
                                  " is not a DOLCKPT1 checkpoint"
                            : "missing journal " + in.journalPath);
        }
        bool sawPlan = false;
        FramedReader::Record rec;
        while (reader->next(rec)) {
            const auto type = static_cast<JournalRecord>(rec.type);
            if (type == JournalRecord::kPlan) {
                runner::JournalPlan plan;
                if (!runner::decodePlanPayload(rec.payload, plan))
                    return fail(std::move(stats),
                                "corrupt plan record in " +
                                    in.journalPath);
                if (!(plan == options.plan))
                    return fail(std::move(stats),
                                in.journalPath +
                                    " was written for a different "
                                    "sweep plan");
                sawPlan = true;
                continue;
            }
            if (type != JournalRecord::kJobDone &&
                type != JournalRecord::kCellFailed)
                continue;
            std::uint64_t cell = 0;
            if (!runner::decodeJobIndex(rec.payload, cell))
                return fail(std::move(stats),
                            "corrupt record in " + in.journalPath);
            if (cell >= winners.size())
                return fail(std::move(stats),
                            in.journalPath +
                                " records a cell outside the plan");
            Winner &winner = winners[cell];
            const bool failedRecord =
                type == JournalRecord::kCellFailed;
            if (winner.input == kNoInput) {
                winner = Winner{input, rec.offset, failedRecord};
            } else if (winner.failed && !failedRecord) {
                // A successful re-run outranks an earlier quarantine.
                winner = Winner{input, rec.offset, false};
                ++stats.duplicatesDiscarded;
            } else {
                // First committed wins; the duplicate is dropped.
                ++stats.duplicatesDiscarded;
            }
        }
        if (!sawPlan)
            return fail(std::move(stats),
                        in.journalPath + " has no plan record");
        readers.push_back(std::move(reader));
    }
    for (std::uint64_t cell = 0; cell < winners.size(); ++cell) {
        if (winners[cell].input == kNoInput)
            return fail(std::move(stats),
                        "no journal covers cell " +
                            std::to_string(cell));
    }

    // Pass 2: emit in grid order, one winning record decoded at a
    // time. This mirrors ResultStore::toJson() call for call — that
    // is what makes the deterministic prefix byte-identical.
    const auto flush = [&](JsonWriter &json) {
        return sink(json.take());
    };
    std::vector<runner::FailedCell> failedCells;
    std::vector<double> wallMs;
    std::size_t rowsHeld = 0;

    JsonWriter json;
    json.beginObject();
    json.field("schema", "dol-sweep-v1");
    json.field("generator", options.meta.generator);
    json.key("config").beginObject();
    json.field("max_instrs", options.meta.maxInstrs);
    json.endObject();
    json.key("results").beginArray();
    if (!flush(json))
        return fail(std::move(stats), "merge sink rejected output");

    for (std::uint64_t cell = 0; cell < winners.size(); ++cell) {
        const Winner &winner = winners[cell];
        CheckpointReader &reader = *readers[winner.input];
        FramedReader::Record rec;
        if (!reader.seek(winner.offset) || !reader.next(rec))
            return fail(std::move(stats),
                        "cannot re-read cell " +
                            std::to_string(cell) + " from " +
                            options.inputs[winner.input].journalPath);
        if (winner.failed) {
            JournalCellFailed failed;
            if (!runner::decodeCellFailedPayload(rec.payload, failed))
                return fail(std::move(stats),
                            "corrupt kCellFailed record for cell " +
                                std::to_string(cell));
            failedCells.push_back(std::move(failed.cell));
            ++stats.failedCells;
            continue;
        }
        JournalJobDone job;
        if (!runner::decodeJobDonePayload(rec.payload, job))
            return fail(std::move(stats),
                        "corrupt kJobDone record for cell " +
                            std::to_string(cell));
        rowsHeld += job.rows.size();
        if (rowsHeld > stats.peakRowsHeld)
            stats.peakRowsHeld = rowsHeld;
        for (const runner::MetricsRow &row : job.rows) {
            runner::writeMetricsRowJson(json, row);
            wallMs.push_back(job.wallMs);
        }
        ++stats.mergedCells;
        if (!flush(json))
            return fail(std::move(stats),
                        "merge sink rejected output");
        rowsHeld -= job.rows.size();
    }
    json.endArray();

    if (!failedCells.empty()) {
        json.key("failed_cells").beginArray();
        for (const runner::FailedCell &cell : failedCells)
            runner::writeFailedCellJson(json, cell);
        json.endArray();
    }

    // Timing: wall-clock dependent, outside the determinism contract
    // (same as ResultStore::toJson()).
    json.key("timing").beginObject();
    json.field("jobs", options.meta.jobs);
    json.field("elapsed_seconds", options.meta.elapsedSeconds);
    json.field("resumed_jobs", options.meta.resumedJobs);
    json.key("wall_ms").beginArray();
    for (const double ms : wallMs)
        json.value(ms);
    json.endArray();
    json.endObject();

    json.endObject();
    std::string tail = json.take();
    tail.push_back('\n');
    if (!sink(tail))
        return fail(std::move(stats), "merge sink rejected output");

    stats.ok = true;
    return stats;
}

MergeStats
mergeJournalsToFile(const MergeOptions &options,
                    const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file) {
        MergeStats stats;
        stats.error = "cannot create " + path;
        return stats;
    }
    MergeStats stats =
        mergeJournals(options, [&](const std::string &chunk) {
            return std::fwrite(chunk.data(), 1, chunk.size(), file) ==
                   chunk.size();
        });
    if (std::fclose(file) != 0 && stats.ok) {
        stats.ok = false;
        stats.error = "cannot finish writing " + path;
    }
    return stats;
}

MergeStats
mergeJournalsToString(const MergeOptions &options, std::string &out)
{
    out.clear();
    return mergeJournals(options, [&](const std::string &chunk) {
        out += chunk;
        return true;
    });
}

} // namespace dol::fleet
