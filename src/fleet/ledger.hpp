/**
 * @file
 * DOLLEAS1 lease ledger: the coordinator's durable record of which
 * worker owns which cell range of a sharded sweep.
 *
 * Same container format as the DOLCKPT1 checkpoint journal (8-byte
 * magic + `[type u8 | len u32 | fnv64 u64 | payload]` records, every
 * append fsync'd — see runner/framed_file.hpp), so the ledger
 * inherits the checkpoint's crash story: a SIGKILLed coordinator
 * leaves a prefix of whole records plus at most one torn tail, and a
 * restarted coordinator replays the prefix, expires whatever was
 * outstanding, and re-grants the uncovered cells.
 *
 * Record kinds:
 *   kPlan     sweep identity (same triple as the checkpoint plan).
 *             Written first; a worker rebuilds the grid from its own
 *             arguments and refuses a ledger whose plan differs.
 *   kGrant    one lease: id, [begin, end) cell range, generation,
 *             parent lease (the expired lease this one re-covers, or
 *             none), and the liveness TTL the coordinator will hold
 *             the worker to.
 *   kComplete the lease's journal covers its whole range.
 *   kExpire   the worker died or stalled; the uncovered remainder of
 *             the range is re-granted under a new lease exactly once
 *             (enforced by load()'s consistency check).
 *
 * The ledger is single-writer (the coordinator); workers only read
 * it. Lease ids are assigned in strictly increasing grant order, and
 * the merger processes journals in lease-id order — that ordering is
 * what makes "first committed wins" deterministic when an expired
 * lease's journal and its successor's journal both record a cell.
 */

#ifndef DOL_FLEET_LEDGER_HPP
#define DOL_FLEET_LEDGER_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runner/checkpoint.hpp"
#include "runner/framed_file.hpp"

namespace dol::fleet
{

constexpr char kLedgerMagic[8] = {'D', 'O', 'L', 'L',
                                  'E', 'A', 'S', '1'};

/** kGrant.parentLease for an original (non-re-granted) lease. */
constexpr std::uint64_t kNoParentLease = UINT64_MAX;

/** Wire record types of the DOLLEAS1 format. */
enum class LedgerRecord : std::uint8_t
{
    kPlan = 1,
    kGrant = 2,
    kComplete = 3,
    kExpire = 4,
};

/** One cell-range lease. */
struct LeaseGrant
{
    std::uint64_t leaseId = 0;
    /** Cell range [begin, end) of the sweep grid. */
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    /** 0 for an original grant, parent's generation + 1 after an
     *  expiry. Fault injection targets generation 0 only, so a
     *  re-granted range cannot re-trip the same injected fault. */
    std::uint64_t generation = 0;
    /** Lease this grant re-covers, or kNoParentLease. */
    std::uint64_t parentLease = kNoParentLease;
    /** Liveness budget: journal must grow within this many ms. */
    std::uint64_t ttlMs = 0;
};

// Payload codecs (exposed for the ledger fuzz tests).
std::string encodeGrantPayload(const LeaseGrant &grant);
bool decodeGrantPayload(const std::string &payload, LeaseGrant &out);

/** Per-lease checkpoint journal path under the lease directory. */
std::string leaseJournalPath(const std::string &lease_dir,
                             std::uint64_t lease_id);

/** Ledger path under the lease directory. */
std::string ledgerPath(const std::string &lease_dir);

class LeaseLedger
{
  public:
    LeaseLedger() = default;

    LeaseLedger(const LeaseLedger &) = delete;
    LeaseLedger &operator=(const LeaseLedger &) = delete;

    /** Truncate/create @p path and write the plan record. */
    bool create(const std::string &path,
                const runner::JournalPlan &plan,
                std::string *error = nullptr);

    /** Reopen after a crash, truncating the torn tail first. */
    bool openAppend(const std::string &path, std::uint64_t good_bytes,
                    std::string *error = nullptr);

    bool appendGrant(const LeaseGrant &grant);
    bool appendComplete(std::uint64_t lease_id);
    bool appendExpire(std::uint64_t lease_id);

    bool isOpen() const { return _file.isOpen(); }
    void close() { _file.close(); }

    struct Load
    {
        bool fileExists = false;
        /** Header parsed (magic ok). False => not a ledger at all. */
        bool valid = false;
        /** False when a torn/corrupt tail was dropped. */
        bool cleanTail = true;
        /** Bytes of clean prefix (header + whole good records). */
        std::uint64_t goodBytes = 0;
        std::optional<runner::JournalPlan> plan;
        /** Every grant, in ledger (= lease id) order. */
        std::vector<LeaseGrant> grants;
        std::vector<std::uint64_t> completed;
        std::vector<std::uint64_t> expired;
        /**
         * Semantic replay check: lease ids strictly increasing,
         * ranges non-empty and inside the plan, complete/expire
         * referencing a granted-and-still-outstanding lease, at most
         * one successor grant per expired lease. A well-framed ledger
         * that violates these loads with consistent=false and the
         * first violation in `inconsistency`.
         */
        bool consistent = true;
        std::string inconsistency;
        std::string error;
    };

    /**
     * Read every intact record of @p path. Never throws or hangs on
     * malformed input: a missing file reports fileExists=false,
     * garbage reports valid=false, a torn tail is dropped with
     * cleanTail=false, and semantic violations surface through
     * `consistent` — the fuzz battery drives all four paths.
     */
    static Load load(const std::string &path);

  private:
    runner::FramedWriter _file;
};

} // namespace dol::fleet

#endif // DOL_FLEET_LEDGER_HPP
