/**
 * @file
 * Streaming merge of per-lease DOLCKPT1 journals into one
 * dol-sweep-v1 document.
 *
 * Two passes, bounded memory:
 *
 *  1. Index: stream every journal once in lease-id order, recording
 *     only (input, file offset, failed?) per cell — never a decoded
 *     row. When two leases both journaled a cell (an expired worker
 *     got far enough before dying that its successor re-ran cells),
 *     the first-committed record wins: lowest lease id, earliest
 *     append order. The one exception is that a successful record
 *     beats an earlier kCellFailed for the same cell — a re-run that
 *     succeeded where the first attempt quarantined is strictly
 *     better data. Losing records are discarded and counted.
 *
 *  2. Emit: walk cells 0..N-1 in grid order, seek each winner's
 *     offset, decode that one record, serialize its rows through the
 *     exact writeMetricsRowJson used by ResultStore::toJson(), and
 *     flush. At most one job's rows are ever materialized (the
 *     peakRowsHeld probe in MergeStats proves it), so a 10k-cell
 *     fleet merge holds one cell of data plus O(cells) of bare
 *     offsets.
 *
 * The emitted document's deterministic prefix — everything before
 * the "timing" key — is byte-identical to a single-process
 * `--jobs N` run of the same grid; that is the fleet's correctness
 * contract and what the kill-and-merge tests memcmp.
 */

#ifndef DOL_FLEET_MERGE_HPP
#define DOL_FLEET_MERGE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/checkpoint.hpp"
#include "runner/result_store.hpp"

namespace dol::fleet
{

/** One journal to merge; inputs must be in ascending lease order. */
struct MergeInput
{
    std::uint64_t leaseId = 0;
    std::string journalPath;
};

struct MergeOptions
{
    /** Identity every journal's plan record must match. */
    runner::JournalPlan plan;
    /** Journals in ascending lease-id order (= commit priority). */
    std::vector<MergeInput> inputs;
    /** Header/timing fields for the merged document. wallMs and
     *  failedCells are filled from the journals; the rest (generator,
     *  maxInstrs, jobs, elapsedSeconds, resumedJobs) pass through. */
    runner::SweepMeta meta;
};

/**
 * Receives the document in order, in bounded chunks. Return false to
 * abort the merge (e.g. on a write error).
 */
using MergeSink = std::function<bool(const std::string &chunk)>;

struct MergeStats
{
    bool ok = false;
    std::string error;
    /** Cells emitted into "results". */
    std::uint64_t mergedCells = 0;
    /** Cells surfaced in "failed_cells" (quarantined everywhere). */
    std::uint64_t failedCells = 0;
    /** Records for cells some earlier lease already committed. */
    std::uint64_t duplicatesDiscarded = 0;
    /** Max metric rows materialized at once during emission — the
     *  streaming bound the tests assert on. */
    std::size_t peakRowsHeld = 0;
};

/** Merge @p options.inputs into @p sink. Fails (stats.ok=false)
 *  on a missing/invalid journal, a plan mismatch, or a cell no
 *  journal covers. */
MergeStats mergeJournals(const MergeOptions &options,
                         const MergeSink &sink);

/** Convenience: merge into a file (atomic enough for tests: written
 *  in one pass, short final rename is the caller's business). */
MergeStats mergeJournalsToFile(const MergeOptions &options,
                               const std::string &path);

/** Convenience: merge into a string (tests). */
MergeStats mergeJournalsToString(const MergeOptions &options,
                                 std::string &out);

} // namespace dol::fleet

#endif // DOL_FLEET_MERGE_HPP
