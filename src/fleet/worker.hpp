/**
 * @file
 * Fleet worker: executes one leased cell range of a sweep.
 *
 * The worker process rebuilds the full sweep grid from the same
 * arguments the coordinator used (the grid, not the range, defines
 * the journal plan), looks its lease up in the DOLLEAS1 ledger,
 * refuses to run if the ledger's plan does not match the grid it
 * built, and then drives the ordinary SweepRunner restricted to
 * [begin, end) with a per-lease checkpoint journal. Everything
 * crash-safety related — fsync'd records, torn-tail truncation,
 * resume — is the runner's existing machinery; the worker only adds
 * the lease lookup and the exit-code contract the coordinator reads:
 *
 *   0   range fully covered, no failures
 *   3   range fully covered, some cells quarantined (journaled as
 *       kCellFailed so the coordinator still counts them covered)
 *   75  interrupted (stop request / drain) — resumable, re-lease
 *   1   setup error (bad lease, plan mismatch, unwritable journal)
 */

#ifndef DOL_FLEET_WORKER_HPP
#define DOL_FLEET_WORKER_HPP

#include <cstdint>
#include <string>

#include "runner/sweep.hpp"

namespace dol::fleet
{

struct WorkerOptions
{
    /** Directory holding the ledger and per-lease journals. */
    std::string leaseDir;
    /** Lease to execute; must be granted in the ledger. */
    std::uint64_t leaseId = 0;
};

/** Exit codes of runFleetWorker (and `dolsim --fleet-worker`). */
enum WorkerExit : int
{
    kWorkerOk = 0,
    kWorkerSetupError = 1,
    kWorkerCellsFailed = 3,
    kWorkerInterrupted = 75,
};

/**
 * Run @p sweep's jobs [grant.begin, grant.end) under the lease's
 * journal. @p sweep must hold the full queued grid; @p sweep_options
 * carries the caller's execution settings (stop flag, fault plan,
 * thread count) and is adjusted — range, checkpoint path,
 * quarantine, failure journaling, resume — before being installed.
 * Returns a WorkerExit code; on kWorkerSetupError, @p error says
 * why.
 */
int runFleetWorker(runner::SweepRunner &sweep,
                   runner::SweepOptions sweep_options,
                   const WorkerOptions &options,
                   std::string *error = nullptr);

} // namespace dol::fleet

#endif // DOL_FLEET_WORKER_HPP
