#include "fleet/ledger.hpp"

#include <algorithm>

#include "runner/wire.hpp"

namespace dol::fleet
{

using runner::FramedReader;
using runner::JournalPlan;
namespace wire = runner::wire;

std::string
encodeGrantPayload(const LeaseGrant &grant)
{
    std::string payload;
    wire::putU64(payload, grant.leaseId);
    wire::putU64(payload, grant.begin);
    wire::putU64(payload, grant.end);
    wire::putU64(payload, grant.generation);
    wire::putU64(payload, grant.parentLease);
    wire::putU64(payload, grant.ttlMs);
    return payload;
}

bool
decodeGrantPayload(const std::string &payload, LeaseGrant &out)
{
    wire::Cursor in{
        reinterpret_cast<const unsigned char *>(payload.data()),
        payload.size()};
    out.leaseId = in.u64();
    out.begin = in.u64();
    out.end = in.u64();
    out.generation = in.u64();
    out.parentLease = in.u64();
    out.ttlMs = in.u64();
    return in.ok;
}

std::string
leaseJournalPath(const std::string &lease_dir, std::uint64_t lease_id)
{
    return lease_dir + "/lease-" + std::to_string(lease_id) + ".ckpt";
}

std::string
ledgerPath(const std::string &lease_dir)
{
    return lease_dir + "/ledger.dolleas";
}

bool
LeaseLedger::create(const std::string &path, const JournalPlan &plan,
                    std::string *error)
{
    if (!_file.create(path, kLedgerMagic, error))
        return false;
    if (!_file.appendRecord(
            static_cast<std::uint8_t>(LedgerRecord::kPlan),
            runner::encodePlanPayload(plan))) {
        if (error)
            *error = "cannot write ledger plan to " + path;
        return false;
    }
    return true;
}

bool
LeaseLedger::openAppend(const std::string &path,
                        std::uint64_t good_bytes, std::string *error)
{
    return _file.openAppend(path, good_bytes, error);
}

bool
LeaseLedger::appendGrant(const LeaseGrant &grant)
{
    return _file.appendRecord(
        static_cast<std::uint8_t>(LedgerRecord::kGrant),
        encodeGrantPayload(grant));
}

bool
LeaseLedger::appendComplete(std::uint64_t lease_id)
{
    std::string payload;
    wire::putU64(payload, lease_id);
    return _file.appendRecord(
        static_cast<std::uint8_t>(LedgerRecord::kComplete), payload);
}

bool
LeaseLedger::appendExpire(std::uint64_t lease_id)
{
    std::string payload;
    wire::putU64(payload, lease_id);
    return _file.appendRecord(
        static_cast<std::uint8_t>(LedgerRecord::kExpire), payload);
}

namespace
{

/** First semantic violation wins; later records still load. */
void
flagInconsistency(LeaseLedger::Load &out, const std::string &what)
{
    if (out.consistent) {
        out.consistent = false;
        out.inconsistency = what;
    }
}

} // namespace

LeaseLedger::Load
LeaseLedger::load(const std::string &path)
{
    Load out;
    FramedReader reader;
    if (!reader.open(path, kLedgerMagic)) {
        out.fileExists = reader.fileExists();
        out.error = out.fileExists
                        ? path + " is not a DOLLEAS1 lease ledger"
                        : "no lease ledger at " + path;
        return out;
    }
    out.fileExists = true;
    out.valid = true;
    out.goodBytes = reader.goodBytes();

    // Outstanding = granted, not yet completed or expired. Expired
    // leases additionally track whether a successor grant re-covered
    // them, which must happen exactly once.
    enum class LeaseState : std::uint8_t
    {
        kOutstanding,
        kCompleted,
        kExpired,
        kExpiredAndRegranted,
    };
    std::vector<LeaseState> states; // parallel to out.grants

    const auto leaseIndex =
        [&](std::uint64_t lease_id) -> std::ptrdiff_t {
        const auto it = std::lower_bound(
            out.grants.begin(), out.grants.end(), lease_id,
            [](const LeaseGrant &g, std::uint64_t id) {
                return g.leaseId < id;
            });
        if (it == out.grants.end() || it->leaseId != lease_id)
            return -1;
        return it - out.grants.begin();
    };

    bool decodeFailed = false;
    FramedReader::Record rec;
    while (reader.next(rec)) {
        bool parsed = true;
        switch (static_cast<LedgerRecord>(rec.type)) {
        case LedgerRecord::kPlan: {
            JournalPlan plan;
            parsed = runner::decodePlanPayload(rec.payload, plan);
            if (parsed) {
                if (out.plan)
                    flagInconsistency(out, "duplicate plan record");
                out.plan = plan;
            }
            break;
        }
        case LedgerRecord::kGrant: {
            LeaseGrant grant;
            parsed = decodeGrantPayload(rec.payload, grant);
            if (!parsed)
                break;
            if (!out.grants.empty() &&
                grant.leaseId <= out.grants.back().leaseId) {
                flagInconsistency(
                    out, "lease ids are not strictly increasing");
            }
            if (grant.begin >= grant.end) {
                flagInconsistency(out,
                                  "grant " +
                                      std::to_string(grant.leaseId) +
                                      " has an empty cell range");
            } else if (out.plan && grant.end > out.plan->itemCount) {
                flagInconsistency(
                    out, "grant " + std::to_string(grant.leaseId) +
                             " reaches past the plan's cell count");
            }
            if (grant.parentLease != kNoParentLease) {
                const std::ptrdiff_t parent =
                    leaseIndex(grant.parentLease);
                if (parent < 0) {
                    flagInconsistency(
                        out, "grant " + std::to_string(grant.leaseId) +
                                 " re-covers an unknown lease");
                } else if (states[parent] != LeaseState::kExpired) {
                    flagInconsistency(
                        out,
                        "grant " + std::to_string(grant.leaseId) +
                            " re-covers a lease that is not expired "
                            "exactly once");
                } else {
                    states[parent] =
                        LeaseState::kExpiredAndRegranted;
                }
            }
            out.grants.push_back(grant);
            states.push_back(LeaseState::kOutstanding);
            break;
        }
        case LedgerRecord::kComplete:
        case LedgerRecord::kExpire: {
            std::uint64_t lease_id = 0;
            parsed = runner::decodeJobIndex(rec.payload, lease_id);
            if (!parsed)
                break;
            const bool complete = static_cast<LedgerRecord>(
                                      rec.type) ==
                                  LedgerRecord::kComplete;
            const std::ptrdiff_t index = leaseIndex(lease_id);
            if (index < 0) {
                flagInconsistency(
                    out, std::string(complete ? "complete"
                                              : "expire") +
                             " record for unknown lease " +
                             std::to_string(lease_id));
            } else if (states[index] != LeaseState::kOutstanding) {
                flagInconsistency(
                    out, std::string(complete ? "complete"
                                              : "expire") +
                             " record for lease " +
                             std::to_string(lease_id) +
                             " which is not outstanding");
            } else {
                states[index] = complete ? LeaseState::kCompleted
                                         : LeaseState::kExpired;
            }
            (complete ? out.completed : out.expired)
                .push_back(lease_id);
            break;
        }
        default:
            // Unknown-but-checksummed record: skip, stay forward
            // compatible (same policy as the checkpoint loader).
            break;
        }
        if (!parsed) {
            decodeFailed = true;
            break;
        }
        out.goodBytes = rec.offset + runner::kFrameEnvelopeBytes +
                        rec.payload.size();
    }
    out.cleanTail = !decodeFailed && !reader.tornTail();
    if (out.consistent && !out.plan && !out.grants.empty())
        flagInconsistency(out, "grants precede the plan record");
    return out;
}

} // namespace dol::fleet
