#include "fleet/worker.hpp"

#include "fleet/ledger.hpp"

namespace dol::fleet
{

using runner::SweepOptions;
using runner::SweepRunner;

int
runFleetWorker(SweepRunner &sweep, SweepOptions sweep_options,
               const WorkerOptions &options, std::string *error)
{
    const auto setupError = [&](const std::string &what) {
        if (error)
            *error = what;
        return kWorkerSetupError;
    };

    const LeaseLedger::Load ledger =
        LeaseLedger::load(ledgerPath(options.leaseDir));
    if (!ledger.valid)
        return setupError(ledger.error);
    if (!ledger.plan)
        return setupError("lease ledger has no plan record");
    if (!(*ledger.plan == sweep.plan()))
        return setupError(
            "lease ledger was written for a different sweep (grid "
            "or instruction budget mismatch)");

    const LeaseGrant *grant = nullptr;
    for (const LeaseGrant &candidate : ledger.grants) {
        if (candidate.leaseId == options.leaseId)
            grant = &candidate;
    }
    if (!grant)
        return setupError("lease " +
                          std::to_string(options.leaseId) +
                          " is not granted in the ledger");
    if (grant->end > ledger.plan->itemCount)
        return setupError("lease " +
                          std::to_string(options.leaseId) +
                          " reaches past the sweep grid");

    sweep_options.rangeBegin = grant->begin;
    sweep_options.rangeEnd = grant->end;
    sweep_options.checkpointPath =
        leaseJournalPath(options.leaseDir, options.leaseId);
    // A journal may already exist if this very lease crashed and the
    // coordinator restarted the process without re-leasing (it does
    // not today, but resume is free and makes the worker idempotent).
    sweep_options.resume = true;
    sweep_options.onError = SweepOptions::OnError::kQuarantine;
    sweep_options.journalFailures = true;
    sweep.setOptions(std::move(sweep_options));

    SweepRunner::Report report = sweep.run();
    if (report.interrupted)
        return kWorkerInterrupted;
    if (!report.meta.failedCells.empty())
        return kWorkerCellsFailed;
    return kWorkerOk;
}

} // namespace dol::fleet
