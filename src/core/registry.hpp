/**
 * @file
 * Factory for every prefetcher configuration the experiments use.
 *
 * Names:
 *  - monolithic baselines: "GHB-PC/DC", "SPP", "VLDP", "BOP", "FDP",
 *    "SMS", "AMPM" (Table II set) plus "NextLine" and "StridePC"
 *  - components / composites: "T2", "T2P1" (T2+P1), "TPC"
 *  - composited extras: "TPC+<baseline>[+<baseline>...]"
 *    (coordinated, section IV-E; '+'-separated extras are bound
 *    round-robin by the coordinator)
 *  - shunted extras:    "SHUNT:TPC+<baseline>[+...]" (uncoordinated)
 *  - temporal/pointer extras: "Triangel", "PChase" (usable alone or
 *    as composite extras)
 */

#ifndef DOL_CORE_REGISTRY_HPP
#define DOL_CORE_REGISTRY_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/composite.hpp"
#include "prefetch/prefetcher.hpp"

namespace dol
{

/** The seven monolithic prefetchers evaluated in the paper. */
std::vector<std::string> monolithicPrefetcherNames();

/** All headline configurations of Figure 8 (monolithics + TPC). */
std::vector<std::string> figureEightPrefetcherNames();

/**
 * Build a prefetcher by name; @p memory is required for
 * configurations containing P1 (value chaining).
 *
 * @param adaptive run composite coordinators in adaptive mode
 *                 (`--coordinator adaptive`, src/core/adaptive.hpp).
 *                 Monolithic prefetchers and SHUNT configurations have
 *                 no coordinator, so the flag is a documented no-op
 *                 for them.
 *
 * Calls fatal() on an unknown name.
 */
std::unique_ptr<Prefetcher>
makePrefetcher(const std::string &name, const ValueSource *memory,
               bool adaptive = false);

/** TPC with per-component destination overrides (Figure 16). */
std::unique_ptr<CompositePrefetcher>
makeTpc(const ValueSource *memory,
        const CompositePrefetcher::Config &config = {});

} // namespace dol

#endif // DOL_CORE_REGISTRY_HPP
