#include "core/adaptive.hpp"

#include <algorithm>

#include "trace/context.hpp"
#include "trace/counters.hpp"

namespace dol
{

namespace
{

/** used/issued (or used/window) as a per-mille ratio, clamped: a
 *  window can consume lines issued in earlier windows, so the raw
 *  ratio may exceed 1. */
std::int32_t
permille(std::uint64_t numerator, std::uint64_t denominator)
{
    if (denominator == 0)
        return 0;
    const std::uint64_t raw = numerator * 1000 / denominator;
    return static_cast<std::int32_t>(std::min<std::uint64_t>(raw, 1000));
}

} // namespace

AdaptiveCoordinator::AdaptiveCoordinator(const AdaptiveParams &params)
    : _params(params)
{
    _slots.resize(kFirstExtraSlot);
    for (Slot &slot : _slots)
        slot.state.degree = 0; // claimants have no degree schedule
}

void
AdaptiveCoordinator::addExtra()
{
    Slot slot;
    slot.state.degree = _params.startDegree;
    _slots.push_back(slot);
}

void
AdaptiveCoordinator::updateEwma(std::int32_t &ewma, bool &valid,
                                std::int32_t sample) const
{
    if (!valid) {
        ewma = sample;
        valid = true;
        return;
    }
    ewma += (sample - ewma) >> _params.ewmaShift;
}

void
AdaptiveCoordinator::endWindow(Cycle when)
{
    _accessInWindow = 0;
    ++_windows;

    std::uint64_t pressure_delta = 0;
    if (_pressureProbe) {
        const std::uint64_t current = _pressureProbe();
        if (_pressurePrimed)
            pressure_delta = current - _lastPressure;
        _lastPressure = current;
        _pressurePrimed = true;
    }

    AdaptiveWindowRecord record;
    if (_decisionLog) {
        record.pressureDelta = pressure_delta;
        record.inputs.reserve(_slots.size());
        record.outputs.reserve(_slots.size());
    }

    for (std::size_t index = 0; index < _slots.size(); ++index) {
        Slot &slot = _slots[index];
        AdaptiveSlotState &state = slot.state;
        if (_decisionLog)
            record.inputs.push_back({slot.issuedWindow, slot.usedWindow});

        bool cov_valid = _windows > 1; // first window initialises
        std::int32_t cov = state.ewmaCov;
        updateEwma(cov, cov_valid,
                   permille(slot.usedWindow, _params.windowAccesses));
        state.ewmaCov = cov;

        const bool has_verdict =
            slot.issuedWindow >= _params.minWindowIssued;
        if (has_verdict) {
            updateEwma(state.ewmaAcc, state.ewmaValid,
                       permille(slot.usedWindow, slot.issuedWindow));
        }

        if (index >= kFirstExtraSlot) {
            // Slow-start degree schedule. Bandwidth pressure trumps
            // accuracy: a congested window halves every extra.
            const std::uint32_t before = state.degree;
            if (pressure_delta > 0 && state.degree > 1) {
                state.degree >>= 1;
                ++_pressureHalvings;
            } else if (state.ewmaValid &&
                       state.ewmaAcc >=
                           static_cast<std::int32_t>(
                               _params.rampHiPermille) &&
                       state.degree < _params.maxDegree) {
                // Ramping trusts the sticky EWMA: a component whose
                // last known accuracy is high keeps ramping even in
                // windows too quiet for a fresh verdict, otherwise a
                // sparse but perfectly accurate extra is starved by
                // its own slow start (it can never issue enough under
                // a degree-1 budget to earn the verdict that would
                // raise the budget).
                state.degree = std::min<std::uint32_t>(
                    state.degree * 2, _params.maxDegree);
                ++_ramps;
            } else if (has_verdict && state.ewmaValid &&
                       state.ewmaAcc <
                           static_cast<std::int32_t>(
                               _params.rampLoPermille) &&
                       state.degree > 1) {
                // Halving still demands fresh evidence from this
                // window: stale inaccuracy must not keep punishing a
                // component that has gone quiet.
                state.degree >>= 1;
                ++_halvings;
            }
            if (state.degree != before) {
                DOL_TRACE_EVENT(_trace, TraceEventType::kAdaptDegree,
                                when, 0, 0, slot.comp, 0,
                                static_cast<std::uint8_t>(
                                    std::min<std::uint32_t>(state.degree,
                                                            0xff)));
            }
        } else if (state.demoted) {
            if (--state.probationLeft == 0) {
                state.demoted = false;
                state.belowStreak = 0;
                // Forget the pre-demotion accuracy history: the
                // re-admitted claimant starts from a clean slate
                // instead of being instantly re-demoted.
                state.ewmaValid = false;
                state.ewmaAcc = 0;
                ++_readmits;
                DOL_TRACE_EVENT(_trace, TraceEventType::kAdaptReadmit,
                                when, 0, 0, slot.comp, 0,
                                static_cast<std::uint8_t>(index));
            }
        } else {
            if (has_verdict && state.ewmaValid &&
                state.ewmaAcc < static_cast<std::int32_t>(
                                    _params.demoteFloorPermille)) {
                ++state.belowStreak;
            } else {
                state.belowStreak = 0;
            }
            if (state.belowStreak >= _params.demoteWindows) {
                state.demoted = true;
                state.belowStreak = 0;
                state.probationLeft = _params.probationWindows;
                ++_demotions;
                DOL_TRACE_EVENT(_trace, TraceEventType::kAdaptDemote,
                                when, 0, 0, slot.comp, 0,
                                static_cast<std::uint8_t>(index));
            }
        }

        slot.issuedTotal += slot.issuedWindow;
        slot.usedTotal += slot.usedWindow;
        slot.issuedWindow = 0;
        slot.usedWindow = 0;
        if (_decisionLog)
            record.outputs.push_back(state);
    }

    if (_decisionLog)
        _decisionLog->push_back(std::move(record));
}

void
AdaptiveCoordinator::exportCounters(CounterRegistry &registry) const
{
    const std::string scope = "adapt";
    registry.set(scope, "windows", _windows);
    registry.set(scope, "ramps", _ramps);
    registry.set(scope, "halvings", _halvings);
    registry.set(scope, "pressure_halvings", _pressureHalvings);
    registry.set(scope, "demotions", _demotions);
    registry.set(scope, "readmits", _readmits);

    static const char *const kClaimants[] = {"T2", "P1", "C1"};
    for (std::size_t index = 0; index < _slots.size(); ++index) {
        const Slot &slot = _slots[index];
        const std::string label =
            index < kFirstExtraSlot
                ? std::string(kClaimants[index])
                : "extra" + std::to_string(index - kFirstExtraSlot);
        registry.set(scope, "acc_" + label,
                     static_cast<std::uint64_t>(
                         std::max<std::int32_t>(slot.state.ewmaAcc, 0)));
        registry.set(scope, "cov_" + label,
                     static_cast<std::uint64_t>(
                         std::max<std::int32_t>(slot.state.ewmaCov, 0)));
        registry.set(scope, "issued_" + label, slot.issuedTotal);
        registry.set(scope, "used_" + label, slot.usedTotal);
        registry.set(scope, "throttled_" + label, slot.throttledTotal);
        if (index >= kFirstExtraSlot) {
            registry.set(scope, "deg_" + label, slot.state.degree);
        } else {
            registry.set(scope, "demoted_" + label,
                         slot.state.demoted ? 1 : 0);
        }
    }
}

} // namespace dol
