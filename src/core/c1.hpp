/**
 * @file
 * C1: the high-spatial-locality region prefetcher component
 * (paper section IV-C, Figure 6).
 *
 * A 16-entry Region Monitor tracks which of the 16 lines of each 1 KB
 * region have been touched and which monitored instructions touched
 * the region (a PC bit vector cross-linking into the Instruction
 * Monitor). When a region entry is evicted, every instruction that
 * touched it gets TotalRegions++ and, if the region was dense (> 6
 * lines), DenseRegions++. After 4 regions a verdict is reached: an
 * instruction that accessed dense regions with probability > 3/4 is
 * marked, and its future executions trigger whole-region prefetches
 * into the L2. Table II budget: 16-entry IM + 16-entry RM + 1 Kb of
 * state bits = 1.2 KB.
 */

#ifndef DOL_CORE_C1_HPP
#define DOL_CORE_C1_HPP

#include <cstdint>
#include <vector>

#include "common/flat_table.hpp"
#include "prefetch/prefetcher.hpp"

namespace dol
{

class C1Prefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned regionEntries = 16;      ///< RM entries
        unsigned instructionEntries = 16; ///< IM entries
        unsigned denseLineThreshold = 6;  ///< > 6 of 16 lines = dense
        unsigned decisionRegions = 4;     ///< regions before a verdict
        /** Dense probability numerator/denominator: > 3/4. */
        unsigned denseNum = 3;
        unsigned denseDen = 4;
        unsigned destLevel = kL2; ///< lower accuracy -> prefetch to L2
        std::uint8_t priority = 1; ///< first to be dropped
        std::size_t maxMarked = 4096; ///< modelled state-bit capacity
    };

    C1Prefetcher();
    explicit C1Prefetcher(const Params &params);

    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;

    std::size_t storageBits() const override;
    void exportCounters(CounterRegistry &registry) const override;

    /** Does C1 own this instruction? (coordinator query) */
    bool isMarked(Pc m_pc) const { return _marked.contains(m_pc); }
    bool isMonitored(Pc m_pc) const;

    /**
     * Offer an instruction for monitoring. The coordinator calls this
     * for instructions T2 and P1 rejected; returns true if the IM
     * accepted (it never evicts — entries stay until a verdict).
     */
    bool considerInstruction(Pc m_pc);

    std::uint64_t regionsPrefetched() const { return _regionsPrefetched; }

  private:
    struct RegionEntry
    {
        std::uint64_t region = ~std::uint64_t{0};
        bool valid = false;
        std::uint16_t lineVector = 0;
        std::uint16_t pcVector = 0; ///< one bit per IM entry
        std::uint64_t lruStamp = 0;
    };

    struct InstrEntry
    {
        Pc mPc = 0;
        bool valid = false;
        std::uint8_t totalRegions = 0;
        std::uint8_t denseRegions = 0;
    };

    void evictRegion(RegionEntry &entry);
    void decide(InstrEntry &entry);

    Params _params;
    std::vector<RegionEntry> _regions;
    std::vector<InstrEntry> _instrs;
    FlatHashSet<Pc> _marked;
    /** Instructions judged not-dense: C1 knows its boundary and does
     *  not re-monitor them, so the coordinator can route them on. */
    FlatHashSet<Pc> _rejected;
    /** Region most recently blanket-prefetched per instruction. */
    FlatHashMap<Pc, std::uint64_t> _lastPrefetchedRegion;
    std::uint64_t _stamp = 0;
    std::uint64_t _regionsPrefetched = 0;

    /** Training cycle, plumbed to the eviction/verdict paths (which
     *  have no AccessInfo of their own). */
    Cycle _now = 0;

    // Decision counters (exported into the counter registry).
    std::uint64_t _regionsObserved = 0;
    std::uint64_t _denseRegionsObserved = 0;
    std::uint64_t _verdictsMarked = 0;
    std::uint64_t _verdictsRejected = 0;
};

} // namespace dol

#endif // DOL_CORE_C1_HPP
