/**
 * @file
 * AdaptiveCoordinator: feedback-driven coordination policy for the
 * composite prefetcher (ROADMAP item 2).
 *
 * The paper's coordinator is hardwired: T2 -> P1 -> C1 claim priority
 * and whatever degree each component was configured with. This module
 * adds an opt-in mode (`dolsim --coordinator adaptive`) that keeps the
 * hardwired structure but closes three feedback loops over it:
 *
 *  1. Per-slot effective-accuracy and coverage EWMAs, accumulated in
 *     fixed windows of demand accesses from the same issued/used
 *     signals the throttle bookkeeping already tracks.
 *  2. A slow-start degree schedule for every bound extra: the emission
 *     budget starts at 1 per training call, doubles while the accuracy
 *     EWMA stays above a threshold, and halves on inaccuracy or on
 *     DRAM window-deferral pressure (the PR 7 bandwidth counters,
 *     observed through a pressure probe).
 *  3. Online re-binding of claim priority: a claimant (T2/P1/C1) whose
 *     accuracy EWMA sits below a floor for K consecutive windows is
 *     demoted — its claims are ignored and its emissions blocked, so
 *     its accesses fall through to the extras — then re-admitted after
 *     a probation period.
 *
 * Everything is integer arithmetic (per-mille ratios, shift-based
 * EWMAs): decisions are bit-identical across platforms and `--jobs`
 * counts, which the differential checker and the golden harness rely
 * on. The decision sequence per closed window is fixed and documented
 * on endWindow(); `src/check/reference_adaptive.hpp` re-implements it
 * naively and `--fuzz-adaptive` diffs the two per window.
 *
 * Adaptation is observer-side only: it reads demand-stream feedback
 * and changes nothing but prefetch issue (budgets and claim routing),
 * so the demand stream itself is invariant between the hardwired and
 * adaptive modes — the property the differential campaign asserts.
 */

#ifndef DOL_CORE_ADAPTIVE_HPP
#define DOL_CORE_ADAPTIVE_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/cache.hpp" // ComponentId

namespace dol
{

class TraceContext;
class CounterRegistry;

/** Tuning knobs for the adaptive coordinator. All thresholds are
 *  per-mille so the policy never touches floating point. */
struct AdaptiveParams
{
    /** Demand accesses per decision window. */
    std::uint64_t windowAccesses = 256;
    /** EWMA smoothing: ewma += (sample - ewma) >> shift. */
    unsigned ewmaShift = 1;
    /** Double an extra's degree at/above this accuracy EWMA. */
    unsigned rampHiPermille = 300;
    /** Halve an extra's degree below this accuracy EWMA. */
    unsigned rampLoPermille = 60;
    /** Demote a claimant below this accuracy EWMA... */
    unsigned demoteFloorPermille = 40;
    /** ...for this many consecutive windows (the K in the tests). */
    unsigned demoteWindows = 4;
    /** Windows a demoted claimant sits out before re-admission. */
    unsigned probationWindows = 16;
    /** Slow-start initial degree for every extra. */
    unsigned startDegree = 1;
    /** Degree ramp ceiling. */
    unsigned maxDegree = 32;
    /** Windows with fewer issues than this yield no accuracy verdict. */
    std::uint64_t minWindowIssued = 8;
};

/** One slot's window observation (inputs to the window decision). */
struct AdaptiveWindowInput
{
    std::uint64_t issued = 0;
    std::uint64_t used = 0;
};

/** One slot's policy state after a window decision. */
struct AdaptiveSlotState
{
    std::uint32_t degree = 0;      ///< extras: current emission budget
    std::int32_t ewmaAcc = 0;      ///< accuracy EWMA, per-mille
    std::int32_t ewmaCov = 0;      ///< coverage EWMA, per-mille
    bool ewmaValid = false;        ///< accuracy EWMA has a sample
    std::uint32_t belowStreak = 0; ///< claimants: consecutive bad windows
    bool demoted = false;          ///< claimants: claims ignored
    std::uint32_t probationLeft = 0;
};

/**
 * One closed window, as logged for the differential checker: the raw
 * inputs, the pressure-probe delta, and the post-decision state of
 * every slot. The reference model replays `inputs`/`pressureDelta`
 * through its own naive policy and diffs `outputs`.
 */
struct AdaptiveWindowRecord
{
    std::vector<AdaptiveWindowInput> inputs;
    std::uint64_t pressureDelta = 0;
    std::vector<AdaptiveSlotState> outputs;
};

class AdaptiveCoordinator
{
  public:
    /** Fixed claimant slots; extras are appended after these. */
    static constexpr std::size_t kSlotT2 = 0;
    static constexpr std::size_t kSlotP1 = 1;
    static constexpr std::size_t kSlotC1 = 2;
    static constexpr std::size_t kFirstExtraSlot = 3;

    /** Budget value meaning "no cap" (claimants in good standing). */
    static constexpr std::uint32_t kUnlimited = 0xffffffffu;

    explicit AdaptiveCoordinator(const AdaptiveParams &params);

    /** Append one extra slot (mirrors CompositePrefetcher::addComponent). */
    void addExtra();

    std::size_t numSlots() const { return _slots.size(); }
    std::size_t numExtras() const
    {
        return _slots.size() - kFirstExtraSlot;
    }

    /** Emission budget for one training/fill call into this slot. */
    std::uint32_t
    budgetFor(std::size_t slot) const
    {
        const Slot &s = _slots[slot];
        if (slot >= kFirstExtraSlot)
            return s.state.degree;
        return s.state.demoted ? 0 : kUnlimited;
    }

    bool demoted(std::size_t slot) const
    {
        return _slots[slot].state.demoted;
    }

    std::uint32_t degree(std::size_t slot) const
    {
        return _slots[slot].state.degree;
    }

    const AdaptiveSlotState &slotState(std::size_t slot) const
    {
        return _slots[slot].state;
    }

    // Feedback inputs ----------------------------------------------
    void
    recordIssued(std::size_t slot, std::uint64_t count)
    {
        _slots[slot].issuedWindow += count;
    }

    void recordUsed(std::size_t slot) { ++_slots[slot].usedWindow; }

    void
    recordThrottled(std::size_t slot, std::uint64_t count)
    {
        _slots[slot].throttledTotal += count;
    }

    /** Cumulative DRAM window-deferral count (PR 7 bandwidth caps);
     *  the per-window delta is the pressure signal. Unset = no
     *  pressure feedback. */
    void setPressureProbe(std::function<std::uint64_t()> probe)
    {
        _pressureProbe = std::move(probe);
    }

    /** Component ids per slot, for trace-event attribution. */
    void setSlotComponent(std::size_t slot, ComponentId comp)
    {
        _slots[slot].comp = comp;
    }

    void setTraceContext(TraceContext *trace) { _trace = trace; }

    /** Mirror every window decision into @p log (differential checker;
     *  nullptr = off, the default). */
    void setDecisionLog(std::vector<AdaptiveWindowRecord> *log)
    {
        _decisionLog = log;
    }

    /**
     * Count one demand access; closes the window (and runs the
     * decision sequence) every windowAccesses calls.
     */
    void
    onAccess(Cycle when)
    {
        if (++_accessInWindow >= _params.windowAccesses)
            endWindow(when);
    }

    std::uint64_t windows() const { return _windows; }

    /** Export all policy state under the `adapt.` scope. */
    void exportCounters(CounterRegistry &registry) const;

  private:
    struct Slot
    {
        AdaptiveSlotState state;
        std::uint64_t issuedWindow = 0;
        std::uint64_t usedWindow = 0;
        std::uint64_t issuedTotal = 0;
        std::uint64_t usedTotal = 0;
        std::uint64_t throttledTotal = 0;
        ComponentId comp = kNoComponent;
    };

    /**
     * Close one window. The decision sequence — fixed, and mirrored
     * verbatim by ReferenceAdaptive — is, for each slot in index
     * order:
     *
     *   1. coverage EWMA <- min(1000, used * 1000 / windowAccesses)
     *   2. if issued >= minWindowIssued:
     *        accuracy EWMA <- min(1000, used * 1000 / issued)
     *   3. extras: pressure halving first (pressureDelta > 0), else
     *      ramp double at/above rampHi (on the sticky EWMA, no fresh
     *      verdict needed — a sparse but accurate extra must not be
     *      starved by its own slow start), else halve below rampLo
     *      (only with an accuracy verdict this window: stale
     *      inaccuracy must not keep punishing a quiet component).
     *   4. claimants: tick probation if demoted (re-admit at zero,
     *      resetting streak and accuracy history); otherwise extend or
     *      reset the below-floor streak and demote at K.
     */
    void endWindow(Cycle when);

    void updateEwma(std::int32_t &ewma, bool &valid,
                    std::int32_t sample) const;

    AdaptiveParams _params;
    std::vector<Slot> _slots;
    std::uint64_t _accessInWindow = 0;
    std::uint64_t _windows = 0;
    std::uint64_t _lastPressure = 0;
    bool _pressurePrimed = false;
    std::function<std::uint64_t()> _pressureProbe;
    TraceContext *_trace = nullptr;
    std::vector<AdaptiveWindowRecord> *_decisionLog = nullptr;

    // Lifetime tallies for the `adapt.` counter scope.
    std::uint64_t _ramps = 0;
    std::uint64_t _halvings = 0;
    std::uint64_t _pressureHalvings = 0;
    std::uint64_t _demotions = 0;
    std::uint64_t _readmits = 0;
};

} // namespace dol

#endif // DOL_CORE_ADAPTIVE_HPP
