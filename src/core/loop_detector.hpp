/**
 * @file
 * T2's loop hardware (paper section IV-A.1, Figure 3-a).
 *
 * A single loop-branch register (LR) holds the PC and target of the
 * most recent backward branch. Back-to-back instances of the same
 * backward branch identify an inner loop and mark iteration
 * boundaries. Backward branches that interrupt a confirmed loop branch
 * are remembered in the Non-Loop PC Table (NLPCT) and skipped by the
 * loop marker from then on — so nested loops resolve to the innermost
 * loop, the one whose iteration time matters for prefetch distance.
 */

#ifndef DOL_CORE_LOOP_DETECTOR_HPP
#define DOL_CORE_LOOP_DETECTOR_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "cpu/instr.hpp"

namespace dol
{

class LoopDetector
{
  public:
    explicit LoopDetector(unsigned nlpct_entries = 20)
        : _nlpct(nlpct_entries)
    {}

    /**
     * Observe one retired instruction.
     *
     * @param finish retirement cycle, used to time iterations
     * @return true when the instruction closed a loop iteration
     */
    bool observe(const Instr &instr, Cycle finish);

    /** Is a stable loop currently executing? */
    bool inLoop() const { return _confirmations >= 1; }

    /**
     * Smoothed execution time per iteration of the current inner
     * loop, in cycles. Zero until a loop is confirmed.
     */
    double iterationTime() const { return _iterTime; }

    Pc loopBranchPc() const { return _lrPc; }

    std::uint64_t iterationsObserved() const { return _iterations; }

    /** LR (PC+target) plus NLPCT PC tags. */
    std::size_t
    storageBits() const
    {
        return 2 * 32 + _nlpct.size() * 32;
    }

  private:
    bool inNlpct(Pc pc) const;
    void addToNlpct(Pc pc);

    std::vector<Pc> _nlpct; ///< FIFO of non-loop backward-branch PCs
    std::size_t _nlpctHead = 0;
    std::size_t _nlpctSize = 0;

    Pc _lrPc = 0;
    Pc _lrTarget = 0;
    bool _lrValid = false;
    unsigned _confirmations = 0;

    /**
     * Interrupting branch seen once. If it repeats back-to-back it is
     * the branch of a *new* inner loop and takes over the LR; if the
     * old loop branch reappears first, it was a non-loop branch and
     * moves to the NLPCT.
     */
    Pc _pendingPc = 0;
    Pc _pendingTarget = 0;
    bool _pendingValid = false;

    Cycle _lastBoundary = 0;
    double _iterTime = 0.0;
    std::uint64_t _iterations = 0;
};

} // namespace dol

#endif // DOL_CORE_LOOP_DETECTOR_HPP
