/**
 * @file
 * P1: the pointer prefetcher component (paper section IV-B, Figure 4).
 *
 * Two pointer patterns are targeted:
 *
 * 1. *Array of pointers* — a load whose address is a constant offset
 *    from the value of a strided (T2-identified) load. A one-at-a-time
 *    scout seeds the taint propagation unit (TPU) at the producer's
 *    destination register; tainted loads are delta-checked against the
 *    producer's value and, after four consistent iterations, the
 *    producer is marked a strided-pointer instruction (its T2 distance
 *    doubles) and P1 issues the dependent prefetches using the values
 *    the producer's stream prefetches return.
 *
 * 2. *Pointer chains* — a load whose next address is its own previous
 *    value plus a constant delta (A_{n+1} = value_n + delta). The
 *    chasing FSM issues one prefetch per returned value during
 *    catch-up and tops the chain up as the demand stream consumes
 *    nodes; a prediction ring with a timeout resets the FSM when the
 *    chain deviates (the paper's correction mechanism).
 *
 * Table II budget: 1 PtrPC scout, 8-entry SIT, 64-bit TPU, 1 KB of
 * state bits = 1.07 KB.
 */

#ifndef DOL_CORE_P1_HPP
#define DOL_CORE_P1_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "common/flat_table.hpp"
#include "core/t2.hpp"
#include "cpu/taint.hpp"
#include "mem/memory_image.hpp"
#include "prefetch/prefetcher.hpp"

namespace dol
{

class P1Prefetcher : public Prefetcher
{
  public:
    struct Params
    {
        unsigned chainEntries = 8;       ///< pointer-chain SIT
        unsigned confirmThreshold = 4;   ///< consistent deltas needed
        unsigned maxChainDepth = 8;      ///< nodes prefetched ahead
        unsigned timeoutIters = 8;       ///< paper's m (resync window)
        unsigned scoutIterBudget = 12;   ///< iterations per candidate
        /** Largest plausible pointer-to-address offset, bytes. */
        std::int64_t maxPtrDelta = 65536;
        std::uint8_t priority = 3;
    };

    /**
     * @param t2     the stride component whose SIT P1 extends
     * @param memory simulated memory (values returned by fills)
     */
    P1Prefetcher(T2Prefetcher *t2, const ValueSource *memory);
    P1Prefetcher(T2Prefetcher *t2, const ValueSource *memory,
                 const Params &params);

    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;
    void onInstr(const Instr &instr, const RetireInfo &retire, Pc m_pc,
                 PrefetchEmitter &emitter) override;
    void onFill(ComponentId comp, Addr line_addr, Cycle completion,
                PrefetchEmitter &emitter) override;

    std::size_t storageBits() const override;
    void exportCounters(CounterRegistry &registry) const override;

    /** Does P1 own this instruction? (coordinator query) */
    bool handles(Pc m_pc) const;

    const Params &params() const { return _params; }

    // Introspection for tests.
    bool isChainConfirmed(Pc m_pc) const;
    bool isDependent(Pc m_pc) const { return _dependents.contains(m_pc); }
    std::uint64_t chainPrefetchesStarted() const { return _chainsStarted; }

  private:
    /** Ring of predicted future demand lines, for the resync check. */
    struct PredictionRing
    {
        std::array<Addr, 8> lines{};
        unsigned head = 0;
        unsigned count = 0;

        void push(Addr line);
        bool contains(Addr line) const;
        void clear() { count = 0; }
    };

    struct ChainEntry
    {
        Pc mPc = 0;
        bool valid = false;
        std::uint64_t lruStamp = 0;

        std::uint64_t lastValue = 0;
        bool hasValue = false;
        std::int64_t delta = 0;
        std::uint8_t conf = 0;
        bool confirmed = false;

        // Chasing FSM state.
        bool awaitFill = false;
        Addr chaseAddr = 0;     ///< link-field address being fetched
        Addr pendingLine = 0;   ///< line whose fill we wait on
        Addr nextChaseAddr = 0; ///< next link to fetch (value known)
        bool nextValid = false;
        /** Earliest cycle the FSM physically knows nextChaseAddr
         *  (fill return time) — prefetches never issue before it. */
        Cycle nextKnownAt = 0;
        unsigned ahead = 0; ///< nodes prefetched ahead of demand

        PredictionRing predicted;
        std::uint8_t missCount = 0;
    };

    /** Array-of-pointers: a confirmed producer/dependent pair. */
    struct ProducerRecord
    {
        Pc producerMPc = 0;
        Pc dependentMPc = 0;
        std::int64_t ptrDelta = 0;
        /** Producer's latest architectural value, for the resync
         *  check: the dependent must access lastValue + ptrDelta. */
        std::uint64_t lastValue = 0;
        bool hasLastValue = false;
        std::uint8_t missCount = 0;
        /** Producer-stream slot whose dependent was last prefetched;
         *  advances like T2's frontier so no dependent is skipped
         *  when the prefetch distance drifts. */
        Addr slotFrontier = kNoAddr;
    };

    static bool
    plausiblePointer(std::uint64_t value)
    {
        return value != 0 && value < (std::uint64_t{1} << 44);
    }

    ChainEntry *findChain(Pc m_pc);
    ChainEntry &allocateChain(Pc m_pc);
    void observeChainCandidate(const Instr &instr, Pc m_pc,
                               PrefetchEmitter &emitter, Cycle when);
    void advanceChase(ChainEntry &entry, Cycle when,
                      PrefetchEmitter &emitter);
    void resetChase(ChainEntry &entry);

    void runScout(const Instr &instr, Pc m_pc, Cycle when);
    void confirmProducer(Pc producer_m_pc, Pc dependent_m_pc,
                         std::int64_t delta, Cycle when);
    void producerExecuted(const Instr &instr, Pc m_pc, Cycle when,
                          PrefetchEmitter &emitter);
    void dependentExecuted(const Instr &instr, Pc m_pc, Cycle when);

    Params _params;
    T2Prefetcher *_t2;
    const ValueSource *_memory;

    std::vector<ChainEntry> _chains;
    std::uint64_t _stamp = 0;
    std::uint64_t _chainsStarted = 0;

    // Decision counters (exported into the counter registry).
    std::uint64_t _chainsConfirmed = 0;
    std::uint64_t _chainResyncs = 0;
    std::uint64_t _linksFollowed = 0;
    std::uint64_t _producersConfirmed = 0;
    std::uint64_t _dependentTimeouts = 0;

    // One-at-a-time producer scout (the PtrPC register + TPU).
    struct Scout
    {
        bool active = false;
        Pc producerMPc = 0;
        std::uint64_t producerValue = 0;
        TaintTracker taint;
        unsigned iterations = 0;

        Pc candidateMPc = 0;
        bool haveCandidate = false;
        std::int64_t candidateDelta = 0;
        std::uint8_t candidateConf = 0;
    } _scout;

    /** Producers already scouted (pass or fail), to avoid thrash. */
    FlatHashSet<Pc> _scouted;
    /** Confirmed array-of-pointer pairs, keyed by producer mPC. */
    FlatHashMap<Pc, ProducerRecord> _producers;
    /** Dependent mPCs P1 owns, mapped back to their producer. */
    FlatHashMap<Pc, Pc> _dependents;
};

} // namespace dol

#endif // DOL_CORE_P1_HPP
