#include "core/registry.hpp"

#include "common/log.hpp"
#include "prefetch/ampm.hpp"
#include "prefetch/bop.hpp"
#include "prefetch/fdp.hpp"
#include "prefetch/ghb_pcdc.hpp"
#include "prefetch/isb.hpp"
#include "prefetch/markov.hpp"
#include "prefetch/next_line.hpp"
#include "prefetch/pchase.hpp"
#include "prefetch/sms.hpp"
#include "prefetch/spp.hpp"
#include "prefetch/stride_pc.hpp"
#include "prefetch/triangel.hpp"
#include "prefetch/vldp.hpp"

namespace dol
{

std::vector<std::string>
monolithicPrefetcherNames()
{
    return {"GHB-PC/DC", "FDP", "VLDP", "SPP", "BOP", "AMPM", "SMS"};
}

std::vector<std::string>
figureEightPrefetcherNames()
{
    auto names = monolithicPrefetcherNames();
    names.push_back("TPC");
    return names;
}

std::unique_ptr<CompositePrefetcher>
makeTpc(const ValueSource *memory,
        const CompositePrefetcher::Config &config)
{
    return std::make_unique<CompositePrefetcher>(memory, config, "TPC");
}

namespace
{

std::unique_ptr<Prefetcher>
makeMonolithic(const std::string &name, const ValueSource *memory)
{
    if (name == "GHB-PC/DC")
        return std::make_unique<GhbPcdcPrefetcher>();
    if (name == "SPP")
        return std::make_unique<SppPrefetcher>();
    if (name == "VLDP")
        return std::make_unique<VldpPrefetcher>();
    if (name == "BOP")
        return std::make_unique<BopPrefetcher>();
    if (name == "FDP")
        return std::make_unique<FdpPrefetcher>();
    if (name == "SMS")
        return std::make_unique<SmsPrefetcher>();
    if (name == "AMPM")
        return std::make_unique<AmpmPrefetcher>();
    if (name == "Markov")
        return std::make_unique<MarkovPrefetcher>();
    if (name == "ISB")
        return std::make_unique<IsbPrefetcher>();
    if (name == "NextLine")
        return std::make_unique<NextLinePrefetcher>();
    if (name == "StridePC")
        return std::make_unique<StridePcPrefetcher>();
    if (name == "Triangel")
        return std::make_unique<TriangelPrefetcher>();
    if (name == "PChase")
        return std::make_unique<PChasePrefetcher>(memory);
    return nullptr;
}

/** Split "A+B+C" into component names. */
std::vector<std::string>
splitExtras(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t plus = list.find('+', start);
        if (plus == std::string::npos) {
            out.push_back(list.substr(start));
            break;
        }
        out.push_back(list.substr(start, plus - start));
        start = plus + 1;
    }
    return out;
}

} // namespace

std::unique_ptr<Prefetcher>
makePrefetcher(const std::string &name, const ValueSource *memory,
               bool adaptive)
{
    if (auto mono = makeMonolithic(name, memory))
        return mono; // monolithics have no coordinator to adapt

    if (name == "T2") {
        CompositePrefetcher::Config config;
        config.enableP1 = false;
        config.enableC1 = false;
        config.adaptive = adaptive;
        return std::make_unique<CompositePrefetcher>(memory, config,
                                                     "T2");
    }
    if (name == "T2P1") {
        CompositePrefetcher::Config config;
        config.enableC1 = false;
        config.adaptive = adaptive;
        return std::make_unique<CompositePrefetcher>(memory, config,
                                                     "T2P1");
    }
    if (name == "TPC") {
        CompositePrefetcher::Config config;
        config.adaptive = adaptive;
        return makeTpc(memory, config);
    }

    constexpr std::string_view composite_prefix = "TPC+";
    constexpr std::string_view shunt_prefix = "SHUNT:TPC+";

    if (name.starts_with(shunt_prefix)) {
        auto shunt = std::make_unique<ShuntPrefetcher>(name);
        shunt->addComponent(makeTpc(memory));
        for (const std::string &extra_name :
             splitExtras(name.substr(shunt_prefix.size()))) {
            auto extra = makeMonolithic(extra_name, memory);
            if (!extra)
                fatal("unknown shunt component: " + extra_name);
            shunt->addComponent(std::move(extra));
        }
        return shunt;
    }

    if (name.starts_with(composite_prefix)) {
        CompositePrefetcher::Config config;
        config.adaptive = adaptive;
        auto tpc = makeTpc(memory, config);
        for (const std::string &extra_name :
             splitExtras(name.substr(composite_prefix.size()))) {
            auto extra = makeMonolithic(extra_name, memory);
            if (!extra)
                fatal("unknown composite component: " + extra_name);
            tpc->addComponent(std::move(extra));
        }
        return tpc;
    }

    fatal("unknown prefetcher: " + name);
}

} // namespace dol
