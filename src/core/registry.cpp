#include "core/registry.hpp"

#include "common/log.hpp"
#include "prefetch/ampm.hpp"
#include "prefetch/bop.hpp"
#include "prefetch/fdp.hpp"
#include "prefetch/ghb_pcdc.hpp"
#include "prefetch/isb.hpp"
#include "prefetch/markov.hpp"
#include "prefetch/next_line.hpp"
#include "prefetch/sms.hpp"
#include "prefetch/spp.hpp"
#include "prefetch/stride_pc.hpp"
#include "prefetch/vldp.hpp"

namespace dol
{

std::vector<std::string>
monolithicPrefetcherNames()
{
    return {"GHB-PC/DC", "FDP", "VLDP", "SPP", "BOP", "AMPM", "SMS"};
}

std::vector<std::string>
figureEightPrefetcherNames()
{
    auto names = monolithicPrefetcherNames();
    names.push_back("TPC");
    return names;
}

std::unique_ptr<CompositePrefetcher>
makeTpc(const ValueSource *memory,
        const CompositePrefetcher::Config &config)
{
    return std::make_unique<CompositePrefetcher>(memory, config, "TPC");
}

namespace
{

std::unique_ptr<Prefetcher>
makeMonolithic(const std::string &name)
{
    if (name == "GHB-PC/DC")
        return std::make_unique<GhbPcdcPrefetcher>();
    if (name == "SPP")
        return std::make_unique<SppPrefetcher>();
    if (name == "VLDP")
        return std::make_unique<VldpPrefetcher>();
    if (name == "BOP")
        return std::make_unique<BopPrefetcher>();
    if (name == "FDP")
        return std::make_unique<FdpPrefetcher>();
    if (name == "SMS")
        return std::make_unique<SmsPrefetcher>();
    if (name == "AMPM")
        return std::make_unique<AmpmPrefetcher>();
    if (name == "Markov")
        return std::make_unique<MarkovPrefetcher>();
    if (name == "ISB")
        return std::make_unique<IsbPrefetcher>();
    if (name == "NextLine")
        return std::make_unique<NextLinePrefetcher>();
    if (name == "StridePC")
        return std::make_unique<StridePcPrefetcher>();
    return nullptr;
}

} // namespace

std::unique_ptr<Prefetcher>
makePrefetcher(const std::string &name, const ValueSource *memory)
{
    if (auto mono = makeMonolithic(name))
        return mono;

    if (name == "T2") {
        CompositePrefetcher::Config config;
        config.enableP1 = false;
        config.enableC1 = false;
        return std::make_unique<CompositePrefetcher>(memory, config,
                                                     "T2");
    }
    if (name == "T2P1") {
        CompositePrefetcher::Config config;
        config.enableC1 = false;
        return std::make_unique<CompositePrefetcher>(memory, config,
                                                     "T2P1");
    }
    if (name == "TPC")
        return makeTpc(memory);

    constexpr std::string_view composite_prefix = "TPC+";
    constexpr std::string_view shunt_prefix = "SHUNT:TPC+";

    if (name.starts_with(shunt_prefix)) {
        const std::string extra_name(
            name.substr(shunt_prefix.size()));
        auto extra = makeMonolithic(extra_name);
        if (!extra)
            fatal("unknown shunt component: " + extra_name);
        auto shunt = std::make_unique<ShuntPrefetcher>(name);
        shunt->addComponent(makeTpc(memory));
        shunt->addComponent(std::move(extra));
        return shunt;
    }

    if (name.starts_with(composite_prefix)) {
        const std::string extra_name(
            name.substr(composite_prefix.size()));
        auto extra = makeMonolithic(extra_name);
        if (!extra)
            fatal("unknown composite component: " + extra_name);
        auto tpc = makeTpc(memory);
        tpc->addComponent(std::move(extra));
        return tpc;
    }

    fatal("unknown prefetcher: " + name);
}

} // namespace dol
