/**
 * @file
 * The Stride Identifier Table shared by T2 and P1 (paper Figure 3-b).
 *
 * Entries are keyed by the call-site-disambiguated mPC (PC xor RAS
 * top). T2 uses the stride fields; P1 extends the same entry with the
 * producer-value fields needed for the array-of-pointers pattern,
 * exactly as the paper's "(expanded) stride identifier table".
 */

#ifndef DOL_CORE_SIT_HPP
#define DOL_CORE_SIT_HPP

#include <cstdint>
#include <vector>

#include "common/flat_table.hpp"
#include "common/types.hpp"

namespace dol
{

/** Per-instruction state kept in the I-cache (paper IV-A.2). */
enum class InstrState : std::uint8_t
{
    kUnknown = 0,     ///< never triggered a primary miss
    kObservation = 1, ///< being tracked in the SIT
    kStrided = 2,     ///< confirmed canonical stream
    kNonStrided = 3,  ///< confirmed not a stream (C1's domain)
};

struct SitEntry
{
    Pc mPc = 0;
    bool valid = false;
    std::uint64_t lruStamp = 0;

    Addr lastAddr = 0;
    std::int64_t delta = 0;
    std::uint8_t sameDeltaCount = 0;
    std::uint8_t diffDeltaCount = 0;

    /** Last line the stream prefetch advanced to. */
    Addr lastIssuedLine = kNoAddr;

    // --- P1 extension: strided-pointer producer tracking ---------
    std::uint64_t lastValue = 0;
    bool hasLastValue = false;
    /** Constant offset between producer value and dependent address. */
    std::int64_t ptrDelta = 0;
    std::uint8_t ptrConf = 0;
    /** Confirmed "strided pointer instruction" (paper IV-B.1). */
    bool ptrProducer = false;
};

/**
 * Small fully-associative LRU table of SitEntry.
 *
 * The modelled hardware is a 32-entry CAM; the software layout is a
 * flat mPC -> slot index so the per-access find() costs one hash
 * probe instead of a scan over ~80-byte entries. Victim selection
 * still walks the entry array (allocation is rare) in the exact
 * order the CAM scan used, so eviction decisions are unchanged.
 */
class StrideIdentifierTable
{
  public:
    explicit StrideIdentifierTable(unsigned entries = 32)
        : _entries(entries)
    {
        _index.reserve(entries);
    }

    SitEntry *
    find(Pc m_pc)
    {
        const std::uint32_t *slot = _index.find(m_pc);
        if (!slot)
            return nullptr;
        SitEntry &entry = _entries[*slot];
        entry.lruStamp = ++_stamp;
        return &entry;
    }

    const SitEntry *
    find(Pc m_pc) const
    {
        const std::uint32_t *slot = _index.find(m_pc);
        return slot ? &_entries[*slot] : nullptr;
    }

    SitEntry &
    allocate(Pc m_pc, Addr addr)
    {
        SitEntry *victim = &_entries[0];
        for (SitEntry &entry : _entries) {
            if (!entry.valid) {
                victim = &entry;
                break;
            }
            if (entry.lruStamp < victim->lruStamp)
                victim = &entry;
        }
        if (victim->valid)
            _index.erase(victim->mPc);
        *victim = SitEntry{};
        victim->valid = true;
        victim->mPc = m_pc;
        victim->lastAddr = addr;
        victim->lruStamp = ++_stamp;
        _index.insert(m_pc, static_cast<std::uint32_t>(
                                victim - _entries.data()));
        return *victim;
    }

    void
    release(Pc m_pc)
    {
        if (SitEntry *entry = find(m_pc)) {
            entry->valid = false;
            _index.erase(m_pc);
        }
    }

    std::size_t size() const { return _entries.size(); }

    /** mPc tag (16) + addr (32) + delta (16) + counters (10) +
     *  pointer extension (value 32 + delta 16 + conf 3 + flags 2). */
    std::size_t
    storageBits() const
    {
        return _entries.size() * (16 + 32 + 16 + 10 + 32 + 16 + 3 + 2);
    }

  private:
    std::vector<SitEntry> _entries;
    /** mPC -> index into _entries (layout acceleration only). */
    FlatHashMap<Pc, std::uint32_t> _index;
    std::uint64_t _stamp = 0;
};

} // namespace dol

#endif // DOL_CORE_SIT_HPP
