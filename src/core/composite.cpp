#include "core/composite.hpp"

#include "trace/context.hpp"
#include "trace/counters.hpp"

namespace dol
{

CompositePrefetcher::CompositePrefetcher(const ValueSource *memory)
    : CompositePrefetcher(memory, Config(), "TPC")
{}

CompositePrefetcher::CompositePrefetcher(const ValueSource *memory,
                                         const Config &config,
                                         std::string name)
    : Prefetcher(std::move(name)), _config(config)
{
    if (config.enableT2)
        _t2 = std::make_unique<T2Prefetcher>(config.t2);
    if (config.enableP1 && _t2) {
        _p1 = std::make_unique<P1Prefetcher>(_t2.get(), memory,
                                             config.p1);
    }
    if (config.enableC1)
        _c1 = std::make_unique<C1Prefetcher>(config.c1);
    if (config.adaptive)
        _adapt = std::make_unique<AdaptiveCoordinator>(config.adapt);
}

void
CompositePrefetcher::addComponent(std::unique_ptr<Prefetcher> extra)
{
    _extras.push_back(std::move(extra));
    _health.emplace_back();
    _extraBoundAccesses.push_back(0);
    if (_adapt)
        _adapt->addExtra();
}

bool
CompositePrefetcher::extraSuspended(std::size_t index) const
{
    return index < _health.size() &&
           _health[index].suspendedUntil > _accessCount;
}

void
CompositePrefetcher::assignIds(const IdAllocator &alloc)
{
    if (_t2)
        _t2->setId(alloc(_t2->name()));
    if (_p1)
        _p1->setId(alloc(_p1->name()));
    if (_c1)
        _c1->setId(alloc(_c1->name()));
    for (auto &extra : _extras)
        extra->assignIds(alloc);

    // The composite itself never emits; give it a representative id.
    if (_t2)
        setId(_t2->id());
    else if (_c1)
        setId(_c1->id());

    if (_adapt) {
        if (_t2)
            _adapt->setSlotComponent(AdaptiveCoordinator::kSlotT2,
                                     _t2->id());
        if (_p1)
            _adapt->setSlotComponent(AdaptiveCoordinator::kSlotP1,
                                     _p1->id());
        if (_c1)
            _adapt->setSlotComponent(AdaptiveCoordinator::kSlotC1,
                                     _c1->id());
        for (std::size_t i = 0; i < _extras.size(); ++i) {
            _adapt->setSlotComponent(
                AdaptiveCoordinator::kFirstExtraSlot + i,
                _extras[i]->id());
        }
    }
}

void
CompositePrefetcher::setTraceContext(TraceContext *trace)
{
    Prefetcher::setTraceContext(trace);
    if (_t2)
        _t2->setTraceContext(trace);
    if (_p1)
        _p1->setTraceContext(trace);
    if (_c1)
        _c1->setTraceContext(trace);
    for (auto &extra : _extras)
        extra->setTraceContext(trace);
    if (_adapt)
        _adapt->setTraceContext(trace);
}

void
CompositePrefetcher::exportCounters(CounterRegistry &registry) const
{
    if (_t2)
        _t2->exportCounters(registry);
    if (_p1)
        _p1->exportCounters(registry);
    if (_c1)
        _c1->exportCounters(registry);
    for (const auto &extra : _extras)
        extra->exportCounters(registry);
    registry.set(name(), "coord_claims", _coordClaims);
    registry.set(name(), "coord_unclaims", _coordUnclaims);
    if (!_extras.empty()) {
        registry.set(name(), "coord_rr_binds", _roundRobinBinds);
        registry.set(name(), "coord_rebinds", _rebinds);
        for (std::size_t i = 0; i < _extras.size(); ++i) {
            registry.set(name(),
                         "coord_bound_" + _extras[i]->name(),
                         _extraBoundAccesses[i]);
        }
    }
    if (_adapt)
        _adapt->exportCounters(registry);
}

int
CompositePrefetcher::slotOfComponent(ComponentId comp) const
{
    if (_t2 && comp == _t2->id())
        return static_cast<int>(AdaptiveCoordinator::kSlotT2);
    if (_p1 && comp == _p1->id())
        return static_cast<int>(AdaptiveCoordinator::kSlotP1);
    if (_c1 && comp == _c1->id())
        return static_cast<int>(AdaptiveCoordinator::kSlotC1);
    const int extra = extraIndexOfComponent(comp);
    if (extra >= 0) {
        return static_cast<int>(AdaptiveCoordinator::kFirstExtraSlot) +
               extra;
    }
    return -1;
}

CompositePrefetcher::Owner
CompositePrefetcher::ownerOf(Pc m_pc) const
{
    if (_t2) {
        const InstrState state = _t2->stateOf(m_pc);
        if (state == InstrState::kStrided ||
            state == InstrState::kObservation) {
            return Owner::kT2;
        }
    }
    if (_p1 && _p1->handles(m_pc))
        return Owner::kP1;
    if (_c1 && (_c1->isMarked(m_pc) || _c1->isMonitored(m_pc)))
        return Owner::kC1;
    if (_bindings.contains(m_pc))
        return Owner::kExtra;
    return Owner::kNone;
}

int
CompositePrefetcher::boundExtraOf(Pc m_pc) const
{
    const unsigned *binding = _bindings.find(m_pc);
    return binding ? static_cast<int>(*binding) : -1;
}

int
CompositePrefetcher::extraIndexOfComponent(ComponentId comp) const
{
    for (std::size_t i = 0; i < _extras.size(); ++i) {
        if (_extras[i]->id() == comp)
            return static_cast<int>(i);
    }
    return -1;
}

void
CompositePrefetcher::routeToExtras(const AccessInfo &access,
                                   PrefetchEmitter &emitter)
{
    if (_extras.empty())
        return;

    // Rebinding: when a demand hits a line one of the extras
    // prefetched, that component owns the instruction from now on
    // (paper section IV-E).
    if (access.l1HitPrefetched) {
        const int idx = extraIndexOfComponent(access.l1HitComp);
        if (idx >= 0) {
            unsigned &bound = _bindings[access.mPc];
            if (bound != static_cast<unsigned>(idx)) {
                bound = static_cast<unsigned>(idx);
                ++_rebinds;
            }
        }
    }

    if (_bindings.size() > (1u << 16))
        _bindings.clear(); // finite coordinator state

    auto [binding, inserted] = _bindings.tryEmplace(access.mPc);
    if (inserted) {
        *binding = _nextBinding++ %
                   static_cast<unsigned>(_extras.size());
        ++_roundRobinBinds;
    }

    const unsigned index = *binding;
    ++_extraBoundAccesses[index];
    ExtraHealth &health = _health[index];
    if (access.l1HitPrefetched &&
        access.l1HitComp == _extras[index]->id()) {
        ++health.usedWindow;
    }
    if (_config.adaptiveThrottle && health.suspendedUntil > _accessCount)
        return; // component on probation: no prefetching

    Prefetcher &extra = *_extras[index];
    const std::uint64_t issued_before = emitter.issuedCount();
    runSlot(AdaptiveCoordinator::kFirstExtraSlot + index, extra, emitter,
            _config.extraDest, [&] { extra.train(access, emitter); });
    health.issuedWindow += emitter.issuedCount() - issued_before;

    if (_config.adaptiveThrottle &&
        health.issuedWindow >= _config.throttleWindow) {
        const double accuracy =
            static_cast<double>(health.usedWindow) /
            static_cast<double>(health.issuedWindow);
        if (accuracy < _config.throttleMinAccuracy) {
            health.suspendedUntil =
                _accessCount + _config.suspendAccesses;
        }
        health.issuedWindow = 0;
        health.usedWindow = 0;
    }
}

void
CompositePrefetcher::train(const AccessInfo &access,
                           PrefetchEmitter &emitter)
{
    ++_accessCount;

    // Adaptive feedback: credit the component whose prefetched line
    // this demand hit, before any training mutates state.
    if (_adapt && access.l1HitPrefetched) {
        const int slot = slotOfComponent(access.l1HitComp);
        if (slot >= 0)
            _adapt->recordUsed(static_cast<std::size_t>(slot));
    }

    // T2 sees every access: it is the first expert consulted and the
    // sole owner of strided instructions. A demoted claimant still
    // trains (so it re-admits with warm state) but its claim is
    // ignored and its emission budget is zero, so the access falls
    // through to lower-priority components.
    bool claimed = false;
    if (_t2) {
        runSlot(AdaptiveCoordinator::kSlotT2, *_t2, emitter,
                _config.t2Dest, [&] { _t2->train(access, emitter); });
        if (!(_adapt && _adapt->demoted(AdaptiveCoordinator::kSlotT2))) {
            const InstrState state = _t2->stateOf(access.mPc);
            claimed = state == InstrState::kStrided ||
                      state == InstrState::kObservation;
        }
    }

    // P1 acts on the retire stream; here it only claims ownership so
    // lower-priority components leave its instructions alone.
    if (!claimed && _p1 &&
        !(_adapt && _adapt->demoted(AdaptiveCoordinator::kSlotP1)) &&
        _p1->handles(access.mPc)) {
        claimed = true;
    }

    if (!claimed && _c1) {
        if (access.l1PrimaryMiss)
            _c1->considerInstruction(access.mPc);
        runSlot(AdaptiveCoordinator::kSlotC1, *_c1, emitter,
                _config.c1Dest, [&] { _c1->train(access, emitter); });
        if (!(_adapt && _adapt->demoted(AdaptiveCoordinator::kSlotC1))) {
            claimed = _c1->isMarked(access.mPc) ||
                      _c1->isMonitored(access.mPc);
        }
    }

    if (!claimed)
        routeToExtras(access, emitter);

    if (_adapt)
        _adapt->onAccess(access.when);

    if (_trace) {
        // Ownership-transition events. The map is only populated while
        // tracing, so the untraced path never touches it.
        const auto owner = static_cast<std::uint8_t>(ownerOf(access.mPc));
        const std::uint8_t *last = _lastOwner.find(access.mPc);
        const std::uint8_t previous = last ? *last : 0;
        if (owner != previous) {
            if (previous != 0) {
                ++_coordUnclaims;
                DOL_TRACE_EVENT(_trace, TraceEventType::kCoordUnclaim,
                                access.when, access.addr, access.mPc,
                                id(), 0, previous);
            }
            if (owner != 0) {
                ++_coordClaims;
                DOL_TRACE_EVENT(_trace, TraceEventType::kCoordClaim,
                                access.when, access.addr, access.mPc,
                                id(), 0, owner);
            }
            if (_lastOwner.size() > (1u << 16))
                _lastOwner.clear();
            _lastOwner[access.mPc] = owner;
        }
    }
}

void
CompositePrefetcher::onInstr(const Instr &instr, const RetireInfo &retire,
                             Pc m_pc, PrefetchEmitter &emitter)
{
    if (_t2) {
        runSlot(AdaptiveCoordinator::kSlotT2, *_t2, emitter,
                _config.t2Dest, [&] {
            _t2->onInstr(instr, retire, m_pc, emitter);
        });
    }
    if (_p1) {
        runSlot(AdaptiveCoordinator::kSlotP1, *_p1, emitter,
                _config.p1Dest, [&] {
            _p1->onInstr(instr, retire, m_pc, emitter);
        });
    }
    for (std::size_t i = 0; i < _extras.size(); ++i) {
        runSlot(AdaptiveCoordinator::kFirstExtraSlot + i, *_extras[i],
                emitter, _config.extraDest, [&] {
            _extras[i]->onInstr(instr, retire, m_pc, emitter);
        });
    }
}

void
CompositePrefetcher::onFill(ComponentId comp, Addr line_addr,
                            Cycle completion, PrefetchEmitter &emitter)
{
    if (_p1) {
        runSlot(AdaptiveCoordinator::kSlotP1, *_p1, emitter,
                _config.p1Dest, [&] {
            _p1->onFill(comp, line_addr, completion, emitter);
        });
    }
    for (std::size_t i = 0; i < _extras.size(); ++i) {
        runSlot(AdaptiveCoordinator::kFirstExtraSlot + i, *_extras[i],
                emitter, _config.extraDest, [&] {
            _extras[i]->onFill(comp, line_addr, completion, emitter);
        });
    }
}

std::size_t
CompositePrefetcher::storageBits() const
{
    std::size_t total = 0;
    if (_t2)
        total += _t2->storageBits();
    if (_p1)
        total += _p1->storageBits();
    if (_c1)
        total += _c1->storageBits();
    for (const auto &extra : _extras)
        total += extra->storageBits();
    return total;
}

// --- ShuntPrefetcher ---------------------------------------------

void
ShuntPrefetcher::assignIds(const IdAllocator &alloc)
{
    for (auto &component : _components)
        component->assignIds(alloc);
    if (!_components.empty())
        setId(_components.front()->id());
}

void
ShuntPrefetcher::train(const AccessInfo &access, PrefetchEmitter &emitter)
{
    const Cycle now = emitter.now();
    for (auto &component : _components) {
        emitter.setContext(component->id(), now);
        component->train(access, emitter);
    }
}

void
ShuntPrefetcher::onInstr(const Instr &instr, const RetireInfo &retire,
                         Pc m_pc, PrefetchEmitter &emitter)
{
    const Cycle now = emitter.now();
    for (auto &component : _components) {
        emitter.setContext(component->id(), now);
        component->onInstr(instr, retire, m_pc, emitter);
    }
}

void
ShuntPrefetcher::onFill(ComponentId comp, Addr line_addr,
                        Cycle completion, PrefetchEmitter &emitter)
{
    for (auto &component : _components) {
        emitter.setContext(component->id(), completion);
        component->onFill(comp, line_addr, completion, emitter);
    }
}

std::size_t
ShuntPrefetcher::storageBits() const
{
    std::size_t total = 0;
    for (const auto &component : _components)
        total += component->storageBits();
    return total;
}

void
ShuntPrefetcher::setTraceContext(TraceContext *trace)
{
    Prefetcher::setTraceContext(trace);
    for (auto &component : _components)
        component->setTraceContext(trace);
}

void
ShuntPrefetcher::exportCounters(CounterRegistry &registry) const
{
    for (const auto &component : _components)
        component->exportCounters(registry);
}

} // namespace dol
