/**
 * @file
 * The composite prefetcher and its coordinator (paper sections IV-D,
 * IV-E, Figure 7).
 *
 * The coordinator is hardwired priority logic: a memory instruction is
 * offered to T2 first, then P1, then C1; instructions none of them
 * claims are routed to optional "extra" components (existing
 * monolithic prefetchers), bound round-robin per instruction and
 * rebound to whichever component's prefetched line the instruction
 * later hits. T2/P1 prefetch into L1; C1 into L2 (its lower accuracy
 * makes L2 the appropriate destination); per-component destination
 * overrides support the Figure 16 experiment.
 */

#ifndef DOL_CORE_COMPOSITE_HPP
#define DOL_CORE_COMPOSITE_HPP

#include <memory>
#include <optional>
#include <vector>

#include "common/flat_table.hpp"
#include "core/adaptive.hpp"
#include "core/c1.hpp"
#include "core/p1.hpp"
#include "core/t2.hpp"
#include "prefetch/prefetcher.hpp"

namespace dol
{

class CompositePrefetcher : public Prefetcher
{
  public:
    struct Config
    {
        bool enableT2 = true;
        bool enableP1 = true;
        bool enableC1 = true;
        T2Prefetcher::Params t2{};
        P1Prefetcher::Params p1{};
        C1Prefetcher::Params c1{};
        /** Destination overrides (Figure 16 sweeps). */
        std::optional<unsigned> t2Dest;
        std::optional<unsigned> p1Dest;
        std::optional<unsigned> c1Dest;
        std::optional<unsigned> extraDest;

        /**
         * Adaptive coordination (the paper's "flexibility" conjecture,
         * section III): measure each extra component's effective
         * accuracy online and suspend components whose accuracy
         * collapses, re-admitting them after a probation window.
         */
        bool adaptiveThrottle = false;
        std::uint64_t throttleWindow = 2048;  ///< issues per verdict
        double throttleMinAccuracy = 0.15;
        std::uint64_t suspendAccesses = 8192; ///< probation length

        /**
         * Full feedback-driven coordination (`--coordinator adaptive`,
         * src/core/adaptive.hpp): windowed accuracy/coverage EWMAs,
         * slow-start degree ramping for the extras, and K-window
         * claimant demotion. Orthogonal to (and subsuming) the older
         * adaptiveThrottle suspension above; off by default so the
         * hardwired coordinator — and every golden trace — is
         * untouched.
         */
        bool adaptive = false;
        AdaptiveParams adapt{};
    };

    explicit CompositePrefetcher(const ValueSource *memory);
    CompositePrefetcher(const ValueSource *memory, const Config &config,
                        std::string name = "TPC");

    /** Append an existing prefetcher as an extra component. */
    void addComponent(std::unique_ptr<Prefetcher> extra);

    // Prefetcher interface -----------------------------------------
    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;
    void onInstr(const Instr &instr, const RetireInfo &retire, Pc m_pc,
                 PrefetchEmitter &emitter) override;
    void onFill(ComponentId comp, Addr line_addr, Cycle completion,
                PrefetchEmitter &emitter) override;
    void assignIds(const IdAllocator &alloc) override;
    std::size_t storageBits() const override;
    void setTraceContext(TraceContext *trace) override;
    void exportCounters(CounterRegistry &registry) const override;

    // Introspection -------------------------------------------------
    T2Prefetcher *t2() { return _t2.get(); }
    P1Prefetcher *p1() { return _p1.get(); }
    C1Prefetcher *c1() { return _c1.get(); }

    const std::vector<std::unique_ptr<Prefetcher>> &
    extras() const
    {
        return _extras;
    }

    /** Which component currently owns this instruction (for tests). */
    enum class Owner { kNone, kT2, kP1, kC1, kExtra };
    Owner ownerOf(Pc m_pc) const;

    /**
     * Index of the extra component this instruction is bound to, or
     * -1 when unbound (tests and the differential checker).
     */
    int boundExtraOf(Pc m_pc) const;

    /** Is extra component @p index currently suspended? (tests) */
    bool extraSuspended(std::size_t index) const;

    // Adaptive coordination ----------------------------------------
    /** The adaptive policy engine, nullptr in hardwired mode. */
    AdaptiveCoordinator *adaptive() { return _adapt.get(); }
    const AdaptiveCoordinator *adaptive() const { return _adapt.get(); }

    /** DRAM pressure feed for the degree schedule (no-op when
     *  hardwired; the experiment runner wires it to the shared
     *  controller's windowDeferrals counter). */
    void
    setPressureProbe(std::function<std::uint64_t()> probe)
    {
        if (_adapt)
            _adapt->setPressureProbe(std::move(probe));
    }

    /** Window-decision mirror for the differential checker. */
    void
    setAdaptiveDecisionLog(std::vector<AdaptiveWindowRecord> *log)
    {
        if (_adapt)
            _adapt->setDecisionLog(log);
    }

  private:
    /** Run a sub-component with its identity and dest override set. */
    template <typename Fn>
    void
    withComponent(Prefetcher &comp, PrefetchEmitter &emitter,
                  std::optional<unsigned> dest_override, Fn &&fn)
    {
        const auto saved = emitter.forcedDestLevel();
        if (dest_override)
            emitter.forceDestLevel(dest_override);
        emitter.setContext(comp.id(), emitter.now());
        fn();
        emitter.forceDestLevel(saved);
    }

    /**
     * withComponent plus adaptive bookkeeping: arms the slot's
     * emission budget and records the issued/throttled deltas. In
     * hardwired mode (_adapt == nullptr) this is exactly
     * withComponent — one extra null test on the hot path.
     */
    template <typename Fn>
    void
    runSlot(std::size_t slot, Prefetcher &comp, PrefetchEmitter &emitter,
            std::optional<unsigned> dest_override, Fn &&fn)
    {
        if (!_adapt) {
            withComponent(comp, emitter, dest_override,
                          std::forward<Fn>(fn));
            return;
        }
        emitter.setEmitBudget(_adapt->budgetFor(slot));
        const std::uint64_t issued_before = emitter.issuedCount();
        const std::uint64_t throttled_before = emitter.throttledCount();
        withComponent(comp, emitter, dest_override, std::forward<Fn>(fn));
        _adapt->recordIssued(slot,
                             emitter.issuedCount() - issued_before);
        _adapt->recordThrottled(
            slot, emitter.throttledCount() - throttled_before);
        emitter.setEmitBudget(PrefetchEmitter::kUnlimitedBudget);
    }

    /** Adaptive slot of a component id, or -1 (see AdaptiveCoordinator
     *  slot layout: T2/P1/C1 then the extras). */
    int slotOfComponent(ComponentId comp) const;

    void routeToExtras(const AccessInfo &access,
                       PrefetchEmitter &emitter);
    int extraIndexOfComponent(ComponentId comp) const;

    Config _config;
    std::unique_ptr<T2Prefetcher> _t2;
    std::unique_ptr<P1Prefetcher> _p1;
    std::unique_ptr<C1Prefetcher> _c1;
    std::vector<std::unique_ptr<Prefetcher>> _extras;
    std::unique_ptr<AdaptiveCoordinator> _adapt;

    /** Instruction -> extra-component binding (round-robin seeded). */
    FlatHashMap<Pc, unsigned> _bindings;
    unsigned _nextBinding = 0;

    /** Online accuracy bookkeeping for the adaptive coordinator. */
    struct ExtraHealth
    {
        std::uint64_t issuedWindow = 0;
        std::uint64_t usedWindow = 0;
        std::uint64_t suspendedUntil = 0; ///< access count threshold
    };
    std::vector<ExtraHealth> _health;
    std::uint64_t _accessCount = 0;

    /** Last coordinator owner per instruction — maintained only while
     *  a trace context is attached (the map stays empty otherwise, so
     *  the untraced hot path pays nothing). */
    FlatHashMap<Pc, std::uint8_t> _lastOwner;
    std::uint64_t _coordClaims = 0;
    std::uint64_t _coordUnclaims = 0;

    /** Coordinator routing statistics — exported only when extras are
     *  present, so extra-less configurations keep their counter text
     *  (and golden traces) unchanged. */
    std::uint64_t _roundRobinBinds = 0;
    std::uint64_t _rebinds = 0;
    std::vector<std::uint64_t> _extraBoundAccesses;
};

/**
 * Shunting: the same components running in parallel, every one seeing
 * every access, with no coordination (paper section V-C.3's contrast).
 */
class ShuntPrefetcher : public Prefetcher
{
  public:
    explicit ShuntPrefetcher(std::string name = "Shunt")
        : Prefetcher(std::move(name))
    {}

    void
    addComponent(std::unique_ptr<Prefetcher> component)
    {
        _components.push_back(std::move(component));
    }

    void train(const AccessInfo &access, PrefetchEmitter &emitter) override;
    void onInstr(const Instr &instr, const RetireInfo &retire, Pc m_pc,
                 PrefetchEmitter &emitter) override;
    void onFill(ComponentId comp, Addr line_addr, Cycle completion,
                PrefetchEmitter &emitter) override;
    void assignIds(const IdAllocator &alloc) override;
    std::size_t storageBits() const override;
    void setTraceContext(TraceContext *trace) override;
    void exportCounters(CounterRegistry &registry) const override;

    const std::vector<std::unique_ptr<Prefetcher>> &
    components() const
    {
        return _components;
    }

  private:
    std::vector<std::unique_ptr<Prefetcher>> _components;
};

} // namespace dol

#endif // DOL_CORE_COMPOSITE_HPP
