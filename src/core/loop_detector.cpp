#include "core/loop_detector.hpp"

namespace dol
{

bool
LoopDetector::inNlpct(Pc pc) const
{
    for (std::size_t i = 0; i < _nlpctSize; ++i) {
        if (_nlpct[i] == pc)
            return true;
    }
    return false;
}

void
LoopDetector::addToNlpct(Pc pc)
{
    if (inNlpct(pc))
        return;
    _nlpct[_nlpctHead] = pc;
    _nlpctHead = (_nlpctHead + 1) % _nlpct.size();
    if (_nlpctSize < _nlpct.size())
        ++_nlpctSize;
}

bool
LoopDetector::observe(const Instr &instr, Cycle finish)
{
    if (!instr.isBackwardBranch())
        return false;
    if (inNlpct(instr.pc))
        return false;

    if (_lrValid && instr.pc == _lrPc && instr.target == _lrTarget) {
        // Back-to-back instance of the same backward branch: an
        // iteration boundary of the (now confirmed) inner loop.
        if (_pendingValid) {
            // The interrupter did not repeat: non-loop branch.
            addToNlpct(_pendingPc);
            _pendingValid = false;
        }
        ++_confirmations;
        ++_iterations;
        if (_lastBoundary != 0 && finish > _lastBoundary) {
            const double sample =
                static_cast<double>(finish - _lastBoundary);
            // Exponential smoothing keeps the estimate stable across
            // cache-miss hiccups.
            _iterTime = _iterTime == 0.0
                            ? sample
                            : 0.875 * _iterTime + 0.125 * sample;
        }
        _lastBoundary = finish;
        return true;
    }

    if (_lrValid && _confirmations >= 1) {
        // A different backward branch interrupting a confirmed loop.
        if (_pendingValid && instr.pc == _pendingPc &&
            instr.target == _pendingTarget) {
            // Back-to-back repeat of the interrupter: a new inner
            // loop has started; it takes over the LR.
            _lrPc = instr.pc;
            _lrTarget = instr.target;
            _confirmations = 1;
            ++_iterations;
            _pendingValid = false;
            _lastBoundary = finish;
            _iterTime = 0.0;
            return true;
        }
        if (_pendingValid)
            addToNlpct(_pendingPc);
        _pendingPc = instr.pc;
        _pendingTarget = instr.target;
        _pendingValid = true;
        return false;
    }

    if (_lrValid && _confirmations == 0) {
        // The previous candidate never repeated back-to-back; it was
        // not an inner-loop branch.
        addToNlpct(_lrPc);
    }

    _lrPc = instr.pc;
    _lrTarget = instr.target;
    _lrValid = true;
    _confirmations = 0;
    _lastBoundary = finish;
    _iterTime = 0.0;
    return false;
}

} // namespace dol
