#include "core/t2.hpp"

#include <algorithm>

#include "trace/context.hpp"

namespace dol
{

T2Prefetcher::T2Prefetcher() : T2Prefetcher(Params()) {}

T2Prefetcher::T2Prefetcher(const Params &params)
    : Prefetcher("T2"), _params(params),
      _loops(params.nlpctEntries), _sit(params.sitEntries)
{
    _states.reserve(params.maxStateEntries);
}

InstrState
T2Prefetcher::stateOf(Pc m_pc) const
{
    const InstrState *state = _states.find(m_pc);
    return state ? *state : InstrState::kUnknown;
}

void
T2Prefetcher::setState(Pc m_pc, InstrState state, Cycle when)
{
    const InstrState previous = stateOf(m_pc);
    if (state == InstrState::kStrided)
        ++_streamsConfirmed;
    else if (state == InstrState::kNonStrided)
        ++_instrsWrittenOff;
    else if (state == InstrState::kObservation &&
             previous == InstrState::kStrided)
        ++_streamsBroken;
    DOL_TRACE_EVENT(_trace, TraceEventType::kT2Transition, when, 0,
                    m_pc, id(), 0,
                    static_cast<std::uint8_t>(state));

    if (_states.size() >= _params.maxStateEntries &&
        !_states.contains(m_pc)) {
        // The I-cache state bits are a finite resource: modelling a
        // line-fill that resets old entries, drop everything. This is
        // rare for our working sets.
        _states.clear();
    }
    _states.insert(m_pc, state);
}

unsigned
T2Prefetcher::distance() const
{
    const double t_iter = _loops.iterationTime();
    if (!_loops.inLoop() || t_iter < 1.0)
        return _params.defaultDistance;
    const double d = (_amat + _params.marginCycles) / t_iter;
    return static_cast<unsigned>(std::clamp(
        d, 1.0, static_cast<double>(_params.maxDistance)));
}

void
T2Prefetcher::updateAmat(const AccessInfo &access)
{
    if (!access.l1PrimaryMiss)
        return;
    const auto sample =
        static_cast<double>(access.completion - access.when);
    _amat = 0.875 * _amat + 0.125 * sample;
}

void
T2Prefetcher::onInstr(const Instr &instr, const RetireInfo &retire,
                      Pc m_pc, PrefetchEmitter &emitter)
{
    (void)m_pc;
    (void)emitter;
    _loops.observe(instr, retire.finish);
}

void
T2Prefetcher::issueStream(SitEntry &entry, const AccessInfo &access,
                          PrefetchEmitter &emitter, unsigned dist)
{
    if (entry.delta == 0)
        return;
    const bool forward = entry.delta > 0;
    // Sub-line strides advance the frontier one line at a time;
    // larger strides advance one stream element at a time (the
    // intervening lines are never touched and must not be fetched).
    const std::int64_t magnitude = std::max<std::int64_t>(
        std::llabs(entry.delta), kLineBytes);
    const std::int64_t step = forward ? magnitude : -magnitude;
    const Addr target = static_cast<Addr>(
        static_cast<std::int64_t>(access.addr) +
        entry.delta * static_cast<std::int64_t>(dist));

    // Where is this stream's prefetch frontier (a byte position)?
    const bool have_frontier =
        entry.lastIssuedLine != kNoAddr &&
        (forward ? entry.lastIssuedLine >= access.addr
                 : entry.lastIssuedLine <= access.addr);
    // Catch-up stage starts just ahead of the demand access.
    Addr frontier = have_frontier ? entry.lastIssuedLine : access.addr;

    unsigned issued = 0;
    while (issued < _params.maxCatchup &&
           (forward ? frontier < target : frontier > target)) {
        const Addr next = static_cast<Addr>(
            static_cast<std::int64_t>(frontier) + step);
        const auto outcome = emitter.emit(next, kL1, _params.priority);
        if (outcome == PrefetchOutcome::kDroppedMshr ||
            outcome == PrefetchOutcome::kDroppedQueue) {
            // No resources: stop here and retry from this frontier on
            // the next training event, so no line is silently skipped.
            break;
        }
        frontier = next;
        ++issued;
    }
    if (issued > 0 || have_frontier)
        entry.lastIssuedLine = frontier;
}

void
T2Prefetcher::train(const AccessInfo &access, PrefetchEmitter &emitter)
{
    updateAmat(access);

    const Pc m_pc =
        _params.useCallSiteXor ? access.mPc : access.pc;
    const InstrState state = stateOf(m_pc);

    switch (state) {
      case InstrState::kUnknown:
        // Only instructions that trigger a primary miss are worth
        // tracking (paper: state 0 -> 1 on primary miss).
        if (access.l1PrimaryMiss) {
            setState(m_pc, InstrState::kObservation, access.when);
            _sit.allocate(m_pc, access.addr);
        }
        break;

      case InstrState::kObservation: {
        SitEntry *entry = _sit.find(m_pc);
        if (!entry) {
            // Evicted while under observation: start over.
            _sit.allocate(m_pc, access.addr);
            break;
        }
        const std::int64_t delta =
            static_cast<std::int64_t>(access.addr) -
            static_cast<std::int64_t>(entry->lastAddr);
        if (delta != 0 && delta == entry->delta) {
            if (entry->sameDeltaCount < 255)
                ++entry->sameDeltaCount;
            entry->diffDeltaCount = 0;
            if (entry->sameDeltaCount >= _params.strideThreshold) {
                setState(m_pc, InstrState::kStrided, access.when);
                _lastConfirmed = m_pc;
            }
        } else {
            entry->delta = delta;
            entry->sameDeltaCount = 0;
            if (++entry->diffDeltaCount >= _params.nonStrideThreshold) {
                setState(m_pc, InstrState::kNonStrided, access.when);
                entry->lastAddr = access.addr;
                break;
            }
        }
        entry->lastAddr = access.addr;
        // Early prefetching after a short stable run (paper: 4).
        if (entry->sameDeltaCount >= _params.earlyThreshold)
            issueStream(*entry, access, emitter, distance());
        break;
      }

      case InstrState::kStrided: {
        SitEntry *entry = _sit.find(m_pc);
        if (!entry) {
            entry = &_sit.allocate(m_pc, access.addr);
            setState(m_pc, InstrState::kObservation, access.when);
            break;
        }
        const std::int64_t delta =
            static_cast<std::int64_t>(access.addr) -
            static_cast<std::int64_t>(entry->lastAddr);
        if (delta != 0 && delta == entry->delta) {
            entry->diffDeltaCount = 0;
            if (entry->sameDeltaCount < 255)
                ++entry->sameDeltaCount;
        } else if (++entry->diffDeltaCount >=
                   _params.nonStrideThreshold) {
            // The stream broke down; re-observe from scratch.
            setState(m_pc, InstrState::kObservation, access.when);
            entry->delta = delta;
            entry->sameDeltaCount = 0;
            entry->diffDeltaCount = 0;
            entry->lastIssuedLine = kNoAddr;
            entry->lastAddr = access.addr;
            break;
        }
        entry->lastAddr = access.addr;
        unsigned dist = distance();
        if (entry->ptrProducer) {
            // Strided-pointer producers run at double distance to
            // cover the dependent access (paper IV-B.1).
            dist = std::min(2 * dist, _params.maxDistance);
        }
        issueStream(*entry, access, emitter, dist);
        break;
      }

      case InstrState::kNonStrided:
        // Not our pattern; P1/C1 take it from here.
        break;
    }
}

std::size_t
T2Prefetcher::storageBits() const
{
    // SIT + loop hardware + 2 KB of 2-bit I-cache state annotations.
    return _sit.storageBits() + _loops.storageBits() + 2048 * 8;
}

void
T2Prefetcher::exportCounters(CounterRegistry &registry) const
{
    registry.set(name(), "streams_confirmed", _streamsConfirmed);
    registry.set(name(), "streams_broken", _streamsBroken);
    registry.set(name(), "instrs_written_off", _instrsWrittenOff);
    registry.set(name(), "tracked_instrs", _states.size());
    registry.set(name(), "distance", distance());
}

} // namespace dol
