#include "core/p1.hpp"

#include <algorithm>

#include "trace/context.hpp"
#include "trace/counters.hpp"

namespace dol
{

P1Prefetcher::P1Prefetcher(T2Prefetcher *t2, const ValueSource *memory)
    : P1Prefetcher(t2, memory, Params())
{}

P1Prefetcher::P1Prefetcher(T2Prefetcher *t2, const ValueSource *memory,
                           const Params &params)
    : Prefetcher("P1"), _params(params), _t2(t2), _memory(memory),
      _chains(params.chainEntries)
{}

void
P1Prefetcher::PredictionRing::push(Addr line)
{
    lines[head] = line;
    head = (head + 1) % lines.size();
    if (count < lines.size())
        ++count;
}

bool
P1Prefetcher::PredictionRing::contains(Addr line) const
{
    for (unsigned i = 0; i < count; ++i) {
        if (lines[i] == line)
            return true;
    }
    return false;
}

P1Prefetcher::ChainEntry *
P1Prefetcher::findChain(Pc m_pc)
{
    for (ChainEntry &entry : _chains) {
        if (entry.valid && entry.mPc == m_pc) {
            entry.lruStamp = ++_stamp;
            return &entry;
        }
    }
    return nullptr;
}

P1Prefetcher::ChainEntry &
P1Prefetcher::allocateChain(Pc m_pc)
{
    ChainEntry *victim = &_chains[0];
    for (ChainEntry &entry : _chains) {
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        // Never evict a confirmed chain for an unconfirmed candidate.
        if (entry.confirmed && !victim->confirmed)
            continue;
        if (!entry.confirmed && victim->confirmed) {
            victim = &entry;
            continue;
        }
        if (entry.lruStamp < victim->lruStamp)
            victim = &entry;
    }
    *victim = ChainEntry{};
    victim->valid = true;
    victim->mPc = m_pc;
    victim->lruStamp = ++_stamp;
    return *victim;
}

bool
P1Prefetcher::isChainConfirmed(Pc m_pc) const
{
    for (const ChainEntry &entry : _chains) {
        if (entry.valid && entry.mPc == m_pc)
            return entry.confirmed;
    }
    return false;
}

bool
P1Prefetcher::handles(Pc m_pc) const
{
    return isChainConfirmed(m_pc) || _dependents.contains(m_pc);
}

void
P1Prefetcher::resetChase(ChainEntry &entry)
{
    entry.awaitFill = false;
    entry.nextValid = false;
    entry.ahead = 0;
    entry.predicted.clear();
    entry.missCount = 0;
    entry.confirmed = false;
    entry.conf = 0;
    entry.hasValue = false;
}

void
P1Prefetcher::advanceChase(ChainEntry &entry, Cycle when,
                           PrefetchEmitter &emitter)
{
    // Top the chain up to the target depth. Prefetches that hit in the
    // cache resolve immediately (the value is available); a prefetch
    // that actually goes out suspends the FSM until its fill returns.
    const unsigned target =
        std::min(_params.maxChainDepth,
                 std::max(2u, _t2 ? _t2->distance() : 4u));
    unsigned guard = 0;
    while (!entry.awaitFill && entry.nextValid &&
           entry.ahead < target && ++guard <= 2 * target) {
        const Addr link_addr = entry.nextChaseAddr;
        entry.chaseAddr = link_addr;
        entry.nextValid = false;

        // The FSM cannot act on a value before the fill that carried
        // it returned: never issue earlier than nextKnownAt.
        const Cycle issue_at = std::max(when, entry.nextKnownAt);
        const auto outcome = emitter.emitAt(link_addr, issue_at, kL1,
                                            _params.priority);
        ++_linksFollowed;
        DOL_TRACE_EVENT(_trace, TraceEventType::kP1ChainAdvance,
                        issue_at, link_addr, entry.mPc, id(), 0,
                        static_cast<std::uint8_t>(outcome));
        ++entry.ahead;
        entry.predicted.push(lineAddr(link_addr));

        if (outcome == PrefetchOutcome::kIssued) {
            entry.pendingLine = lineAddr(link_addr);
            entry.awaitFill = true;
            ++_chainsStarted;
            return;
        }
        if (outcome == PrefetchOutcome::kFilteredPresent ||
            outcome == PrefetchOutcome::kFilteredPending) {
            // The line is cached: its value is readable immediately.
            const std::uint64_t value = _memory->read64(link_addr);
            if (!plausiblePointer(value))
                return;
            entry.nextChaseAddr =
                static_cast<Addr>(static_cast<std::int64_t>(value) +
                                  entry.delta);
            entry.nextValid = true;
            entry.nextKnownAt = issue_at;
            continue;
        }
        return; // dropped: give up this round
    }
}

void
P1Prefetcher::onFill(ComponentId comp, Addr line_addr, Cycle completion,
                     PrefetchEmitter &emitter)
{
    if (comp != id())
        return;
    for (ChainEntry &entry : _chains) {
        if (!entry.valid || !entry.awaitFill ||
            entry.pendingLine != lineAddr(line_addr)) {
            continue;
        }
        entry.awaitFill = false;
        const std::uint64_t value = _memory->read64(entry.chaseAddr);
        if (!plausiblePointer(value))
            continue;
        entry.nextChaseAddr =
            static_cast<Addr>(static_cast<std::int64_t>(value) +
                              entry.delta);
        entry.nextValid = true;
        entry.nextKnownAt = completion;
        advanceChase(entry, completion, emitter);
    }
}

void
P1Prefetcher::observeChainCandidate(const Instr &instr, Pc m_pc,
                                    PrefetchEmitter &emitter, Cycle when)
{
    ChainEntry *entry = findChain(m_pc);
    if (!entry) {
        if (!plausiblePointer(instr.value))
            return;
        entry = &allocateChain(m_pc);
        entry->lastValue = instr.value;
        entry->hasValue = true;
        return;
    }

    if (entry->confirmed) {
        // Resync check: the demand address should be one of the nodes
        // we predicted.
        const Addr line = lineAddr(instr.addr);
        if (entry->predicted.count > 0) {
            if (entry->predicted.contains(line)) {
                entry->missCount = 0;
            } else if (++entry->missCount > _params.timeoutIters) {
                // Off track for too long: reset and re-detect
                // (the paper's time-out correction).
                ++_chainResyncs;
                DOL_TRACE_EVENT(_trace, TraceEventType::kP1ChainResync,
                                when, instr.addr, m_pc, id(), 0, 0);
                resetChase(*entry);
                return;
            }
        }
        if (entry->ahead > 0)
            --entry->ahead; // demand consumed one node

        entry->lastValue = instr.value;
        if (!entry->awaitFill && !entry->nextValid &&
            plausiblePointer(instr.value)) {
            // Restart chasing from the freshest architectural value,
            // which arrives when this demand load completes.
            entry->nextChaseAddr = static_cast<Addr>(
                static_cast<std::int64_t>(instr.value) + entry->delta);
            entry->nextValid = true;
            entry->nextKnownAt = when;
        }
        advanceChase(*entry, when, emitter);
        return;
    }

    // Detection: next address = previous value + constant delta?
    if (entry->hasValue) {
        const auto delta = static_cast<std::int64_t>(instr.addr) -
                           static_cast<std::int64_t>(entry->lastValue);
        if (std::llabs(delta) <= _params.maxPtrDelta) {
            if (delta == entry->delta && entry->conf > 0) {
                if (++entry->conf >= _params.confirmThreshold) {
                    entry->confirmed = true;
                    entry->missCount = 0;
                    entry->predicted.clear();
                    ++_chainsConfirmed;
                    DOL_TRACE_EVENT(_trace,
                                    TraceEventType::kP1ChainStart,
                                    when, instr.addr, m_pc, id(), 0, 0);
                }
            } else {
                entry->delta = delta;
                entry->conf = 1;
            }
        } else {
            entry->conf = 0;
        }
    }
    entry->lastValue = instr.value;
    entry->hasValue = plausiblePointer(instr.value);
}

void
P1Prefetcher::confirmProducer(Pc producer_m_pc, Pc dependent_m_pc,
                              std::int64_t delta, Cycle when)
{
    if (SitEntry *sit = _t2->sitLookup(producer_m_pc)) {
        sit->ptrProducer = true;
        sit->ptrDelta = delta;
    }
    ++_producersConfirmed;
    DOL_TRACE_EVENT(_trace, TraceEventType::kP1ProducerConfirm, when,
                    static_cast<Addr>(dependent_m_pc), producer_m_pc,
                    id(), 0, 0);
    ProducerRecord record;
    record.producerMPc = producer_m_pc;
    record.dependentMPc = dependent_m_pc;
    record.ptrDelta = delta;
    _producers.insert(producer_m_pc, record);
    _dependents.insert(dependent_m_pc, producer_m_pc);
}

void
P1Prefetcher::runScout(const Instr &instr, Pc m_pc, Cycle when)
{
    if (!_scout.active)
        return;

    if (m_pc == _scout.producerMPc && instr.isLoad()) {
        // The producer executed again: one iteration swept.
        if (++_scout.iterations > _params.scoutIterBudget) {
            _scouted.insert(_scout.producerMPc);
            _scout.active = false;
            return;
        }
        _scout.taint.seed(instr.dst);
        _scout.producerValue = instr.value;
        return;
    }

    const bool tainted = _scout.taint.propagate(instr);
    if (!tainted || !instr.isLoad())
        return;

    const auto delta = static_cast<std::int64_t>(instr.addr) -
                       static_cast<std::int64_t>(_scout.producerValue);
    if (std::llabs(delta) > _params.maxPtrDelta)
        return;

    if (_scout.haveCandidate && _scout.candidateMPc == m_pc) {
        if (delta == _scout.candidateDelta) {
            if (++_scout.candidateConf >= _params.confirmThreshold) {
                confirmProducer(_scout.producerMPc, m_pc, delta, when);
                _scouted.insert(_scout.producerMPc);
                _scout.active = false;
            }
        } else {
            _scout.candidateDelta = delta;
            _scout.candidateConf = 1;
        }
    } else if (!_scout.haveCandidate) {
        _scout.haveCandidate = true;
        _scout.candidateMPc = m_pc;
        _scout.candidateDelta = delta;
        _scout.candidateConf = 1;
    }
}

void
P1Prefetcher::producerExecuted(const Instr &instr, Pc m_pc, Cycle when,
                               PrefetchEmitter &emitter)
{
    ProducerRecord *found = _producers.find(m_pc);
    if (!found)
        return;
    ProducerRecord &record = *found;
    record.lastValue = instr.value;
    record.hasLastValue = plausiblePointer(instr.value);

    const SitEntry *sit = _t2->sitLookup(m_pc);
    if (!sit || !sit->ptrProducer)
        return;

    // The producer's stream runs at doubled distance; by now the
    // future element's line has been prefetched, so its value (a
    // pointer) is available to P1 — follow it. A slot frontier walks
    // every producer element exactly once, so distance drift never
    // leaves dependent gaps.
    if (sit->delta == 0)
        return;
    const unsigned dist =
        std::min(2 * _t2->distance(), 2 * _t2->params().maxDistance);
    const Addr target_slot = static_cast<Addr>(
        static_cast<std::int64_t>(instr.addr) +
        sit->delta * static_cast<std::int64_t>(dist));

    const bool forward = sit->delta > 0;
    const bool have_frontier =
        record.slotFrontier != kNoAddr &&
        (forward ? record.slotFrontier >= instr.addr
                 : record.slotFrontier <= instr.addr);
    Addr slot = have_frontier ? record.slotFrontier : instr.addr;

    unsigned emitted = 0;
    while (emitted < 2 &&
           (forward ? slot < target_slot : slot > target_slot)) {
        const Addr next_slot = static_cast<Addr>(
            static_cast<std::int64_t>(slot) + sit->delta);
        const std::uint64_t value = _memory->read64(next_slot);
        if (!plausiblePointer(value))
            break;
        const Addr target = static_cast<Addr>(
            static_cast<std::int64_t>(value) + record.ptrDelta);
        const auto outcome =
            emitter.emitAt(target, when, kL1, _params.priority);
        if (outcome == PrefetchOutcome::kDroppedMshr ||
            outcome == PrefetchOutcome::kDroppedQueue) {
            break; // retry from this slot next execution
        }
        slot = next_slot;
        ++emitted;
    }
    record.slotFrontier = slot;
}

void
P1Prefetcher::dependentExecuted(const Instr &instr, Pc m_pc, Cycle when)
{
    const Pc *dep = _dependents.find(m_pc);
    if (!dep)
        return;
    ProducerRecord *prod = _producers.find(*dep);
    if (!prod)
        return;
    ProducerRecord &record = *prod;
    if (!record.hasLastValue)
        return;
    // The dependent executes right after its producer in the same
    // iteration: its address must be the producer's current value
    // plus the learned offset.
    const Addr expected = static_cast<Addr>(
        static_cast<std::int64_t>(record.lastValue) + record.ptrDelta);
    if (lineAddr(instr.addr) == lineAddr(expected)) {
        record.missCount = 0;
    } else if (++record.missCount > _params.timeoutIters) {
        // The dependent wandered off: unmark and allow re-detection.
        ++_dependentTimeouts;
        DOL_TRACE_EVENT(_trace, TraceEventType::kP1ChainResync, when,
                        instr.addr, m_pc, id(), 0, 1);
        if (SitEntry *sit = _t2->sitLookup(record.producerMPc))
            sit->ptrProducer = false;
        const Pc producer_m_pc = record.producerMPc;
        _scouted.erase(producer_m_pc);
        _dependents.erase(m_pc);
        _producers.erase(producer_m_pc);
    }
}

void
P1Prefetcher::onInstr(const Instr &instr, const RetireInfo &retire,
                      Pc m_pc, PrefetchEmitter &emitter)
{
    runScout(instr, m_pc, retire.issue);

    if (!instr.isLoad())
        return;

    const InstrState t2_state = _t2->stateOf(m_pc);

    if (t2_state == InstrState::kStrided) {
        // Launch a scout at newly confirmed strided loads.
        if (!_scout.active && !_scouted.contains(m_pc) &&
            instr.dst != kNoReg) {
            _scout.active = true;
            _scout.producerMPc = m_pc;
            _scout.producerValue = instr.value;
            _scout.taint.seed(instr.dst);
            _scout.iterations = 0;
            _scout.haveCandidate = false;
            _scout.candidateConf = 0;
        }
        producerExecuted(instr, m_pc, retire.issue, emitter);
        return; // strided loads are never chain candidates
    }

    dependentExecuted(instr, m_pc, retire.issue);

    // Chain candidates are non-strided loads whose own value predicts
    // their next address. The FSM learns the value when the load
    // completes, so that is the earliest it can act.
    if (t2_state == InstrState::kNonStrided ||
        t2_state == InstrState::kUnknown ||
        t2_state == InstrState::kObservation) {
        observeChainCandidate(instr, m_pc, emitter,
                              retire.mem.completion);
    }
}

void
P1Prefetcher::train(const AccessInfo &access, PrefetchEmitter &emitter)
{
    // All of P1's work happens on the retire stream (onInstr) and on
    // fills; the demand-access hook is unused.
    (void)access;
    (void)emitter;
}

std::size_t
P1Prefetcher::storageBits() const
{
    // PtrPC scout (32) + TPU (64) + chain SIT entries (mPc tag 16 +
    // value 48 + delta 16 + FSM state 16 + counters 8) + 1 KB of
    // marked-instruction state bits (Table II: "1KB state bits").
    return 32 + TaintTracker::storageBits() +
           _chains.size() * (16 + 48 + 16 + 16 + 8) + 1024 * 8;
}

void
P1Prefetcher::exportCounters(CounterRegistry &registry) const
{
    registry.set(name(), "chains_confirmed", _chainsConfirmed);
    registry.set(name(), "chain_resyncs", _chainResyncs);
    registry.set(name(), "links_followed", _linksFollowed);
    registry.set(name(), "chain_prefetches", _chainsStarted);
    registry.set(name(), "producers_confirmed", _producersConfirmed);
    registry.set(name(), "dependent_timeouts", _dependentTimeouts);
}

} // namespace dol
