#include "core/c1.hpp"

#include <bit>

#include "trace/context.hpp"
#include "trace/counters.hpp"

namespace dol
{

C1Prefetcher::C1Prefetcher() : C1Prefetcher(Params()) {}

C1Prefetcher::C1Prefetcher(const Params &params)
    : Prefetcher("C1"), _params(params),
      _regions(params.regionEntries),
      _instrs(params.instructionEntries)
{
    // Both sets clear once they reach maxMarked, so sizing them for it
    // up front makes them rehash-free for the whole run.
    _marked.reserve(params.maxMarked);
    _rejected.reserve(params.maxMarked);
}

bool
C1Prefetcher::isMonitored(Pc m_pc) const
{
    for (const InstrEntry &entry : _instrs) {
        if (entry.valid && entry.mPc == m_pc)
            return true;
    }
    return false;
}

bool
C1Prefetcher::considerInstruction(Pc m_pc)
{
    if (_marked.contains(m_pc) || isMonitored(m_pc))
        return true;
    if (_rejected.contains(m_pc))
        return false;
    for (InstrEntry &entry : _instrs) {
        if (!entry.valid) {
            entry = InstrEntry{};
            entry.valid = true;
            entry.mPc = m_pc;
            return true;
        }
    }
    return false; // IM full: entries stay until their verdict
}

void
C1Prefetcher::decide(InstrEntry &entry)
{
    // Dense with probability > 3/4 across the observed regions?
    const bool marked = entry.denseRegions * _params.denseDen >
                        entry.totalRegions * _params.denseNum;
    if (marked) {
        if (_marked.size() >= _params.maxMarked)
            _marked.clear(); // state bits are finite
        _marked.insert(entry.mPc);
        ++_verdictsMarked;
    } else {
        if (_rejected.size() >= _params.maxMarked)
            _rejected.clear();
        _rejected.insert(entry.mPc);
        ++_verdictsRejected;
    }
    DOL_TRACE_EVENT(_trace, TraceEventType::kC1Verdict, _now, 0,
                    entry.mPc, id(), entry.denseRegions,
                    marked ? 1 : 0);
    entry.valid = false; // vacate for the next candidate
}

void
C1Prefetcher::evictRegion(RegionEntry &entry)
{
    if (!entry.valid)
        return;
    const bool dense =
        std::popcount(entry.lineVector) >
        static_cast<int>(_params.denseLineThreshold);
    ++_regionsObserved;
    if (dense) {
        ++_denseRegionsObserved;
        DOL_TRACE_EVENT(_trace, TraceEventType::kC1RegionDense, _now,
                        entry.region << kRegionBits, entry.lineVector,
                        id(), 0,
                        static_cast<std::uint8_t>(
                            std::popcount(entry.lineVector)));
    }
    for (unsigned i = 0; i < _instrs.size(); ++i) {
        if (!((entry.pcVector >> i) & 1))
            continue;
        InstrEntry &instr = _instrs[i];
        if (!instr.valid)
            continue;
        ++instr.totalRegions;
        if (dense)
            ++instr.denseRegions;
        if (instr.totalRegions >= _params.decisionRegions)
            decide(instr);
    }
    entry.valid = false;
}

void
C1Prefetcher::train(const AccessInfo &access, PrefetchEmitter &emitter)
{
    const std::uint64_t region = regionNum(access.addr);
    const unsigned line_bit = lineInRegion(access.addr);
    _now = access.when;

    // Marked instructions trigger the region prefetch.
    if (_marked.contains(access.mPc)) {
        auto [last, inserted] =
            _lastPrefetchedRegion.tryEmplace(access.mPc);
        if (inserted)
            *last = ~std::uint64_t{0};
        if (inserted || *last != region) {
            *last = region;
            const Addr base = region << kRegionBits;
            for (unsigned i = 0; i < kRegionLineCount; ++i) {
                emitter.emit(base + (static_cast<Addr>(i) << kLineBits),
                             _params.destLevel, _params.priority);
            }
            ++_regionsPrefetched;
            DOL_TRACE_EVENT(_trace, TraceEventType::kC1CarpetFire,
                            access.when, base, access.mPc, id(), 0,
                            static_cast<std::uint8_t>(
                                kRegionLineCount));
        }
    }

    // Track the region in the RM.
    RegionEntry *found = nullptr;
    RegionEntry *victim = &_regions[0];
    for (RegionEntry &entry : _regions) {
        if (entry.valid && entry.region == region) {
            found = &entry;
            break;
        }
        if (!entry.valid) {
            victim = &entry;
            continue;
        }
        if (victim->valid && entry.lruStamp < victim->lruStamp)
            victim = &entry;
    }
    if (!found) {
        evictRegion(*victim);
        *victim = RegionEntry{};
        victim->valid = true;
        victim->region = region;
        found = victim;
    }
    found->lineVector |= static_cast<std::uint16_t>(1u << line_bit);
    found->lruStamp = ++_stamp;

    // Cross-link the accessing instruction if it is being monitored.
    for (unsigned i = 0; i < _instrs.size(); ++i) {
        if (_instrs[i].valid && _instrs[i].mPc == access.mPc) {
            found->pcVector |= static_cast<std::uint16_t>(1u << i);
            break;
        }
    }
}

std::size_t
C1Prefetcher::storageBits() const
{
    // Table II: 16-entry IM (640 b) + 16-entry RM (1248 b) + 1 KB of
    // marked-instruction state bits.
    const std::size_t im_bits = _instrs.size() * (32 + 4 + 4);
    const std::size_t rm_bits =
        _regions.size() * (48 + kRegionLineCount + _instrs.size());
    return im_bits + rm_bits + 1024 * 8;
}

void
C1Prefetcher::exportCounters(CounterRegistry &registry) const
{
    registry.set(name(), "regions_observed", _regionsObserved);
    registry.set(name(), "dense_regions", _denseRegionsObserved);
    registry.set(name(), "verdicts_marked", _verdictsMarked);
    registry.set(name(), "verdicts_rejected", _verdictsRejected);
    registry.set(name(), "regions_prefetched", _regionsPrefetched);
    registry.set(name(), "marked_instrs", _marked.size());
}

} // namespace dol
