/**
 * @file
 * Unit tests for the common utility layer: address arithmetic,
 * saturating counters, the deterministic RNG, and statistics helpers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/sat_counter.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "metrics/table.hpp"

namespace dol
{
namespace
{

TEST(Types, LineArithmetic)
{
    EXPECT_EQ(lineAddr(0), 0u);
    EXPECT_EQ(lineAddr(63), 0u);
    EXPECT_EQ(lineAddr(64), 64u);
    EXPECT_EQ(lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(lineNum(128), 2u);
}

TEST(Types, RegionArithmetic)
{
    EXPECT_EQ(kRegionBytes, 1024u);
    EXPECT_EQ(regionNum(0), 0u);
    EXPECT_EQ(regionNum(1023), 0u);
    EXPECT_EQ(regionNum(1024), 1u);
    EXPECT_EQ(lineInRegion(0), 0u);
    EXPECT_EQ(lineInRegion(64), 1u);
    EXPECT_EQ(lineInRegion(1023), 15u);
    EXPECT_EQ(lineInRegion(1024), 0u);
}

TEST(Types, NsToCycles)
{
    // 3 GHz: 1 ns = 3 cycles.
    EXPECT_EQ(nsToCycles(1.0), 3u);
    EXPECT_EQ(nsToCycles(12.0), 36u);
    EXPECT_EQ(nsToCycles(13.75), 41u);
}

/** Every address maps into its own line and region consistently. */
class AddressProperty : public ::testing::TestWithParam<Addr>
{
};

TEST_P(AddressProperty, LineContainsAddress)
{
    const Addr addr = GetParam();
    EXPECT_LE(lineAddr(addr), addr);
    EXPECT_LT(addr - lineAddr(addr), kLineBytes);
    EXPECT_EQ(lineNum(addr), lineAddr(addr) / kLineBytes);
    EXPECT_LT(lineInRegion(addr), kRegionLineCount);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AddressProperty,
                         ::testing::Values(0ull, 1ull, 63ull, 64ull,
                                           4095ull, 4096ull,
                                           0xdeadbeefull,
                                           0x7fffffffffffull));

TEST(SatCounter, SaturatesBothWays)
{
    SatCounter counter(3);
    EXPECT_EQ(counter.value(), 0u);
    counter.decrement();
    EXPECT_EQ(counter.value(), 0u);
    for (int i = 0; i < 10; ++i)
        counter.increment();
    EXPECT_EQ(counter.value(), 3u);
    EXPECT_TRUE(counter.saturated());
    counter.decrement();
    EXPECT_EQ(counter.value(), 2u);
    EXPECT_TRUE(counter.high());
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 20}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, UniformCoversRange)
{
    Rng rng(11);
    double min = 1.0, max = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        min = std::min(min, u);
        max = std::max(max, u);
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
    EXPECT_LT(min, 0.01);
    EXPECT_GT(max, 0.99);
}

TEST(Stats, RunningStat)
{
    RunningStat stat;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        stat.add(v);
    EXPECT_EQ(stat.count(), 4u);
    EXPECT_DOUBLE_EQ(stat.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 4.0);
}

TEST(Stats, Geomean)
{
    const std::vector<double> vals{1.0, 4.0};
    EXPECT_NEAR(geomean(vals), 2.0, 1e-12);
    const std::vector<double> ones{1.0, 1.0, 1.0};
    EXPECT_NEAR(geomean(ones), 1.0, 1e-12);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Stats, WeightedMean)
{
    const std::vector<double> vals{1.0, 3.0};
    const std::vector<double> weights{1.0, 3.0};
    EXPECT_NEAR(weightedMean(vals, weights), 2.5, 1e-12);
}

TEST(Stats, LinearFitRecoversLine)
{
    std::vector<double> xs, ys;
    for (int i = 0; i < 10; ++i) {
        xs.push_back(i);
        ys.push_back(3.0 * i + 7.0);
    }
    const LinearFit fit = linearFit(xs, ys);
    EXPECT_NEAR(fit.slope, 3.0, 1e-9);
    EXPECT_NEAR(fit.intercept, 7.0, 1e-9);
}

TEST(TextTable, FormatsWithoutCrashing)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", fmt("%.2f", 1.5)});
    table.addRow({"beta"});
    table.print(stderr);
    EXPECT_EQ(fmt("%.1f", 2.25), "2.2");
}

} // namespace
} // namespace dol
