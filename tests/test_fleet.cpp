/**
 * @file
 * Fleet subsystem tests: DOLLEAS1 lease-ledger round trips, torn-tail
 * recovery and fuzzed malformed inputs, semantic replay validation
 * (expired lease re-granted exactly once), range partitioning
 * properties, worker range execution, the streaming journal merger
 * (first-committed-wins dedup, bounded rows held, quarantine
 * surfacing), and the full kill-mid-range fleet whose merged document
 * must byte-equal single-process runs at --jobs 1 and --jobs 4.
 *
 * Worker deaths are real process deaths: forked children _Exit with
 * no unwinding (abort faults), exactly like SIGKILL.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "fleet/coordinator.hpp"
#include "fleet/ledger.hpp"
#include "fleet/merge.hpp"
#include "fleet/worker.hpp"
#include "fleet_property.hpp"
#include "runner/checkpoint.hpp"
#include "runner/fault.hpp"
#include "runner/framed_file.hpp"
#include "runner/sweep.hpp"
#include "workloads/suite.hpp"

namespace
{

using namespace dol;
using fleet_property::deterministicPrefix;
using fleet_property::freshDir;
using fleet_property::jobFor;
using fleet_property::readFileTo;
using fleet_property::rowFor;

runner::JournalPlan
plan6()
{
    runner::JournalPlan plan;
    plan.itemCount = 6;
    plan.gridHash = 0x5eedf00dull;
    plan.maxInstrs = 4000;
    return plan;
}

fleet::LeaseGrant
grantOf(std::uint64_t id, std::uint64_t begin, std::uint64_t end,
        std::uint64_t generation = 0,
        std::uint64_t parent = fleet::kNoParentLease,
        std::uint64_t ttl_ms = 30000)
{
    fleet::LeaseGrant grant;
    grant.leaseId = id;
    grant.begin = begin;
    grant.end = end;
    grant.generation = generation;
    grant.parentLease = parent;
    grant.ttlMs = ttl_ms;
    return grant;
}

/** 6-cell grid (3 workloads x 2 prefetchers), small budget. */
runner::SweepRunner
makeFleetSweep(runner::SweepOptions options)
{
    SimConfig config;
    config.maxInstrs = 4000;
    options.progress = false;
    runner::SweepRunner sweep(config, std::move(options));
    sweep.addGrid({findWorkload("libquantum.syn"),
                   findWorkload("mcf.syn"),
                   findWorkload("omnetpp.syn")},
                  {"TPC", "SPP"});
    return sweep;
}

// ---------------------------------------------------------------------
// DOLLEAS1 ledger
// ---------------------------------------------------------------------

TEST(LeaseLedger, RoundTripsLifecycleRecords)
{
    const std::string dir = freshDir("ledger_roundtrip");
    const std::string path = fleet::ledgerPath(dir);

    const fleet::LeaseGrant g1 = grantOf(1, 0, 3);
    const fleet::LeaseGrant g2 = grantOf(2, 3, 6, 0,
                                         fleet::kNoParentLease, 750);
    const fleet::LeaseGrant g3 = grantOf(3, 4, 6, 1, 2);
    {
        fleet::LeaseLedger ledger;
        std::string error;
        ASSERT_TRUE(ledger.create(path, plan6(), &error)) << error;
        ASSERT_TRUE(ledger.appendGrant(g1));
        ASSERT_TRUE(ledger.appendGrant(g2));
        ASSERT_TRUE(ledger.appendComplete(1));
        ASSERT_TRUE(ledger.appendExpire(2));
        ASSERT_TRUE(ledger.appendGrant(g3));
        ASSERT_TRUE(ledger.appendComplete(3));
    }

    const auto loaded = fleet::LeaseLedger::load(path);
    ASSERT_TRUE(loaded.fileExists);
    ASSERT_TRUE(loaded.valid) << loaded.error;
    EXPECT_TRUE(loaded.cleanTail);
    EXPECT_TRUE(loaded.consistent) << loaded.inconsistency;
    ASSERT_TRUE(loaded.plan.has_value());
    EXPECT_TRUE(*loaded.plan == plan6());

    ASSERT_EQ(loaded.grants.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        const fleet::LeaseGrant &expected =
            i == 0 ? g1 : (i == 1 ? g2 : g3);
        const fleet::LeaseGrant &actual = loaded.grants[i];
        EXPECT_EQ(actual.leaseId, expected.leaseId);
        EXPECT_EQ(actual.begin, expected.begin);
        EXPECT_EQ(actual.end, expected.end);
        EXPECT_EQ(actual.generation, expected.generation);
        EXPECT_EQ(actual.parentLease, expected.parentLease);
        EXPECT_EQ(actual.ttlMs, expected.ttlMs);
    }
    EXPECT_EQ(loaded.completed,
              (std::vector<std::uint64_t>{1, 3}));
    EXPECT_EQ(loaded.expired, (std::vector<std::uint64_t>{2}));
}

TEST(LeaseLedger, TornTailIsDroppedAndAppendResumes)
{
    const std::string dir = freshDir("ledger_torn");
    const std::string path = fleet::ledgerPath(dir);
    {
        fleet::LeaseLedger ledger;
        ASSERT_TRUE(ledger.create(path, plan6()));
        ASSERT_TRUE(ledger.appendGrant(grantOf(1, 0, 6)));
    }
    // A coordinator SIGKILLed mid-append leaves a partial record.
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::app);
        out.write("\x03\xff\xff", 3);
    }

    auto loaded = fleet::LeaseLedger::load(path);
    ASSERT_TRUE(loaded.valid) << loaded.error;
    EXPECT_FALSE(loaded.cleanTail);
    EXPECT_TRUE(loaded.consistent);
    ASSERT_EQ(loaded.grants.size(), 1u);

    // Reopening truncates the torn tail; the appended record lands on
    // the clean prefix and the ledger reads back whole again.
    {
        fleet::LeaseLedger ledger;
        std::string error;
        ASSERT_TRUE(
            ledger.openAppend(path, loaded.goodBytes, &error))
            << error;
        ASSERT_TRUE(ledger.appendComplete(1));
    }
    loaded = fleet::LeaseLedger::load(path);
    ASSERT_TRUE(loaded.valid);
    EXPECT_TRUE(loaded.cleanTail);
    EXPECT_TRUE(loaded.consistent);
    EXPECT_EQ(loaded.completed, (std::vector<std::uint64_t>{1}));
}

TEST(LeaseLedger, MalformedInputsNeverCrashTheReader)
{
    const std::string dir = freshDir("ledger_fuzz");
    const std::string path = dir + "/fuzzed.dolleas";

    // Missing / empty / wrong-magic files report cleanly.
    EXPECT_FALSE(fleet::LeaseLedger::load(path).fileExists);
    {
        std::ofstream out(path, std::ios::binary);
    }
    auto empty = fleet::LeaseLedger::load(path);
    EXPECT_TRUE(empty.fileExists);
    EXPECT_FALSE(empty.valid);
    {
        std::ofstream out(path, std::ios::binary);
        out << "DOLCKPT1not-a-ledger";
    }
    EXPECT_FALSE(fleet::LeaseLedger::load(path).valid);

    // Seeded mutation fuzz over a healthy ledger: truncations, byte
    // flips, splices, and duplicated slices must never crash, hang,
    // or report an impossible combination.
    std::string pristine;
    {
        fleet::LeaseLedger ledger;
        ASSERT_TRUE(ledger.create(path, plan6()));
        ASSERT_TRUE(ledger.appendGrant(grantOf(1, 0, 3)));
        ASSERT_TRUE(ledger.appendGrant(grantOf(2, 3, 6)));
        ASSERT_TRUE(ledger.appendComplete(1));
        ASSERT_TRUE(ledger.appendExpire(2));
        ASSERT_TRUE(ledger.appendGrant(grantOf(3, 3, 6, 1, 2)));
    }
    ASSERT_TRUE(readFileTo(path, pristine));

    std::mt19937_64 rng(0xD01F1EE7ull);
    for (int iteration = 0; iteration < 300; ++iteration) {
        std::string bytes = pristine;
        switch (rng() % 4) {
        case 0: // truncate anywhere, including inside the magic
            bytes.resize(rng() % (bytes.size() + 1));
            break;
        case 1: { // flip a byte
            const std::size_t at = rng() % bytes.size();
            bytes[at] = static_cast<char>(bytes[at] ^
                                          (1u << (rng() % 8)));
            break;
        }
        case 2: { // splice garbage into the middle
            const std::size_t at = rng() % bytes.size();
            std::string junk;
            for (std::size_t i = 0; i < 1 + rng() % 16; ++i)
                junk.push_back(static_cast<char>(rng()));
            bytes.insert(at, junk);
            break;
        }
        default: { // duplicate a slice (repeated records)
            const std::size_t from = rng() % bytes.size();
            const std::size_t len =
                1 + rng() % (bytes.size() - from);
            bytes.append(bytes, from, len);
            break;
        }
        }
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            out.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
        }
        const auto loaded = fleet::LeaseLedger::load(path);
        EXPECT_TRUE(loaded.fileExists);
        if (!loaded.valid)
            continue;
        // Whatever survived must still be internally ordered.
        for (std::size_t i = 1; i < loaded.grants.size(); ++i) {
            if (loaded.consistent)
                EXPECT_LT(loaded.grants[i - 1].leaseId,
                          loaded.grants[i].leaseId);
        }
    }
}

TEST(LeaseLedger, SemanticViolationsLoadAsInconsistent)
{
    const std::string dir = freshDir("ledger_semantics");
    const auto loadAfter =
        [&](const std::string &name,
            const std::function<void(fleet::LeaseLedger &)> &write) {
            const std::string path = dir + "/" + name + ".dolleas";
            fleet::LeaseLedger ledger;
            EXPECT_TRUE(ledger.create(path, plan6()));
            write(ledger);
            ledger.close();
            return fleet::LeaseLedger::load(path);
        };

    const auto nonIncreasing =
        loadAfter("dup_id", [](fleet::LeaseLedger &ledger) {
            ledger.appendGrant(grantOf(2, 0, 3));
            ledger.appendGrant(grantOf(2, 3, 6));
        });
    EXPECT_TRUE(nonIncreasing.valid);
    EXPECT_FALSE(nonIncreasing.consistent);

    const auto unknownComplete =
        loadAfter("unknown_complete", [](fleet::LeaseLedger &ledger) {
            ledger.appendComplete(9);
        });
    EXPECT_FALSE(unknownComplete.consistent);

    const auto doubleExpire =
        loadAfter("double_expire", [](fleet::LeaseLedger &ledger) {
            ledger.appendGrant(grantOf(1, 0, 6));
            ledger.appendExpire(1);
            ledger.appendExpire(1);
        });
    EXPECT_FALSE(doubleExpire.consistent);

    const auto twoSuccessors =
        loadAfter("two_successors", [](fleet::LeaseLedger &ledger) {
            ledger.appendGrant(grantOf(1, 0, 6));
            ledger.appendExpire(1);
            ledger.appendGrant(grantOf(2, 0, 6, 1, 1));
            ledger.appendGrant(grantOf(3, 0, 6, 1, 1));
        });
    EXPECT_FALSE(twoSuccessors.consistent);

    const auto outOfPlan =
        loadAfter("out_of_plan", [](fleet::LeaseLedger &ledger) {
            ledger.appendGrant(grantOf(1, 4, 9));
        });
    EXPECT_FALSE(outOfPlan.consistent);

    // A grant can never precede the plan record (raw framed write).
    const std::string headless = dir + "/headless.dolleas";
    {
        runner::FramedWriter writer;
        ASSERT_TRUE(
            writer.create(headless, fleet::kLedgerMagic, nullptr));
        writer.appendRecord(
            static_cast<std::uint8_t>(fleet::LedgerRecord::kGrant),
            fleet::encodeGrantPayload(grantOf(1, 0, 6)));
    }
    const auto planless = fleet::LeaseLedger::load(headless);
    EXPECT_TRUE(planless.valid);
    EXPECT_FALSE(planless.consistent);
}

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

TEST(PartitionRange, CoversEveryCellWithBalancedContiguousRanges)
{
    for (std::uint64_t count = 0; count <= 257; ++count) {
        for (unsigned parts = 1; parts <= 16; ++parts) {
            const auto ranges = runner::partitionRange(count, parts);
            const std::uint64_t expect_ranges =
                count < parts ? count : parts;
            ASSERT_EQ(ranges.size(), expect_ranges)
                << "count=" << count << " parts=" << parts;
            std::uint64_t next = 0;
            std::uint64_t smallest = UINT64_MAX, largest = 0;
            for (const auto &[begin, end] : ranges) {
                ASSERT_EQ(begin, next);
                ASSERT_LT(begin, end);
                const std::uint64_t len = end - begin;
                smallest = std::min(smallest, len);
                largest = std::max(largest, len);
                next = end;
            }
            ASSERT_EQ(next, count);
            if (!ranges.empty())
                ASSERT_LE(largest - smallest, 1u)
                    << "count=" << count << " parts=" << parts;
        }
    }
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

TEST(FleetWorker, ExecutesExactlyItsLeasedRange)
{
    const std::string dir = freshDir("worker_range");
    auto sweep = makeFleetSweep({});
    const runner::JournalPlan plan = sweep.plan();
    {
        fleet::LeaseLedger ledger;
        ASSERT_TRUE(ledger.create(fleet::ledgerPath(dir), plan));
        ASSERT_TRUE(ledger.appendGrant(grantOf(1, 2, 5)));
    }

    fleet::WorkerOptions options;
    options.leaseDir = dir;
    options.leaseId = 1;
    std::string error;
    runner::SweepOptions sweep_options;
    sweep_options.jobs = 1;
    sweep_options.progress = false;
    EXPECT_EQ(fleet::runFleetWorker(sweep, sweep_options, options,
                                    &error),
              fleet::kWorkerOk)
        << error;

    const auto journal = runner::CheckpointJournal::load(
        fleet::leaseJournalPath(dir, 1));
    ASSERT_TRUE(journal.valid) << journal.error;
    std::vector<std::uint64_t> cells;
    for (const runner::JournalJobDone &job : journal.jobs)
        cells.push_back(job.jobIndex);
    EXPECT_EQ(cells, (std::vector<std::uint64_t>{2, 3, 4}));
}

TEST(FleetWorker, RefusesMismatchedPlanOrUnknownLease)
{
    const std::string dir = freshDir("worker_refuse");
    runner::JournalPlan other = plan6();
    other.gridHash ^= 1; // not this sweep's grid
    {
        fleet::LeaseLedger ledger;
        ASSERT_TRUE(ledger.create(fleet::ledgerPath(dir), other));
        ASSERT_TRUE(ledger.appendGrant(grantOf(1, 0, 3)));
    }
    auto sweep = makeFleetSweep({});
    fleet::WorkerOptions options;
    options.leaseDir = dir;
    options.leaseId = 1;
    std::string error;
    EXPECT_EQ(fleet::runFleetWorker(sweep, {}, options, &error),
              fleet::kWorkerSetupError);
    EXPECT_FALSE(error.empty());

    const std::string dir2 = freshDir("worker_refuse2");
    auto sweep2 = makeFleetSweep({});
    {
        fleet::LeaseLedger ledger;
        ASSERT_TRUE(
            ledger.create(fleet::ledgerPath(dir2), sweep2.plan()));
    }
    fleet::WorkerOptions unknown;
    unknown.leaseDir = dir2;
    unknown.leaseId = 42; // never granted
    error.clear();
    EXPECT_EQ(fleet::runFleetWorker(sweep2, {}, unknown, &error),
              fleet::kWorkerSetupError);
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------
// Merger
// ---------------------------------------------------------------------

/** Journal @p cells (jobFor rows) into a fresh per-lease journal. */
void
writeJournal(const std::string &dir, std::uint64_t lease_id,
             const runner::JournalPlan &plan,
             const std::vector<runner::JournalJobDone> &jobs,
             const std::vector<runner::JournalCellFailed> &failed = {})
{
    runner::CheckpointJournal journal;
    ASSERT_TRUE(journal.create(
        fleet::leaseJournalPath(dir, lease_id), plan));
    for (const auto &rec : failed)
        ASSERT_TRUE(journal.appendCellFailed(rec));
    for (const auto &job : jobs)
        ASSERT_TRUE(journal.appendJobDone(job));
}

runner::JournalPlan
plan3()
{
    runner::JournalPlan plan;
    plan.itemCount = 3;
    plan.gridHash = 0xABCull;
    plan.maxInstrs = 4000;
    return plan;
}

runner::JournalJobDone
markedJob(std::uint64_t cell, double ipc_marker)
{
    runner::JournalJobDone job = jobFor(cell);
    job.rows[0].ipc = ipc_marker;
    return job;
}

runner::JournalCellFailed
failedRecord(std::uint64_t cell)
{
    runner::JournalCellFailed failed;
    failed.jobIndex = cell;
    failed.cell = fleet_property::failureFor(cell);
    return failed;
}

TEST(Merge, FirstCommittedWinsAndSuccessOutranksFailure)
{
    const std::string dir = freshDir("merge_dedup");
    // Lease 1 committed cell 0, quarantined cell 1, committed cell 2.
    // Lease 2 (the re-run) re-committed cells 1 and 2.
    writeJournal(dir, 1, plan3(),
                 {markedJob(0, 1.5), markedJob(2, 3.5)},
                 {failedRecord(1)});
    writeJournal(dir, 2, plan3(),
                 {markedJob(1, 2.5), markedJob(2, 9.75)});

    fleet::MergeOptions options;
    options.plan = plan3();
    options.inputs = {
        {1, fleet::leaseJournalPath(dir, 1)},
        {2, fleet::leaseJournalPath(dir, 2)},
    };
    std::string merged;
    const fleet::MergeStats stats =
        fleet::mergeJournalsToString(options, merged);
    ASSERT_TRUE(stats.ok) << stats.error;
    EXPECT_EQ(stats.mergedCells, 3u);
    EXPECT_EQ(stats.failedCells, 0u);
    // Two losers: lease 1's quarantine of cell 1 (outranked by lease
    // 2's success) and lease 2's duplicate of cell 2.
    EXPECT_EQ(stats.duplicatesDiscarded, 2u);
    EXPECT_NE(merged.find("1.5"), std::string::npos);
    EXPECT_NE(merged.find("2.5"), std::string::npos);
    EXPECT_NE(merged.find("3.5"), std::string::npos);
    EXPECT_EQ(merged.find("9.75"), std::string::npos)
        << "lease 2's duplicate of cell 2 must lose to lease 1's "
           "first-committed record";
    EXPECT_EQ(merged.find("failed_cells"), std::string::npos);
}

TEST(Merge, QuarantinedEverywhereSurfacesInFailedCells)
{
    const std::string dir = freshDir("merge_failed");
    writeJournal(dir, 1, plan3(),
                 {markedJob(0, 1.5), markedJob(2, 3.5)},
                 {failedRecord(1)});

    fleet::MergeOptions options;
    options.plan = plan3();
    options.inputs = {{1, fleet::leaseJournalPath(dir, 1)}};
    std::string merged;
    const fleet::MergeStats stats =
        fleet::mergeJournalsToString(options, merged);
    ASSERT_TRUE(stats.ok) << stats.error;
    EXPECT_EQ(stats.mergedCells, 2u);
    EXPECT_EQ(stats.failedCells, 1u);
    EXPECT_NE(merged.find("\"failed_cells\""), std::string::npos);
    EXPECT_NE(merged.find("synthetic failure in cell 1"),
              std::string::npos);
}

TEST(Merge, StreamsWithBoundedRowsHeld)
{
    const std::string dir = freshDir("merge_streaming");
    runner::JournalPlan plan;
    plan.itemCount = 64;
    plan.gridHash = 0x64ull;
    plan.maxInstrs = 4000;
    std::vector<runner::JournalJobDone> jobs;
    for (std::uint64_t cell = 0; cell < plan.itemCount; ++cell)
        jobs.push_back(jobFor(cell));
    writeJournal(dir, 1, plan, jobs);

    fleet::MergeOptions options;
    options.plan = plan;
    options.inputs = {{1, fleet::leaseJournalPath(dir, 1)}};
    std::string merged;
    const fleet::MergeStats stats =
        fleet::mergeJournalsToString(options, merged);
    ASSERT_TRUE(stats.ok) << stats.error;
    EXPECT_EQ(stats.mergedCells, 64u);
    // One row per cell: streaming emission must never materialize
    // more than one cell's rows at a time, however many cells merge.
    EXPECT_EQ(stats.peakRowsHeld, 1u);
}

TEST(Merge, FailsOnUncoveredCellOrForeignPlan)
{
    const std::string dir = freshDir("merge_errors");
    writeJournal(dir, 1, plan3(), {markedJob(0, 1.5)});

    fleet::MergeOptions options;
    options.plan = plan3();
    options.inputs = {{1, fleet::leaseJournalPath(dir, 1)}};
    std::string merged;
    fleet::MergeStats stats =
        fleet::mergeJournalsToString(options, merged);
    EXPECT_FALSE(stats.ok);
    EXPECT_NE(stats.error.find("no journal covers cell"),
              std::string::npos)
        << stats.error;

    options.plan.gridHash ^= 1;
    stats = fleet::mergeJournalsToString(options, merged);
    EXPECT_FALSE(stats.ok);
    EXPECT_NE(stats.error.find("different sweep plan"),
              std::string::npos)
        << stats.error;
}

// ---------------------------------------------------------------------
// Full fleet: kill mid-range, merge, byte-identity
// ---------------------------------------------------------------------

TEST(Fleet, KillMidRangeMergeMatchesSingleProcessByteForByte)
{
    // References at two worker counts: the merged fleet document must
    // byte-equal both (they already equal each other by the runner's
    // determinism contract).
    std::string reference;
    runner::SweepMeta reference_meta;
    for (const unsigned jobs : {1u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        runner::SweepOptions options;
        options.jobs = jobs;
        auto sweep = makeFleetSweep(options);
        const auto report = sweep.run();
        ASSERT_TRUE(report.ok());
        const std::string prefix =
            deterministicPrefix(report.store.toJson(report.meta));
        ASSERT_FALSE(prefix.empty());
        if (reference.empty()) {
            reference = prefix;
            reference_meta = report.meta;
        } else {
            ASSERT_EQ(prefix, reference);
        }
    }

    const std::string dir = freshDir("fleet_kill");
    auto planner = makeFleetSweep({});
    const runner::JournalPlan plan = planner.plan();

    fleet::FleetOptions options;
    options.leaseDir = dir;
    options.workers = 2;
    options.leases = 3; // ranges [0,2) [2,4) [4,6)
    options.leaseTtlMs = 30000;
    options.outputPath = dir + "/merged.json";

    // Every generation-0 worker dies mid-range: the abort sites sit
    // on the second cell of each lease, so one cell is journaled and
    // the process _Exit()s — a real death, no unwinding — on the
    // next. Re-granted (generation 1) leases run fault-free.
    const auto spawn = [&](const fleet::LeaseGrant &grant) -> pid_t {
        std::fflush(nullptr);
        const pid_t pid = fork();
        if (pid == 0) {
            runner::FaultPlan faults;
            runner::SweepOptions worker_options;
            worker_options.jobs = 1;
            worker_options.progress = false;
            if (grant.generation == 0) {
                runner::FaultPlan::parse("abort@1,abort@3,abort@5",
                                         faults);
                worker_options.faultPlan = &faults;
            }
            auto sweep = makeFleetSweep({});
            fleet::WorkerOptions lease;
            lease.leaseDir = dir;
            lease.leaseId = grant.leaseId;
            std::_Exit(fleet::runFleetWorker(sweep, worker_options,
                                             lease));
        }
        return pid;
    };

    fleet::FleetCoordinator coordinator(plan, options, spawn);
    runner::SweepMeta meta;
    meta.generator = reference_meta.generator;
    meta.maxInstrs = reference_meta.maxInstrs;
    const fleet::FleetReport report = coordinator.run(meta);
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.leasesGranted, 6u);
    EXPECT_EQ(report.leasesExpired, 3u);
    EXPECT_EQ(report.leasesCompleted, 3u);
    ASSERT_TRUE(report.merge.ok) << report.merge.error;
    EXPECT_EQ(report.merge.mergedCells, 6u);
    EXPECT_EQ(report.merge.failedCells, 0u);

    std::string merged;
    ASSERT_TRUE(readFileTo(options.outputPath, merged));
    EXPECT_EQ(deterministicPrefix(merged), reference)
        << "fleet merge diverged from the single-process document";

    const auto ledger =
        fleet::LeaseLedger::load(fleet::ledgerPath(dir));
    ASSERT_TRUE(ledger.valid) << ledger.error;
    EXPECT_TRUE(ledger.consistent) << ledger.inconsistency;
    EXPECT_EQ(ledger.expired.size(), 3u);
    std::size_t successors = 0;
    for (const fleet::LeaseGrant &grant : ledger.grants) {
        if (grant.parentLease != fleet::kNoParentLease) {
            ++successors;
            EXPECT_EQ(grant.generation, 1u);
        }
    }
    EXPECT_EQ(successors, 3u)
        << "each expired lease re-granted exactly once";
}

TEST(Fleet, CoordinatorResumesAfterItsOwnDeath)
{
    const std::string dir = freshDir("fleet_resume");
    auto planner = makeFleetSweep({});
    const runner::JournalPlan plan = planner.plan();

    // A killed coordinator's leftovers: one outstanding grant for the
    // whole grid, no journal (the worker never got to a cell).
    {
        fleet::LeaseLedger ledger;
        ASSERT_TRUE(ledger.create(fleet::ledgerPath(dir), plan));
        ASSERT_TRUE(ledger.appendGrant(grantOf(1, 0, 6)));
    }

    // Reference for byte-identity after the recovery.
    auto baseline_sweep = makeFleetSweep({});
    const auto baseline = baseline_sweep.run();
    ASSERT_TRUE(baseline.ok());
    const std::string reference = deterministicPrefix(
        baseline.store.toJson(baseline.meta));

    fleet::FleetOptions options;
    options.leaseDir = dir;
    options.workers = 2;
    options.leaseTtlMs = 30000;
    options.outputPath = dir + "/merged.json";
    const auto spawn = [&](const fleet::LeaseGrant &grant) -> pid_t {
        std::fflush(nullptr);
        const pid_t pid = fork();
        if (pid == 0) {
            auto sweep = makeFleetSweep({});
            runner::SweepOptions worker_options;
            worker_options.jobs = 1;
            worker_options.progress = false;
            fleet::WorkerOptions lease;
            lease.leaseDir = dir;
            lease.leaseId = grant.leaseId;
            std::_Exit(fleet::runFleetWorker(sweep, worker_options,
                                             lease));
        }
        return pid;
    };

    fleet::FleetCoordinator coordinator(plan, options, spawn);
    runner::SweepMeta meta;
    meta.generator = baseline.meta.generator;
    meta.maxInstrs = baseline.meta.maxInstrs;
    const fleet::FleetReport report = coordinator.run(meta);
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.leasesExpired, 1u)
        << "the orphaned lease must be expired on resume";
    ASSERT_TRUE(report.merge.ok) << report.merge.error;

    std::string merged;
    ASSERT_TRUE(readFileTo(options.outputPath, merged));
    EXPECT_EQ(deterministicPrefix(merged), reference);

    const auto ledger =
        fleet::LeaseLedger::load(fleet::ledgerPath(dir));
    ASSERT_TRUE(ledger.valid);
    EXPECT_TRUE(ledger.consistent) << ledger.inconsistency;
}

// ---------------------------------------------------------------------
// Property harness smoke (the 200-cell battery is tier2)
// ---------------------------------------------------------------------

TEST(FleetProperty, SmallRandomFleetsMergeByteIdentical)
{
    fleet_property::runFleetPropertyRounds(24, 3, 0xD01ull,
                                           "fleet_prop_smoke");
}

} // namespace
