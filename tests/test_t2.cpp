/**
 * @file
 * Unit tests for the T2 stride component: the four-state instruction
 * machine (paper IV-A.2), early prefetching, stream issue, distance
 * control, and the mPC call-site disambiguation.
 */

#include <gtest/gtest.h>

#include "core/t2.hpp"
#include "mem/memory_system.hpp"

namespace dol
{
namespace
{

class T2Test : public ::testing::Test
{
  protected:
    T2Test() : emitter(mem)
    {
        t2.setId(1);
        emitter.setContext(1, 0);
    }

    /** Run one demand access through the hierarchy and train T2. */
    AccessInfo
    access(Pc pc, Addr addr)
    {
        now += 20;
        const auto res = mem.demandLoad(addr, pc, now);
        AccessInfo info;
        info.pc = pc;
        info.mPc = pc;
        info.addr = addr;
        info.isLoad = true;
        info.l1Hit = res.l1Hit;
        info.l1PrimaryMiss = res.l1PrimaryMiss;
        info.l1HitPrefetched = res.l1HitPrefetched;
        info.when = now;
        info.completion = res.completion;
        emitter.setContext(1, now);
        t2.train(info, emitter);
        return info;
    }

    MemorySystem mem;
    PrefetchEmitter emitter;
    T2Prefetcher t2;
    Cycle now = 0;
};

TEST_F(T2Test, UnknownUntilPrimaryMiss)
{
    EXPECT_EQ(t2.stateOf(0x100), InstrState::kUnknown);
    access(0x100, 0x10000);
    EXPECT_EQ(t2.stateOf(0x100), InstrState::kObservation);
}

TEST_F(T2Test, HitsDoNotStartObservation)
{
    // Warm the line with a different PC, then access with ours: a hit
    // must not allocate tracking state.
    access(0x900, 0x10000);
    now += 100000;
    access(0x100, 0x10000);
    EXPECT_EQ(t2.stateOf(0x100), InstrState::kUnknown);
}

TEST_F(T2Test, SixteenStableDeltasConfirmStrided)
{
    for (int i = 0; i <= 18; ++i)
        access(0x100, 0x100000 + i * 64);
    EXPECT_EQ(t2.stateOf(0x100), InstrState::kStrided);
    EXPECT_EQ(t2.lastConfirmedStrided(), 0x100u);
}

TEST_F(T2Test, FourChangingDeltasWriteOffInstruction)
{
    access(0x100, 0x100000);
    access(0x100, 0x100040);
    access(0x100, 0x105000);
    access(0x100, 0x101000);
    access(0x100, 0x170000);
    access(0x100, 0x120000);
    EXPECT_EQ(t2.stateOf(0x100), InstrState::kNonStrided);
}

TEST_F(T2Test, EarlyPrefetchingAfterFourStableDeltas)
{
    // Stride of a full line so every prefetch targets a fresh line.
    for (int i = 0; i < 6; ++i)
        access(0x100, 0x200000 + i * 64);
    EXPECT_EQ(t2.stateOf(0x100), InstrState::kObservation);
    EXPECT_GT(mem.stats().comp[1].issued, 0u)
        << "prefetching must start in the observation state";
}

TEST_F(T2Test, StridedStreamCoversFutureLines)
{
    for (int i = 0; i < 40; ++i)
        access(0x100, 0x300000 + i * 64);
    // The line several iterations ahead must already be cached.
    const Addr ahead = 0x300000 + 42 * 64;
    EXPECT_NE(mem.cacheAt(kL1).find(ahead), nullptr);
}

TEST_F(T2Test, NegativeStrideWorks)
{
    for (int i = 0; i < 40; ++i)
        access(0x100, 0x400000 - i * 64);
    const Addr ahead = 0x400000 - 42 * 64;
    EXPECT_NE(mem.cacheAt(kL1).find(ahead), nullptr);
}

TEST_F(T2Test, SubLineStrideIssuesLineGranular)
{
    for (int i = 0; i < 200; ++i)
        access(0x100, 0x500000 + i * 8);
    const MemStats &stats = mem.stats();
    // 200 accesses cover 25 lines; the prefetcher must not have
    // issued hundreds of duplicate requests.
    EXPECT_LT(stats.comp[1].issued + stats.comp[1].filtered, 80u);
    EXPECT_GT(stats.comp[1].issued, 10u);
}

TEST_F(T2Test, BrokenStreamReobserves)
{
    for (int i = 0; i <= 20; ++i)
        access(0x100, 0x600000 + i * 64);
    EXPECT_EQ(t2.stateOf(0x100), InstrState::kStrided);
    // The stream breaks: four consecutive delta changes.
    access(0x100, 0x700000);
    access(0x100, 0x703000);
    access(0x100, 0x701000);
    access(0x100, 0x709000);
    EXPECT_EQ(t2.stateOf(0x100), InstrState::kObservation);
}

TEST_F(T2Test, MPcSeparatesCallSites)
{
    // The same static PC reached via two call sites (different mPC)
    // tracks two independent streams.
    for (int i = 0; i < 20; ++i) {
        AccessInfo info;
        info.pc = 0x100;
        info.mPc = 0x100 ^ 0xa000; // site A
        info.addr = 0x800000 + i * 64;
        info.isLoad = true;
        info.l1PrimaryMiss = true;
        info.when = now += 10;
        info.completion = info.when + 200;
        emitter.setContext(1, info.when);
        t2.train(info, emitter);

        info.mPc = 0x100 ^ 0xb000; // site B
        info.addr = 0xa00000 + i * 192;
        emitter.setContext(1, now += 10);
        t2.train(info, emitter);
    }
    EXPECT_EQ(t2.stateOf(0x100 ^ 0xa000), InstrState::kStrided);
    EXPECT_EQ(t2.stateOf(0x100 ^ 0xb000), InstrState::kStrided);
    // Without disambiguation the interleaved stream never stabilizes.
    EXPECT_EQ(t2.stateOf(0x100), InstrState::kUnknown);
}

TEST_F(T2Test, DistanceGrowsWithAmatAndShrinksWithIterTime)
{
    // Without a confirmed loop the default distance applies.
    EXPECT_EQ(t2.distance(), t2.params().defaultDistance);

    // Confirm a fast loop: distance = (AMAT + margin) / T_iter.
    RetireInfo retire;
    for (int i = 0; i < 20; ++i) {
        retire.finish = now += 10;
        t2.onInstr(makeBranch(0x200, 0x180, true), retire, 0x200,
                   emitter);
    }
    EXPECT_TRUE(t2.loops().inLoop());
    const unsigned d = t2.distance();
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, t2.params().maxDistance);
}

TEST_F(T2Test, DistanceFormulaTruncatesTowardZero)
{
    // Constant 10-cycle iterations pin t_iter at exactly 10; no
    // demand access has touched AMAT, so it sits at its 60-cycle
    // initial estimate: d = (60 + 128) / 10 = 18.8, truncated to 18.
    RetireInfo retire;
    for (int i = 0; i < 20; ++i) {
        retire.finish = now += 10;
        t2.onInstr(makeBranch(0x200, 0x180, true), retire, 0x200,
                   emitter);
    }
    ASSERT_TRUE(t2.loops().inLoop());
    ASSERT_DOUBLE_EQ(t2.loops().iterationTime(), 10.0);
    ASSERT_DOUBLE_EQ(t2.amat(), 60.0);
    ASSERT_EQ(t2.params().marginCycles, 128u);
    EXPECT_EQ(t2.distance(), 18u);
}

TEST_F(T2Test, DegenerateIterationTimeFallsBackToDefault)
{
    // Every iteration "finishes" on the same cycle: the loop confirms
    // but no time sample can accumulate, and the t_iter < 1 guard
    // keeps the formula from dividing by (near) zero.
    RetireInfo retire;
    retire.finish = 50;
    for (int i = 0; i < 20; ++i) {
        t2.onInstr(makeBranch(0x200, 0x180, true), retire, 0x200,
                   emitter);
    }
    ASSERT_TRUE(t2.loops().inLoop());
    EXPECT_LT(t2.loops().iterationTime(), 1.0);
    EXPECT_EQ(t2.distance(), t2.params().defaultDistance);
}

TEST_F(T2Test, DistanceClampsToOneForSlowLoops)
{
    // 100k-cycle iterations dwarf AMAT + margin: the raw formula
    // yields ~0.002, clamped to the minimum useful distance of one.
    RetireInfo retire;
    for (int i = 0; i < 20; ++i) {
        retire.finish = now += 100000;
        t2.onInstr(makeBranch(0x200, 0x180, true), retire, 0x200,
                   emitter);
    }
    ASSERT_TRUE(t2.loops().inLoop());
    EXPECT_EQ(t2.distance(), 1u);
}

TEST(T2Distance, ClampsAtConfiguredTableMaximum)
{
    T2Prefetcher::Params params;
    params.maxDistance = 8;
    T2Prefetcher t2(params);
    MemorySystem mem;
    PrefetchEmitter emitter(mem);
    t2.setId(1);
    emitter.setContext(1, 0);

    // Unclamped d = (60 + 128) / 10 = 18; the table limit wins.
    RetireInfo retire;
    Cycle now = 0;
    for (int i = 0; i < 20; ++i) {
        retire.finish = now += 10;
        t2.onInstr(makeBranch(0x200, 0x180, true), retire, 0x200,
                   emitter);
    }
    ASSERT_TRUE(t2.loops().inLoop());
    EXPECT_EQ(t2.distance(), 8u);
}

/**
 * Property sweep: T2 confirms and covers streams of any stride, in
 * both directions, including sub-line and multi-line strides.
 */
class T2StrideSweep : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(T2StrideSweep, ConfirmsAndCoversArbitraryStrides)
{
    const std::int64_t stride = GetParam();
    MemorySystem mem;
    PrefetchEmitter emitter(mem);
    T2Prefetcher t2;
    t2.setId(1);

    Cycle now = 0;
    const Addr base = 0x40000000;
    for (int i = 0; i < 300; ++i) {
        const Addr addr = static_cast<Addr>(
            static_cast<std::int64_t>(base) + i * stride);
        now += 25;
        const auto res = mem.demandLoad(addr, 0x100, now);
        AccessInfo info;
        info.pc = 0x100;
        info.mPc = 0x100;
        info.addr = addr;
        info.isLoad = true;
        info.l1Hit = res.l1Hit;
        info.l1PrimaryMiss = res.l1PrimaryMiss;
        info.when = now;
        info.completion = res.completion;
        emitter.setContext(1, now);
        t2.train(info, emitter);
    }

    EXPECT_EQ(t2.stateOf(0x100), InstrState::kStrided)
        << "stride " << stride;
    const SitEntry *entry = t2.sitLookup(0x100);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->delta, stride);
    // The frontier must have advanced beyond the demand stream.
    EXPECT_GT(mem.stats().comp[1].issued, 10u) << "stride " << stride;
    const Addr ahead = static_cast<Addr>(
        static_cast<std::int64_t>(base) + 302 * stride);
    EXPECT_NE(mem.cacheAt(kL1).find(ahead), nullptr)
        << "stride " << stride;
}

INSTANTIATE_TEST_SUITE_P(Strides, T2StrideSweep,
                         ::testing::Values<std::int64_t>(
                             8, 16, 24, 64, 128, 200, 1024, 4096,
                             -8, -64, -256, -4096));

TEST_F(T2Test, StorageBudgetNearTableII)
{
    // Table II: T2 = 2.3 KB = 18841 bits.
    const double bits = static_cast<double>(t2.storageBits());
    EXPECT_GT(bits, 0.7 * 2.3 * 8 * 1024);
    EXPECT_LT(bits, 1.3 * 2.3 * 8 * 1024);
}

} // namespace
} // namespace dol
