/**
 * @file
 * Golden-trace differential regression harness.
 *
 * Each golden cell runs a small-budget (workload, prefetcher)
 * experiment with tracing enabled and snapshots the end-of-run counter
 * registry — which embeds the trace byte digest (trace.bytes_fnv64),
 * the event count, and every per-event-type tally — as one text file
 * under tests/golden/. The test re-runs each cell and diffs the fresh
 * snapshot against the checked-in file line by line, so any behaviour
 * change in T2/P1/C1, the coordinator, the memory hierarchy, or the
 * trace encoding itself shows up as a readable counter diff.
 *
 * Regenerate after an intentional behaviour change with either
 *   ./test_golden_trace --update-golden
 * or DOL_UPDATE_GOLDEN=1 ctest -R GoldenTrace
 * and commit the updated tests/golden/*.golden files with the change.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/sweep.hpp"
#include "sim/contention.hpp"
#include "sim/experiment.hpp"
#include "workloads/contention.hpp"
#include "workloads/suite.hpp"

namespace
{

using namespace dol;

/** Small enough for a fast test, large enough that T2 streams
 *  confirm, P1 chases chains, and C1 accumulates region stats. */
constexpr std::uint64_t kGoldenInstrs = 20000;

struct GoldenCell
{
    const char *workload;
    const char *prefetcher;
};

/** Chosen so the set collectively exercises every subsystem the bus
 *  instruments: libquantum = strided T2 + coordinator claims, mcf =
 *  P1 producer confirmation + C1 verdicts, omnetpp = P1 chain
 *  start/advance FSM, bfs = C1 dense-region detection, SPP = the
 *  non-composite (extras-only) prefetcher path, tempstream x the
 *  enlarged composite = round-robin multi-extra routing plus the
 *  temporal (Triangel) and pointer-chase extras' counters. */
const GoldenCell kGoldenCells[] = {
    {"libquantum.syn", "TPC"}, {"mcf.syn", "TPC"},
    {"omnetpp.syn", "TPC"},    {"bfs.syn", "TPC"},
    {"libquantum.syn", "SPP"},
    {"tempstream.syn", "TPC+SPP+Triangel+PChase"},
};

bool
updateGolden()
{
    const char *env = std::getenv("DOL_UPDATE_GOLDEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string
goldenPath(const GoldenCell &cell)
{
    return std::string(DOL_GOLDEN_DIR) + "/" + cell.workload + "." +
           cell.prefetcher + ".golden";
}

/** Run the cell exactly like a traced sweep would (same per-cell
 *  DRAM seed) and render its counter registry as golden text. */
std::string
runSnapshot(const GoldenCell &cell)
{
    SimConfig config;
    config.maxInstrs = kGoldenInstrs;
    config.mem.dram.rngSeed =
        runner::cellSeed(cell.workload, cell.prefetcher, "");
    ExperimentRunner runner(config);

    RunOptions options;
    options.collectCounters = true;
    options.tracePath = testing::TempDir() + "golden." +
                        cell.workload + "." + cell.prefetcher + ".trc";
    const RunOutput out =
        runner.run(findWorkload(cell.workload), cell.prefetcher,
                   options);

    std::string text = "dol-golden-v1 ";
    text += cell.workload;
    text += ' ';
    text += cell.prefetcher;
    text += " instrs=" + std::to_string(kGoldenInstrs) + "\n";
    text += out.counters.toText();
    std::remove(options.tracePath.c_str());
    return text;
}

std::string
readFileText(const std::string &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    ok = in.good();
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Render a unified-ish summary of which counter lines changed, so a
 *  ctest failure log reads like a review diff, not a text blob. */
std::string
describeDiff(const std::string &expected, const std::string &actual)
{
    std::istringstream a(expected), b(actual);
    std::string la, lb, out;
    int shown = 0;
    while (shown < 20) {
        const bool ha = static_cast<bool>(std::getline(a, la));
        const bool hb = static_cast<bool>(std::getline(b, lb));
        if (!ha && !hb)
            break;
        if (ha && hb && la == lb)
            continue;
        if (ha)
            out += "  -golden  " + la + "\n";
        if (hb)
            out += "  +fresh   " + lb + "\n";
        ++shown;
    }
    if (shown >= 20)
        out += "  (diff truncated)\n";
    return out;
}

/** Shared compare-or-regenerate logic for one golden file. */
void
checkGolden(const std::string &path, const std::string &fresh,
            const std::string &what)
{
    if (updateGolden()) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << fresh;
        ASSERT_TRUE(out.good()) << "short write to " << path;
        GTEST_SKIP() << "regenerated " << path;
    }

    bool ok = false;
    const std::string golden = readFileText(path, ok);
    ASSERT_TRUE(ok) << "missing golden file " << path
                    << " (run with --update-golden to create it)";
    EXPECT_EQ(golden, fresh)
        << "golden snapshot drifted for " << what << ":\n"
        << describeDiff(golden, fresh)
        << "If the behaviour change is intentional, regenerate with\n"
        << "  ./test_golden_trace --update-golden\n"
        << "and commit the updated " << path;
}

class GoldenTrace : public testing::TestWithParam<GoldenCell>
{};

TEST_P(GoldenTrace, MatchesCheckedInSnapshot)
{
    const GoldenCell &cell = GetParam();
    checkGolden(goldenPath(cell), runSnapshot(cell),
                std::string(cell.workload) + "/" + cell.prefetcher);
}

/**
 * Multicore golden cell: the stream-starves-pchase mix (two cores,
 * two distinct per-core prefetchers) under FIFO arbitration, seeded
 * exactly like the contention sweep seeds it, snapshotting the merged
 * per-core + fairness + shared-channel counter registry. Pins down
 * the interleaving, the shared-L3 ownership accounting, and the
 * arbitration delay model in one file.
 */
TEST(GoldenMix, StreamStarvesPchaseMatchesSnapshot)
{
    const char *const kMixName = "stream_starves_pchase";
    constexpr std::uint64_t kMixInstrs = 20000;
    const ContentionMix &mix = findContentionMix(kMixName);

    SimConfig config;
    config.maxInstrs = kMixInstrs;
    config.mem.dram.arbitration = ArbitrationPolicy::kFifo;
    // Mirror the sweep's per-cell seeding (label, "", variant).
    config.mem.dram.rngSeed = runner::cellSeed(
        std::string("mix:") + kMixName, "", ":arb=fifo");

    const ContentionOutcome outcome =
        runContentionScenario(config, mix);

    std::string fresh = "dol-golden-v1 mix:";
    fresh += kMixName;
    fresh += ' ';
    fresh += mixPrefetcherLabel(mix);
    fresh += " instrs=" + std::to_string(kMixInstrs) + "\n";
    fresh += outcome.counters.toText();

    checkGolden(std::string(DOL_GOLDEN_DIR) +
                    "/mix.stream_starves_pchase.fifo.golden",
                fresh, std::string("mix:") + kMixName);
}

/** The fnv64 digest line is the strongest single check: it covers the
 *  full byte stream, so reorderings that keep per-type counts equal
 *  still fail. Assert every golden file carries one. */
TEST(GoldenTraceFormat, EveryGoldenFileHasDigestAndEvents)
{
    if (updateGolden())
        GTEST_SKIP() << "regeneration run";
    for (const GoldenCell &cell : kGoldenCells) {
        bool ok = false;
        const std::string text = readFileText(goldenPath(cell), ok);
        ASSERT_TRUE(ok) << "missing " << goldenPath(cell);
        EXPECT_NE(text.find("trace.bytes_fnv64 "), std::string::npos)
            << goldenPath(cell);
        EXPECT_NE(text.find("trace.events "), std::string::npos)
            << goldenPath(cell);
        EXPECT_EQ(text.rfind("dol-golden-v1 ", 0), 0u)
            << goldenPath(cell);
    }
}

std::string
cellName(const testing::TestParamInfo<GoldenCell> &info)
{
    std::string name = std::string(info.param.workload) + "_" +
                       info.param.prefetcher;
    for (char &c : name) {
        if (c == '.' || c == '-' || c == '+')
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(Cells, GoldenTrace,
                         testing::ValuesIn(kGoldenCells), cellName);

} // namespace

/** Custom main so `--update-golden` works as a flag (mapped onto the
 *  DOL_UPDATE_GOLDEN env var the tests consult) without tripping
 *  gtest's unknown-flag handling. */
int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden") {
            setenv("DOL_UPDATE_GOLDEN", "1", 1);
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            --i;
        }
    }
    testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
