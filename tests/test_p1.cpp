/**
 * @file
 * Unit tests for the P1 pointer component: taint-scout detection of
 * array-of-pointers producers, pointer-chain detection and chasing,
 * and the timeout-based correction mechanisms.
 */

#include <algorithm>
#include <initializer_list>

#include <gtest/gtest.h>

#include "core/p1.hpp"
#include "core/t2.hpp"
#include "mem/memory_image.hpp"
#include "mem/memory_system.hpp"
#include "trace/context.hpp"

namespace dol
{
namespace
{

/** Queues prefetch fills for post-instruction delivery to P1. */
class FillQueueListener : public MemListener
{
  public:
    struct Event
    {
        ComponentId comp;
        Addr line;
        Cycle completion;
    };

    void
    prefetchFill(ComponentId comp, Addr line, Cycle completion) override
    {
        events.push_back({comp, line, completion});
    }

    std::vector<Event> events;
};

class P1Test : public ::testing::Test
{
  protected:
    P1Test() : emitter(mem), p1(&t2, &image)
    {
        t2.setId(1);
        p1.setId(2);
        mem.setListener(&fills);
    }

    void
    drainFills()
    {
        while (!fills.events.empty()) {
            const auto event = fills.events.front();
            fills.events.erase(fills.events.begin());
            emitter.setContext(2, event.completion);
            p1.onFill(event.comp, event.line, event.completion,
                      emitter);
        }
    }

    /** Feed one retired instruction to T2 (train) and P1 (onInstr). */
    void
    feed(const Instr &instr, Pc m_pc = 0)
    {
        if (m_pc == 0)
            m_pc = instr.pc;
        now += 15;

        RetireInfo retire;
        retire.dispatch = now;
        retire.issue = now;
        retire.finish = now + 1;

        if (instr.isMem()) {
            const auto res =
                mem.demandLoad(instr.addr, instr.pc, now);
            retire.mem = res;
            retire.finish = res.completion;

            AccessInfo info;
            info.pc = instr.pc;
            info.mPc = m_pc;
            info.addr = instr.addr;
            info.isLoad = instr.isLoad();
            info.l1Hit = res.l1Hit;
            info.l1PrimaryMiss = res.l1PrimaryMiss;
            info.value = instr.value;
            info.when = now;
            info.completion = res.completion;
            emitter.setContext(1, now);
            t2.train(info, emitter);
        }
        emitter.setContext(2, now);
        p1.onInstr(instr, retire, m_pc, emitter);
        drainFills();
    }

    /** Run one iteration of "p = arr[i]; use(p->field)". */
    void
    pointerArrayIteration(std::uint64_t index, Addr array_base,
                          std::int64_t field_offset)
    {
        const Addr slot = array_base + index * 8;
        const std::uint64_t object = image.read64(slot);
        feed(makeLoad(0x100, slot, object, 10, 1));
        feed(makeAlu(0x104, 11, 10));
        feed(makeLoad(0x108, object + field_offset, 0, 12, 11));
        feed(makeAlu(0x10c, 4, 4, 12));
        feed(makeBranch(0x110, 0x100, true));
    }

    MemoryImage image;
    MemorySystem mem;
    FillQueueListener fills;
    PrefetchEmitter emitter;
    T2Prefetcher t2;
    P1Prefetcher p1;
    Cycle now = 0;
};

TEST_F(P1Test, ScoutConfirmsArrayOfPointers)
{
    // Build arr[i] -> scattered objects.
    const Addr array_base = 0x10000000;
    const Addr heap = 0x40000000;
    for (std::uint64_t i = 0; i < 4096; ++i)
        image.write64(array_base + i * 8,
                      heap + ((i * 7919) % 4096) * 256);

    for (std::uint64_t i = 0; i < 60; ++i)
        pointerArrayIteration(i, array_base, 24);

    // The producer is marked a strided-pointer instruction in the SIT
    // and the dependent belongs to P1.
    const SitEntry *sit = t2.sitLookup(0x100);
    ASSERT_NE(sit, nullptr);
    EXPECT_TRUE(sit->ptrProducer);
    EXPECT_EQ(sit->ptrDelta, 24);
    EXPECT_TRUE(p1.isDependent(0x108));
    EXPECT_TRUE(p1.handles(0x108));
    // And dependent prefetches were issued.
    EXPECT_GT(mem.stats().comp[2].issued, 0u);
}

TEST_F(P1Test, ScoutIgnoresNonConstantOffsets)
{
    const Addr array_base = 0x10000000;
    for (std::uint64_t i = 0; i < 4096; ++i)
        image.write64(array_base + i * 8, 0x40000000 + i * 256);

    // Dependent offset varies wildly: no confirmation.
    for (std::uint64_t i = 0; i < 40; ++i) {
        const Addr slot = array_base + i * 8;
        const std::uint64_t object = image.read64(slot);
        feed(makeLoad(0x100, slot, object, 10, 1));
        feed(makeAlu(0x104, 11, 10));
        feed(makeLoad(0x108, object + (i * 4096) % 32768, 0, 12, 11));
        feed(makeBranch(0x110, 0x100, true));
    }
    const SitEntry *sit = t2.sitLookup(0x100);
    ASSERT_NE(sit, nullptr);
    EXPECT_FALSE(sit->ptrProducer);
    EXPECT_FALSE(p1.isDependent(0x108));
}

TEST_F(P1Test, ChainDetectionAndChasing)
{
    // Circular list with scattered nodes; link at offset 0.
    const Addr pool = 0x20000000;
    const std::uint64_t nodes = 512;
    std::vector<Addr> order;
    for (std::uint64_t i = 0; i < nodes; ++i)
        order.push_back(pool + ((i * 389) % nodes) * 128);
    for (std::uint64_t i = 0; i < nodes; ++i)
        image.write64(order[i], order[(i + 1) % nodes]);

    Addr current = order[0];
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t next = image.read64(current);
        feed(makeLoad(0x300, current, next, 10, 10));
        feed(makeAlu(0x304, 4, 4, 10));
        feed(makeBranch(0x308, 0x300, true));
        current = next;
    }

    EXPECT_TRUE(p1.isChainConfirmed(0x300));
    EXPECT_TRUE(p1.handles(0x300));
    EXPECT_GT(p1.chainPrefetchesStarted(), 0u);
    EXPECT_GT(mem.stats().comp[2].issued, 50u);
    // Chain prefetches are highly accurate (paper: 86% in HHF).
    const auto &comp = mem.stats().comp[2];
    EXPECT_GT(static_cast<double>(comp.used),
              0.8 * static_cast<double>(comp.issued));
}

TEST_F(P1Test, ChainResetsWhenListIsRewired)
{
    const Addr pool = 0x30000000;
    const std::uint64_t nodes = 256;
    for (std::uint64_t i = 0; i < nodes; ++i)
        image.write64(pool + i * 128, pool + ((i + 1) % nodes) * 128);

    Addr current = pool;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t next = image.read64(current);
        feed(makeLoad(0x300, current, next, 10, 10));
        current = next;
    }
    EXPECT_TRUE(p1.isChainConfirmed(0x300));

    // The traversal jumps to unrelated random addresses: after the
    // timeout the FSM must reset and unconfirm.
    for (int i = 0; i < 32; ++i) {
        const Addr junk = 0x70000000 + (i * 977 % 1024) * 4096;
        feed(makeLoad(0x300, junk, 0, 10, 10));
    }
    EXPECT_FALSE(p1.isChainConfirmed(0x300));
}

TEST_F(P1Test, DependentTimeoutUnmarksProducer)
{
    const Addr array_base = 0x10000000;
    for (std::uint64_t i = 0; i < 8192; ++i)
        image.write64(array_base + i * 8,
                      0x40000000 + ((i * 31) % 4096) * 256);

    for (std::uint64_t i = 0; i < 60; ++i)
        pointerArrayIteration(i, array_base, 24);
    ASSERT_TRUE(p1.isDependent(0x108));

    // The dependent stops following value+24 and wanders randomly.
    for (std::uint64_t i = 60; i < 100; ++i) {
        const Addr slot = array_base + i * 8;
        const std::uint64_t object = image.read64(slot);
        feed(makeLoad(0x100, slot, object, 10, 1));
        feed(makeAlu(0x104, 11, 10));
        feed(makeLoad(0x108, 0x60000000 + i * 8192, 0, 12, 11));
        feed(makeBranch(0x110, 0x100, true));
    }
    EXPECT_FALSE(p1.isDependent(0x108));
    const SitEntry *sit = t2.sitLookup(0x100);
    ASSERT_NE(sit, nullptr);
    EXPECT_FALSE(sit->ptrProducer);
}

/** Keep only the events whose type is in @p types, in order. */
std::vector<TraceEvent>
filterEvents(const std::vector<TraceEvent> &events,
             std::initializer_list<TraceEventType> types)
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &event : events) {
        for (const TraceEventType type : types) {
            if (event.type == type) {
                out.push_back(event);
                break;
            }
        }
    }
    return out;
}

TEST_F(P1Test, ResyncFsmEmitsExactTransitionSequence)
{
    TraceContext ctx;
    MemoryTraceSink sink;
    ctx.setSink(&sink);
    p1.setTraceContext(&ctx);

    const Addr pool = 0x30000000;
    const std::uint64_t nodes = 256;
    for (std::uint64_t i = 0; i < nodes; ++i)
        image.write64(pool + i * 128, pool + ((i + 1) % nodes) * 128);

    Addr current = pool;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t next = image.read64(current);
        feed(makeLoad(0x300, current, next, 10, 10));
        current = next;
    }
    ASSERT_TRUE(p1.isChainConfirmed(0x300));

    // The traversal leaves the list: once timeoutIters consecutive
    // demands miss the prediction ring the FSM must emit exactly one
    // resync (32 junk feeds give T2 time to write the stream off so
    // P1 sees every one).
    for (unsigned i = 0; i < 32; ++i) {
        const Addr junk = 0x70000000 + (i * 977 % 1024) * 4096;
        feed(makeLoad(0x300, junk, 0, 10, 10));
    }
    ASSERT_FALSE(p1.isChainConfirmed(0x300));

    // Exact chain-FSM transition sequence: one confirmation, then one
    // timeout resync — no spurious re-confirmations or double resets.
    const auto fsm = filterEvents(
        sink.events, {TraceEventType::kP1ChainStart,
                      TraceEventType::kP1ChainResync});
    ASSERT_EQ(fsm.size(), 2u);
    EXPECT_EQ(fsm[0].type, TraceEventType::kP1ChainStart);
    EXPECT_EQ(fsm[0].aux, 0x300u);
    EXPECT_EQ(fsm[1].type, TraceEventType::kP1ChainResync);
    EXPECT_EQ(fsm[1].aux, 0x300u);
    EXPECT_EQ(fsm[1].arg, 0u) << "arg 0 = chain resync";
    EXPECT_GE(fsm[1].cycle, fsm[0].cycle);

    // Every link the FSM chased belongs to this chain, and chasing
    // stops at the resync: in emission order no advance may follow
    // it (a late fill on the reset entry must be ignored).
    const auto advances =
        filterEvents(sink.events, {TraceEventType::kP1ChainAdvance});
    ASSERT_FALSE(advances.empty());
    for (const TraceEvent &event : advances)
        EXPECT_EQ(event.aux, 0x300u);
    EXPECT_EQ(sink.events.back().type, TraceEventType::kP1ChainResync);
}

TEST_F(P1Test, DependentTimeoutEmitsConfirmThenResync)
{
    TraceContext ctx;
    MemoryTraceSink sink;
    ctx.setSink(&sink);
    p1.setTraceContext(&ctx);

    const Addr array_base = 0x10000000;
    for (std::uint64_t i = 0; i < 8192; ++i)
        image.write64(array_base + i * 8,
                      0x40000000 + ((i * 31) % 4096) * 256);

    for (std::uint64_t i = 0; i < 60; ++i)
        pointerArrayIteration(i, array_base, 24);
    ASSERT_TRUE(p1.isDependent(0x108));

    for (std::uint64_t i = 60; i < 100; ++i) {
        const Addr slot = array_base + i * 8;
        const std::uint64_t object = image.read64(slot);
        feed(makeLoad(0x100, slot, object, 10, 1));
        feed(makeAlu(0x104, 11, 10));
        feed(makeLoad(0x108, 0x60000000 + i * 8192, 0, 12, 11));
        feed(makeBranch(0x110, 0x100, true));
    }
    ASSERT_FALSE(p1.isDependent(0x108));

    // Exact producer/dependent lifecycle: one scout confirmation
    // (aux = producer mPC, addr = dependent mPC), then one dependent
    // timeout resync distinguished from chain resyncs by arg = 1.
    const auto fsm = filterEvents(
        sink.events, {TraceEventType::kP1ProducerConfirm,
                      TraceEventType::kP1ChainResync});
    ASSERT_EQ(fsm.size(), 2u);
    EXPECT_EQ(fsm[0].type, TraceEventType::kP1ProducerConfirm);
    EXPECT_EQ(fsm[0].aux, 0x100u);
    EXPECT_EQ(fsm[0].addr, 0x108u);
    EXPECT_EQ(fsm[1].type, TraceEventType::kP1ChainResync);
    EXPECT_EQ(fsm[1].aux, 0x108u);
    EXPECT_EQ(fsm[1].arg, 1u) << "arg 1 = dependent timeout";
}

TEST_F(P1Test, StridedPointerPathRunsAtDoubledDistance)
{
    // Trace the memory system: P1's dependent prefetches appear as
    // pf_issued events with comp = 2, and their target objects tell
    // us how far ahead of the demand stream the path runs.
    TraceContext ctx;
    MemoryTraceSink sink;
    ctx.setSink(&sink);
    mem.setTraceContext(&ctx);

    const Addr array_base = 0x10000000;
    const Addr heap = 0x40000000;
    const std::int64_t field_offset = 24;
    for (std::uint64_t i = 0; i < 8192; ++i)
        image.write64(array_base + i * 8,
                      heap + ((i * 7919) % 4096) * 256);

    for (std::uint64_t i = 0; i < 60; ++i)
        pointerArrayIteration(i, array_base, field_offset);
    ASSERT_TRUE(p1.isDependent(0x108));
    const unsigned dist_before = t2.distance();
    ASSERT_GT(dist_before, 1u);

    sink.events.clear();
    const std::uint64_t last = 80;
    for (std::uint64_t i = 60; i < last; ++i)
        pointerArrayIteration(i, array_base, field_offset);
    // The distance ramp may drift during the window; bound against
    // the smaller endpoint.
    const unsigned dist = std::min(dist_before, t2.distance());

    // Map each P1-issued line back to the array slot whose object it
    // covers (objects are 256 B apart, so lines identify slots).
    std::uint64_t max_slot = 0;
    unsigned p1_issues = 0;
    for (const TraceEvent &event : sink.events) {
        if (event.type != TraceEventType::kPrefetchIssued ||
            event.comp != 2) {
            continue;
        }
        ++p1_issues;
        bool found = false;
        for (std::uint64_t slot = 0; slot < 8192 && !found; ++slot) {
            const Addr object = image.read64(array_base + slot * 8);
            if (lineAddr(object + field_offset) == event.addr) {
                max_slot = std::max(max_slot, slot);
                found = true;
            }
        }
        EXPECT_TRUE(found)
            << "P1 issued a non-dependent line 0x" << std::hex
            << event.addr;
    }
    ASSERT_GT(p1_issues, 0u);

    // The frontier must run beyond the single prefetch distance —
    // that is the whole point of doubling for producers — but never
    // past 2x (plus the two-per-execution catch-up allowance).
    EXPECT_GT(max_slot, last - 1 + dist);
    EXPECT_LE(max_slot, last - 1 + 2 * t2.params().maxDistance + 2);
}

TEST_F(P1Test, StorageBudgetNearTableII)
{
    // Table II: P1 = 1.07 KB = 8766 bits.
    const double bits = static_cast<double>(p1.storageBits());
    EXPECT_GT(bits, 0.5 * 1.07 * 8 * 1024);
    EXPECT_LT(bits, 1.5 * 1.07 * 8 * 1024);
}

} // namespace
} // namespace dol
