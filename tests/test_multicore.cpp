/**
 * @file
 * Contention-subsystem battery: fairness-metric edge cases, mix
 * determinism, arbitration-policy structural properties (demand-first
 * never queues a demand behind a prefetch), MSHR pressure
 * monotonicity, per-core DRAM attribution, and the headline
 * starvation result — per-core round-robin arbitration reduces the
 * pointer-chase core's slowdown relative to FIFO when it co-runs
 * with an aggressive streamer.
 */

#include <numeric>

#include <gtest/gtest.h>

#include "check/multicore_check.hpp"
#include "sim/contention.hpp"
#include "sim/multicore.hpp"
#include "trace/counters.hpp"
#include "workloads/contention.hpp"

namespace dol
{
namespace
{

SimConfig
testConfig(std::uint64_t max_instrs)
{
    SimConfig config;
    config.maxInstrs = max_instrs;
    config.mem.dram.rngSeed = 12345;
    return config;
}

ContentionOutcome
runMix(const std::string &mix, std::uint64_t max_instrs,
       ArbitrationPolicy arbitration)
{
    SimConfig config = testConfig(max_instrs);
    config.mem.dram.arbitration = arbitration;
    return runContentionScenario(config, findContentionMix(mix));
}

// ---------------------------------------------------------------
// MulticoreResult::weightedSpeedup degenerate-input sentinel
// ---------------------------------------------------------------

TEST(WeightedSpeedup, EmptyInputsReturnZeroSentinel)
{
    MulticoreResult mix;
    MulticoreResult baseline;
    // No comparable core: 0.0, never a fake parity of 1.0.
    EXPECT_EQ(mix.weightedSpeedup(baseline), 0.0);
}

TEST(WeightedSpeedup, AllZeroBaselineReturnsZeroSentinel)
{
    MulticoreResult mix;
    mix.ipc = {1.0, 2.0};
    MulticoreResult baseline;
    baseline.ipc = {0.0, 0.0};
    EXPECT_EQ(mix.weightedSpeedup(baseline), 0.0);
}

TEST(WeightedSpeedup, LengthMismatchUsesCommonPrefix)
{
    MulticoreResult mix;
    mix.ipc = {1.0, 3.0, 9.0};
    MulticoreResult baseline;
    baseline.ipc = {2.0}; // only core 0 comparable
    EXPECT_DOUBLE_EQ(mix.weightedSpeedup(baseline), 0.5);

    MulticoreResult empty_baseline;
    EXPECT_EQ(mix.weightedSpeedup(empty_baseline), 0.0);
}

TEST(WeightedSpeedup, SkipsZeroBaselineCores)
{
    MulticoreResult mix;
    mix.ipc = {1.0, 5.0};
    MulticoreResult baseline;
    baseline.ipc = {2.0, 0.0}; // core 1 has no baseline signal
    EXPECT_DOUBLE_EQ(mix.weightedSpeedup(baseline), 0.5);
}

// ---------------------------------------------------------------
// computeFairness boundary cases
// ---------------------------------------------------------------

TEST(Fairness, EmptyInputsYieldZeroAggregates)
{
    const FairnessMetrics m = computeFairness({}, {});
    EXPECT_TRUE(m.slowdown.empty());
    EXPECT_EQ(m.weightedSpeedup, 0.0);
    EXPECT_EQ(m.harmonicSpeedup, 0.0);
    EXPECT_EQ(m.unfairness, 0.0);
}

TEST(Fairness, ZeroIpcCoresAreExcluded)
{
    const FairnessMetrics m =
        computeFairness({2.0, 0.0, 1.0}, {1.0, 1.0, 0.0});
    ASSERT_EQ(m.slowdown.size(), 3u);
    EXPECT_DOUBLE_EQ(m.slowdown[0], 2.0);
    EXPECT_EQ(m.slowdown[1], 0.0); // zero solo: not comparable
    EXPECT_EQ(m.slowdown[2], 0.0); // zero mix: not comparable
    // Aggregates only over core 0.
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 0.5);
    EXPECT_DOUBLE_EQ(m.harmonicSpeedup, 0.5);
    EXPECT_DOUBLE_EQ(m.unfairness, 1.0);
}

TEST(Fairness, EqualSlowdownsArePerfectlyFair)
{
    // Both cores slowed 2x: unfairness is exactly 1.0.
    const FairnessMetrics m = computeFairness({2.0, 4.0}, {1.0, 2.0});
    EXPECT_DOUBLE_EQ(m.unfairness, 1.0);
    EXPECT_DOUBLE_EQ(m.weightedSpeedup, 0.5);
    EXPECT_DOUBLE_EQ(m.harmonicSpeedup, 0.5);
}

TEST(Fairness, UnevenSlowdownsRaiseUnfairness)
{
    // Core 0 slowed 4x, core 1 untouched: unfairness = 4.
    const FairnessMetrics m = computeFairness({4.0, 1.0}, {1.0, 1.0});
    ASSERT_EQ(m.slowdown.size(), 2u);
    EXPECT_DOUBLE_EQ(m.slowdown[0], 4.0);
    EXPECT_DOUBLE_EQ(m.slowdown[1], 1.0);
    EXPECT_DOUBLE_EQ(m.unfairness, 4.0);
    // Harmonic speedup = 2 / (4 + 1).
    EXPECT_DOUBLE_EQ(m.harmonicSpeedup, 0.4);
}

TEST(Fairness, LengthMismatchUsesLongerVectorForSlowdownSize)
{
    const FairnessMetrics m = computeFairness({2.0}, {1.0, 3.0});
    ASSERT_EQ(m.slowdown.size(), 2u);
    EXPECT_DOUBLE_EQ(m.slowdown[0], 2.0);
    EXPECT_EQ(m.slowdown[1], 0.0);
}

// ---------------------------------------------------------------
// Mix determinism: identical double runs, byte-identical counters
// ---------------------------------------------------------------

TEST(MulticoreDeterminism, HeterogeneousMixCountersAreByteIdentical)
{
    const ContentionMix &mix = findContentionMix("hetero_quad");
    const SimConfig config = testConfig(8000);

    std::string first;
    for (int round = 0; round < 2; ++round) {
        MulticoreSimulator sim(config, mix.cores);
        sim.run();
        CounterRegistry registry;
        sim.exportCounters(registry);
        const std::string text = registry.toText();
        EXPECT_FALSE(text.empty());
        if (round == 0)
            first = text;
        else
            EXPECT_EQ(text, first);
    }
}

TEST(MulticoreDeterminism, FuzzPrefixIsClean)
{
    // A short prefix of the multicore differential campaign must be
    // failure-free (the nightly workflow runs the full campaign).
    check::MulticoreCampaignOptions options;
    options.cases = 6;
    options.seed = 1;
    const check::MulticoreCampaignReport report =
        check::runMulticoreCampaign(options);
    EXPECT_TRUE(report.ok()) << report.summaryText();
}

// ---------------------------------------------------------------
// Arbitration structural properties
// ---------------------------------------------------------------

TEST(Arbitration, DemandFirstNeverDelaysDemandBehindPrefetch)
{
    const ContentionOutcome outcome = runMix(
        "stream_starves_pchase", 20000,
        ArbitrationPolicy::kDemandFirst);
    // Legacy path: zero modelled arbitration delay, so a demand can
    // never be charged a wait behind a queued prefetch.
    EXPECT_EQ(outcome.result.arbDelayCycles, 0u);
    EXPECT_EQ(outcome.result.demandsDelayedByPrefetch, 0u);
}

TEST(Arbitration, FifoChargesDelayAndDelaysDemandsBehindPrefetches)
{
    const ContentionOutcome outcome = runMix(
        "stream_starves_pchase", 20000, ArbitrationPolicy::kFifo);
    EXPECT_GT(outcome.result.arbDelayCycles, 0u);
    EXPECT_GT(outcome.result.demandsDelayedByPrefetch, 0u);
}

TEST(Arbitration, RoundRobinChargesNoMoreDelayThanFifo)
{
    // Per request RR waits behind at most (own + 1) entries of any
    // other core, a subset of the FIFO backlog, so the aggregate
    // modelled delay can only shrink.
    const ContentionOutcome fifo = runMix(
        "stream_starves_pchase", 20000, ArbitrationPolicy::kFifo);
    const ContentionOutcome rr = runMix(
        "stream_starves_pchase", 20000,
        ArbitrationPolicy::kCoreRoundRobin);
    EXPECT_LE(rr.result.arbDelayCycles, fifo.result.arbDelayCycles);
}

// ---------------------------------------------------------------
// Headline starvation scenario: RR protects the pointer chaser
// ---------------------------------------------------------------

TEST(Starvation, RoundRobinReducesPointerChaseSlowdownVsFifo)
{
    const std::uint64_t instrs = 60000;
    const ContentionOutcome fifo = runMix(
        "stream_starves_pchase", instrs, ArbitrationPolicy::kFifo);
    const ContentionOutcome rr = runMix(
        "stream_starves_pchase", instrs,
        ArbitrationPolicy::kCoreRoundRobin);

    ASSERT_EQ(fifo.fairness.slowdown.size(), 2u);
    ASSERT_EQ(rr.fairness.slowdown.size(), 2u);

    const double fifo_pchase = fifo.fairness.slowdown[1];
    const double rr_pchase = rr.fairness.slowdown[1];
    RecordProperty("fifo_pchase_slowdown", std::to_string(fifo_pchase));
    RecordProperty("rr_pchase_slowdown", std::to_string(rr_pchase));

    // Both policies must actually slow the pointer chaser down
    // relative to its solo run, otherwise the scenario is vacuous.
    EXPECT_GT(fifo_pchase, 1.0);
    EXPECT_GT(rr_pchase, 1.0);

    // The headline effect: round-robin lets the quiet pointer-chase
    // core slot in after one round of the streamer's backlog, so its
    // slowdown drops relative to strict FIFO ordering.
    EXPECT_LT(rr_pchase, fifo_pchase)
        << "fifo=" << fifo_pchase << " rr=" << rr_pchase;
}

// ---------------------------------------------------------------
// MSHR pressure monotonicity
// ---------------------------------------------------------------

TEST(MshrPressure, TighterSharedL3MshrsNeverReduceStalls)
{
    const ContentionMix &mix = findContentionMix("temporal_quad");

    auto stalls_with = [&mix](unsigned mshrs) {
        SimConfig config = testConfig(8000);
        config.mem.l3.mshrs = mshrs;
        MulticoreSimulator sim(config, mix.cores);
        const MulticoreResult result = sim.run();
        return std::accumulate(result.coreL3MshrStalls.begin(),
                               result.coreL3MshrStalls.end(),
                               std::uint64_t{0});
    };

    const std::uint64_t tight = stalls_with(2);
    const std::uint64_t generous = stalls_with(32);
    EXPECT_GE(tight, generous);
    EXPECT_GT(tight, 0u) << "4-way temporal mix with 2 shared-L3 "
                            "MSHRs never filled the MSHR file";
}

// ---------------------------------------------------------------
// Bandwidth window
// ---------------------------------------------------------------

TEST(BandwidthWindow, CapDefersRequestsAndUncappedDoesNot)
{
    const ContentionMix &mix = findContentionMix("stream_starves_pchase");

    SimConfig uncapped = testConfig(12000);
    MulticoreSimulator free_sim(uncapped, mix.cores);
    const MulticoreResult free_result = free_sim.run();
    EXPECT_EQ(free_result.windowDeferrals, 0u);

    SimConfig capped = testConfig(12000);
    capped.mem.dram.linesPerWindow = 8;
    capped.mem.dram.windowCycles = 3000;
    MulticoreSimulator capped_sim(capped, mix.cores);
    const MulticoreResult capped_result = capped_sim.run();
    EXPECT_GT(capped_result.windowDeferrals, 0u);
}

// ---------------------------------------------------------------
// Per-core shared-resource attribution
// ---------------------------------------------------------------

TEST(Attribution, PerCoreDramLinesSumToSharedTotal)
{
    const ContentionMix &mix = findContentionMix("hetero_quad");
    MulticoreSimulator sim(testConfig(8000), mix.cores);
    const MulticoreResult result = sim.run();

    ASSERT_EQ(result.coreDramLines.size(), mix.cores.size());
    const std::uint64_t attributed =
        std::accumulate(result.coreDramLines.begin(),
                        result.coreDramLines.end(), std::uint64_t{0});
    EXPECT_EQ(attributed, result.dramLines);
    for (std::size_t i = 0; i < result.coreDramLines.size(); ++i) {
        EXPECT_LE(result.corePrefetchLines[i], result.coreDramLines[i])
            << "core " << i;
    }
}

TEST(Attribution, SharedL3TracksInsertionsAndCrossCoreEvictions)
{
    const ContentionMix &mix = findContentionMix("temporal_quad");
    SimConfig config = testConfig(12000);
    // Shrink the shared L3 so four cores actually fight over
    // capacity within the test budget.
    config.mem.l3.sizeBytes = 256 * 1024;
    MulticoreSimulator sim(config, mix.cores);
    const MulticoreResult result = sim.run();

    const std::uint64_t insertions = std::accumulate(
        result.coreL3Insertions.begin(), result.coreL3Insertions.end(),
        std::uint64_t{0});
    EXPECT_GT(insertions, 0u);
    // Four cores hammering one shared L3 must evict each other at
    // least once; a zero here means ownership tracking is broken.
    const std::uint64_t cross = std::accumulate(
        result.coreL3EvictionsOfOthers.begin(),
        result.coreL3EvictionsOfOthers.end(), std::uint64_t{0});
    EXPECT_GT(cross, 0u);
    EXPECT_LE(cross, insertions);
}

// ---------------------------------------------------------------
// Scenario counter export
// ---------------------------------------------------------------

TEST(ContentionScenario, ExportsPerCoreFairnessAndDramScopes)
{
    const ContentionOutcome outcome = runMix(
        "stream_starves_pchase", 12000, ArbitrationPolicy::kFifo);
    const std::string text = outcome.counters.toText();
    for (const char *needle :
         {"core0.ipc_milli", "core0.solo_ipc_milli",
          "core0.slowdown_milli", "core1.dram_lines",
          "core1.l3_insertions", "core1.l3_mshr_stalls",
          "fairness.weighted_speedup_milli",
          "fairness.harmonic_speedup_milli",
          "fairness.unfairness_milli", "dram.lines",
          "dram.arb_delay_cycles"}) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing counter " << needle;
    }
}

} // namespace
} // namespace dol
