/**
 * @file
 * Unit tests for the metrics layer: the scope definition (weighted
 * FP coverage, paper section III), effective-accuracy credit
 * bookkeeping, and the offline LHF/MHF/HHF stratifier.
 */

#include <gtest/gtest.h>

#include "metrics/accounting.hpp"
#include "metrics/stratify.hpp"

namespace dol
{
namespace
{

TEST(Accounting, ScopeIsWeightedFootprintCoverage)
{
    PrefetchAccounting acct;
    // Footprint: line A missed 3 times, line B once.
    acct.shadowMiss(kL1, 0x1000, 1);
    acct.shadowMiss(kL1, 0x1000, 1);
    acct.shadowMiss(kL1, 0x1000, 1);
    acct.shadowMiss(kL1, 0x2000, 1);
    // The prefetcher attempted only A.
    acct.prefetchIssued(1, 0x1000, kL1, 0);

    EXPECT_NEAR(acct.scope(), 0.75, 1e-9);
    EXPECT_NEAR(acct.scopeOf(1), 0.75, 1e-9);
    EXPECT_NEAR(acct.scopeOf(2), 0.0, 1e-9);
    EXPECT_EQ(acct.footprintLines(), 2u);
    EXPECT_EQ(acct.footprintWeight(), 4u);
}

TEST(Accounting, L2ShadowMissesDoNotEnterL1Footprint)
{
    PrefetchAccounting acct;
    acct.shadowMiss(kL2, 0x1000, 1);
    acct.shadowMiss(kL3, 0x2000, 1);
    EXPECT_EQ(acct.footprintLines(), 0u);
}

TEST(Accounting, CategoryCountersUseStratifier)
{
    OfflineStratifier strat;
    // Strided PC: addresses 0x100000 + i*64 -> LHF lines.
    for (int i = 0; i < 20; ++i)
        strat.observe(0x10, 0x100000 + i * 64);
    // Dense region at 0x200000 via a wandering PC -> MHF.
    for (unsigned i = 0; i < 10; ++i)
        strat.observe(0x20, 0x200000 + ((i * 5) % 16) * 64);

    PrefetchAccounting acct;
    acct.setStratifier(&strat);

    acct.prefetchIssued(1, 0x100000 + 5 * 64, kL1, 0); // LHF
    acct.prefetchIssued(1, 0x200000 + 2 * 64, kL1, 0); // MHF
    acct.prefetchIssued(1, 0x900000, kL1, 0);          // HHF

    EXPECT_EQ(acct.category(Fruit::kLHF).issued, 1u);
    EXPECT_EQ(acct.category(Fruit::kMHF).issued, 1u);
    EXPECT_EQ(acct.category(Fruit::kHHF).issued, 1u);

    // A use credits the category the prefetch was charged to.
    acct.prefetchUsed(1, kL1, 0x100000 + 5 * 64);
    EXPECT_EQ(acct.category(Fruit::kLHF).used, 1u);
    EXPECT_NEAR(acct.category(Fruit::kLHF).effectiveAccuracy(), 1.0,
                1e-9);
}

TEST(Accounting, EffectiveAccuracyGoesNegativeWithPollution)
{
    PrefetchAccounting acct;
    acct.prefetchIssued(1, 0x1000, kL1, 0);
    std::vector<ComponentId> comps{1};
    acct.inducedMiss(kL1, 0x1000, comps);
    acct.inducedMiss(kL1, 0x1000, comps);
    // 0 used - 2 induced over 1 issued: accuracy -2 (worse than
    // useless, as in the paper's HHF scatter).
    EXPECT_NEAR(acct.category(Fruit::kHHF).effectiveAccuracy(), -2.0,
                1e-9);
}

TEST(Accounting, ExcludeSetConfinesFocusCounters)
{
    auto exclude = std::make_shared<std::unordered_set<Addr>>();
    exclude->insert(0x1000);

    PrefetchAccounting acct;
    acct.setExcludeSet(exclude);

    acct.shadowMiss(kL1, 0x1000, 1); // covered by TPC: not in focus
    acct.shadowMiss(kL1, 0x2000, 1); // in focus
    acct.prefetchIssued(1, 0x1000, kL1, 0);
    acct.prefetchIssued(1, 0x2000, kL1, 0);
    acct.prefetchUsed(1, kL1, 0x2000);

    EXPECT_EQ(acct.focus().issued, 1u);
    EXPECT_EQ(acct.focus().used, 1u);
    EXPECT_NEAR(acct.focusScope(), 1.0, 1e-9);
}

TEST(Accounting, PfpHandoffFeedsNextExperiment)
{
    PrefetchAccounting acct;
    acct.prefetchIssued(1, 0x1000, kL1, 0);
    acct.prefetchIssued(2, 0x2000, kL2, 0);
    auto pfp = acct.takePfp();
    ASSERT_NE(pfp, nullptr);
    EXPECT_TRUE(pfp->contains(0x1000));
    EXPECT_TRUE(pfp->contains(0x2000));
    EXPECT_EQ(pfp->size(), 2u);
}

TEST(Stratifier, ClassifiesThreeCategories)
{
    OfflineStratifier strat;
    // LHF: steady stride.
    for (int i = 0; i < 30; ++i)
        strat.observe(0x10, 0x500000 + i * 64);
    // MHF: dense region, no stride.
    const unsigned scramble[] = {0, 5, 2, 11, 7, 14, 3, 9};
    for (unsigned off : scramble)
        strat.observe(0x20, 0x600000 + off * 64);
    // Sparse region: only 2 lines.
    strat.observe(0x30, 0x700000);
    strat.observe(0x30, 0x700000 + 64);

    EXPECT_EQ(strat.classify(0x500000 + 10 * 64), Fruit::kLHF);
    EXPECT_EQ(strat.classify(0x600000 + 5 * 64), Fruit::kMHF);
    EXPECT_EQ(strat.classify(0x700000), Fruit::kHHF);
    EXPECT_EQ(strat.classify(0x900000), Fruit::kHHF);
    EXPECT_GT(strat.lhfLineCount(), 20u);
}

TEST(Stratifier, StridedLinesBeatDensity)
{
    OfflineStratifier strat;
    // A strided PC sweeping a dense region: LHF wins.
    for (int i = 0; i < 16; ++i)
        strat.observe(0x10, 0x800000 + i * 64);
    EXPECT_EQ(strat.classify(0x800000 + 8 * 64), Fruit::kLHF);
}

TEST(Stratifier, ForwardContinuationIsPreMarked)
{
    OfflineStratifier strat;
    for (int i = 0; i < 10; ++i)
        strat.observe(0x10, 0xa00000 + i * 64);
    // One line beyond the observed stream still classifies LHF, so
    // ahead-of-stream prefetches are labelled correctly.
    EXPECT_EQ(strat.classify(0xa00000 + 10 * 64), Fruit::kLHF);
}

TEST(Stratifier, FruitNames)
{
    EXPECT_STREQ(fruitName(Fruit::kLHF), "LHF");
    EXPECT_STREQ(fruitName(Fruit::kMHF), "MHF");
    EXPECT_STREQ(fruitName(Fruit::kHHF), "HHF");
}

} // namespace
} // namespace dol
