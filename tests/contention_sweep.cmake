# Contention sweep smoke, run as a ctest via `cmake -P`.
#
# Drives dolsim through the mix x arbitration grid — two named
# contention mixes crossed with all three shared-channel arbitration
# policies — and validates the emitted dol-sweep-v1 document: schema
# tag, full grid, fairness/attribution counters on every row, and the
# demand-first structural invariant (zero modelled arbitration
# delay). The same sweep is then re-run with --jobs 8 and the two
# results arrays must serialize identically: worker scheduling must
# never leak into mix results.
#
# Usage:
#   cmake -DDOLSIM=<path-to-dolsim> -DWORKDIR=<scratch-dir>
#         -P contention_sweep.cmake

foreach(required DOLSIM WORKDIR)
    if(NOT DEFINED ${required})
        message(FATAL_ERROR "contention_sweep: -D${required}= not set")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

set(sweep_args
    --mix stream_starves_pchase,temporal_quad
    --arbitration demand-first,fifo,rr
    --instrs 8000
    --counters
    --quiet)

foreach(jobs 1 8)
    execute_process(
        COMMAND "${DOLSIM}" ${sweep_args} --jobs ${jobs}
                --json "${WORKDIR}/j${jobs}.json"
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "contention_sweep: dolsim --jobs ${jobs} failed (${rc})")
    endif()
    if(NOT EXISTS "${WORKDIR}/j${jobs}.json")
        message(FATAL_ERROR
                "contention_sweep: ${WORKDIR}/j${jobs}.json not written")
    endif()
endforeach()

file(READ "${WORKDIR}/j1.json" doc)
file(READ "${WORKDIR}/j8.json" doc8)

if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    string(JSON schema GET "${doc}" schema)
    if(NOT schema STREQUAL "dol-sweep-v1")
        message(FATAL_ERROR "contention_sweep: schema is '${schema}'")
    endif()

    string(JSON n_results LENGTH "${doc}" results)
    # 2 mixes x 3 arbitration policies.
    if(NOT n_results EQUAL 6)
        message(FATAL_ERROR
                "contention_sweep: expected 6 results, got ${n_results}")
    endif()

    set(fifo_delay_rows 0)
    math(EXPR last "${n_results} - 1")
    foreach(i RANGE ${last})
        string(JSON row GET "${doc}" results ${i})
        string(JSON workload GET "${row}" workload)
        if(NOT workload MATCHES "^mix:")
            message(FATAL_ERROR
                    "contention_sweep: row ${i} workload '${workload}' "
                    "lacks the mix: prefix")
        endif()
        foreach(metric speedup ipc baseline_ipc instructions)
            string(JSON value ERROR_VARIABLE err
                   GET "${row}" metrics ${metric})
            if(err)
                message(FATAL_ERROR
                        "contention_sweep: row ${i} lacks ${metric}")
            endif()
        endforeach()
        # Fairness and attribution counters must ride into the JSON.
        foreach(counter fairness.weighted_speedup_milli
                fairness.harmonic_speedup_milli
                fairness.unfairness_milli core0.slowdown_milli
                core0.dram_lines core0.l3_insertions dram.lines
                dram.arb_delay_cycles)
            string(JSON value ERROR_VARIABLE err
                   GET "${row}" counters "${counter}")
            if(err)
                message(FATAL_ERROR
                        "contention_sweep: row ${i} lacks counter "
                        "${counter}")
            endif()
        endforeach()
        string(JSON variant GET "${row}" variant)
        string(JSON arb_delay GET "${row}" counters
               dram.arb_delay_cycles)
        if(variant STREQUAL ":arb=demand-first")
            # Legacy path models no arbitration delay at all.
            if(NOT arb_delay EQUAL 0)
                message(FATAL_ERROR
                        "contention_sweep: demand-first row ${i} has "
                        "arb_delay_cycles ${arb_delay}")
            endif()
        elseif(variant STREQUAL ":arb=fifo" AND arb_delay GREATER 0)
            math(EXPR fifo_delay_rows "${fifo_delay_rows} + 1")
        endif()
    endforeach()
    if(fifo_delay_rows EQUAL 0)
        message(FATAL_ERROR
                "contention_sweep: no fifo row charged any "
                "arbitration delay — the policy is inert")
    endif()

    # Scheduling determinism: the results arrays (rows, metrics,
    # counters, seeds) must serialize identically at any job count.
    string(JSON results1 GET "${doc}" results)
    string(JSON results8 GET "${doc8}" results)
    if(NOT results1 STREQUAL results8)
        message(FATAL_ERROR
                "contention_sweep: results differ between --jobs 1 "
                "and --jobs 8")
    endif()
else()
    # Pre-3.19 fallback: substring checks only.
    foreach(needle "\"schema\": \"dol-sweep-v1\""
            "mix:stream_starves_pchase" "mix:temporal_quad"
            ":arb=demand-first" ":arb=fifo" ":arb=rr"
            "fairness.unfairness_milli" "core0.slowdown_milli")
        string(FIND "${doc}" "${needle}" pos)
        if(pos EQUAL -1)
            message(FATAL_ERROR
                    "contention_sweep: '${needle}' missing from JSON")
        endif()
    endforeach()
endif()

message(STATUS "contention_sweep: dol-sweep-v1 document valid "
               "(6 cells, fairness counters present, jobs-invariant)")
