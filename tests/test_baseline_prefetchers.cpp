/**
 * @file
 * Behavioural tests for the seven monolithic prefetchers of Table II,
 * plus a parameterized sweep asserting that each covers a canonical
 * unit-stride stream (every competent prefetcher's table stake).
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/registry.hpp"
#include "mem/memory_system.hpp"
#include "prefetch/ampm.hpp"
#include "prefetch/bop.hpp"
#include "prefetch/fdp.hpp"
#include "prefetch/isb.hpp"
#include "prefetch/markov.hpp"
#include "prefetch/sms.hpp"
#include "prefetch/spp.hpp"
#include "prefetch/vldp.hpp"

namespace dol
{
namespace
{

/** Drives a prefetcher with a synthetic L1 access stream. */
class Harness
{
  public:
    Harness() : emitter(mem) {}

    void
    attach(Prefetcher &prefetcher)
    {
        pf = &prefetcher;
        pf->setId(1);
    }

    void
    access(Pc pc, Addr addr)
    {
        now += 40;
        const auto res = mem.demandLoad(addr, pc, now);
        AccessInfo info;
        info.pc = pc;
        info.mPc = pc;
        info.addr = addr;
        info.isLoad = true;
        info.l1Hit = res.l1Hit;
        info.l1PrimaryMiss = res.l1PrimaryMiss;
        info.l1HitPrefetched = res.l1HitPrefetched;
        info.when = now;
        info.completion = res.completion;
        emitter.setContext(1, now);
        pf->train(info, emitter);
    }

    std::uint64_t issued() const { return mem.stats().comp[1].issued; }

    MemorySystem mem;
    PrefetchEmitter emitter;
    Prefetcher *pf = nullptr;
    Cycle now = 0;
};

class StreamCoverage : public ::testing::TestWithParam<const char *>
{
};

TEST_P(StreamCoverage, CoversUnitStrideStream)
{
    MemoryImage image;
    auto pf = makePrefetcher(GetParam(), &image);
    Harness harness;
    harness.attach(*pf);

    // A long unit-stride miss stream.
    for (int i = 0; i < 600; ++i)
        harness.access(0x100, 0x1000000 + i * 64);

    EXPECT_GT(harness.issued(), 50u) << GetParam();
    // A competent stream prefetcher covers lines before the demand
    // arrives: most stream accesses end as hits.
    const auto &l1 = harness.mem.stats().level[kL1];
    EXPECT_GE(l1.demandHits + l1.secondaryMisses, 290u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Monolithic, StreamCoverage,
                         ::testing::Values("GHB-PC/DC", "SPP", "VLDP",
                                           "BOP", "FDP", "AMPM",
                                           "NextLine", "StridePC"));

class RandomRestraint : public ::testing::TestWithParam<const char *>
{
};

TEST_P(RandomRestraint, StaysQuietOnPatternlessStream)
{
    MemoryImage image;
    std::unique_ptr<Prefetcher> pf;
    if (std::string(GetParam()) == "BOP") {
        // Short learning phases so BOP's first-phase default offset
        // shuts off within the test window.
        BopPrefetcher::Params params;
        params.roundMax = 10;
        pf = std::make_unique<BopPrefetcher>(params);
    } else {
        pf = makePrefetcher(GetParam(), &image);
    }
    Harness harness;
    harness.attach(*pf);

    Rng rng(17);
    for (int i = 0; i < 1500; ++i)
        harness.access(0x100, lineAddr(rng.below(1ull << 30)));

    // Patternless accesses must not trigger a prefetch flood: fewer
    // than one prefetch per two accesses.
    EXPECT_LT(harness.issued(), 750u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Monolithic, RandomRestraint,
                         ::testing::Values("GHB-PC/DC", "SPP", "VLDP",
                                           "BOP", "FDP", "SMS",
                                           "StridePC"));

TEST(Bop, LearnsTheDominantOffset)
{
    BopPrefetcher bop;
    Harness harness;
    harness.attach(bop);

    // Offset-3 stream (every access 3 lines apart).
    for (int i = 0; i < 4000; ++i)
        harness.access(0x100, 0x4000000 + i * 3 * 64);
    EXPECT_EQ(bop.currentOffset(), 3);
}

TEST(Sms, ReplaysRecordedFootprint)
{
    SmsPrefetcher sms;
    Harness harness;
    harness.attach(sms);

    // Train: the trigger PC touches lines {0, 3, 7, 9} of regions.
    // 2 KB regions = 32 lines.
    const unsigned offsets[] = {0, 3, 7, 9};
    for (int r = 0; r < 120; ++r) {
        const Addr base = 0x8000000 + r * 2048;
        for (unsigned off : offsets)
            harness.access(0x100, base + off * 64);
    }

    // A fresh region triggered by the same PC at the same offset
    // must prefetch the recorded pattern.
    const Addr fresh = 0x9000000;
    const auto before = harness.issued();
    harness.access(0x100, fresh + 0 * 64);
    EXPECT_GE(harness.issued(), before + 3);
    EXPECT_NE(harness.mem.cacheAt(kL1).find(fresh + 3 * 64), nullptr);
    EXPECT_NE(harness.mem.cacheAt(kL1).find(fresh + 7 * 64), nullptr);
    EXPECT_NE(harness.mem.cacheAt(kL1).find(fresh + 9 * 64), nullptr);
}

TEST(Ampm, MatchesBackwardStreams)
{
    AmpmPrefetcher ampm;
    Harness harness;
    harness.attach(ampm);

    for (int i = 0; i < 300; ++i)
        harness.access(0x100, 0xa000000 - i * 64);
    EXPECT_GT(harness.issued(), 30u);
    const auto &l1 = harness.mem.stats().level[kL1];
    EXPECT_GT(l1.demandHits + l1.secondaryMisses, 100u);
}

TEST(Vldp, OffsetTablePredictsFirstAccessOnNewPage)
{
    VldpPrefetcher vldp;
    Harness harness;
    harness.attach(vldp);

    // Train: on many pages, first touch at offset 2 then offset 6
    // (delta +4 lines).
    for (int p = 0; p < 60; ++p) {
        const Addr page = 0xb000000 + p * 4096;
        harness.access(0x100, page + 2 * 64);
        harness.access(0x100, page + 6 * 64);
        harness.access(0x100, page + 10 * 64);
    }
    // A brand-new page's first touch at offset 2 predicts offset 6.
    const Addr fresh = 0xc000000;
    harness.access(0x100, fresh + 2 * 64);
    EXPECT_NE(harness.mem.cacheAt(kL1).find(fresh + 6 * 64), nullptr);
}

TEST(Fdp, RaisesDegreeOnAccurateStream)
{
    FdpPrefetcher::Params params;
    params.sampleInterval = 256;
    FdpPrefetcher fdp(params);
    Harness harness;
    harness.attach(fdp);

    for (int i = 0; i < 4000; ++i)
        harness.access(0x100, 0x2000000 + i * 64);
    EXPECT_EQ(fdp.currentDegree(), params.maxDegree);
}

TEST(Fdp, ThrottlesDegreeOnPoorAccuracy)
{
    FdpPrefetcher::Params params;
    params.sampleInterval = 256;
    FdpPrefetcher fdp(params);
    Harness harness;
    harness.attach(fdp);

    // Short stream bursts that die before their prefetches are used:
    // FDP keeps issuing but nothing hits, so feedback throttles it.
    Rng rng(5);
    for (int burst = 0; burst < 600; ++burst) {
        const Addr base = lineAddr(rng.below(1ull << 30));
        for (int i = 0; i < 5; ++i)
            harness.access(0x100, base + i * 64);
    }
    EXPECT_EQ(fdp.currentDegree(), params.minDegree);
}

TEST(Spp, FollowsAlternatingDeltaPattern)
{
    SppPrefetcher spp;
    Harness harness;
    harness.attach(spp);

    // Pattern +1, +2, +1, +2 ... within pages.
    Addr addr = 0xd000000;
    bool one = true;
    for (int i = 0; i < 2000; ++i) {
        harness.access(0x100, addr);
        addr += (one ? 1 : 2) * 64;
        one = !one;
    }
    EXPECT_GT(harness.issued(), 200u);
    const auto &comp = harness.mem.stats().comp[1];
    EXPECT_GT(static_cast<double>(comp.used),
              0.6 * static_cast<double>(comp.issued));
}

TEST(Markov, ReplaysCorrelatedMissSequence)
{
    MarkovPrefetcher markov;
    Harness harness;
    harness.attach(markov);

    // A repeating irregular sequence of lines whose correlation-table
    // rows do not collide with the flush stream's rows.
    const Addr seq[] = {(1ull << 30) + 2000 * 64,
                        (2ull << 30) + 2001 * 64,
                        (3ull << 30) + 2002 * 64,
                        (4ull << 30) + 2003 * 64,
                        (5ull << 30) + 2004 * 64};
    for (int lap = 0; lap < 4; ++lap) {
        for (Addr addr : seq)
            harness.access(0x100, addr);
        // Flush the small L1 between laps so the sequence misses
        // again (Markov trains on the miss stream).
        for (int i = 0; i < 1200; ++i)
            harness.access(0x900, 0x40000000ull + i * 64);
    }
    // After training, the correlated successors ride ahead of the
    // demand stream: B is already somewhere in the hierarchy when A
    // is touched (Markov may even have covered A itself via the
    // flush-to-sequence edge).
    harness.access(0x100, seq[0]);
    const bool b_cached =
        harness.mem.cacheAt(kL1).find(seq[1]) != nullptr ||
        harness.mem.cacheAt(kL2).find(seq[1]) != nullptr;
    EXPECT_TRUE(b_cached);
    EXPECT_GT(harness.mem.stats().comp[1].used, 0u);
}

TEST(Isb, LinearizesIrregularStream)
{
    IsbPrefetcher isb;
    Harness harness;
    harness.attach(isb);

    const Addr seq[] = {0x1000000, 0x5432100, 0x2222200, 0x7fff100,
                        0x3030300, 0x0123400};
    for (int lap = 0; lap < 4; ++lap) {
        for (Addr addr : seq)
            harness.access(0x100, addr);
        for (int i = 0; i < 1200; ++i)
            harness.access(0x900, 0x40000000ull + i * 64);
    }
    // The sequence occupies consecutive structural addresses.
    const Addr s0 = isb.structuralOf(seq[0]);
    ASSERT_NE(s0, dol::kNoAddr);
    EXPECT_EQ(isb.structuralOf(seq[1]), s0 + 1);
    EXPECT_EQ(isb.structuralOf(seq[2]), s0 + 2);

    // Touching the head prefetches the structural successors.
    harness.access(0x100, seq[0]);
    EXPECT_NE(harness.mem.cacheAt(kL1).find(seq[1]), nullptr);
    EXPECT_NE(harness.mem.cacheAt(kL1).find(seq[2]), nullptr);
}

TEST(StorageBudgets, TrackTableII)
{
    MemoryImage image;
    const struct
    {
        const char *name;
        double kilobytes;
        double tolerance;
    } budgets[] = {
        {"GHB-PC/DC", 4.0, 0.8},  {"SPP", 5.0, 0.6},
        {"VLDP", 3.25, 0.6},      {"BOP", 4.0, 0.7},
        {"FDP", 2.5, 0.6},        {"SMS", 12.0, 0.8},
        {"AMPM", 4.0, 0.4},       {"TPC", 4.57, 0.5},
    };
    for (const auto &budget : budgets) {
        auto pf = makePrefetcher(budget.name, &image);
        const double kb =
            static_cast<double>(pf->storageBits()) / 8.0 / 1024.0;
        EXPECT_GT(kb, budget.kilobytes * (1.0 - budget.tolerance))
            << budget.name;
        EXPECT_LT(kb, budget.kilobytes * (1.0 + budget.tolerance))
            << budget.name;
    }
}

} // namespace
} // namespace dol
