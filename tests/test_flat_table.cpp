/**
 * @file
 * Unit and differential tests for the flat hot-path tables
 * (src/common/flat_table.hpp) and the ring buffer backing the fill
 * and instruction queues (src/common/ring_buffer.hpp).
 *
 * The FlatHashMap migration is only sound if its observable
 * find/insert/erase semantics match std::unordered_map exactly, so on
 * top of the targeted probes (collision chains crossing the
 * wrap-around point, backward-shift deletion, LRU eviction order) a
 * randomized differential test drives both containers with the same
 * SplitMix64-derived operation stream and compares after every step.
 */

#include <memory>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "check/fuzz_workload.hpp"
#include "common/flat_table.hpp"
#include "common/ring_buffer.hpp"

namespace
{

using namespace dol;

/** Keys whose probe sequence starts in the last @p window slots of a
 *  @p capacity-slot table, so linear probing must wrap to index 0. */
std::vector<std::uint64_t>
keysProbingNearEnd(std::size_t capacity, std::size_t window,
                   std::size_t count)
{
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 1; keys.size() < count; ++k) {
        const std::size_t home =
            static_cast<std::size_t>(flatHashMix(k) & (capacity - 1));
        if (home >= capacity - window)
            keys.push_back(k);
    }
    return keys;
}

TEST(FlatHashMap, InsertFindEraseBasics)
{
    FlatHashMap<std::uint64_t, int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);

    EXPECT_TRUE(map.insert(42, 7));
    EXPECT_FALSE(map.insert(42, 9)); // overwrite, not new
    ASSERT_NE(map.find(42), nullptr);
    EXPECT_EQ(*map.find(42), 9);
    EXPECT_EQ(map.size(), 1u);

    map[43] = 1;
    EXPECT_EQ(map.size(), 2u);
    EXPECT_TRUE(map.erase(42));
    EXPECT_FALSE(map.erase(42));
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap, TryEmplaceReportsInsertion)
{
    FlatHashMap<std::uint64_t, int> map;
    auto [first, inserted] = map.tryEmplace(5);
    EXPECT_TRUE(inserted);
    *first = 11;
    auto [again, reinserted] = map.tryEmplace(5);
    EXPECT_FALSE(reinserted);
    EXPECT_EQ(*again, 11);
}

/** A collision chain seeded in the last slots must wrap to the front
 *  of the array and stay findable — the classic open-addressing edge. */
TEST(FlatHashMap, CollisionChainAcrossWrapAround)
{
    FlatHashMap<std::uint64_t, std::uint64_t> map;
    map.reserve(8); // 16 slots after the 7/8 load rule
    const std::size_t cap = map.capacity();
    // 6 keys all homed in the last 2 slots: at least 4 must wrap.
    const auto keys = keysProbingNearEnd(cap, 2, 6);
    for (const auto k : keys)
        map.insert(k, k * 3);
    EXPECT_EQ(map.capacity(), cap) << "grew during the chain test";
    for (const auto k : keys) {
        ASSERT_NE(map.find(k), nullptr) << "lost key " << k;
        EXPECT_EQ(*map.find(k), k * 3);
    }
}

/** Erasing from the middle of a wrapped chain must backward-shift the
 *  tail so later keys stay reachable. */
TEST(FlatHashMap, EraseInsideWrappedChainKeepsTailFindable)
{
    FlatHashMap<std::uint64_t, std::uint64_t> map;
    map.reserve(8);
    const std::size_t cap = map.capacity();
    const auto keys = keysProbingNearEnd(cap, 2, 6);
    for (const auto k : keys)
        map.insert(k, k);
    // Erase each key in turn and verify every survivor after each.
    std::vector<std::uint64_t> alive(keys);
    while (!alive.empty()) {
        const std::uint64_t victim = alive[alive.size() / 2];
        EXPECT_TRUE(map.erase(victim));
        alive.erase(alive.begin() +
                    static_cast<std::ptrdiff_t>(alive.size() / 2));
        for (const auto k : alive)
            ASSERT_NE(map.find(k), nullptr)
                << "erase of " << victim << " lost " << k;
        EXPECT_EQ(map.size(), alive.size());
    }
}

TEST(FlatHashMap, GrowsPastLoadFactorAndKeepsAllEntries)
{
    FlatHashMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t k = 0; k < 10000; ++k)
        map.insert(k, k ^ 0xabcdu);
    EXPECT_EQ(map.size(), 10000u);
    for (std::uint64_t k = 0; k < 10000; ++k) {
        ASSERT_NE(map.find(k), nullptr);
        EXPECT_EQ(*map.find(k), k ^ 0xabcdu);
    }
    // Load factor invariant: size <= 7/8 capacity.
    EXPECT_LE(map.size() * 8, map.capacity() * 7);
}

TEST(FlatHashMap, ClearKeepsCapacity)
{
    FlatHashMap<std::uint64_t, int> map;
    for (std::uint64_t k = 0; k < 100; ++k)
        map.insert(k, 1);
    const std::size_t cap = map.capacity();
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.capacity(), cap);
    EXPECT_EQ(map.find(5), nullptr);
}

TEST(FlatHashMap, SupportsMoveOnlyValues)
{
    FlatHashMap<std::uint64_t, std::unique_ptr<int>> map;
    map.insert(1, std::make_unique<int>(41));
    auto [slot, inserted] = map.tryEmplace(2);
    EXPECT_TRUE(inserted);
    *slot = std::make_unique<int>(43);
    ASSERT_NE(map.find(1), nullptr);
    EXPECT_EQ(**map.find(1), 41);
    EXPECT_EQ(**map.find(2), 43);
    EXPECT_TRUE(map.erase(1));
    EXPECT_EQ(map.find(1), nullptr);
}

/** The migration contract: byte-for-byte behavioural equivalence with
 *  std::unordered_map over a random insert/erase/find/clear stream. */
TEST(FlatHashMap, DifferentialAgainstUnorderedMap)
{
    FlatHashMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    std::uint64_t rng = 0xD01Fu;
    const auto next = [&rng] { return rng = check::splitMix(rng); };

    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t op = next() % 100;
        // Small key space so erases hit and chains collide.
        const std::uint64_t key = next() % 257;
        if (op < 55) {
            const std::uint64_t value = next();
            const bool was_new = flat.insert(key, value);
            const bool ref_new = ref.insert_or_assign(key, value).second;
            ASSERT_EQ(was_new, ref_new) << "step " << step;
        } else if (op < 80) {
            ASSERT_EQ(flat.erase(key), ref.erase(key) > 0)
                << "step " << step;
        } else if (op < 99) {
            const auto it = ref.find(key);
            const std::uint64_t *found = flat.find(key);
            ASSERT_EQ(found != nullptr, it != ref.end())
                << "step " << step;
            if (found)
                ASSERT_EQ(*found, it->second) << "step " << step;
        } else {
            flat.clear();
            ref.clear();
        }
        ASSERT_EQ(flat.size(), ref.size()) << "step " << step;
    }

    // Full-content sweep at the end: every ref entry is in flat.
    std::size_t seen = 0;
    flat.forEach([&](std::uint64_t key, std::uint64_t value) {
        const auto it = ref.find(key);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(value, it->second);
        ++seen;
    });
    EXPECT_EQ(seen, ref.size());
}

TEST(FlatHashSet, InsertContainsErase)
{
    FlatHashSet<std::uint64_t> set;
    EXPECT_TRUE(set.insert(9));
    EXPECT_FALSE(set.insert(9));
    EXPECT_TRUE(set.contains(9));
    EXPECT_FALSE(set.contains(10));
    EXPECT_TRUE(set.erase(9));
    EXPECT_FALSE(set.erase(9));
    EXPECT_TRUE(set.empty());
}

TEST(BoundedLruTable, EvictsLeastRecentlyUsedInWindow)
{
    // Capacity 4 with a full-table probe window: a pure LRU CAM.
    BoundedLruTable<std::uint64_t, int, 4> table(4);
    table.insert(1) = 10;
    table.insert(2) = 20;
    table.insert(3) = 30;
    table.insert(4) = 40;

    // Touch 1 and 3 so 2 is now the LRU entry.
    EXPECT_NE(table.find(1), nullptr);
    EXPECT_NE(table.find(3), nullptr);

    bool evicted = false;
    std::uint64_t evicted_key = 0;
    table.insert(5, &evicted, &evicted_key) = 50;
    EXPECT_TRUE(evicted);
    EXPECT_EQ(evicted_key, 2u);
    EXPECT_EQ(table.find(2), nullptr);
    EXPECT_NE(table.find(1), nullptr);
    EXPECT_NE(table.find(3), nullptr);
    EXPECT_NE(table.find(4), nullptr);
    EXPECT_EQ(*table.find(5), 50);
}

TEST(BoundedLruTable, CapacityFullNeverGrows)
{
    BoundedLruTable<std::uint64_t, int, 8> table(8);
    const std::size_t cap = table.capacity();
    for (std::uint64_t k = 0; k < 100; ++k)
        table.insert(k) = static_cast<int>(k);
    EXPECT_EQ(table.capacity(), cap);
    EXPECT_LE(table.size(), cap);
    // The most recent insert is always resident.
    EXPECT_NE(table.find(99), nullptr);
}

TEST(BoundedLruTable, PrefersInvalidSlotOverEviction)
{
    BoundedLruTable<std::uint64_t, int, 4> table(4);
    table.insert(1) = 10;
    table.insert(2) = 20;
    table.insert(1, nullptr, nullptr); // re-touch, no eviction
    bool evicted = false;
    table.insert(3, &evicted) = 30;
    EXPECT_FALSE(evicted) << "evicted with free slots remaining";
    EXPECT_NE(table.find(1), nullptr);
    EXPECT_NE(table.find(2), nullptr);
}

TEST(DirectMapTable, OverwritesOnConflictOnly)
{
    DirectMapTable<std::uint64_t, int> table(16);
    const std::size_t cap = table.capacity();
    // Find two keys mapping to the same slot.
    std::uint64_t a = 1, b = 0;
    const auto slot_of = [cap](std::uint64_t k) {
        return flatHashMix(k) & (cap - 1);
    };
    for (std::uint64_t k = 2;; ++k) {
        if (slot_of(k) == slot_of(a)) {
            b = k;
            break;
        }
    }

    *table.insert(a).first = 100;
    EXPECT_EQ(*table.find(a), 100);
    auto [value, conflict] = table.insert(b);
    EXPECT_TRUE(conflict);
    *value = 200;
    EXPECT_EQ(table.find(a), nullptr) << "conflicting key survived";
    EXPECT_EQ(*table.find(b), 200);

    // Re-inserting the resident key is not a conflict and keeps data.
    auto [same, reconflict] = table.insert(b);
    EXPECT_FALSE(reconflict);
    EXPECT_EQ(*same, 200);
}

TEST(RingBuffer, FifoOrderAcrossGrowth)
{
    RingBuffer<int> ring(4);
    // Offset the head so growth has to unwrap a wrapped ring.
    for (int i = 0; i < 3; ++i) {
        ring.push_back(i);
        ring.pop_front();
    }
    for (int i = 0; i < 100; ++i)
        ring.push_back(i);
    EXPECT_EQ(ring.size(), 100u);
    EXPECT_EQ(ring.highWaterMark(), 100u);
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(ring.front(), i);
        ring.pop_front();
    }
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.highWaterMark(), 100u) << "HWM reset by draining";
}

} // namespace
