/**
 * @file
 * Tests for the synthetic workload generators: determinism under
 * reset (the stratifier contract), data-structure coherence, suite
 * composition, and mix construction.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "workloads/irregular_kernels.hpp"
#include "workloads/mixed_kernels.hpp"
#include "workloads/pointer_kernels.hpp"
#include "workloads/stream_kernels.hpp"
#include "workloads/suite.hpp"
#include "workloads/trace_file.hpp"

namespace dol
{
namespace
{

bool
sameInstr(const Instr &a, const Instr &b)
{
    return a.pc == b.pc && a.op == b.op && a.addr == b.addr &&
           a.value == b.value && a.dst == b.dst && a.src1 == b.src1 &&
           a.target == b.target && a.taken == b.taken;
}

/** Determinism is required by the offline stratifier. */
class SuiteDeterminism
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SuiteDeterminism, ResetReplaysIdenticalTrace)
{
    const WorkloadSpec &spec = findWorkload(GetParam());
    MemoryImage image;
    auto kernel = spec.factory(image);

    std::vector<Instr> first;
    Instr instr;
    for (int i = 0; i < 3000 && kernel->next(instr); ++i)
        first.push_back(instr);

    kernel->reset();
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_TRUE(kernel->next(instr)) << i;
        ASSERT_TRUE(sameInstr(first[i], instr))
            << GetParam() << " diverged at " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, SuiteDeterminism,
    ::testing::Values("libquantum.syn", "mcf.syn", "gcc.syn", "lbm.syn",
                      "omnetpp.syn", "soplex.syn", "bfs.syn", "is.syn",
                      "rotate.syn", "perlbench.syn"));

/** Every workload generates a sane instruction mix. */
class SuiteSanity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SuiteSanity, MixContainsMemoryAndControl)
{
    const WorkloadSpec &spec = findWorkload(GetParam());
    MemoryImage image;
    auto kernel = spec.factory(image);

    unsigned mem_ops = 0, branches = 0, total = 0;
    Instr instr;
    for (int i = 0; i < 5000 && kernel->next(instr); ++i) {
        ++total;
        mem_ops += instr.isMem();
        branches += instr.isControl();
        if (instr.isMem()) {
            ASSERT_NE(instr.addr, 0u);
            ASSERT_NE(instr.pc, 0u);
        }
    }
    EXPECT_EQ(total, 5000u);
    EXPECT_GT(mem_ops, 100u);
    EXPECT_GT(branches, 50u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, SuiteSanity,
    ::testing::Values("milc.syn", "xalancbmk.syn", "h264ref.syn",
                      "pagerank.syn", "kmeans.syn", "cg.syn", "ft.syn",
                      "bt.syn", "streamcluster.syn", "astar.syn"));

TEST(Suites, HaveTheExpectedShape)
{
    EXPECT_EQ(speclikeSuite().size(), 21u) << "Figure 8 has 21 apps";
    EXPECT_GE(cronoSuite().size(), 4u);
    EXPECT_GE(starbenchSuite().size(), 5u);
    EXPECT_GE(npbSuite().size(), 7u);
    EXPECT_GE(temporalSuite().size(), 4u);
    EXPECT_EQ(allWorkloads().size(),
              speclikeSuite().size() + cronoSuite().size() +
                  starbenchSuite().size() + npbSuite().size() +
                  temporalSuite().size());

    std::set<std::string> names;
    for (const auto &spec : allWorkloads()) {
        EXPECT_TRUE(names.insert(spec.name).second)
            << "duplicate workload " << spec.name;
        EXPECT_FALSE(spec.suite.empty());
    }
}

TEST(Suites, MixesAreSeededAndFourWide)
{
    const auto mixes_a = makeMixes(17, 99);
    const auto mixes_b = makeMixes(17, 99);
    ASSERT_EQ(mixes_a.size(), 17u);
    for (std::size_t m = 0; m < mixes_a.size(); ++m) {
        ASSERT_EQ(mixes_a[m].size(), 4u);
        for (int c = 0; c < 4; ++c)
            EXPECT_EQ(mixes_a[m][c].name, mixes_b[m][c].name);
    }
    // A different seed draws a different mix somewhere.
    const auto mixes_c = makeMixes(17, 100);
    bool any_diff = false;
    for (std::size_t m = 0; m < mixes_a.size(); ++m)
        for (int c = 0; c < 4; ++c)
            any_diff |= mixes_a[m][c].name != mixes_c[m][c].name;
    EXPECT_TRUE(any_diff);
}

TEST(ListChase, LinksAreCoherent)
{
    MemoryImage image;
    ListChaseKernel kernel(image, {.nodes = 1024, .nodeBytes = 128,
                                   .seed = 5});
    // Walk the list through the image: after `nodes` hops we are back
    // at the head (circular), and every hop lands on a node boundary.
    Addr current = kernel.headNode();
    std::set<Addr> visited;
    for (unsigned i = 0; i < 1024; ++i) {
        EXPECT_TRUE(visited.insert(current).second)
            << "premature cycle at hop " << i;
        current = image.read64(current);
        ASSERT_NE(current, 0u);
    }
    EXPECT_EQ(current, kernel.headNode());
}

TEST(ListChase, TraceMatchesImage)
{
    MemoryImage image;
    ListChaseKernel kernel(image, {.nodes = 256, .seed = 9});
    Instr instr;
    Addr expected = kernel.headNode();
    unsigned checked = 0;
    for (int i = 0; i < 3000 && kernel.next(instr); ++i) {
        if (instr.isLoad() && instr.src1 == 10 && instr.dst == 10) {
            ASSERT_EQ(instr.addr, expected);
            expected = instr.value;
            ++checked;
        }
    }
    EXPECT_GT(checked, 200u);
}

TEST(PointerArray, ObjectsMatchArraySlots)
{
    MemoryImage image;
    PointerArrayKernel kernel(image, {.entries = 512, .seed = 4});
    Instr instr;
    std::uint64_t producer_value = 0;
    unsigned checked = 0;
    for (int i = 0; i < 4000 && kernel.next(instr); ++i) {
        if (instr.isLoad() && instr.dst == 10) {
            producer_value = instr.value;
            ASSERT_EQ(image.read64(instr.addr), instr.value);
        } else if (instr.isLoad() && instr.dst == 12) {
            // The dependent's address is a fixed offset off the
            // producer's value.
            ASSERT_EQ(instr.addr - producer_value, 16u);
            ++checked;
        }
    }
    EXPECT_GT(checked, 100u);
}

TEST(PhasedKernel, RespectsPerPhaseLengths)
{
    MemoryImage image;
    auto phase_a = std::make_unique<AluKernel>(
        image, AluKernel::Params{.seed = 1});
    auto phase_b = std::make_unique<RandomKernel>(
        image, RandomKernel::Params{.seed = 2});
    PhasedKernel phased("test", image, 100);
    phased.addPhase(std::move(phase_a), 300);
    phased.addPhase(std::move(phase_b), 100);

    // Count phase-A (working-set loads near its arena) vs phase-B
    // instructions by PC base: A uses 0x490000.., B uses 0x460000..
    unsigned a_instrs = 0, b_instrs = 0;
    Instr instr;
    for (int i = 0; i < 4000; ++i) {
        ASSERT_TRUE(phased.next(instr));
        if ((instr.pc & 0xff0000) == 0x490000)
            ++a_instrs;
        else if ((instr.pc & 0xff0000) == 0x460000)
            ++b_instrs;
    }
    // 3:1 phase ratio.
    EXPECT_NEAR(static_cast<double>(a_instrs) / (b_instrs + 1), 3.0,
                0.5);
}

TEST(TraceFile, RecordAndReplayRoundTrips)
{
    const std::string path = "/tmp/dol_trace_test.bin";
    MemoryImage image;
    const WorkloadSpec &spec = findWorkload("mcf.syn");
    auto kernel = spec.factory(image);
    const std::uint64_t written = recordTrace(*kernel, path, 2000);
    EXPECT_EQ(written, 2000u);

    MemoryImage replay_image;
    TraceKernel replay(replay_image, path, /*loop=*/false);
    EXPECT_EQ(replay.traceLength(), 2000u);

    kernel->reset();
    Instr original, replayed;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(kernel->next(original));
        ASSERT_TRUE(replay.next(replayed));
        ASSERT_TRUE(sameInstr(original, replayed)) << "at " << i;
        ASSERT_EQ(original.mispredicted, replayed.mispredicted);
        ASSERT_EQ(original.latency, replayed.latency);
    }
    // Non-looping replay ends exactly at the recorded length.
    EXPECT_FALSE(replay.next(replayed));
    std::remove(path.c_str());
}

TEST(TraceFile, LoopingReplayWraps)
{
    const std::string path = "/tmp/dol_trace_loop.bin";
    MemoryImage image;
    AluKernel source(image, {.seed = 3});
    recordTrace(source, path, 100);

    MemoryImage replay_image;
    TraceKernel replay(replay_image, path, /*loop=*/true);
    Instr first, instr;
    ASSERT_TRUE(replay.next(first));
    for (int i = 1; i < 100; ++i)
        ASSERT_TRUE(replay.next(instr));
    // Wrapped: the 101st instruction is the first again.
    ASSERT_TRUE(replay.next(instr));
    EXPECT_TRUE(sameInstr(first, instr));
    std::remove(path.c_str());
}

TEST(MemoryImageTest, ReadbackAndDefaultZero)
{
    MemoryImage image;
    EXPECT_EQ(image.read64(0x123456), 0u);
    image.write64(0x123456, 0xdeadbeefcafef00dull);
    EXPECT_EQ(image.read64(0x123456), 0xdeadbeefcafef00dull);
    // Unaligned overlap reads compose bytes.
    EXPECT_EQ(image.read64(0x123457) & 0xff,
              (0xdeadbeefcafef00dull >> 8) & 0xff);
}

} // namespace
} // namespace dol
