/**
 * @file
 * Tier-1 unit tests for the differential checker (src/check/): the
 * naive reference cache against the production cache, the ddmin trace
 * shrinker, mutation plumbing, and a handful of full differential
 * cases — clean seeds pass, planted reference mutations are caught.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "check/differential.hpp"
#include "check/fuzz_workload.hpp"
#include "check/mutation.hpp"
#include "check/reference_cache.hpp"
#include "check/shrink.hpp"
#include "common/rng.hpp"
#include "mem/cache.hpp"

namespace dol::check
{
namespace
{

// --- seed derivation ---------------------------------------------

TEST(CaseSeed, DeterministicAndDispersed)
{
    EXPECT_EQ(caseSeed(1, 0), caseSeed(1, 0));
    EXPECT_EQ(caseSeed(42, 17), caseSeed(42, 17));

    // No collisions across a realistic campaign, and campaigns with
    // different seeds share no cases.
    std::set<std::uint64_t> seen;
    for (std::uint64_t campaign : {1ull, 2ull, 999ull}) {
        for (std::uint64_t i = 0; i < 1000; ++i)
            seen.insert(caseSeed(campaign, i));
    }
    EXPECT_EQ(seen.size(), 3000u);
}

TEST(CaseSeed, ParamsAndTraceAreSeedFunctions)
{
    const std::uint64_t seed = caseSeed(1, 3);
    const FuzzParams a = makeFuzzParams(seed);
    const FuzzParams b = makeFuzzParams(seed);
    EXPECT_EQ(a.t2.strideThreshold, b.t2.strideThreshold);
    EXPECT_EQ(a.t2.defaultDistance, b.t2.defaultDistance);
    EXPECT_EQ(a.enableP1, b.enableP1);
    EXPECT_EQ(a.opSeed, b.opSeed);

    const auto trace_a = makeFuzzTrace(seed, a);
    const auto trace_b = makeFuzzTrace(seed, b);
    ASSERT_EQ(trace_a.size(), trace_b.size());
    for (std::size_t i = 0; i < trace_a.size(); ++i) {
        EXPECT_EQ(trace_a[i].pc, trace_b[i].pc);
        EXPECT_EQ(trace_a[i].addr, trace_b[i].addr);
        EXPECT_EQ(trace_a[i].value, trace_b[i].value);
    }
}

// --- mutation plumbing -------------------------------------------

TEST(MutationNames, RoundTrip)
{
    for (Mutation m :
         {Mutation::kNone, Mutation::kLruVictimOffByOne,
          Mutation::kDropRebinding, Mutation::kT2ConfirmThreshold,
          Mutation::kRebindWrongExtra}) {
        const auto back = mutationFromName(mutationName(m));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, m);
    }
    EXPECT_FALSE(mutationFromName("bogus").has_value());
    ASSERT_TRUE(mutationFromName("").has_value());
    EXPECT_EQ(*mutationFromName(""), Mutation::kNone);
}

// --- reference cache ---------------------------------------------

TEST(ReferenceCacheTest, EvictsLeastRecentlyUsedOfTheSet)
{
    // 2 sets x 2 ways of 64 B lines; same-set lines differ by
    // 2 * kLineBytes.
    ReferenceCache cache(4 * kLineBytes, 2);
    ASSERT_EQ(cache.numSets(), 2u);

    const Addr a = 0x1000, b = a + 2 * kLineBytes,
               c = a + 4 * kLineBytes;
    EXPECT_EQ(cache.setOf(a), cache.setOf(b));
    EXPECT_EQ(cache.setOf(a), cache.setOf(c));

    EXPECT_FALSE(cache.insert(a, false, 1, false).has_value());
    EXPECT_FALSE(cache.insert(b, true, 2, true).has_value());
    cache.touch(a); // b becomes LRU

    const auto victim = cache.insert(c, false, 3, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->lineAddr, b);
    EXPECT_TRUE(victim->dirty);
    EXPECT_TRUE(victim->prefetched);
    EXPECT_EQ(victim->comp, 2);

    EXPECT_NE(cache.find(a), nullptr);
    EXPECT_EQ(cache.find(b), nullptr);
    EXPECT_NE(cache.find(c), nullptr);
}

TEST(ReferenceCacheTest, LruMutationPicksTheWrongVictim)
{
    ReferenceCache cache(4 * kLineBytes, 2,
                         Mutation::kLruVictimOffByOne);
    const Addr a = 0x1000, b = a + 2 * kLineBytes,
               c = a + 4 * kLineBytes;
    cache.insert(a, false, 1, false);
    cache.insert(b, false, 2, false);
    cache.touch(a); // correct LRU victim would be b

    const auto victim = cache.insert(c, false, 3, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->lineAddr, a)
        << "the off-by-one mutation must evict the second-oldest line";
}

/**
 * Drive the production Cache and the ReferenceCache with one random
 * find/touch/insert/invalidate stream and diff every observable.
 * This is the standalone half of the differential harness, asserted
 * directly so a cache regression fails here with a precise message
 * rather than only through the fuzz campaign.
 */
TEST(ReferenceCacheTest, AgreesWithProductionCacheOnRandomOps)
{
    Cache::Params params;
    params.sizeBytes = 2048;
    params.assoc = 4;
    params.mshrs = 0;
    Cache production(params);
    ReferenceCache reference(params.sizeBytes, params.assoc);

    Rng rng(1234);
    for (int i = 0; i < 20000; ++i) {
        // 256 distinct lines against 32 resident: constant evictions.
        const Addr line = 0x40000 + rng.below(256) * kLineBytes;
        if (rng.chance(0.05)) {
            EXPECT_EQ(production.invalidate(line),
                      reference.invalidate(line))
                << "op " << i;
            continue;
        }
        Cache::Line *prod_line = production.find(line);
        ReferenceCache::Line *ref_line = reference.find(line);
        ASSERT_EQ(prod_line != nullptr, ref_line != nullptr)
            << "hit/miss diverged at op " << i;
        if (prod_line) {
            EXPECT_EQ(prod_line->dirty, ref_line->dirty) << "op " << i;
            EXPECT_EQ(prod_line->prefetched, ref_line->prefetched);
            EXPECT_EQ(prod_line->comp, ref_line->comp);
            production.touch(*prod_line);
            reference.touch(line);
            if (rng.chance(0.2)) {
                prod_line->dirty = true;
                ref_line->dirty = true;
            }
            continue;
        }
        const bool prefetched = rng.chance(0.3);
        const auto comp = static_cast<ComponentId>(1 + rng.below(3));
        Cache::Line *filled = nullptr;
        const auto prod_victim = production.insert(line, &filled);
        filled->prefetched = prefetched;
        filled->comp = comp;
        const auto ref_victim =
            reference.insert(line, prefetched, comp, false);
        ASSERT_EQ(prod_victim.has_value(), ref_victim.has_value())
            << "victim presence diverged at op " << i;
        if (prod_victim) {
            EXPECT_EQ(prod_victim->lineAddr, ref_victim->lineAddr)
                << "victim identity diverged at op " << i;
            EXPECT_EQ(prod_victim->dirty, ref_victim->dirty);
            EXPECT_EQ(prod_victim->prefetched, ref_victim->prefetched);
            EXPECT_EQ(prod_victim->comp, ref_victim->comp);
        }
    }
}

// --- shrinker ----------------------------------------------------

std::vector<TraceRecord>
paddedTrace(std::size_t n)
{
    std::vector<TraceRecord> records(n);
    for (std::size_t i = 0; i < n; ++i) {
        records[i] = TraceRecord{};
        records[i].pc = 0x1000 + i * 4;
    }
    return records;
}

TEST(Shrinker, ReducesToMinimalFailingSubset)
{
    // Failure requires two specific records far apart in the trace.
    auto records = paddedTrace(300);
    records[17].pc = 0xdead;
    records[251].pc = 0xbeef;
    const auto still_fails =
        [](const std::vector<TraceRecord> &candidate) {
            bool a = false, b = false;
            for (const TraceRecord &record : candidate) {
                a = a || record.pc == 0xdead;
                b = b || record.pc == 0xbeef;
            }
            return a && b;
        };

    const ShrinkResult result = shrinkTrace(records, still_fails);
    EXPECT_TRUE(result.converged);
    ASSERT_EQ(result.records.size(), 2u);
    EXPECT_EQ(result.records[0].pc, 0xdead);
    EXPECT_EQ(result.records[1].pc, 0xbeef);
    EXPECT_TRUE(still_fails(result.records));
}

TEST(Shrinker, AlwaysFailingPredicateShrinksToOneRecord)
{
    // The shrinker never proposes an empty candidate — an empty
    // "reproducer" replays nothing — so the floor is one record.
    const auto result = shrinkTrace(
        paddedTrace(64),
        [](const std::vector<TraceRecord> &) { return true; });
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.records.size(), 1u);
}

TEST(Shrinker, BudgetExhaustionReturnsBestSoFar)
{
    auto records = paddedTrace(256);
    records[200].pc = 0xdead;
    const auto still_fails =
        [](const std::vector<TraceRecord> &candidate) {
            return std::any_of(candidate.begin(), candidate.end(),
                               [](const TraceRecord &record) {
                                   return record.pc == 0xdead;
                               });
        };

    const ShrinkResult tight = shrinkTrace(records, still_fails, 3);
    EXPECT_FALSE(tight.converged);
    EXPECT_LE(tight.evaluations, 3u);
    EXPECT_LE(tight.records.size(), records.size());
    EXPECT_TRUE(still_fails(tight.records)) << "must stay failing";

    const ShrinkResult full = shrinkTrace(records, still_fails);
    EXPECT_TRUE(full.converged);
    EXPECT_EQ(full.records.size(), 1u);
}

// --- full differential cases -------------------------------------

TEST(Differential, CleanSeedsPassEveryCheck)
{
    for (std::uint64_t index : {0ull, 1ull, 2ull}) {
        const DiffResult diff = checkCase(caseSeed(1, index));
        EXPECT_TRUE(diff.ok) << diff.summary();
    }
}

TEST(Differential, PlantedLruMutationIsCaughtByCacheCheck)
{
    const DiffResult diff =
        checkCase(caseSeed(7, 0), Mutation::kLruVictimOffByOne);
    ASSERT_FALSE(diff.ok);
    EXPECT_EQ(diff.check, "cache") << diff.summary();
}

TEST(Differential, PlantedCoordinatorAndT2MutationsAreCaught)
{
    const DiffResult rebind =
        checkCase(caseSeed(7, 0), Mutation::kDropRebinding);
    EXPECT_FALSE(rebind.ok);
    const DiffResult confirm =
        checkCase(caseSeed(7, 0), Mutation::kT2ConfirmThreshold);
    EXPECT_FALSE(confirm.ok);
}

TEST(Differential, ShrunkMutationReproducerStillFails)
{
    const std::uint64_t seed = caseSeed(7, 0);
    CheckConfig config;
    config.params = makeFuzzParams(seed);
    config.mutation = Mutation::kLruVictimOffByOne;
    const auto records = makeFuzzTrace(seed, config.params);
    ASSERT_FALSE(checkTrace(records, config).ok);

    const ShrinkResult shrunk = shrinkTrace(
        records,
        [&](const std::vector<TraceRecord> &candidate) {
            return !checkTrace(candidate, config).ok;
        });
    EXPECT_TRUE(shrunk.converged);
    EXPECT_LT(shrunk.records.size(), records.size());
    EXPECT_LE(shrunk.records.size(), 100u);
    EXPECT_FALSE(checkTrace(shrunk.records, config).ok)
        << "the minimised trace must reproduce the diff";
}

} // namespace
} // namespace dol::check
