/**
 * @file
 * Runner subsystem tests: thread-pool semantics (drain-on-shutdown,
 * exception propagation), sweep determinism (`--jobs 1` vs `--jobs 8`
 * produce byte-identical metric rows), the shared baseline cache, and
 * the JSON writer/reader round trip.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <iterator>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"
#include "runner/json_reader.hpp"
#include "runner/progress.hpp"
#include "runner/json_writer.hpp"
#include "runner/result_store.hpp"
#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"
#include "workloads/suite.hpp"

namespace
{

using namespace dol;
using namespace dol::runner;

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsEveryTaskAcrossWorkers)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::mutex mutex;
    std::set<std::thread::id> threads;

    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&] {
            counter.fetch_add(1);
            std::lock_guard lock(mutex);
            threads.insert(std::this_thread::get_id());
        }));
    }
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(counter.load(), 64);
    EXPECT_GE(threads.size(), 1u);
    EXPECT_LE(threads.size(), 4u);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&] { counter.fetch_add(1); });
        // No wait(): destruction must finish the queue, not drop it.
    }
    EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] {});
    auto bad = pool.submit(
        [] { throw std::runtime_error("job exploded"); });
    EXPECT_NO_THROW(ok.get());
    EXPECT_THROW(bad.get(), std::runtime_error);

    // The pool survives a throwing task and keeps executing.
    std::atomic<bool> ran{false};
    pool.submit([&] { ran = true; }).get();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitBlocksUntilIdle)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 24; ++i)
        pool.submit([&] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 24);
}

// --------------------------------------------------------------- sweep

SweepRunner
makeSmallSweep(unsigned jobs)
{
    SimConfig config;
    config.maxInstrs = 20000;
    SweepOptions options;
    options.jobs = jobs;
    options.progress = false;
    SweepRunner sweep(config, options);

    std::vector<WorkloadSpec> specs{findWorkload("libquantum.syn"),
                                    findWorkload("mcf.syn")};
    sweep.addGrid(specs, {"NextLine", "StridePC"});
    return sweep;
}

TEST(SweepRunner, SerialAndParallelRowsAreByteIdentical)
{
    SweepRunner serial = makeSmallSweep(1);
    SweepRunner parallel = makeSmallSweep(8);

    const auto serial_report = serial.run();
    const auto parallel_report = parallel.run();

    // Metric rows: identical bytes in CSV and in the JSON results
    // array, independent of worker count.
    EXPECT_EQ(serial_report.store.toCsv(),
              parallel_report.store.toCsv());
    EXPECT_EQ(serial_report.store.resultsJson(),
              parallel_report.store.resultsJson());

    const auto rows = serial_report.store.rows();
    ASSERT_EQ(rows.size(), 4u);
    // Grid order: workload-major, prefetcher-minor.
    EXPECT_EQ(rows[0].workload, "libquantum.syn");
    EXPECT_EQ(rows[0].prefetcher, "NextLine");
    EXPECT_EQ(rows[1].prefetcher, "StridePC");
    EXPECT_EQ(rows[2].workload, "mcf.syn");
    // Simulations really happened.
    for (const MetricsRow &row : rows) {
        EXPECT_GT(row.instructions, 0u);
        EXPECT_GT(row.baselineIpc, 0.0);
    }
}

TEST(SweepRunner, SeedsDeriveFromCellKeyNotSchedule)
{
    const std::uint64_t seed =
        cellSeed("libquantum.syn", "NextLine");
    EXPECT_EQ(seed, cellSeed("libquantum.syn", "NextLine"));
    EXPECT_NE(seed, cellSeed("libquantum.syn", "StridePC"));
    EXPECT_NE(seed, cellSeed("mcf.syn", "NextLine"));
    EXPECT_NE(cellSeed("ab", "c"), cellSeed("a", "bc"));

    const auto report = makeSmallSweep(4).run();
    for (const MetricsRow &row : report.store.rows())
        EXPECT_EQ(row.seed, cellSeed(row.workload, row.prefetcher));
}

TEST(SweepRunner, JobExceptionPropagatesAfterDraining)
{
    SimConfig config;
    config.maxInstrs = 5000;
    SweepOptions options;
    options.jobs = 2;
    options.progress = false;
    SweepRunner sweep(config, options);

    std::atomic<int> completed{0};
    sweep.addJob("ok-1", [&](ExperimentRunner &) {
        completed.fetch_add(1);
        return std::vector<RunOutput>{};
    });
    sweep.addJob("boom", [](ExperimentRunner &)
                     -> std::vector<RunOutput> {
        throw std::runtime_error("cell failed");
    });
    sweep.addJob("ok-2", [&](ExperimentRunner &) {
        completed.fetch_add(1);
        return std::vector<RunOutput>{};
    });

    EXPECT_THROW(sweep.run(), std::runtime_error);
    // Every non-failing job still ran to completion.
    EXPECT_EQ(completed.load(), 2);
}

// ------------------------------------------------------------ progress

TEST(Progress, EtaExtrapolatesFromExecutedJobs)
{
    // 2 executed in 10s -> 5s per job, 4 remaining -> 20s.
    EXPECT_DOUBLE_EQ(etaSeconds(2, 0, 6, 10.0), 20.0);
    // Skipped (checkpoint-merged) jobs shrink the remaining count but
    // never feed the rate: 2 executed + 2 merged of 6 leaves 2 cells
    // at 5s per executed job.
    EXPECT_DOUBLE_EQ(etaSeconds(2, 2, 6, 10.0), 10.0);
}

TEST(Progress, EtaDegenerateSweepsReportZero)
{
    // Nothing executed yet: no rate to extrapolate from.
    EXPECT_DOUBLE_EQ(etaSeconds(0, 0, 6, 10.0), 0.0);
    // Resume of a finished sweep: every cell merged from the journal.
    EXPECT_DOUBLE_EQ(etaSeconds(0, 6, 6, 10.0), 0.0);
    // Sweep complete.
    EXPECT_DOUBLE_EQ(etaSeconds(6, 0, 6, 10.0), 0.0);
    // Counters overran the total (done + skipped > total) must not
    // underflow the remaining count into a huge unsigned value.
    EXPECT_DOUBLE_EQ(etaSeconds(5, 3, 6, 10.0), 0.0);
    // Empty sweep and negative clock skew.
    EXPECT_DOUBLE_EQ(etaSeconds(0, 0, 0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(etaSeconds(2, 0, 6, -1.0), 0.0);
}

TEST(BaselineCache, ComputesEachWorkloadOnce)
{
    BaselineCache cache;
    std::atomic<int> computed{0};
    const auto compute = [&] {
        computed.fetch_add(1);
        ExperimentRunner::Baseline base;
        base.ipc = 1.5;
        return base;
    };

    std::vector<std::thread> threads;
    for (int i = 0; i < 8; ++i) {
        threads.emplace_back([&] {
            const auto &base = cache.get("wl", compute);
            EXPECT_DOUBLE_EQ(base.ipc, 1.5);
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(computed.load(), 1);
    EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------- json

TEST(Json, WriterEscapesAndStructures)
{
    JsonWriter json(0);
    json.beginObject();
    json.field("name", "a\"b\\c\n\t\x01");
    json.field("count", std::uint64_t{42});
    json.field("ratio", 0.25);
    json.field("flag", true);
    json.key("list").beginArray().value(1).value(2).endArray();
    json.endObject();
    EXPECT_EQ(json.str(),
              "{\"name\":\"a\\\"b\\\\c\\n\\t\\u0001\",\"count\":42,"
              "\"ratio\":0.25,\"flag\":true,\"list\":[1,2]}");
}

TEST(Json, ReaderParsesWriterOutput)
{
    JsonWriter json;
    json.beginObject();
    json.field("text", "line1\nline2 \"quoted\" back\\slash");
    json.field("num", 3.140000001);
    json.field("neg", std::int64_t{-7});
    json.key("nested").beginObject().field("deep", "x").endObject();
    json.key("arr").beginArray().value(false).null().endArray();
    json.endObject();

    JsonValue value;
    std::string error;
    ASSERT_TRUE(parseJson(json.str(), value, &error)) << error;
    EXPECT_EQ(value.stringOr("text", ""),
              "line1\nline2 \"quoted\" back\\slash");
    EXPECT_DOUBLE_EQ(value.numberOr("num", 0.0), 3.140000001);
    EXPECT_DOUBLE_EQ(value.numberOr("neg", 0.0), -7.0);
    ASSERT_NE(value.find("nested"), nullptr);
    EXPECT_EQ(value.find("nested")->stringOr("deep", ""), "x");
    ASSERT_NE(value.find("arr"), nullptr);
    ASSERT_EQ(value.find("arr")->array().size(), 2u);
    EXPECT_FALSE(value.find("arr")->array()[0].boolean());
    EXPECT_TRUE(value.find("arr")->array()[1].isNull());
}

TEST(Json, ReaderRejectsGarbage)
{
    JsonValue value;
    std::string error;
    EXPECT_FALSE(parseJson("{\"a\": }", value, &error));
    EXPECT_FALSE(parseJson("[1, 2", value, &error));
    EXPECT_FALSE(parseJson("{} trailing", value, &error));
    EXPECT_FALSE(parseJson("\"unterminated", value, &error));
}

TEST(ResultStore, JsonRoundTripPreservesRows)
{
    ResultStore store;
    MetricsRow row;
    row.workload = "weird \"name\"\n";
    row.prefetcher = "TPC+SMS";
    row.variant = ":L1";
    row.seed = 0xdeadbeefcafeull;
    row.baselineIpc = 1.2345;
    row.ipc = 1.5;
    row.speedup = 1.5 / 1.2345;
    row.baselineMpkiL1 = 12.75;
    row.prefetchesIssued = 123456789ull;
    row.scope = 0.625;
    row.effAccuracyL1 = 0.875;
    row.effCoverageL1 = 0.5;
    row.effAccuracyL2 = -0.125; // induced misses can go negative
    row.effCoverageL2 = 0.25;
    row.trafficNormalized = 1.0625;
    row.instructions = 200000;
    store.append(row);

    SweepMeta meta;
    meta.generator = "test";
    meta.maxInstrs = 200000;
    meta.jobs = 8;
    meta.elapsedSeconds = 1.5;
    meta.wallMs = {42.0};

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(store.toJson(meta), doc, &error)) << error;

    EXPECT_EQ(doc.stringOr("schema", ""), "dol-sweep-v1");
    EXPECT_EQ(doc.stringOr("generator", ""), "test");
    const JsonValue *results = doc.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->array().size(), 1u);

    const JsonValue &parsed = results->array()[0];
    EXPECT_EQ(parsed.stringOr("workload", ""), row.workload);
    EXPECT_EQ(parsed.stringOr("prefetcher", ""), row.prefetcher);
    EXPECT_EQ(parsed.stringOr("variant", ""), row.variant);
    EXPECT_DOUBLE_EQ(parsed.numberOr("seed", 0),
                     static_cast<double>(row.seed));
    const JsonValue *metrics = parsed.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_DOUBLE_EQ(metrics->numberOr("baseline_ipc", 0),
                     row.baselineIpc);
    EXPECT_DOUBLE_EQ(metrics->numberOr("ipc", 0), row.ipc);
    EXPECT_DOUBLE_EQ(metrics->numberOr("baseline_mpki_l1", 0),
                     row.baselineMpkiL1);
    EXPECT_DOUBLE_EQ(metrics->numberOr("prefetches_issued", 0),
                     static_cast<double>(row.prefetchesIssued));
    EXPECT_DOUBLE_EQ(metrics->numberOr("scope", 0), row.scope);
    EXPECT_DOUBLE_EQ(metrics->numberOr("eff_accuracy_l1", 0),
                     row.effAccuracyL1);
    EXPECT_DOUBLE_EQ(metrics->numberOr("eff_accuracy_l2", 0),
                     row.effAccuracyL2);
    EXPECT_DOUBLE_EQ(metrics->numberOr("traffic_normalized", 0),
                     row.trafficNormalized);
    EXPECT_DOUBLE_EQ(metrics->numberOr("instructions", 0),
                     static_cast<double>(row.instructions));

    const JsonValue *timing = doc.find("timing");
    ASSERT_NE(timing, nullptr);
    EXPECT_DOUBLE_EQ(timing->numberOr("jobs", 0), 8.0);
    ASSERT_NE(timing->find("wall_ms"), nullptr);
    EXPECT_EQ(timing->find("wall_ms")->array().size(), 1u);
}

/**
 * Property test: a dol-sweep-v1 document survives the writer->reader
 * round trip for randomized rows — awkward strings (quotes,
 * backslashes, control characters forced through \uXXXX escapes, raw
 * UTF-8), extreme doubles at the edges of the %.10g format, and rows
 * with and without a counters object.
 *
 * The writer prints doubles with 10 significant digits, so numeric
 * equality is up to that precision (exact when the value needs no
 * more digits); strings and integers must round-trip exactly.
 */
TEST(ResultStore, JsonRoundTripPropertyRandomizedRows)
{
    const auto near = [](double a, double b) {
        if (a == b)
            return true;
        const double scale = std::max(std::fabs(a), std::fabs(b));
        return std::fabs(a - b) <= 5e-10 * scale;
    };
    const double palette[] = {0.0,     -0.0,   1.0 / 3.0,
                              17.25,   -2.5e-9, 1e300,
                              -1e300,  1e-300,  3.141592653589793,
                              1234567.875};
    const std::string names[] = {
        "plain",        "with space",  "qu\"ote",
        "back\\slash",  "new\nline",   "tab\tand\rcr",
        "ctl\x01\x1f!", "unicode \xce\xbb\xe2\x88\x80"};

    Rng rng(20260807);
    const auto pick_double = [&] {
        return palette[rng.below(std::size(palette))];
    };
    const auto pick_name = [&] {
        return names[rng.below(std::size(names))];
    };

    for (int iteration = 0; iteration < 30; ++iteration) {
        const std::size_t count = 1 + rng.below(4);
        ResultStore store;
        std::vector<MetricsRow> rows;
        for (std::size_t i = 0; i < count; ++i) {
            MetricsRow row;
            row.workload = pick_name();
            row.prefetcher = pick_name();
            row.variant = rng.chance(0.3) ? "" : pick_name();
            row.seed = rng.below(1ull << 50);
            row.baselineIpc = pick_double();
            row.ipc = pick_double();
            row.speedup = pick_double();
            row.baselineMpkiL1 = pick_double();
            row.prefetchesIssued = rng.below(1ull << 53);
            row.scope = pick_double();
            row.effAccuracyL1 = pick_double();
            row.effCoverageL1 = pick_double();
            row.effAccuracyL2 = pick_double();
            row.effCoverageL2 = pick_double();
            row.trafficNormalized = pick_double();
            row.instructions = rng.below(1ull << 53);
            if (rng.chance(0.5)) {
                const std::size_t counters = 1 + rng.below(3);
                for (std::size_t c = 0; c < counters; ++c) {
                    row.counters.set("scope" + std::to_string(c),
                                     pick_name(),
                                     rng.below(1ull << 53));
                }
            }
            rows.push_back(row);
            store.append(row);
        }

        SweepMeta meta;
        meta.maxInstrs = rng.below(1ull << 40);
        meta.jobs = 1 + static_cast<unsigned>(rng.below(16));

        // Serialization is deterministic: two calls, identical bytes.
        const std::string text = store.toJson(meta);
        ASSERT_EQ(text, store.toJson(meta)) << "iteration " << iteration;

        JsonValue doc;
        std::string error;
        ASSERT_TRUE(parseJson(text, doc, &error))
            << "iteration " << iteration << ": " << error;
        EXPECT_EQ(doc.stringOr("schema", ""), "dol-sweep-v1");
        const JsonValue *results = doc.find("results");
        ASSERT_NE(results, nullptr);
        ASSERT_EQ(results->array().size(), rows.size());

        for (std::size_t i = 0; i < rows.size(); ++i) {
            const MetricsRow &row = rows[i];
            const JsonValue &parsed = results->array()[i];
            EXPECT_EQ(parsed.stringOr("workload", "?"), row.workload);
            EXPECT_EQ(parsed.stringOr("prefetcher", "?"),
                      row.prefetcher);
            EXPECT_EQ(parsed.stringOr("variant", "?"), row.variant);
            EXPECT_DOUBLE_EQ(parsed.numberOr("seed", -1),
                             static_cast<double>(row.seed));

            const JsonValue *metrics = parsed.find("metrics");
            ASSERT_NE(metrics, nullptr);
            EXPECT_TRUE(near(metrics->numberOr("ipc", -1), row.ipc));
            EXPECT_TRUE(near(metrics->numberOr("baseline_ipc", -1),
                             row.baselineIpc));
            EXPECT_TRUE(near(metrics->numberOr("speedup", -1),
                             row.speedup));
            EXPECT_TRUE(near(metrics->numberOr("scope", -1),
                             row.scope));
            EXPECT_TRUE(near(metrics->numberOr("eff_accuracy_l1", -1),
                             row.effAccuracyL1));
            EXPECT_TRUE(near(metrics->numberOr("eff_coverage_l2", -1),
                             row.effCoverageL2));
            EXPECT_TRUE(near(metrics->numberOr("traffic_normalized", -1),
                             row.trafficNormalized));
            EXPECT_DOUBLE_EQ(
                metrics->numberOr("prefetches_issued", -1),
                static_cast<double>(row.prefetchesIssued));
            EXPECT_DOUBLE_EQ(metrics->numberOr("instructions", -1),
                             static_cast<double>(row.instructions));

            // Counters: absent when empty, exact when present.
            const JsonValue *counters = parsed.find("counters");
            if (row.counters.empty()) {
                EXPECT_EQ(counters, nullptr);
            } else {
                ASSERT_NE(counters, nullptr);
                const auto expected = row.counters.sorted();
                ASSERT_EQ(counters->object().size(), expected.size());
                for (const auto &[name, value] : expected) {
                    EXPECT_DOUBLE_EQ(counters->numberOr(name, -1),
                                     static_cast<double>(value))
                        << "counter " << name;
                }
            }
        }
    }
}

TEST(ResultStore, GridSlotsSerializeInOrder)
{
    ResultStore store(3);
    MetricsRow row;
    row.prefetcher = "X";
    row.workload = "c";
    store.set(2, row);
    row.workload = "a";
    store.set(0, row);
    row.workload = "b";
    store.set(1, row);

    const auto rows = store.rows();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].workload, "a");
    EXPECT_EQ(rows[1].workload, "b");
    EXPECT_EQ(rows[2].workload, "c");
}

} // namespace
